#!/usr/bin/env python
"""Dispatch benchmark: host ops/sec for each engine layer, each mode.

Measures the three-layer engine (threaded dispatch, superinstruction
fusion, inline caches) against the baseline if/elif interpreter on the
steady-state ``sorter`` and ``server`` workloads, in plain-run, record,
and replay modes.  Guest behavior is asserted identical across engines
(same cycles) — the layers may only change how fast the host gets there.

Usage:

    PYTHONPATH=src python benchmarks/bench_dispatch.py            # full
    PYTHONPATH=src python benchmarks/bench_dispatch.py --quick    # 1 rep
    PYTHONPATH=src python benchmarks/bench_dispatch.py --check    # CI smoke

The full run writes ``BENCH_dispatch.json`` at the repo root; ``--check``
re-measures the full engine and fails (exit 1) if run-mode throughput
regressed more than 20% against the committed file, or if record-mode
throughput falls below ``RECORD_FLOOR`` (0.8×) of the same session's
run-mode throughput — the paper's near-zero-overhead recording claim,
expressed as a ratio so host speed cancels out.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import build_vm  # noqa: E402
from repro.core.controller import MODE_RECORD, MODE_REPLAY, DejaVu  # noqa: E402
from repro.vm.engineconfig import EngineConfig  # noqa: E402
from repro.vm.machine import Environment, VMConfig  # noqa: E402
from repro.vm.timerdev import SeededJitterClock, SeededJitterTimer  # noqa: E402
from repro.workloads import server, sorter  # noqa: E402

RESULT_PATH = REPO_ROOT / "BENCH_dispatch.json"
SEED = 7
HEAP = 400_000
#: CI gate: record-mode ops/s must stay at least this fraction of the
#: same session's run-mode ops/s, per workload
RECORD_FLOOR = 0.8

#: ablation layers, innermost first (each row adds one layer)
ENGINES = {
    "baseline": EngineConfig.baseline(),
    "threaded": EngineConfig(threaded_dispatch=True, fusion=False, inline_caches=False),
    "fused": EngineConfig(threaded_dispatch=True, fusion=True, inline_caches=False),
    "full": EngineConfig(),
}

#: steady-state sizings — big enough that class loading and VM
#: construction are noise, small enough for a CI smoke run
WORKLOADS = {
    "sorter": lambda: sorter(4, 400),
    "server": lambda: server(4, 400, 5, work_scale=400),
}


def _build(name: str, engine: EngineConfig):
    vm = build_vm(WORKLOADS[name](), VMConfig(semispace_words=HEAP, engine=engine))
    vm.timer = SeededJitterTimer(SEED, 40, 200)
    vm.clock = SeededJitterClock(SEED)
    vm.env = Environment(SEED)
    return vm


def _time_run(name: str, engine: EngineConfig, mode: str, trace=None):
    """One timed execution; returns (ops_per_sec, cycles)."""
    vm = _build(name, engine)
    if mode == "record":
        DejaVu(vm, MODE_RECORD)
    elif mode == "replay":
        DejaVu(vm, MODE_REPLAY, trace=trace)
    t0 = time.perf_counter()
    result = vm.run("Main.main()V")
    elapsed = time.perf_counter() - t0
    return result.cycles / elapsed, result.cycles


def _record_trace(name: str):
    vm = _build(name, EngineConfig.baseline())
    dejavu = DejaVu(vm, MODE_RECORD)
    vm.run("Main.main()V")
    return dejavu.trace()


def measure(reps: int, engines: dict, modes: tuple) -> dict:
    """Best-of-*reps*, interleaved across engines so every engine sees
    the same share of host noise."""
    results: dict = {}
    for name in WORKLOADS:
        trace = _record_trace(name) if "replay" in modes else None
        per_mode: dict = {}
        cycles_seen: dict = {}
        for mode in modes:
            best = {eng: 0.0 for eng in engines}
            for _ in range(reps):
                for eng, cfg in engines.items():
                    ops, cycles = _time_run(name, cfg, mode, trace)
                    best[eng] = max(best[eng], ops)
                    prev = cycles_seen.setdefault(mode, cycles)
                    assert prev == cycles, (
                        f"{name}/{mode}: engine {eng} changed guest cycles "
                        f"({cycles} != {prev})"
                    )
            per_mode[mode] = {eng: round(v) for eng, v in best.items()}
        results[name] = {
            "cycles": cycles_seen[modes[0]],
            "ops_per_sec": per_mode,
        }
        if "baseline" in engines and "full" in engines:
            results[name]["speedup_full_vs_baseline"] = {
                mode: round(per_mode[mode]["full"] / per_mode[mode]["baseline"], 3)
                for mode in modes
            }
    return results


def cmd_measure(args) -> int:
    modes = ("run", "record", "replay")
    results = measure(args.reps, ENGINES, modes)
    payload = {
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "config": {
            "semispace_words": HEAP,
            "seed": SEED,
            "timer": [40, 200],
            "reps": args.reps,
            "workloads": {"sorter": [4, 400], "server": [4, 400, 5, 400]},
        },
        "results": results,
    }
    for name, row in results.items():
        print(f"{name} ({row['cycles']} cycles)")
        for mode, per_engine in row["ops_per_sec"].items():
            cells = "  ".join(
                f"{eng}={ops / 1e6:.3f}M" for eng, ops in per_engine.items()
            )
            print(f"  {mode:<7} {cells}")
        speed = row.get("speedup_full_vs_baseline", {})
        if speed:
            print("  speedup full/baseline: " + "  ".join(
                f"{m}={s:.2f}x" for m, s in speed.items()
            ))
    if not args.no_write:
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {RESULT_PATH}")
    return 0


def cmd_check(args) -> int:
    """CI smoke: the full engine's run-mode throughput must stay within
    20% of the committed numbers (and guest cycles must match exactly),
    and record mode must reach :data:`RECORD_FLOOR` of run mode."""
    committed = json.loads(RESULT_PATH.read_text())
    engines = {"full": ENGINES["full"]}
    current = measure(args.reps, engines, ("run", "record"))
    failed = False
    for name, row in current.items():
        want_row = committed["results"][name]
        if row["cycles"] != want_row["cycles"]:
            print(
                f"FAIL {name}: guest cycles changed "
                f"({row['cycles']} != {want_row['cycles']}) — "
                "determinism regression, re-baseline deliberately"
            )
            failed = True
            continue
        got = row["ops_per_sec"]["run"]["full"]
        want = want_row["ops_per_sec"]["run"]["full"]
        floor = 0.8 * want
        verdict = "ok" if got >= floor else "FAIL"
        failed |= got < floor
        print(
            f"{verdict} {name}: run/full {got / 1e6:.3f}M ops/s "
            f"(committed {want / 1e6:.3f}M, floor {floor / 1e6:.3f}M)"
        )
        # record overhead gate: a within-session ratio, so host speed
        # differences between CI machines cancel out
        rec = row["ops_per_sec"]["record"]["full"]
        ratio = rec / got
        verdict = "ok" if ratio >= RECORD_FLOOR else "FAIL"
        failed |= ratio < RECORD_FLOOR
        print(
            f"{verdict} {name}: record/full {rec / 1e6:.3f}M ops/s = "
            f"{ratio:.3f}x of run (floor {RECORD_FLOOR:.2f}x)"
        )
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare run-mode throughput against the committed JSON",
    )
    parser.add_argument("--reps", type=int, default=None, help="repetitions per cell")
    parser.add_argument("--quick", action="store_true", help="single repetition")
    parser.add_argument(
        "--no-write", action="store_true", help="measure but do not write the JSON"
    )
    args = parser.parse_args(argv)
    if args.reps is None:
        args.reps = 1 if args.quick else 5
    return cmd_check(args) if args.check else cmd_measure(args)


if __name__ == "__main__":
    raise SystemExit(main())
