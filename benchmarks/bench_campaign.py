#!/usr/bin/env python
"""Campaign benchmark: sharded sweep throughput, jobs=1 vs jobs=4.

Runs the same preemption-bounded explore sweep (bank workload, k=2)
twice — serially and sharded across 4 worker processes — and compares
wall time and schedules/second.  The two runs are asserted to produce
the identical report digest first: speed means nothing if sharding
changed the answer.

Usage:

    PYTHONPATH=src python benchmarks/bench_campaign.py            # full
    PYTHONPATH=src python benchmarks/bench_campaign.py --quick    # smaller sweep
    PYTHONPATH=src python benchmarks/bench_campaign.py --check    # CI smoke

The full run writes ``BENCH_campaign.json`` at the repo root.

``--check`` enforces a speedup floor that depends on the host: on a
machine with >= 4 CPUs (the CI runners) jobs=4 must be at least 2.5x
faster than jobs=1; on smaller hosts a 4-worker sweep cannot beat the
serial one, so the floor degrades to an overhead-sanity check — the
sharded run must still reach at least half the serial throughput
(process scaffolding must not dominate the work).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaign import run_explore_campaign  # noqa: E402
from repro.vm.machine import VMConfig  # noqa: E402

RESULT_PATH = REPO_ROOT / "BENCH_campaign.json"
WORKLOAD = "bank"
BOUND = 2
SEED = 0
HEAP = 60_000
BUDGET_FULL = 480
BUDGET_QUICK = 160
#: jobs=4 vs jobs=1 speedup floor on hosts with >= 4 CPUs
SPEEDUP_FLOOR = 2.5
#: on smaller hosts: sharded throughput must stay >= this fraction of serial
OVERHEAD_FLOOR = 0.5


def _sweep(budget: int, jobs: int):
    config = VMConfig(semispace_words=HEAP)
    t0 = time.perf_counter()
    report = run_explore_campaign(
        WORKLOAD, bound=BOUND, budget=budget, seed=SEED, jobs=jobs, config=config
    )
    return report, time.perf_counter() - t0


def measure(budget: int, reps: int) -> dict:
    best = {1: float("inf"), 4: float("inf")}
    digests = {}
    schedules = None
    for _ in range(reps):
        for jobs in (1, 4):
            report, elapsed = _sweep(budget, jobs)
            best[jobs] = min(best[jobs], elapsed)
            digests[jobs] = report.digest()
            schedules = report.schedules_run
    assert digests[1] == digests[4], (
        f"sharding changed the sweep result: {digests[1]} != {digests[4]}"
    )
    return {
        "budget": budget,
        "schedules_run": schedules,
        "report_digest": digests[1],
        "jobs1_s": round(best[1], 4),
        "jobs4_s": round(best[4], 4),
        "jobs1_schedules_per_s": round(schedules / best[1], 1),
        "jobs4_schedules_per_s": round(schedules / best[4], 1),
        "speedup": round(best[1] / best[4], 2),
    }


def _print(row: dict) -> None:
    print(
        f"{WORKLOAD} k={BOUND}, {row['schedules_run']} schedules "
        f"(digest {row['report_digest']})"
    )
    print(
        f"  jobs=1: {row['jobs1_s']:.2f}s ({row['jobs1_schedules_per_s']:.0f}/s)  "
        f"jobs=4: {row['jobs4_s']:.2f}s ({row['jobs4_schedules_per_s']:.0f}/s)  "
        f"speedup {row['speedup']:.2f}x"
    )


def cmd_measure(args) -> int:
    row = measure(args.budget, args.reps)
    payload = {
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "config": {
            "workload": WORKLOAD,
            "bound": BOUND,
            "seed": SEED,
            "semispace_words": HEAP,
            "reps": args.reps,
        },
        "results": row,
    }
    _print(row)
    if not args.no_write:
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {RESULT_PATH}")
    return 0


def cmd_check(args) -> int:
    """CI smoke: determinism always, the 2.5x speedup floor where the
    host can physically deliver it (>= 4 CPUs)."""
    row = measure(args.budget, args.reps)
    _print(row)
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        if row["speedup"] < SPEEDUP_FLOOR:
            print(
                f"FAIL: speedup {row['speedup']:.2f}x < {SPEEDUP_FLOOR}x floor "
                f"({cpus} CPUs)"
            )
            return 1
        print(f"ok: speedup {row['speedup']:.2f}x >= {SPEEDUP_FLOOR}x ({cpus} CPUs)")
        return 0
    # not enough CPUs for parallel speedup — check overhead, not speedup
    ratio = row["jobs4_schedules_per_s"] / row["jobs1_schedules_per_s"]
    if ratio < OVERHEAD_FLOOR:
        print(
            f"FAIL: jobs=4 throughput is {ratio:.2f}x of serial "
            f"< {OVERHEAD_FLOOR}x overhead floor ({cpus} CPU host — "
            f"the {SPEEDUP_FLOOR}x speedup floor needs >= 4 CPUs)"
        )
        return 1
    print(
        f"ok: jobs=4 throughput {ratio:.2f}x of serial on a {cpus}-CPU host "
        f"(the {SPEEDUP_FLOOR}x speedup floor applies at >= 4 CPUs)"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-measure and fail below the speedup/overhead floor",
    )
    parser.add_argument("--reps", type=int, default=None, help="repetitions per sweep")
    parser.add_argument("--quick", action="store_true", help="smaller sweep, 1 rep")
    parser.add_argument(
        "--no-write", action="store_true", help="measure but do not write the JSON"
    )
    args = parser.parse_args(argv)
    if args.reps is None:
        args.reps = 1 if args.quick else 2
    args.budget = BUDGET_QUICK if args.quick else BUDGET_FULL
    return cmd_check(args) if args.check else cmd_measure(args)


if __name__ == "__main__":
    sys.exit(main())
