"""F3 — Figure 3: reflective queries across JVMs.

Paper claim: ``Debugger.lineNumberOf`` executes the application VM's own
reflection method (``VM_Method.getLineNumberAt``) in the tool VM against
remote objects, returning the right line number without the application
VM executing anything.  Reproduction: run the exact Figure-3 bytecode on
the tool VM over a ptrace-style port, compare with ground truth for every
method and offset, and count the perturbation (zero words written, zero
instructions run).
"""

import pytest

from repro.api import build_vm
from repro.debugger.guestlib import debugger_classdefs
from repro.remote import DebugPort, RemoteReflector, ToolInterpreter, default_mappings
from repro.vm import VirtualMachine
from repro.workloads import racy_bank
from benchmarks.conftest import BENCH_CONFIG, knobs


@pytest.fixture(scope="module")
def vms():
    program = racy_bank()
    app = build_vm(program, BENCH_CONFIG, **knobs(9))
    app.run()
    tool = VirtualMachine(BENCH_CONFIG)
    tool.declare(program.classdefs)
    tool.declare(debugger_classdefs())
    return app, tool


@pytest.mark.benchmark(group="figure3")
def test_line_numbers_match_ground_truth(benchmark, report, vms):
    app, tool = vms
    interp = ToolInterpreter(tool, DebugPort(app), default_mappings())
    checked = 0
    for rm in app.loader.method_by_id:
        if rm.native or not rm.mdef.line_table:
            continue
        for bci in list(rm.mdef.line_table)[:4]:
            want = rm.mdef.line_table[bci]
            got = interp.call("Debugger.lineNumberOf(II)I", [rm.method_id, bci])
            assert got == want, (rm.qualname, bci)
            checked += 1
    report.row(f"guest-bytecode lineNumberOf checks: {checked}, all correct")

    rm = app.loader.resolve_method_any("Teller.run()V")
    benchmark(
        lambda: interp.call("Debugger.lineNumberOf(II)I", [rm.method_id, 0])
    )


@pytest.mark.benchmark(group="figure3")
def test_zero_perturbation(benchmark, report, vms):
    app, tool = vms
    port = DebugPort(app)
    interp = ToolInterpreter(tool, port, default_mappings())
    refl = RemoteReflector(port, tool)
    snapshot = list(app.memory.words)
    cycles = app.engine.cycles

    def inspect_everything():
        rm = app.loader.resolve_method_any("Main.main()V")
        interp.call("Debugger.lineNumberOf(II)I", [rm.method_id, 0])
        refl.class_names()
        refl.threads()
        refl.statics_of("Main").field("balance")

    inspect_everything()
    assert app.memory.words == snapshot, "remote reflection wrote to the app VM"
    assert app.engine.cycles == cycles, "the app VM executed instructions"
    report.row(f"app-VM words written by the debugger: 0")
    report.row(f"app-VM instructions executed for the debugger: 0")
    report.row(f"ptrace words read: {port.reads}")
    benchmark(inspect_everything)


@pytest.mark.benchmark(group="figure3")
def test_host_and_guest_reflection_agree(benchmark, report, vms):
    """The host-side reflector and the guest-bytecode path compute the
    same answers — 'the same reflection interface can be used internally
    or externally'."""
    app, tool = vms
    port = DebugPort(app)
    interp = ToolInterpreter(tool, port, default_mappings())
    refl = RemoteReflector(port, tool)
    rm = app.loader.resolve_method_any("Teller.run()V")
    agreements = 0
    for bci in range(len(rm.mdef.code)):
        host = refl.line_number_of(rm.method_id, bci)
        guest = interp.call("Debugger.lineNumberOf(II)I", [rm.method_id, bci])
        assert host == guest
        agreements += 1
    report.row(f"host vs guest reflection agreement on {agreements} offsets")
    benchmark(lambda: refl.line_number_of(rm.method_id, 0))
