"""B5 — symmetry ablations: each §2.4 mechanism, removed, breaks replay.

For every mechanism the table shows: symmetric (ON) replay faithful;
ablated (OFF) replay diverges, and *how* the divergence surfaced (the
online kind-check, the END heap digest, the GC count...).  This is the
design-choice evidence DESIGN.md calls out.
"""

import pytest

from repro.api import record, replay
from repro.core import SymmetryConfig, compare_runs
from repro.vm.errors import ReplayDivergenceError
from repro.vm.machine import VMConfig
from repro.workloads import gc_churn, server
from benchmarks.conftest import knobs

CHURN_CFG = VMConfig(semispace_words=9_000, initial_stack_words=128)
SERVER_CFG = VMConfig(semispace_words=60_000)
TINY = dict(switch_buffer_words=16, value_buffer_words=32)

ABLATIONS = [
    (
        "allocation (preallocate_buffers)",
        SymmetryConfig(preallocate_buffers=False),
        lambda: gc_churn(iters=600),
        CHURN_CFG,
        {},
    ),
    (
        "class loading (preload_classes)",
        SymmetryConfig(preload_classes=False),
        lambda: gc_churn(iters=600),
        CHURN_CFG,
        {},
    ),
    (
        "stack overflow (eager_stack_growth)",
        SymmetryConfig(eager_stack_growth=False),
        lambda: gc_churn(iters=600),
        CHURN_CFG,
        {},
    ),
    (
        "logical clock (liveclock)",
        SymmetryConfig(liveclock=False),
        lambda: server(seed=3),
        SERVER_CFG,
        TINY,
    ),
]


def run_pair(factory, config, symmetry, extra):
    session = record(
        factory(), config=config, symmetry=symmetry, **knobs(3), **extra
    )
    replayed = replay(
        factory(), session.trace, config=config, symmetry=symmetry, **extra
    )
    return compare_runs(session.result, replayed)


@pytest.mark.benchmark(group="B5-ablations")
def test_ablation_table(benchmark, report):
    report.row(f"{'mechanism':<38}{'symmetric':>10}{'ablated':>28}")
    for name, ablated_sym, factory, config, extra in ABLATIONS:
        on = run_pair(factory, config, SymmetryConfig(), extra)
        assert on.faithful, (name, on.detail)
        try:
            off = run_pair(factory, config, ablated_sym, extra)
            outcome = "diverged (verify)" if not off.faithful else "FAITHFUL?!"
            diverged = not off.faithful
        except ReplayDivergenceError as exc:
            outcome = f"diverged online: {str(exc)[:40]}"
            diverged = True
        report.row(f"{name:<38}{'faithful':>10}{outcome:>28}")
        assert diverged, f"ablating {name} should break replay"
    benchmark.pedantic(
        lambda: run_pair(lambda: gc_churn(iters=200), CHURN_CFG, SymmetryConfig(), {}),
        rounds=2,
        iterations=1,
    )


@pytest.mark.benchmark(group="B5-ablations")
def test_symmetry_cost_is_negligible(benchmark, report):
    """The mechanisms exist for accuracy, not speed — but they must not
    cost much either.  Compare record time with everything on vs the
    (unsound) everything-off configuration."""
    import time

    def timed(sym):
        t0 = time.perf_counter()
        for seed in range(3):
            record(
                gc_churn(iters=300), config=CHURN_CFG, symmetry=sym, **knobs(seed)
            )
        return time.perf_counter() - t0

    def measure():
        return timed(SymmetryConfig()), timed(SymmetryConfig.all_off())

    t_on, t_off = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = t_on / t_off
    report.row(f"record time, all symmetry on/off ratio: {ratio:.2f}x")
    assert ratio < 1.8
