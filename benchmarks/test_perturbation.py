"""B6 — perturbation: remote reflection preserves replay; in-process breaks it.

Paper claim (§3): an in-process debugger's reflective queries change the
JVM state (allocation, scheduling, class loading) and "it may no longer
be possible to resume the deterministic execution"; remote reflection
avoids all of it.  Both halves, measured.
"""

import pytest

from repro.api import build_vm, record
from repro.core import compare_runs
from repro.core.controller import MODE_REPLAY, DejaVu
from repro.debugger import Debugger, DebugController, ReplaySession
from repro.vm.errors import ReplayDivergenceError
from repro.workloads import racy_bank
from benchmarks.conftest import BENCH_CONFIG, knobs


@pytest.fixture(scope="module")
def recorded():
    return record(racy_bank(), config=BENCH_CONFIG, **knobs(5))


@pytest.mark.benchmark(group="B6-perturbation")
def test_remote_reflection_is_perturbation_free(benchmark, report, recorded):
    def debug_heavily():
        session = ReplaySession(racy_bank(), recorded.trace, config=BENCH_CONFIG)
        dbg = Debugger(session)
        dbg.break_("Teller.run()V", bci=4)
        stops = 0
        while dbg.cont()["status"] == "breakpoint" and stops < 8:
            dbg.backtrace()
            dbg.threads()
            dbg.print_static("Main", "balance")
            rm = session.resolve_method("Teller.run()V")
            session.line_number_of(rm.method_id, 2)
            stops += 1
        session.clear_breakpoints()
        result = session.run_to_completion()
        return session, result, stops

    session, result, stops = debug_heavily()
    rep = compare_runs(recorded.result, result)
    report.row(f"breakpoint stops with full inspection: {stops}")
    report.row(f"ptrace reads performed: {session.port.reads}")
    report.row(f"replay after debugging faithful: {rep.faithful}")
    assert rep.faithful, rep.detail
    benchmark.pedantic(debug_heavily, rounds=2, iterations=1)


@pytest.mark.benchmark(group="B6-perturbation")
def test_in_process_reflection_breaks_replay(benchmark, report, recorded):
    """The counterfactual: run one reflective query *inside* the
    application VM mid-replay (one string allocated in its heap) and the
    replay can no longer be completed accurately."""

    def perturb_and_resume():
        vm = build_vm(racy_bank(), BENCH_CONFIG)
        DejaVu(vm, MODE_REPLAY, trace=recorded.trace)
        control = DebugController()
        vm.engine.debug = control
        vm.start("Main.main()V")
        rm = vm.loader.resolve_method_any("Teller.run()V")
        control.add_breakpoint(rm.method_id, 0)
        vm.engine.run()
        assert control.paused
        # 'in-process reflection': compute a query result in the app heap
        vm.loader.make_string("lineNumberOf(...) result")
        control.clear_breakpoints()
        control.resume()
        try:
            vm.engine.run()
            vm.finish()
            return "replay completed (UNDETECTED PERTURBATION)"
        except ReplayDivergenceError as exc:
            return f"replay diverged: {str(exc)[:60]}"

    outcome = perturb_and_resume()
    report.row(f"one in-process allocation at a breakpoint -> {outcome}")
    assert outcome.startswith("replay diverged")
    benchmark.pedantic(perturb_and_resume, rounds=2, iterations=1)


@pytest.mark.benchmark(group="B6-perturbation")
def test_intrusive_write_diverges_replay(benchmark, report, recorded):
    """Footnote 3: a user-requested state modification through the
    intrusive port irrevocably breaks accuracy (replay continues, but no
    guarantee — here the balance witness catches it)."""
    from repro.remote.ptrace import IntrusivePort

    def tamper():
        session = ReplaySession(racy_bank(), recorded.trace, config=BENCH_CONFIG)
        session.add_breakpoint("Teller.run()V", bci=4)
        session.resume()
        port = IntrusivePort(session.vm)
        rc, slot = session.vm.loader.resolve_static_field("Main.balance")
        port.poke(rc.statics_addr + slot.offset, 10_000)
        session.clear_breakpoints()
        try:
            result = session.run_to_completion()
            return compare_runs(recorded.result, result).faithful, result.output_text
        except ReplayDivergenceError as exc:
            return False, f"(diverged online: {str(exc)[:40]})"

    faithful, output = tamper()
    report.row(f"after poking Main.balance=10000: faithful={faithful}, {output}")
    assert not faithful
    benchmark.pedantic(tamper, rounds=2, iterations=1)
