#!/usr/bin/env python
"""Checkpoint benchmark: late time-travel seeks, from-zero vs checkpointed.

Records the ``server`` workload once, then measures a late backward seek
(``goto_cycles`` to ~90% of the run) two ways: on a plain
:class:`TimeTravelSession` (every seek replays the whole prefix from
cycle zero) and on a checkpoint-accelerated session (restore the nearest
earlier snapshot, replay at most one interval).  Both paths are asserted
to land on the identical machine state — checkpoints change seek cost,
never the state seen.

Usage:

    PYTHONPATH=src python benchmarks/bench_checkpoint.py            # full
    PYTHONPATH=src python benchmarks/bench_checkpoint.py --quick    # 1 rep
    PYTHONPATH=src python benchmarks/bench_checkpoint.py --check    # CI smoke

The full run writes ``BENCH_checkpoint.json`` at the repo root;
``--check`` re-measures once and fails (exit 1) if the checkpointed
seek is less than 5x faster than the from-zero seek.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import record  # noqa: E402
from repro.core.checkpoint import machine_digest  # noqa: E402
from repro.debugger.timetravel import TimeTravelSession  # noqa: E402
from repro.vm.machine import Environment, VMConfig  # noqa: E402
from repro.vm.timerdev import SeededJitterClock, SeededJitterTimer  # noqa: E402
from repro.workloads import server  # noqa: E402

RESULT_PATH = REPO_ROOT / "BENCH_checkpoint.json"
SEED = 7
HEAP = 400_000

#: sized so a full from-zero replay takes whole seconds — late seeks are
#: exactly the case where O(trace) hurts and O(interval) pays off
WORKLOADS = {
    "server": lambda: server(4, 600, 5, work_scale=600),
}


def _config() -> VMConfig:
    return VMConfig(semispace_words=HEAP)


def _record_trace(name: str):
    return record(
        WORKLOADS[name](),
        config=_config(),
        timer=SeededJitterTimer(SEED, 40, 200),
        clock=SeededJitterClock(SEED),
        env=Environment(SEED),
    )


def _session(name: str, trace, every: int | None) -> TimeTravelSession:
    return TimeTravelSession(
        WORKLOADS[name](), trace, config=_config(), checkpoint_every=every
    )


def measure(reps: int) -> dict:
    """Best-of-*reps* seek times per workload (min wall time)."""
    results: dict = {}
    for name in WORKLOADS:
        recorded = _record_trace(name)
        end = recorded.result.cycles
        target = end * 9 // 10
        every = max(500, end // 20)

        # checkpointed session, warmed by one travel to the end (this is
        # where the snapshots are captured — the one-time cost a debugging
        # session pays anyway on its first pass over the trace)
        fast = _session(name, recorded.trace, every)
        t0 = time.perf_counter()
        fast.goto_cycles(end + 1)
        warm_s = time.perf_counter() - t0
        assert fast._snapshots, "no checkpoints captured while travelling"

        best_zero = best_ckpt = float("inf")
        digest_zero = digest_ckpt = None
        for _ in range(reps):
            plain = _session(name, recorded.trace, None)
            t0 = time.perf_counter()
            point_zero = plain.goto_cycles(target)
            best_zero = min(best_zero, time.perf_counter() - t0)
            digest_zero = machine_digest(plain.session.vm)

            restores_before = fast.restores
            t0 = time.perf_counter()
            point_ckpt = fast.goto_cycles(target)
            best_ckpt = min(best_ckpt, time.perf_counter() - t0)
            digest_ckpt = machine_digest(fast.session.vm)
            assert fast.restores == restores_before + 1, (
                f"{name}: seek was not checkpoint-accelerated"
            )
            assert point_ckpt == point_zero, (
                f"{name}: checkpointed seek landed on a different timepoint"
            )
        assert digest_ckpt == digest_zero, (
            f"{name}: checkpointed seek reached a different machine state"
        )
        results[name] = {
            "cycles": end,
            "target_cycles": target,
            "checkpoint_every": every,
            "n_snapshots": len(fast._snapshots),
            "warmup_s": round(warm_s, 4),
            "seek_from_zero_s": round(best_zero, 4),
            "seek_checkpointed_s": round(best_ckpt, 4),
            "speedup": round(best_zero / best_ckpt, 2),
        }
    return results


def _print(results: dict) -> None:
    for name, row in results.items():
        print(
            f"{name} ({row['cycles']} cycles, interval {row['checkpoint_every']}, "
            f"{row['n_snapshots']} snapshots)"
        )
        print(
            f"  seek to {row['target_cycles']}: "
            f"from-zero {row['seek_from_zero_s']:.3f}s  "
            f"checkpointed {row['seek_checkpointed_s']:.3f}s  "
            f"speedup {row['speedup']:.1f}x"
        )


def cmd_measure(args) -> int:
    results = measure(args.reps)
    payload = {
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "config": {
            "semispace_words": HEAP,
            "seed": SEED,
            "timer": [40, 200],
            "reps": args.reps,
            "workloads": {"server": [4, 600, 5, 600]},
        },
        "results": results,
    }
    _print(results)
    if not args.no_write:
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {RESULT_PATH}")
    return 0


def cmd_check(args) -> int:
    """CI smoke: the checkpointed late seek must stay at least 5x faster
    than the from-zero seek (the paper-level claim, not a host-speed pin)."""
    results = measure(args.reps)
    _print(results)
    failed = False
    for name, row in results.items():
        if row["speedup"] < 5.0:
            print(f"FAIL {name}: speedup {row['speedup']:.1f}x < 5x floor")
            failed = True
        else:
            print(f"ok {name}: speedup {row['speedup']:.1f}x >= 5x floor")
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-measure and fail if the checkpointed seek is < 5x faster",
    )
    parser.add_argument("--reps", type=int, default=None, help="repetitions per seek")
    parser.add_argument("--quick", action="store_true", help="single repetition")
    parser.add_argument(
        "--no-write", action="store_true", help="measure but do not write the JSON"
    )
    args = parser.parse_args(argv)
    if args.reps is None:
        args.reps = 1 if args.quick else 3
    return cmd_check(args) if args.check else cmd_measure(args)


if __name__ == "__main__":
    sys.exit(main())
