"""B2 — trace sizes: DejaVu vs the §5 schemes.

Paper claim: "a major drawback of such approaches is the overhead, in
time and particularly in space, of capturing critical events"; DejaVu
logs only preemptive switch points and environmental values.  Shape to
preserve: DejaVu ≤ Russinovich–Cogswell (every dispatch, with identity)
and DejaVu ≤ Recap (every shared read) on every workload; Instant Replay
sits wherever the workload's monitor traffic puts it, but cannot replay
the non-CREW workloads at all (B3 covers that).
"""

import pytest

from repro.api import record
from repro.baselines import instant_replay_record, rc_record, recap_record
from repro.workloads import ALL_WORKLOADS
from benchmarks.conftest import BENCH_CONFIG, knobs

SEED = 13


def survey(name):
    factory = ALL_WORKLOADS[name]
    sizes = {}
    sizes["dejavu"] = record(
        factory(), config=BENCH_CONFIG, **knobs(SEED)
    ).trace.encoded_size_bytes
    _, rc_trace, rc_stats = rc_record(factory(), config=BENCH_CONFIG, **knobs(SEED))
    sizes["russinovich"] = rc_trace.encoded_size_bytes
    _, crew = instant_replay_record(factory(), config=BENCH_CONFIG, **knobs(SEED))
    sizes["instant_replay"] = crew.encoded_size_bytes
    sizes["recap"] = recap_record(
        factory(), config=BENCH_CONFIG, **knobs(SEED)
    ).trace.encoded_size_bytes
    return sizes


@pytest.mark.benchmark(group="B2-trace-size")
def test_trace_size_table(benchmark, report):
    header = f"{'workload':<18}{'DejaVu':>9}{'R&C':>9}{'InstantR':>10}{'Recap':>9}"
    report.row(header)
    totals = dict.fromkeys(["dejavu", "russinovich", "instant_replay", "recap"], 0)
    for name in sorted(ALL_WORKLOADS):
        sizes = survey(name)
        for k, v in sizes.items():
            totals[k] += v
        report.row(
            f"{name:<18}{sizes['dejavu']:>9}{sizes['russinovich']:>9}"
            f"{sizes['instant_replay']:>10}{sizes['recap']:>9}"
        )
        # the §5 shape: DejaVu never logs more than the schemes that log
        # every dispatch / every read
        assert sizes["dejavu"] <= sizes["russinovich"], name
        assert sizes["dejavu"] <= sizes["recap"], name
    report.row(
        f"{'TOTAL':<18}{totals['dejavu']:>9}{totals['russinovich']:>9}"
        f"{totals['instant_replay']:>10}{totals['recap']:>9}"
    )
    assert totals["dejavu"] < totals["russinovich"] < totals["recap"] or (
        totals["dejavu"] < totals["russinovich"]
        and totals["dejavu"] < totals["recap"]
    )
    benchmark.pedantic(lambda: survey("racy_bank"), rounds=2, iterations=1)


@pytest.mark.benchmark(group="B2-trace-size")
def test_trace_scales_with_preemption_rate_not_work(benchmark, report):
    """DejaVu's trace grows with preemption frequency, not with the amount
    of computation — the structural reason it beats event loggers."""
    from repro.workloads import sorter
    from repro.vm.timerdev import SeededJitterTimer

    def size_with(lo, hi):
        return record(
            sorter(),
            config=BENCH_CONFIG,
            timer=SeededJitterTimer(1, lo, hi),
        ).trace.encoded_size_bytes

    rare = size_with(5_000, 10_000)
    frequent = size_with(50, 100)
    report.row(f"sorter trace bytes, rare preemption: {rare}")
    report.row(f"sorter trace bytes, frequent preemption: {frequent}")
    assert frequent > 5 * rare
    benchmark.pedantic(lambda: size_with(500, 1000), rounds=2, iterations=1)


@pytest.mark.benchmark(group="B2-trace-size")
def test_slim_reduction_floor(benchmark, report):
    """Race-guided slimming (``record --slim``) must shrink the switch
    stream of the sync-heavy, race-free workloads by at least 5x: every
    delta there is sync-inferable, so the stream collapses to a handful
    of sidecar words while the replay stays byte-identical."""
    from repro.api import replay
    from repro.core.tracelog import encode_words
    from repro.workloads import readers_writers, synced_bank

    factories = {
        "synced_bank": lambda: synced_bank(4, 120),
        "readers_writers": lambda: readers_writers(3, 2, 10),
    }

    def stream_bytes(trace) -> int:
        return len(encode_words(trace.switches)) + len(encode_words(trace.slim))

    def survey_slim(name):
        factory = factories[name]
        full = record(factory(), config=BENCH_CONFIG, **knobs(SEED))
        slim = record(factory(), config=BENCH_CONFIG, slim=True, **knobs(SEED))
        return full, slim

    report.row(f"{'workload':<18}{'full B':>9}{'slim B':>9}{'reduction':>11}")
    for name in sorted(factories):
        full, slim = survey_slim(name)
        fb, sb = stream_bytes(full.trace), stream_bytes(slim.trace)
        reduction = fb / max(1, sb)
        report.row(f"{name:<18}{fb:>9}{sb:>9}{reduction:>10.1f}x")
        # the slimming floor: >= 5x on sync-heavy workloads, and the slim
        # trace never costs more stream bytes than the full one
        assert reduction >= 5.0, f"{name}: reduction {reduction:.1f}x < 5x"
        assert slim.trace.encoded_size_bytes <= full.trace.encoded_size_bytes, name
        r_full = replay(factories[name](), full.trace, config=BENCH_CONFIG)
        r_slim = replay(factories[name](), slim.trace, config=BENCH_CONFIG)
        assert r_slim.behavior_key() == r_full.behavior_key(), name
    benchmark.pedantic(
        lambda: survey_slim("synced_bank"), rounds=2, iterations=1
    )
