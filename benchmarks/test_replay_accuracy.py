"""B3 — replay accuracy sweep, with repeated execution as the contrast.

Paper claim: accuracy is absolute — every recorded execution replays
identically — while naive repeated execution reproduces nothing.  Also
the Instant Replay failure mode: CREW logging cannot reproduce non-CREW
races.
"""

import pytest

from repro.api import record_and_replay
from repro.baselines import (
    instant_replay_record,
    instant_replay_replay,
    repeated_execution,
)
from repro.workloads import ALL_WORKLOADS, racy_bank
from benchmarks.conftest import BENCH_CONFIG, knobs

N_SEEDS = 6


@pytest.mark.benchmark(group="B3-accuracy")
def test_accuracy_sweep_all_workloads(benchmark, report):
    total = faithful = 0
    for name in sorted(ALL_WORKLOADS):
        ok = 0
        for seed in range(N_SEEDS):
            _, _, rep = record_and_replay(
                ALL_WORKLOADS[name](), config=BENCH_CONFIG, **knobs(seed, 30, 150)
            )
            ok += rep.faithful
            total += 1
            faithful += rep.faithful
        report.row(f"{name:<18} {ok}/{N_SEEDS} replays faithful")
        assert ok == N_SEEDS, name
    report.row(f"TOTAL: {faithful}/{total} (accuracy must be absolute)")
    benchmark.pedantic(
        lambda: record_and_replay(racy_bank(), config=BENCH_CONFIG, **knobs(0)),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="B3-accuracy")
def test_repeated_execution_contrast(benchmark, report):
    rep = benchmark.pedantic(
        lambda: repeated_execution(lambda: racy_bank(), runs=10, config=BENCH_CONFIG),
        rounds=1,
        iterations=1,
    )
    report.row(
        f"repeated execution of racy_bank: {rep.distinct_outputs} distinct "
        f"outputs in {rep.runs} runs; divergence rate {rep.divergence_rate:.0%}"
    )
    report.row("DejaVu divergence rate over the same program: 0% (B3 sweep)")
    assert rep.divergence_rate > 0.5


@pytest.mark.benchmark(group="B3-accuracy")
def test_instant_replay_non_crew_failure(benchmark, report):
    """Instant Replay on the racy bank: zero CREW events to log, replay
    outcome left to the timer."""
    res, crew = instant_replay_record(
        racy_bank(), config=BENCH_CONFIG, **knobs(9, 20, 90)
    )
    outputs = set()
    for seed in range(6):
        outputs.add(
            instant_replay_replay(
                racy_bank(), crew, config=BENCH_CONFIG, **knobs(100 + seed, 20, 90)
            ).output_text
        )
    report.row(f"recorded outcome: {res.output_text}")
    report.row(f"Instant-Replay 'replays' produced: {sorted(outputs)}")
    assert len(outputs | {res.output_text}) > 1
    benchmark.pedantic(
        lambda: instant_replay_replay(
            racy_bank(), crew, config=BENCH_CONFIG, **knobs(1, 20, 90)
        ),
        rounds=3,
        iterations=1,
    )
