#!/usr/bin/env python
"""Slim-recording benchmark: race-guided switch-stream reduction.

Records each workload twice with identical non-determinism sources —
once full (every switch delta logged) and once slim (``record --slim``:
sync-inferable deltas dropped, re-derived at replay from the modelled
timer plus the sync-order sidecar) — then replays both and asserts the
executions are identical (behaviour key: event stream + heap digest +
cycles).  The figure of merit is the switch-stream reduction::

    full switch bytes / (slim switch bytes + sidecar bytes)

On the sync-heavy, race-free workloads (``synced_bank``,
``readers_writers``) every delta is inferable, so the stream collapses
to a few sidecar words; the racy workloads keep their race-adjacent
deltas explicit and are reported for contrast.

Usage:

    PYTHONPATH=src python benchmarks/bench_slim.py            # full
    PYTHONPATH=src python benchmarks/bench_slim.py --quick    # 1 rep
    PYTHONPATH=src python benchmarks/bench_slim.py --check    # CI smoke

The full run writes ``BENCH_slim.json`` at the repo root; ``--check``
re-measures once and fails (exit 1) if the reduction on any sync-heavy
workload falls below the 5x floor, or if any slim replay is not
identical to its full replay.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import record, replay  # noqa: E402
from repro.core.tracelog import encode_words  # noqa: E402
from repro.vm.machine import Environment, VMConfig  # noqa: E402
from repro.vm.timerdev import SeededJitterClock, SeededJitterTimer  # noqa: E402
from repro.workloads import racy_bank, readers_writers, server, synced_bank  # noqa: E402

RESULT_PATH = REPO_ROOT / "BENCH_slim.json"
SEED = 13
HEAP = 120_000

#: sync-heavy, race-free workloads: the 5x reduction floor applies here
FLOOR_WORKLOADS = ("synced_bank", "readers_writers")
#: the CI reduction floor on FLOOR_WORKLOADS
REDUCTION_FLOOR = 5.0

WORKLOADS = {
    "synced_bank": lambda: synced_bank(4, 120),
    "readers_writers": lambda: readers_writers(3, 2, 10),
    "server": lambda: server(3, 40, 5, work_scale=40),
    "racy_bank": lambda: racy_bank(3, 40),
}


def _config() -> VMConfig:
    return VMConfig(semispace_words=HEAP)


def _knobs():
    return dict(
        timer=SeededJitterTimer(SEED, 40, 200),
        clock=SeededJitterClock(SEED),
        env=Environment(SEED),
    )


def _switch_stream_bytes(trace) -> int:
    return len(encode_words(trace.switches)) + len(encode_words(trace.slim))


def measure(reps: int) -> dict:
    results: dict = {}
    for name, factory in WORKLOADS.items():
        best_full = best_slim = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            full = record(factory(), config=_config(), **_knobs())
            best_full = min(best_full, time.perf_counter() - t0)
            t0 = time.perf_counter()
            slim = record(factory(), config=_config(), slim=True, **_knobs())
            best_slim = min(best_slim, time.perf_counter() - t0)

        # identical guest execution regardless of recording mode
        assert slim.result.behavior_key() == full.result.behavior_key(), (
            f"{name}: slim record perturbed the execution"
        )
        r_full = replay(factory(), full.trace, config=_config())
        r_slim = replay(factory(), slim.trace, config=_config())
        assert r_slim.behavior_key() == r_full.behavior_key(), (
            f"{name}: slim replay diverged from full replay"
        )

        info = slim.trace.slim_info
        full_bytes = _switch_stream_bytes(full.trace)
        slim_bytes = _switch_stream_bytes(slim.trace)
        results[name] = {
            "switches": len(full.trace.switches),
            "kept": info["kept"] if info else len(slim.trace.switches),
            "dropped": info["dropped"] if info else 0,
            "fallback": slim.trace.meta.get("slim_fallback"),
            "switch_stream_bytes_full": full_bytes,
            "switch_stream_bytes_slim": slim_bytes,
            "reduction": round(full_bytes / max(1, slim_bytes), 2),
            "trace_bytes_full": full.trace.encoded_size_bytes,
            "trace_bytes_slim": slim.trace.encoded_size_bytes,
            "record_full_s": round(best_full, 4),
            "record_slim_s": round(best_slim, 4),
        }
    return results


def _print(results: dict) -> None:
    header = (
        f"{'workload':<17}{'switches':>9}{'kept':>6}{'dropped':>8}"
        f"{'full B':>8}{'slim B':>8}{'reduction':>10}"
    )
    print(header)
    for name, row in results.items():
        print(
            f"{name:<17}{row['switches']:>9}{row['kept']:>6}{row['dropped']:>8}"
            f"{row['switch_stream_bytes_full']:>8}"
            f"{row['switch_stream_bytes_slim']:>8}{row['reduction']:>9.1f}x"
            + (f"  [{row['fallback']}]" if row["fallback"] else "")
        )


def cmd_measure(args) -> int:
    results = measure(args.reps)
    payload = {
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "config": {
            "semispace_words": HEAP,
            "seed": SEED,
            "timer": [40, 200],
            "reps": args.reps,
            "reduction_floor": REDUCTION_FLOOR,
            "floor_workloads": list(FLOOR_WORKLOADS),
        },
        "results": results,
    }
    _print(results)
    if not args.no_write:
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {RESULT_PATH}")
    return 0


def cmd_check(args) -> int:
    """CI smoke: the switch-stream reduction on the sync-heavy workloads
    must stay at or above the 5x floor (the replay-identity asserts run
    inside measure() for every workload)."""
    results = measure(args.reps)
    _print(results)
    failed = False
    for name in FLOOR_WORKLOADS:
        row = results[name]
        if row["reduction"] < REDUCTION_FLOOR:
            print(
                f"FAIL {name}: reduction {row['reduction']:.1f}x < "
                f"{REDUCTION_FLOOR:.0f}x floor"
            )
            failed = True
        else:
            print(
                f"ok {name}: reduction {row['reduction']:.1f}x >= "
                f"{REDUCTION_FLOOR:.0f}x floor"
            )
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-measure and fail if the sync-heavy reduction is < 5x",
    )
    parser.add_argument("--reps", type=int, default=None, help="repetitions")
    parser.add_argument("--quick", action="store_true", help="single repetition")
    parser.add_argument(
        "--no-write", action="store_true", help="measure but do not write the JSON"
    )
    args = parser.parse_args(argv)
    if args.reps is None:
        args.reps = 1 if args.quick else 3
    return cmd_check(args) if args.check else cmd_measure(args)


if __name__ == "__main__":
    sys.exit(main())
