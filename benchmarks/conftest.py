"""Benchmark-suite helpers.

Every experiment writes its paper-style rows into ``benchmarks/results/``
(one ``.txt`` per experiment) so `EXPERIMENTS.md` can reference concrete
numbers, and asserts the *shape* claims (who wins, what diverges) inline.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.vm.machine import Environment, VMConfig
from repro.vm.timerdev import SeededJitterClock, SeededJitterTimer

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_CONFIG = VMConfig(semispace_words=120_000)


def knobs(seed: int, lo: int = 40, hi: int = 200) -> dict:
    return dict(
        timer=SeededJitterTimer(seed, lo, hi),
        clock=SeededJitterClock(seed),
        env=Environment(seed=seed),
    )


class Report:
    """Accumulates one experiment's table and writes it on close."""

    def __init__(self, name: str, title: str):
        self.name = name
        self.lines: list[str] = [title, "=" * len(title)]

    def row(self, text: str) -> None:
        self.lines.append(text)

    def close(self) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.name}.txt"
        path.write_text("\n".join(self.lines) + "\n")


@pytest.fixture
def report(request):
    """Per-test report file named after the test."""
    rep = Report(request.node.name, request.node.name)
    yield rep
    rep.close()
