"""F2 — Figure 2: the symmetric yield-point instrumentation.

Paper claims reproduced here:

* the ``nyp`` stream written in record mode is consumed *exactly* in
  replay mode (same records, same order, nothing left over);
* the per-thread logical clocks (yield points executed) are identical
  between record and replay;
* ``preemptive_hardware_bit`` is ignored during replay (the replay VM's
  timer never steers anything);
* instrumentation-internal yield points are excluded from the logical
  clock (the ``liveclock`` flag).
"""

import pytest

from repro.api import build_vm, record, replay
from repro.core import MODE_REPLAY, DejaVu, compare_runs
from repro.workloads import racy_bank, sorter
from benchmarks.conftest import BENCH_CONFIG, knobs


@pytest.mark.benchmark(group="figure2")
def test_nyp_stream_written_equals_consumed(benchmark, report):
    session = record(sorter(), config=BENCH_CONFIG, **knobs(11))
    trace = session.trace
    report.row(f"switch records written: {trace.n_switch_records}")
    report.row(f"sum of nyp deltas: {sum(trace.switches)}")

    vm = build_vm(sorter(), BENCH_CONFIG)
    dejavu = DejaVu(vm, MODE_REPLAY, trace=trace)
    result = vm.run()
    consumed = trace.n_switch_records - (
        len(trace.switches) - dejavu._switch_cursor
    )
    report.row(f"switch records consumed: {consumed}")
    assert consumed == trace.n_switch_records
    report.row(f"replay faithful: {compare_runs(session.result, result).faithful}")
    assert compare_runs(session.result, result).faithful

    benchmark.pedantic(
        lambda: replay(sorter(), trace, config=BENCH_CONFIG), rounds=3, iterations=1
    )


@pytest.mark.benchmark(group="figure2")
def test_logical_clocks_identical(benchmark, report):
    session = record(racy_bank(), config=BENCH_CONFIG, **knobs(5))
    replayed = replay(racy_bank(), session.trace, config=BENCH_CONFIG)
    report.row(f"record per-thread yield points: {session.result.yieldpoints}")
    report.row(f"replay per-thread yield points: {replayed.yieldpoints}")
    assert session.result.yieldpoints == replayed.yieldpoints

    benchmark.pedantic(
        lambda: replay(racy_bank(), session.trace, config=BENCH_CONFIG),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="figure2")
def test_hardware_bit_ignored_in_replay(benchmark, report):
    """Give the replay VM a pathological timer; Figure 2-(B) ignores it."""
    from repro.vm.timerdev import FixedTimer

    session = record(racy_bank(), config=BENCH_CONFIG, **knobs(5))

    def hostile_replay():
        vm = build_vm(racy_bank(), BENCH_CONFIG, timer=FixedTimer(7))
        DejaVu(vm, MODE_REPLAY, trace=session.trace)
        return vm.run()

    result = hostile_replay()
    rep = compare_runs(session.result, result)
    report.row(
        "replay under a 7-cycle hostile timer is faithful: " f"{rep.faithful}"
    )
    assert rep.faithful
    benchmark.pedantic(hostile_replay, rounds=3, iterations=1)


@pytest.mark.benchmark(group="figure2")
def test_instrumentation_yieldpoints_not_counted(benchmark, report):
    """liveclock: drains execute internal yield points in both modes, yet
    guest logical clocks see none of them."""
    def go():
        session = record(
            racy_bank(),
            config=BENCH_CONFIG,
            **knobs(5),
            switch_buffer_words=8,
            value_buffer_words=8,
        )
        replayed = replay(
            racy_bank(),
            session.trace,
            config=BENCH_CONFIG,
            switch_buffer_words=8,
            value_buffer_words=8,
        )
        return session, replayed

    session, replayed = go()
    assert session.stats["internal_yieldpoints"] > 0
    assert session.result.yieldpoints == replayed.yieldpoints
    report.row(
        f"internal yield points executed during record: "
        f"{session.stats['internal_yieldpoints']}; "
        f"guest logical clocks still identical: True"
    )
    benchmark.pedantic(go, rounds=3, iterations=1)
