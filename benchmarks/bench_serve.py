#!/usr/bin/env python
"""Serve daemon benchmark: warm sessions vs cold starts.

The point of a long-lived `repro serve` daemon is amortization: the
interpreter boot, the imports, and the workload build are paid once,
not per job.  This bench pins that claim with three record paths for
the same (workload, seed):

* **one-shot** — ``python -m repro.cli record`` subprocess per job, the
  cold-start baseline every daemon job must beat;
* **cold daemon** — ``repro serve --cold`` (no session pool): the
  transport without the warm cache;
* **warm daemon** — ``repro serve``: cached program builds and parsed
  traces.

Byte-identity is asserted first — all three paths must produce the
identical trace bytes before any timing is reported.  A concurrency
sweep then drives 10–100 simultaneous clients at the warm daemon and
reports jobs/second with p50/p99 latency per level.

Usage:

    PYTHONPATH=src python benchmarks/bench_serve.py            # full
    PYTHONPATH=src python benchmarks/bench_serve.py --quick    # smaller sweep
    PYTHONPATH=src python benchmarks/bench_serve.py --check    # CI smoke

The full run writes ``BENCH_serve.json`` at the repo root.

``--check`` enforces the warm floor: warm-daemon p50 latency must be
<= 0.5x the one-shot cold-start p50 — if a warm session is not at
least twice as fast as booting a fresh interpreter, the daemon's
reason to exist is gone.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.framing import BackoffPolicy  # noqa: E402
from repro.serve import ServeClient, spawn_serve_process  # noqa: E402

RESULT_PATH = REPO_ROOT / "BENCH_serve.json"
WORKLOAD = "bank"
SEED = 7
WORKERS = 4
QUEUE_LIMIT = 256
#: warm p50 must be <= this fraction of the one-shot cold-start p50
WARM_FLOOR = 0.5
CLIENT_LEVELS_FULL = (10, 50, 100)
CLIENT_LEVELS_QUICK = (10,)
JOBS_PER_CLIENT = 3
SERIAL_JOBS_FULL = 20
SERIAL_JOBS_QUICK = 8
ONESHOT_REPS_FULL = 5
ONESHOT_REPS_QUICK = 3

RETRY = BackoffPolicy(attempts=40, base_delay=0.02, max_delay=0.5, jitter_seed=0)


def record_job(seed: int = SEED) -> dict:
    return {
        "kind": "record",
        "workload": WORKLOAD,
        "seed": seed,
        "out_name": "bench.djv",
    }


def percentile(samples: "list[float]", q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


# ---------------------------------------------------------------------------
# the three paths


def one_shot(reps: int) -> "tuple[list[float], bytes]":
    """CLI subprocess per job: interpreter boot + imports + build, every
    time.  Returns latencies and the recorded trace bytes."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    latencies = []
    blob = b""
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "oneshot.djv"
        for _ in range(reps):
            t0 = time.perf_counter()
            proc = subprocess.run(
                [
                    sys.executable, "-m", "repro.cli", "record",
                    "--workload", WORKLOAD, "--seed", str(SEED),
                    "-o", str(out),
                ],
                env=env,
                capture_output=True,
                text=True,
            )
            latencies.append(time.perf_counter() - t0)
            if proc.returncode != 0:
                raise RuntimeError(f"one-shot record failed: {proc.stderr}")
            blob = out.read_bytes()
    return latencies, blob


def daemon_serial(address, jobs: int) -> "tuple[list[float], bytes]":
    """One client, *jobs* sequential submits; first-job trace returned
    for the identity check."""
    latencies = []
    blob = b""
    with ServeClient(address) as client:
        for i in range(jobs):
            t0 = time.perf_counter()
            result = client.submit(record_job(), timeout=120)
            latencies.append(time.perf_counter() - t0)
            if result["exit"] != 0:
                raise RuntimeError(f"daemon record failed: {result['stderr']}")
            if i == 0:
                blob = result["trace"]
    return latencies, blob


def concurrent_level(address, clients: int, jobs_each: int) -> dict:
    """*clients* simultaneous connections, *jobs_each* submits apiece
    (distinct seeds, so the daemon really runs every job)."""
    barrier = threading.Barrier(clients)
    latencies: "list[float]" = []
    errors: "list[str]" = []
    lock = threading.Lock()

    def client_loop(index: int) -> None:
        try:
            with ServeClient(address) as client:
                barrier.wait(timeout=30)
                mine = []
                for j in range(jobs_each):
                    t0 = time.perf_counter()
                    result = client.submit_with_retry(
                        record_job(seed=index * 131 + j),
                        policy=RETRY,
                        timeout=120,
                    )
                    mine.append(time.perf_counter() - t0)
                    if result["exit"] != 0:
                        raise RuntimeError(result["stderr"])
            with lock:
                latencies.extend(mine)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            with lock:
                errors.append(f"client {index}: {type(exc).__name__}: {exc}")

    t0 = time.perf_counter()
    threads = [
        threading.Thread(target=client_loop, args=(i,)) for i in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    if errors:
        raise RuntimeError("; ".join(errors[:3]))
    total = clients * jobs_each
    return {
        "clients": clients,
        "jobs": total,
        "wall_s": round(wall, 3),
        "jobs_per_s": round(total / wall, 1),
        "p50_ms": round(percentile(latencies, 0.50) * 1000, 1),
        "p99_ms": round(percentile(latencies, 0.99) * 1000, 1),
    }


# ---------------------------------------------------------------------------
# measurement

def measure(quick: bool) -> dict:
    serial_jobs = SERIAL_JOBS_QUICK if quick else SERIAL_JOBS_FULL
    oneshot_reps = ONESHOT_REPS_QUICK if quick else ONESHOT_REPS_FULL
    levels = CLIENT_LEVELS_QUICK if quick else CLIENT_LEVELS_FULL

    oneshot_lat, oneshot_blob = one_shot(oneshot_reps)

    proc_cold, addr_cold = spawn_serve_process(
        workers=WORKERS, queue_limit=QUEUE_LIMIT, cold=True
    )
    try:
        cold_lat, cold_blob = daemon_serial(addr_cold, serial_jobs)
    finally:
        proc_cold.terminate()
        proc_cold.wait(timeout=15)
        proc_cold.stdout.close()

    proc_warm, addr_warm = spawn_serve_process(
        workers=WORKERS, queue_limit=QUEUE_LIMIT
    )
    try:
        warm_lat, warm_blob = daemon_serial(addr_warm, serial_jobs)
        # determinism before any timing: all three paths, one artifact
        assert warm_blob == cold_blob == oneshot_blob, (
            "warm/cold/one-shot traces diverge: the daemon changed a result"
        )
        sweep = [
            concurrent_level(addr_warm, clients, JOBS_PER_CLIENT)
            for clients in levels
        ]
    finally:
        proc_warm.terminate()
        proc_warm.wait(timeout=15)
        proc_warm.stdout.close()

    return {
        "oneshot_p50_ms": round(percentile(oneshot_lat, 0.50) * 1000, 1),
        "cold_p50_ms": round(percentile(cold_lat, 0.50) * 1000, 1),
        "warm_p50_ms": round(percentile(warm_lat, 0.50) * 1000, 1),
        "warm_mean_ms": round(statistics.mean(warm_lat) * 1000, 1),
        "warm_vs_oneshot": round(
            percentile(warm_lat, 0.50) / percentile(oneshot_lat, 0.50), 3
        ),
        "warm_vs_cold_daemon": round(
            percentile(warm_lat, 0.50) / percentile(cold_lat, 0.50), 3
        ),
        "concurrency": sweep,
    }


def _print(row: dict) -> None:
    print(f"{WORKLOAD} record, seed {SEED} (identical trace on all paths)")
    print(f"  one-shot CLI : p50 {row['oneshot_p50_ms']:.0f} ms")
    print(f"  cold daemon  : p50 {row['cold_p50_ms']:.0f} ms")
    print(
        f"  warm daemon  : p50 {row['warm_p50_ms']:.0f} ms  "
        f"({row['warm_vs_oneshot']:.2f}x of one-shot, "
        f"{row['warm_vs_cold_daemon']:.2f}x of cold daemon)"
    )
    for level in row["concurrency"]:
        print(
            f"  {level['clients']:>3} clients : "
            f"{level['jobs_per_s']:>6.1f} jobs/s, "
            f"p50 {level['p50_ms']:.0f} ms, p99 {level['p99_ms']:.0f} ms "
            f"({level['jobs']} jobs in {level['wall_s']:.1f}s)"
        )


def cmd_measure(args) -> int:
    row = measure(args.quick)
    payload = {
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "config": {
            "workload": WORKLOAD,
            "seed": SEED,
            "workers": WORKERS,
            "queue_limit": QUEUE_LIMIT,
            "jobs_per_client": JOBS_PER_CLIENT,
            "quick": args.quick,
        },
        "results": row,
    }
    _print(row)
    if not args.no_write:
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {RESULT_PATH}")
    return 0


def cmd_check(args) -> int:
    """CI smoke: byte-identity always, plus the warm-session floor."""
    row = measure(args.quick)
    _print(row)
    ratio = row["warm_vs_oneshot"]
    if ratio > WARM_FLOOR:
        print(
            f"FAIL: warm p50 is {ratio:.2f}x of the one-shot cold start "
            f"> {WARM_FLOOR}x floor (the warm session buys too little)"
        )
        return 1
    print(f"ok: warm p50 is {ratio:.2f}x of the one-shot cold start")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-measure and fail above the warm-session floor",
    )
    parser.add_argument("--quick", action="store_true", help="smaller sweep")
    parser.add_argument(
        "--no-write", action="store_true", help="measure but do not write the JSON"
    )
    args = parser.parse_args(argv)
    return cmd_check(args) if args.check else cmd_measure(args)


if __name__ == "__main__":
    sys.exit(main())
