"""F4 — Figure 4: the three-tier implementation.

Paper claim: the application VM runs compiled code and is observed through
the OS debug interface; the tool VM interprets reflection bytecode; the
GUI runs on a third tier over TCP exchanging small packets.  Reproduction:
drive a full breakpoint → inspect → resume → finish session through the
TCP frontend, measure packet sizes, and verify the replay stayed faithful.
"""

import pytest

from repro.api import record
from repro.core import compare_runs
from repro.debugger import Debugger, DebuggerClient, DebuggerServer, ReplaySession
from repro.workloads import racy_bank
from benchmarks.conftest import BENCH_CONFIG, knobs


@pytest.mark.benchmark(group="figure4")
def test_three_tier_session(benchmark, report):
    recorded = record(racy_bank(), config=BENCH_CONFIG, **knobs(5))

    session = ReplaySession(racy_bank(), recorded.trace, config=BENCH_CONFIG)
    server = DebuggerServer(Debugger(session)).start()
    try:
        with DebuggerClient(server.address) as client:
            client.request("break", method="Teller.run()V", bci=4)
            stops = 0
            while client.request("cont")["status"] == "breakpoint" and stops < 4:
                client.request("backtrace")
                client.request("threads")
                client.request("print_static", class_name="Main", field="balance")
                stops += 1
            final = client.request("finish")
            report.row(f"breakpoint stops served over TCP: {stops}")
            report.row(
                f"frontend traffic: {client.bytes_sent} B sent, "
                f"{client.bytes_received} B received"
            )
            # 'small packets of data rather than large images'
            assert client.bytes_received < 64_000
            assert final["output"] == recorded.result.output_text
    finally:
        server.stop()

    rep = compare_runs(recorded.result, session.result)
    report.row(f"debugged replay faithful: {rep.faithful}")
    assert rep.faithful

    # benchmark one full protocol round trip against a fresh paused session
    session2 = ReplaySession(racy_bank(), recorded.trace, config=BENCH_CONFIG)
    server2 = DebuggerServer(Debugger(session2)).start()
    try:
        client2 = DebuggerClient(server2.address)
        benchmark(lambda: client2.request("info"))
        client2.close()
    finally:
        server2.stop()


@pytest.mark.benchmark(group="figure4")
def test_tool_tier_runs_bytecode_app_tier_runs_compiled(benchmark, report):
    """The asymmetry Figure 4 draws: app VM executes machine code (compiled
    micro-ops), tool VM interprets bytecode."""
    recorded = record(racy_bank(), config=BENCH_CONFIG, **knobs(5))
    session = ReplaySession(racy_bank(), recorded.trace, config=BENCH_CONFIG)
    rm_app = session.vm.loader.resolve_method_any("Teller.run()V")
    assert rm_app.code is not None and rm_app.code.ops  # compiled
    # the tool interpreter consumed bytecode, never compiled code:
    rm = session.resolve_method("Teller.run()V")
    line = session.line_number_of(rm.method_id, 0)
    assert line == rm.mdef.line_table[0]
    assert session.interp.steps > 0
    report.row(f"tool-VM bytecode steps for one query: {session.interp.steps}")
    report.row(f"app-VM compiled ops in Teller.run: {len(rm_app.code.ops)}")
    benchmark(lambda: session.line_number_of(rm.method_id, 0))
