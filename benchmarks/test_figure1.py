"""F1 — Figure 1: non-deterministic execution examples, replayed.

Paper claim: the same program with the same initial state prints 8 or 0
depending on switch timing (A/B), and takes or skips a wait depending on
a wall-clock value (C/D).  Reproduction: sweep seeds, show ≥2 outcomes
per scenario, and record/replay one run per outcome exactly.
"""

from collections import Counter

import pytest

from repro.api import build_vm, record, replay
from repro.core import compare_runs
from repro.workloads import figure1_ab, figure1_cd
from benchmarks.conftest import BENCH_CONFIG, knobs

SEEDS = range(40)


def outcome_of(result) -> str:
    return result.output_text + ("[deadlock]" if result.deadlocked else "")


def sweep(factory):
    outcomes: Counter[str] = Counter()
    witness: dict[str, int] = {}
    for seed in SEEDS:
        vm = build_vm(factory(), BENCH_CONFIG, **knobs(seed, 5, 120))
        result = vm.run()
        key = outcome_of(result)
        outcomes[key] += 1
        witness.setdefault(key, seed)
    return outcomes, witness


@pytest.mark.benchmark(group="figure1")
def test_figure1_ab_divergence_and_replay(benchmark, report):
    outcomes, witness = sweep(figure1_ab)
    report.row(f"scenario A/B outcomes over {len(list(SEEDS))} runs: {dict(outcomes)}")
    assert set(outcomes) >= {"8", "0"}, "both Figure-1 outcomes must appear"

    for outcome, seed in witness.items():
        session = record(figure1_ab(), config=BENCH_CONFIG, **knobs(seed, 5, 120))
        replayed = replay(figure1_ab(), session.trace, config=BENCH_CONFIG)
        faithful = compare_runs(session.result, replayed).faithful
        report.row(f"  outcome {outcome!r}: replayed faithfully = {faithful}")
        assert faithful

    benchmark.pedantic(
        lambda: record(figure1_ab(), config=BENCH_CONFIG, **knobs(0, 5, 120)),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="figure1")
def test_figure1_cd_clock_steering_and_replay(benchmark, report):
    outcomes, witness = sweep(figure1_cd)
    report.row(f"scenario C/D outcomes over {len(list(SEEDS))} runs: {dict(outcomes)}")
    # C (wait taken, T2 stored x=1 first -> 101) and D (wait skipped -> 100)
    assert len(outcomes) >= 2
    assert outcomes.get("101", 0) > 0, "scenario C (wait branch) must appear"
    assert outcomes.get("100", 0) > 0, "scenario D (skip branch) must appear"

    for outcome, seed in witness.items():
        session = record(figure1_cd(), config=BENCH_CONFIG, **knobs(seed, 5, 120))
        replayed = replay(figure1_cd(), session.trace, config=BENCH_CONFIG)
        rep = compare_runs(session.result, replayed)
        report.row(f"  outcome {outcome!r}: replayed faithfully = {rep.faithful}")
        assert rep.faithful

    benchmark.pedantic(
        lambda: record(figure1_cd(), config=BENCH_CONFIG, **knobs(0, 5, 120)),
        rounds=3,
        iterations=1,
    )
