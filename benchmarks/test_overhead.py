"""B1/B4 — instrumentation precision: record and replay overhead.

The paper defines *precision* as the instrumented execution staying close
to the uninstrumented one.  We time the same workloads three ways —
uninstrumented, DejaVu record, DejaVu replay — under identical injected
non-determinism.  The claim to preserve is the *shape*: record overhead is
a modest constant factor (the instrumentation is inlined at yield points
and logs only rare events), and replay is comparable to record.
"""

import pytest

from repro.api import build_vm, record, replay
from repro.workloads import philosophers, server, sorter
from benchmarks.conftest import BENCH_CONFIG, knobs

WORKLOADS = {
    "server": lambda: server(n_workers=3, n_requests=40, seed=2),
    "sorter": lambda: sorter(n_workers=3, chunk=48),
    "philosophers": lambda: philosophers(n=4, rounds=10),
}


def _bare(factory):
    vm = build_vm(factory(), BENCH_CONFIG, **knobs(2))
    return vm.run()


def _record(factory):
    return record(factory(), config=BENCH_CONFIG, **knobs(2))


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.benchmark(group="B1-record-overhead")
def test_uninstrumented(benchmark, name):
    result = benchmark.pedantic(
        lambda: _bare(WORKLOADS[name]), rounds=5, iterations=1
    )
    assert not result.traps


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.benchmark(group="B1-record-overhead")
def test_dejavu_record(benchmark, name):
    session = benchmark.pedantic(
        lambda: _record(WORKLOADS[name]), rounds=5, iterations=1
    )
    assert session.trace.n_switch_records >= 0
    # accuracy sanity: the recorded run did the same guest work
    bare = _bare(WORKLOADS[name])
    assert session.result.output_text == bare.output_text


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.benchmark(group="B4-replay-overhead")
def test_dejavu_replay(benchmark, name):
    session = _record(WORKLOADS[name])
    result = benchmark.pedantic(
        lambda: replay(WORKLOADS[name](), session.trace, config=BENCH_CONFIG),
        rounds=5,
        iterations=1,
    )
    assert result.output_text == session.result.output_text


@pytest.mark.benchmark(group="B1-record-overhead")
def test_record_overhead_is_bounded(benchmark, report):
    """Shape claim, asserted: record ≤ 4x uninstrumented wall time on every
    workload (the paper's precision goal; their measured slowdowns were
    small constants)."""
    import time

    def measure():
        ratios = {}
        for name, factory in sorted(WORKLOADS.items()):
            bare_t = rec_t = 0.0
            for _ in range(3):
                t0 = time.perf_counter()
                _bare(factory)
                bare_t += time.perf_counter() - t0
                t0 = time.perf_counter()
                _record(factory)
                rec_t += time.perf_counter() - t0
            ratios[name] = rec_t / bare_t
        return ratios

    ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    for name, ratio in ratios.items():
        report.row(f"{name}: record/uninstrumented wall-time ratio = {ratio:.2f}x")
        assert ratio < 4.0, f"{name} record overhead {ratio:.2f}x"
