#!/usr/bin/env python
"""Remote campaign benchmark: loopback worker pool vs local fork.

Runs the same explore sweep (bank workload, k=2) twice — sharded across
2 local fork workers and sharded across 2 `repro worker` daemons on
loopback — and compares wall time and schedules/second.  The two runs
are asserted to produce the identical report digest first: a distributed
backend means nothing if distribution changed the answer.

Usage:

    PYTHONPATH=src python benchmarks/bench_remote.py            # full
    PYTHONPATH=src python benchmarks/bench_remote.py --quick    # smaller sweep
    PYTHONPATH=src python benchmarks/bench_remote.py --check    # CI smoke

The full run writes ``BENCH_remote.json`` at the repo root.

``--check`` enforces an overhead floor: on loopback the framed protocol
(CRC + pickle + heartbeats) must cost less than half the throughput —
remote schedules/second must stay >= 0.5x of the local fork backend.
Daemons are spawned once and reused across reps, so the warm-runner
cache amortises baselines exactly as it would on a real cluster.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaign import (  # noqa: E402
    RemoteWorkerPool,
    run_explore_campaign,
    shutdown_worker,
    spawn_worker_process,
)
from repro.vm.machine import VMConfig  # noqa: E402

RESULT_PATH = REPO_ROOT / "BENCH_remote.json"
WORKLOAD = "bank"
BOUND = 2
SEED = 0
HEAP = 60_000
JOBS = 2
HOSTS = 2
BUDGET_FULL = 320
BUDGET_QUICK = 120
#: loopback remote throughput must stay >= this fraction of local fork
REMOTE_FLOOR = 0.5


def _sweep(budget: int, backend):
    config = VMConfig(semispace_words=HEAP)
    t0 = time.perf_counter()
    report = run_explore_campaign(
        WORKLOAD,
        bound=BOUND,
        budget=budget,
        seed=SEED,
        jobs=JOBS,
        config=config,
        backend=backend,
    )
    return report, time.perf_counter() - t0


def measure(budget: int, reps: int) -> dict:
    workers = [spawn_worker_process() for _ in range(HOSTS)]
    addresses = [address for _, address in workers]
    try:
        best = {"local": float("inf"), "remote": float("inf")}
        digests = {}
        incidents = None
        schedules = None
        for _ in range(reps):
            report, elapsed = _sweep(budget, None)
            best["local"] = min(best["local"], elapsed)
            digests["local"] = report.digest()
            schedules = report.schedules_run
            report, elapsed = _sweep(budget, RemoteWorkerPool(addresses))
            best["remote"] = min(best["remote"], elapsed)
            digests["remote"] = report.digest()
            incidents = len(report.incidents)
    finally:
        for proc, address in workers:
            shutdown_worker(address, timeout=2.0)
            proc.kill()
            proc.wait(timeout=10)
    assert digests["local"] == digests["remote"], (
        f"the remote backend changed the sweep result: "
        f"{digests['local']} != {digests['remote']}"
    )
    assert incidents == 0, f"{incidents} incident(s) on healthy loopback daemons"
    return {
        "budget": budget,
        "schedules_run": schedules,
        "report_digest": digests["local"],
        "local_s": round(best["local"], 4),
        "remote_s": round(best["remote"], 4),
        "local_schedules_per_s": round(schedules / best["local"], 1),
        "remote_schedules_per_s": round(schedules / best["remote"], 1),
        "remote_vs_local": round(best["local"] / best["remote"], 2),
    }


def _print(row: dict) -> None:
    print(
        f"{WORKLOAD} k={BOUND}, {row['schedules_run']} schedules, "
        f"jobs={JOBS} (digest {row['report_digest']})"
    )
    print(
        f"  local fork : {row['local_s']:.2f}s "
        f"({row['local_schedules_per_s']:.0f}/s)"
    )
    print(
        f"  remote x{HOSTS} : {row['remote_s']:.2f}s "
        f"({row['remote_schedules_per_s']:.0f}/s)  "
        f"{row['remote_vs_local']:.2f}x of local"
    )


def cmd_measure(args) -> int:
    row = measure(args.budget, args.reps)
    payload = {
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "config": {
            "workload": WORKLOAD,
            "bound": BOUND,
            "seed": SEED,
            "semispace_words": HEAP,
            "jobs": JOBS,
            "hosts": HOSTS,
            "reps": args.reps,
        },
        "results": row,
    }
    _print(row)
    if not args.no_write:
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {RESULT_PATH}")
    return 0


def cmd_check(args) -> int:
    """CI smoke: determinism always, plus the protocol-overhead floor."""
    row = measure(args.budget, args.reps)
    _print(row)
    ratio = row["remote_schedules_per_s"] / row["local_schedules_per_s"]
    if ratio < REMOTE_FLOOR:
        print(
            f"FAIL: loopback remote throughput is {ratio:.2f}x of local fork "
            f"< {REMOTE_FLOOR}x floor (protocol overhead dominates)"
        )
        return 1
    print(f"ok: loopback remote throughput {ratio:.2f}x of local fork")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-measure and fail below the overhead floor",
    )
    parser.add_argument("--reps", type=int, default=None, help="repetitions per sweep")
    parser.add_argument("--quick", action="store_true", help="smaller sweep, 1 rep")
    parser.add_argument(
        "--no-write", action="store_true", help="measure but do not write the JSON"
    )
    args = parser.parse_args(argv)
    if args.reps is None:
        args.reps = 1 if args.quick else 2
    args.budget = BUDGET_QUICK if args.quick else BUDGET_FULL
    return cmd_check(args) if args.check else cmd_measure(args)


if __name__ == "__main__":
    sys.exit(main())
