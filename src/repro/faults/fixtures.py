"""Pytest fixtures for fault-injection tests.

Star-import (or list in ``pytest_plugins``) from a conftest::

    from repro.faults.fixtures import *  # noqa: F401,F403

Tests control the plan with markers::

    @pytest.mark.fault_seed(7)
    @pytest.mark.fault_count(25)
    def test_something(fault_plan): ...
"""

from __future__ import annotations

import pytest

from repro.faults.plan import FaultPlan

DEFAULT_SEED = 42
DEFAULT_COUNT = 20


@pytest.fixture
def fault_seed(request) -> int:
    marker = request.node.get_closest_marker("fault_seed")
    return marker.args[0] if marker else DEFAULT_SEED


@pytest.fixture
def fault_plan(request, fault_seed) -> FaultPlan:
    marker = request.node.get_closest_marker("fault_count")
    count = marker.args[0] if marker else DEFAULT_COUNT
    return FaultPlan.generate(fault_seed, count)


@pytest.fixture
def fault_workdir(tmp_path):
    """Scratch directory for campaign artifacts (baseline + damaged copies)."""
    d = tmp_path / "faults"
    d.mkdir()
    return d
