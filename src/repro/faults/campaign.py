"""The fault-injection campaign runner.

``run_campaign`` executes every fault in a :class:`FaultPlan` against one
workload and classifies each outcome.  The platform's contract is that a
fault may cost data but never correctness: every run must end in

* ``recovered``        — the operation completed (salvage + prefix replay
                         succeeded; a delayed frame was still served);
* ``diagnosed:<what>`` — a *typed* diagnostic was produced (a doctor
                         classification, a :class:`TransportError`, …);
* ``not-triggered``    — the planned fault never fired (e.g. the run had
                         fewer non-deterministic native calls than the
                         plan's index).

Everything else is a harness finding: ``undetected`` (damage the format
layer failed to notice — a silent wrong answer waiting to happen),
``hang`` (no outcome within the watchdog), or ``unclassified:<Type>``
(a raw, untyped exception).  ``CampaignReport.ok`` is True only when no
such findings occurred.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.api import record as api_record, replay_prefix, resume_replay
from repro.core.doctor import CLASS_CLEAN, CLASS_TRUNCATED, diagnose
from repro.core.tracelog import TraceLog
from repro.faults.inject import (
    InjectedFault,
    apply_checkpoint_fault,
    apply_trace_fault,
    arm_native_fault,
    remote_sabotage,
    send_faulted_request,
)
from repro.faults.plan import (
    LAYER_CHECKPOINT,
    LAYER_REMOTE,
    LAYER_SERVE,
    LAYER_TRANSPORT,
    FaultPlan,
    FaultSpec,
)
from repro.vm.errors import CheckpointConfigMismatch, VMError
from repro.vm.machine import VMConfig
from repro.vm.timerdev import SeededJitterTimer

#: outcomes that satisfy the recovery-or-typed-diagnostic contract
_OK_OUTCOMES = ("recovered", "not-triggered")

#: the tiny loopback campaign every remote fault runs: small enough to
#: finish in seconds, large enough to span several shards
_REMOTE_BOUND = 1
_REMOTE_BUDGET = 8
_REMOTE_JOBS = 2
#: aggressive client timings — the faults are armed to trip exactly these
_REMOTE_WATCHDOG = 2.0
_REMOTE_HELLO_TIMEOUT = 0.5


@dataclass
class FaultOutcome:
    spec: FaultSpec
    outcome: str
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome in _OK_OUTCOMES or self.outcome.startswith("diagnosed:")


@dataclass
class CampaignReport:
    seed: int
    workload: str
    outcomes: list[FaultOutcome] = field(default_factory=list)

    @property
    def bad(self) -> list[FaultOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.bad

    def tally(self) -> dict[str, int]:
        return dict(Counter(o.outcome for o in self.outcomes))

    def digest(self) -> str:
        """Order-insensitive digest of the classified outcomes: the thing
        a parallel campaign must reproduce regardless of sharding.  The
        free-text ``detail`` is excluded on purpose — it may name worker
        scratch paths; the (index, kind, outcome) triple may not vary."""
        import hashlib

        h = hashlib.sha256()
        for o in sorted(self.outcomes, key=lambda o: o.spec.index):
            h.update(f"{o.spec.index}:{o.spec.kind}:{o.outcome}\n".encode())
        return h.hexdigest()[:16]

    def format(self) -> str:
        lines = [
            f"fault campaign: workload={self.workload} seed={self.seed} "
            f"faults={len(self.outcomes)}"
        ]
        for outcome, n in sorted(self.tally().items()):
            lines.append(f"  {outcome:<36}{n}")
        if self.bad:
            lines.append("FINDINGS (contract violations):")
            for o in self.bad:
                lines.append(f"  {o.spec.describe()}: {o.outcome} — {o.detail}")
        else:
            lines.append("every fault ended in clean recovery or a typed diagnostic")
        return "\n".join(lines)


class FaultRunContext:
    """The warm per-process fixtures a fault campaign runs against.

    Setting up a campaign is the expensive part — a clean baseline
    recording, optionally a checkpointed replay (for the checkpoint
    layer) and a live debugger server (for the transport layer).  The
    serial runner builds one context for the whole plan; a parallel
    campaign worker builds one per process and amortises it across its
    shard instead of cold-starting per fault (the iReplayer warm-VM
    model applied to fault injection).  Everything the context builds is
    deterministic in (*seed*, workload, config), so two contexts in two
    processes inject against byte-identical baselines.

    Use as a context manager; :meth:`run_spec` classifies one fault.
    """

    def __init__(
        self,
        *,
        seed: int,
        layers: "tuple[str, ...] | frozenset[str]",
        workload: str | None = None,
        program_factory=None,
        workload_kwargs: dict | None = None,
        config: VMConfig | None = None,
        workdir: str | Path,
        fault_timeout: float = 30.0,
    ):
        if (workload is None) == (program_factory is None):
            raise ValueError("pass exactly one of workload / program_factory")
        kwargs = dict(workload_kwargs or {})
        self._workload = workload
        self._workload_overrides = dict(workload_kwargs or {})
        if workload is not None:
            from repro.workloads.registry import get_workload

            spec = get_workload(workload)
            kwargs = dict(spec.defaults) | kwargs
            program_factory = lambda: spec.build(kwargs)  # noqa: E731
            self.workload_name = spec.name
            self._extra_meta = {"workload": spec.name, "workload_kwargs": kwargs}
        else:
            self.workload_name = program_factory().name
            self._extra_meta = {}
        self.seed = seed
        self.layers = frozenset(layers)
        self.program_factory = program_factory
        self.config = config or VMConfig(semispace_words=200_000)
        self.workdir = Path(workdir)
        self.fault_timeout = fault_timeout
        self.baseline_blob: bytes | None = None
        self._ckpt = None
        self._server = None
        self._remote_ref: "str | None" = None
        self._serve: "_ServeFixture | None" = None
        if LAYER_REMOTE in self.layers and workload is None:
            raise ValueError(
                "the remote fault layer needs a registered workload name "
                "(the sabotaged loopback campaign re-resolves it in the "
                "worker daemon)"
            )
        if LAYER_SERVE in self.layers and workload is None:
            raise ValueError(
                "the serve fault layer needs a registered workload name "
                "(the loopback daemon's reference job re-resolves it)"
            )

    def __enter__(self) -> "FaultRunContext":
        self.workdir.mkdir(parents=True, exist_ok=True)

        # one clean baseline recording: the artifact the trace faults damage
        baseline_path = self.workdir / "baseline.djv"
        baseline_run = api_record(
            self.program_factory(),
            config=self.config,
            timer=SeededJitterTimer(self.seed, 40, 160),
            out=baseline_path,
            extra_meta=self._extra_meta,
        )
        self.baseline_blob = baseline_path.read_bytes()

        # one clean checkpointed replay: the sidecar the checkpoint faults
        # damage, plus the known-good result every resumed run must match
        # (any mismatch is a silent wrong-state restore — the worst finding)
        if LAYER_CHECKPOINT in self.layers:
            self._ckpt = _build_checkpoint_baseline(
                baseline_path, baseline_run, self.program_factory, self.config
            )

        # one debugger server, reused by every transport fault: surviving
        # all of them on a single serve loop IS the hardening claim
        if LAYER_TRANSPORT in self.layers:
            from repro.debugger import Debugger, DebuggerServer, ReplaySession

            session = ReplaySession(
                self.program_factory(),
                TraceLog.load(baseline_path),
                config=self.config,
            )
            self._server = DebuggerServer(Debugger(session)).start()

        # one clean reference digest for the remote family: the merged
        # report every sabotaged loopback campaign must reproduce exactly
        # (jobs=1 inline — no workers, nothing to perturb)
        if LAYER_REMOTE in self.layers:
            from repro.campaign.jobs import run_explore_campaign

            self._remote_ref = run_explore_campaign(
                self._workload,
                overrides=self._workload_overrides,
                bound=_REMOTE_BOUND,
                budget=_REMOTE_BUDGET,
                seed=self.seed,
                config=self.config,
                jobs=1,
            ).digest()

        # one loopback serve daemon, attacked by every serve fault on a
        # single accept loop, plus the clean reference result every
        # follow-up well-formed job must reproduce byte-for-byte
        if LAYER_SERVE in self.layers:
            self._serve = _ServeFixture.start(
                self._workload, self._workload_overrides, self.seed
            )
        return self

    def __exit__(self, *exc) -> None:
        if self._server is not None:
            self._server.stop()
            self._server = None
        if self._serve is not None:
            self._serve.stop()
            self._serve = None

    def run_spec(self, fault_spec: FaultSpec) -> FaultOutcome:
        """Inject one planned fault (under the watchdog) and classify it."""
        if fault_spec.layer not in self.layers:
            raise ValueError(
                f"context built without layer {fault_spec.layer!r} "
                f"(have {sorted(self.layers)})"
            )
        outcome, detail = _run_one_guarded(
            fault_spec,
            baseline_blob=self.baseline_blob,
            program_factory=self.program_factory,
            config=self.config,
            workdir=self.workdir,
            seed=self.seed,
            server=self._server,
            ckpt=self._ckpt,
            remote_ref=self._remote_ref,
            serve=self._serve,
            workload=self._workload,
            workload_overrides=self._workload_overrides,
            timeout=self.fault_timeout,
        )
        return FaultOutcome(fault_spec, outcome, detail)


def run_campaign(
    plan: FaultPlan,
    *,
    workload: str | None = None,
    program_factory=None,
    workload_kwargs: dict | None = None,
    config: VMConfig | None = None,
    workdir: str | Path,
    fault_timeout: float = 30.0,
    progress=None,
) -> CampaignReport:
    """Run every fault in *plan*; returns the classified outcomes.

    The target program comes from a registered *workload* name or a
    *program_factory* callable (fresh :class:`GuestProgram` per call —
    VMs are single-run, so every injection builds its own).  *workdir*
    holds the baseline recording and the damaged copies.
    """
    context = FaultRunContext(
        seed=plan.seed,
        layers={s.layer for s in plan},
        workload=workload,
        program_factory=program_factory,
        workload_kwargs=workload_kwargs,
        config=config,
        workdir=workdir,
        fault_timeout=fault_timeout,
    )
    report = CampaignReport(seed=plan.seed, workload=context.workload_name)
    with context:
        for fault_spec in plan:
            report.outcomes.append(context.run_spec(fault_spec))
            if progress is not None:
                progress(report.outcomes[-1])
    return report


def _run_one_guarded(spec: FaultSpec, *, timeout: float, **ctx) -> tuple[str, str]:
    """One fault under a watchdog: a fault that produces no outcome in
    *timeout* seconds is itself a finding (``hang``)."""
    box: dict = {}

    def _runner():
        try:
            box["outcome"] = _run_one(spec, **ctx)
        except VMError as exc:
            box["outcome"] = (f"diagnosed:{type(exc).__name__}", str(exc))
        except Exception as exc:  # noqa: BLE001 - the whole point
            box["outcome"] = (f"unclassified:{type(exc).__name__}", str(exc))

    thread = threading.Thread(target=_runner, daemon=True)
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        return "hang", f"no outcome within {timeout}s"
    return box["outcome"]


def _run_one(
    spec: FaultSpec,
    *,
    baseline_blob: bytes,
    program_factory,
    config,
    workdir: Path,
    seed: int,
    server,
    ckpt,
    remote_ref=None,
    serve=None,
    workload=None,
    workload_overrides=None,
) -> tuple[str, str]:
    if spec.layer == "trace":
        return _run_trace_fault(spec, baseline_blob, program_factory, config, workdir)
    if spec.layer == "native":
        return _run_native_fault(spec, program_factory, config, workdir, seed)
    if spec.layer == LAYER_CHECKPOINT:
        assert ckpt is not None
        return _run_checkpoint_fault(
            spec, baseline_blob, ckpt, program_factory, config, workdir
        )
    if spec.layer == LAYER_REMOTE:
        assert remote_ref is not None
        return _run_remote_fault(
            spec, remote_ref, workload, workload_overrides, config, seed
        )
    if spec.layer == LAYER_SERVE:
        assert serve is not None
        return _run_serve_fault(spec, serve)
    assert server is not None
    return send_faulted_request(server.address, spec)


def _run_trace_fault(
    spec: FaultSpec, baseline_blob: bytes, program_factory, config, workdir: Path
) -> tuple[str, str]:
    damaged = apply_trace_fault(baseline_blob, spec)
    path = workdir / f"fault-{spec.index:03d}.djv"
    path.write_bytes(damaged)
    report = diagnose(path, program=program_factory(), config=config)
    path.unlink()
    if report.classification == CLASS_CLEAN:
        return (
            "undetected",
            f"{len(baseline_blob) - len(damaged) or 'bit'}-level damage loaded "
            f"and replayed as clean — silent corruption",
        )
    if report.classification == CLASS_TRUNCATED:
        if any("prefix replay: FAILED" in c for c in report.checks):
            return f"diagnosed:{report.classification}", report.detail
        return "recovered", f"salvaged prefix replays ({report.detail})"
    return f"diagnosed:{report.classification}", report.detail


@dataclass
class _CheckpointBaseline:
    """Shared fixtures for the checkpoint fault family: the sealed
    sidecar bytes every spec damages its own copy of, and the clean
    replay result every resumed run must reproduce exactly."""

    blob: bytes
    result: object  # RunResult
    every: int


def _build_checkpoint_baseline(
    baseline_path: Path, baseline_run, program_factory, config
) -> _CheckpointBaseline:
    from repro.api import replay as api_replay
    from repro.core.checkpoint import sidecar_path

    sidecar = sidecar_path(baseline_path)
    # several checkpoints regardless of workload length, but never a
    # degenerate every-cycle cadence
    every = max(200, baseline_run.result.cycles // 6)
    result = api_replay(
        program_factory(),
        TraceLog.load(baseline_path),
        config=config,
        checkpoint_every=every,
        checkpoint_out=sidecar,
    )
    blob = sidecar.read_bytes()
    sidecar.unlink()  # each fault places its own damaged copy
    return _CheckpointBaseline(blob=blob, result=result, every=every)


def _run_checkpoint_fault(
    spec: FaultSpec,
    baseline_blob: bytes,
    ckpt: _CheckpointBaseline,
    program_factory,
    config,
    workdir: Path,
) -> tuple[str, str]:
    """Damage a copy of the checkpoint sidecar per *spec* and resume the
    replay through the fallback ladder.  Contract: the resumed run either
    reproduces the clean result exactly (``recovered``, possibly from
    cycle zero) or dies with a typed checkpoint diagnostic — a resumed
    run that *completes with a different result* restored silently-wrong
    state, the one failure the digest verification exists to prevent."""
    from repro.core.checkpoint import sidecar_path

    trace_copy = workdir / f"ckpt-{spec.index:03d}.djv"
    trace_copy.write_bytes(baseline_blob)
    sidecar = sidecar_path(trace_copy)
    tmp = Path(str(sidecar) + ".tmp")
    damaged, destination = apply_checkpoint_fault(ckpt.blob, spec)
    if destination == "sidecar":
        sidecar.write_bytes(damaged)
    elif destination == "tmp":
        tmp.write_bytes(damaged)
    # "absent": neither file exists — resume must go from cycle zero
    try:
        resumed = resume_replay(
            program_factory(),
            TraceLog.load(trace_copy),
            checkpoints=sidecar,
            config=config,
        )
    except CheckpointConfigMismatch as exc:
        return "diagnosed:checkpoint-config-mismatch", str(exc)
    finally:
        for p in (trace_copy, sidecar, tmp):
            p.unlink(missing_ok=True)
    clean = ckpt.result
    got = resumed.result
    if (
        got.heap_digest != clean.heap_digest
        or got.output_text != clean.output_text
        or got.cycles != clean.cycles
    ):
        return (
            "undetected",
            f"resumed run diverged from the clean replay "
            f"(cycles {got.cycles} vs {clean.cycles}) — silent wrong-state "
            f"restore past the digest check",
        )
    origin = (
        "from cycle zero"
        if resumed.from_zero
        else f"from checkpoint @{resumed.resumed_from}"
    )
    return "recovered", f"resumed {origin}; result matches clean replay"


def _run_remote_fault(
    spec: FaultSpec,
    remote_ref: str,
    workload: str,
    workload_overrides: "dict | None",
    config,
    seed: int,
) -> tuple[str, str]:
    """Run the tiny loopback campaign against a daemon armed with *spec*.

    Contract: whatever the armed fault does — a dropped, truncated or
    corrupted frame, a killed or stalled worker, a slow-loris handshake —
    the pool's reassignment/degradation ladder must deliver the exact
    reference report (``recovered``).  A diverging digest means a worker
    fault leaked into merged results (``undetected``) — the one failure
    multi-host sharding must never introduce.
    """
    from repro.campaign.jobs import run_explore_campaign
    from repro.campaign.pool import RemoteWorkerPool
    from repro.campaign.remote import spawn_worker_process
    from repro.core.framing import BackoffPolicy

    proc, address = spawn_worker_process(remote_sabotage(spec))
    try:
        report = run_explore_campaign(
            workload,
            overrides=workload_overrides,
            bound=_REMOTE_BOUND,
            budget=_REMOTE_BUDGET,
            seed=seed,
            config=config,
            jobs=_REMOTE_JOBS,
            watchdog=_REMOTE_WATCHDOG,
            backend=RemoteWorkerPool(
                [address],
                backoff=BackoffPolicy(attempts=4, base_delay=0.05, max_delay=0.3),
                hello_timeout=_REMOTE_HELLO_TIMEOUT,
                breaker_threshold=2,
            ),
        )
    finally:
        proc.kill()
        proc.wait(timeout=10)
    if report.digest() != remote_ref:
        return (
            "undetected",
            f"sabotaged remote campaign digest {report.digest()} diverged "
            f"from the clean reference {remote_ref} — a worker fault "
            f"perturbed merged results",
        )
    kinds = sorted({i.kind for i in report.incidents})
    how = (
        f"absorbed via {', '.join(kinds)}"
        if kinds
        else "absorbed without a recorded incident"
    )
    return "recovered", f"report digest matches the clean reference; {how}"


def _run_native_fault(
    spec: FaultSpec, program_factory, config, workdir: Path, seed: int
) -> tuple[str, str]:
    (fail_at,) = spec.params
    out = workdir / f"native-{spec.index:03d}.djv"
    tmp = out.with_name(out.name + ".tmp")
    try:
        api_record(
            program_factory(),
            config=config,
            timer=SeededJitterTimer(seed, 40, 160),
            out=out,
            vm_hook=lambda vm: arm_native_fault(vm, fail_at),
        )
        return (
            "not-triggered",
            f"run completed before non-deterministic native call #{fail_at}",
        )
    except InjectedFault as exc:
        # the record run died exactly as a real environment failure would;
        # the crash-consistency contract says the tmp file salvages
        trace = TraceLog.salvage(tmp)
        prefix = replay_prefix(program_factory(), trace, config=config)
        return (
            "recovered",
            f"{exc}; salvaged tmp replays "
            f"({prefix.words_consumed} value words consumed)",
        )
    finally:
        for p in (out, tmp):
            p.unlink(missing_ok=True)


# ---------------------------------------------------------------------------
# the serve fault family


@dataclass
class _ServeFixture:
    """Shared fixtures for the serve fault family: one loopback
    :class:`~repro.serve.ServeDaemon` that every armed fault attacks —
    surviving all of them on a single accept loop IS the robustness
    claim — plus the well-formed record job and its clean reference
    result.  After each attack the fixture re-submits the job; anything
    but a byte-identical answer means the hostile client perturbed
    other clients' replay results, the one failure a shared daemon must
    never allow."""

    daemon: object
    job: dict
    reference: dict
    seed: int

    @property
    def address(self) -> "tuple[str, int]":
        return self.daemon.address

    @classmethod
    def start(
        cls, workload: str, overrides: "dict | None", seed: int
    ) -> "_ServeFixture":
        from repro.serve import ServeClient, ServeDaemon

        daemon = ServeDaemon(workers=2, queue_limit=8).start()
        job = {
            "kind": "record",
            "workload": workload,
            "workload_args": dict(overrides or {}),
            "seed": seed,
            "out_name": "serve-ref.djv",
        }
        try:
            with ServeClient(daemon.address) as client:
                reference = client.submit(job, timeout=60)
        except BaseException:
            daemon.stop()
            raise
        return cls(daemon=daemon, job=job, reference=reference, seed=seed)

    def stop(self) -> None:
        self.daemon.stop()

    def check_clean(self) -> str:
        """Submit the well-formed job again; empty string when the
        result is byte-identical to the clean reference."""
        from repro.serve import ServeClient

        with ServeClient(self.address) as client:
            result = client.submit(self.job, timeout=60)
        for key in ("stdout", "stderr", "exit", "trace"):
            if result.get(key) != self.reference.get(key):
                return (
                    f"follow-up well-formed job diverged from the clean "
                    f"reference on {key!r} — the armed fault perturbed an "
                    f"unrelated job"
                )
        return ""


#: the infinite guest loop behind ``serve-hung-workload``: it never
#: finishes, but its backedge yield point keeps producing engine safe
#: points, so cooperative deadline cancellation gets its shot.  (The
#: loop needs a body: a bare ``loop: goto loop`` jumps back past its
#: own backedge yield point and would never reach a safe point.)
_HUNG_GUEST_SRC = """\
.class Main
.method static main ()V
    iconst 0
    istore 0
loop:
    iload 0
    iconst 1
    iadd
    istore 0
    goto loop
.end
"""


def _run_serve_fault(spec: FaultSpec, serve: "_ServeFixture") -> tuple[str, str]:
    """Attack the loopback serve daemon per *spec*.

    Contract: the hostile act costs at most its own job and connection —
    it is absorbed outright (``recovered``) or lands in a typed
    diagnostic the client can read (``diagnosed:<Type>``) — and a
    follow-up well-formed job still returns a result byte-identical to
    the clean reference.  Any divergence is ``undetected``: a hostile
    client perturbed an unrelated client's replay result.
    """
    runner = {
        "serve-client-vanish": _serve_client_vanish,
        "serve-poison-job": _serve_poison_job,
        "serve-hung-workload": _serve_hung_workload,
        "serve-deadline-exceeded": _serve_deadline_exceeded,
        "serve-queue-storm": _serve_queue_storm,
        "serve-kill-during-drain": _serve_kill_during_drain,
    }[spec.kind]
    return runner(spec, serve)


def _serve_client_vanish(
    spec: FaultSpec, serve: "_ServeFixture"
) -> tuple[str, str]:
    import socket

    from repro.serve.protocol import encode_serve_message

    (frac,) = spec.params
    with socket.create_connection(serve.address, timeout=10) as sock:
        sock.sendall(encode_serve_message({"op": "submit", "job": serve.job}))
        time.sleep(0.02 + frac * 0.2)
        # vanish: the reply is never read; the daemon's send must fail
        # quietly and cost exactly this connection
    mismatch = serve.check_clean()
    if mismatch:
        return "undetected", mismatch
    return (
        "recovered",
        "daemon absorbed a client that vanished mid-job; follow-up job "
        "matches the clean reference",
    )


def _serve_poison_job(
    spec: FaultSpec, serve: "_ServeFixture"
) -> tuple[str, str]:
    import socket

    from repro.serve import ServeClient, ServeError
    from repro.serve.protocol import encode_serve_message

    (variant,) = spec.params
    if variant == 0:
        # raw garbage: an impossible frame length followed by noise
        before = serve.daemon.frame_errors
        with socket.create_connection(serve.address, timeout=10) as sock:
            sock.sendall(b"\xff\xff\xff\xff" + b"\xa5" * 64)
            sock.recv(65536)  # the typed error frame (or a clean close)
        if serve.daemon.frame_errors == before:
            return (
                "undetected",
                "garbage bytes were accepted as a frame — the codec "
                "failed to notice",
            )
        how = "garbage bytes landed in a typed frame error"
    elif variant == 1:
        # a CRC-valid frame whose payload is not a message dict at all
        with socket.create_connection(serve.address, timeout=10) as sock:
            sock.sendall(encode_serve_message(["not", "a", "message"]))
            answer = sock.recv(65536)
        if not answer:
            return (
                "undetected",
                "a non-dict frame closed the connection with no typed answer",
            )
        how = "a CRC-valid non-message frame got a typed in-band error"
    else:
        # a malformed job dict: validation must answer, never a worker
        # traceback
        with ServeClient(serve.address) as client:
            try:
                client.submit({"kind": "record"})  # names no program at all
                return "undetected", "a malformed job dict was accepted and ran"
            except ServeError as exc:
                how = f"malformed job dict rejected ({exc})"
    mismatch = serve.check_clean()
    if mismatch:
        return "undetected", mismatch
    return "recovered", f"{how}; follow-up job matches the clean reference"


def _serve_hung_workload(
    spec: FaultSpec, serve: "_ServeFixture"
) -> tuple[str, str]:
    from repro.serve import JobDeadlineExceeded, ServeClient

    (deadline_s,) = spec.params
    job = {
        "kind": "record",
        "source": _HUNG_GUEST_SRC,
        "name": "hung",
        "seed": serve.seed,
        "deadline": deadline_s,
        "out_name": "hung.djv",
    }
    with ServeClient(serve.address) as client:
        try:
            client.submit(job, timeout=deadline_s + 30)
            return (
                "undetected",
                "an infinite guest loop returned a result — the deadline "
                "never fired",
            )
        except JobDeadlineExceeded as exc:
            detail = str(exc)
    mismatch = serve.check_clean()
    if mismatch:
        return "undetected", mismatch
    return "diagnosed:JobDeadlineExceeded", detail


def _serve_deadline_exceeded(
    spec: FaultSpec, serve: "_ServeFixture"
) -> tuple[str, str]:
    from repro.serve import JobDeadlineExceeded, ServeClient

    (deadline_s,) = spec.params
    job = dict(serve.job)
    job["deadline"] = deadline_s
    with ServeClient(serve.address) as client:
        try:
            result = client.submit(job, timeout=30)
        except JobDeadlineExceeded as exc:
            detail = str(exc)
        else:
            if result.get("trace") != serve.reference.get("trace"):
                return (
                    "undetected",
                    "a job racing its deadline returned a non-reference "
                    "trace",
                )
            return (
                "not-triggered",
                f"the job finished inside its {deadline_s:g}s deadline",
            )
    mismatch = serve.check_clean()
    if mismatch:
        return "undetected", mismatch
    return "diagnosed:JobDeadlineExceeded", detail


def _serve_queue_storm(
    spec: FaultSpec, serve: "_ServeFixture"
) -> tuple[str, str]:
    from repro.core.framing import BackoffPolicy
    from repro.serve import ServeClient, ServeDaemon

    (burst,) = spec.params
    # a dedicated tiny daemon: one worker, two admission slots — the
    # storm must overflow admission, not merely queue up politely
    daemon = ServeDaemon(workers=1, queue_limit=2).start()
    try:
        job = {"kind": "trace-stats", "trace": serve.reference["trace"]}
        with ServeClient(daemon.address) as client:
            reference = client.submit(job, timeout=30)
        results: "list[dict | None]" = [None] * burst
        failures: list[str] = []
        barrier = threading.Barrier(burst)

        def _one_client(i: int) -> None:
            try:
                with ServeClient(daemon.address) as client:
                    barrier.wait(timeout=10)
                    results[i] = client.submit_with_retry(
                        job,
                        policy=BackoffPolicy(
                            attempts=10,
                            base_delay=0.02,
                            max_delay=0.3,
                            jitter_seed=i,
                        ),
                    )
            except Exception as exc:  # noqa: BLE001 - classified below
                failures.append(f"client {i}: {type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=_one_client, args=(i,), daemon=True)
            for i in range(burst)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=20)
        rejected = daemon.supervisor.jobs_rejected
    finally:
        daemon.stop()
    if failures:
        return (
            "starved",
            f"{len(failures)}/{burst} storm clients never landed a job: "
            + "; ".join(failures[:3]),
        )
    if any(thread.is_alive() for thread in threads):
        return "hang", "storm clients still waiting after 20s"
    divergent = [i for i, r in enumerate(results) if r != reference]
    if divergent:
        return (
            "undetected",
            f"storm client(s) {divergent} got results diverging from the "
            f"serial reference — overload perturbed job results",
        )
    if rejected == 0:
        return (
            "not-triggered",
            f"a burst of {burst} never overflowed the 2-slot queue",
        )
    return (
        "recovered",
        f"{rejected} typed overloaded rejection(s); all {burst} storm "
        f"jobs landed on retry with the serial reference result",
    )


def _serve_kill_during_drain(
    spec: FaultSpec, serve: "_ServeFixture"
) -> tuple[str, str]:
    import signal

    from repro.core.framing import BackoffPolicy, TransportError
    from repro.serve import ServeClient, ServeError, spawn_serve_process

    (delay_s,) = spec.params
    # a subprocess daemon: the kill must take a whole process, and the
    # shared loopback fixture has to survive the rest of the campaign
    proc, address = spawn_serve_process(workers=1, queue_limit=4)
    box: dict = {}
    client = None
    try:
        client = ServeClient.connect(
            address,
            policy=BackoffPolicy(attempts=6, base_delay=0.05, max_delay=0.4),
        )

        def _inflight() -> None:
            try:
                box["result"] = client.submit(serve.job, timeout=30)
            except Exception as exc:  # noqa: BLE001 - classified below
                box["error"] = exc

        thread = threading.Thread(target=_inflight, daemon=True)
        thread.start()
        time.sleep(0.1)  # let the job reach admission
        proc.send_signal(signal.SIGTERM)  # the graceful drain begins
        time.sleep(delay_s)
        proc.kill()  # ... and the crash lands mid-drain
        thread.join(timeout=20)
    finally:
        proc.kill()
        proc.wait(timeout=10)
        if proc.stdout is not None:
            proc.stdout.close()
        if client is not None:
            client.close()
    if "result" in box:
        if box["result"].get("trace") != serve.reference.get("trace"):
            return (
                "undetected",
                "the draining daemon delivered a non-reference trace "
                "before the kill landed",
            )
        return (
            "recovered",
            f"the drain delivered the in-flight job before the kill "
            f"landed {delay_s:g}s later",
        )
    exc = box.get("error")
    if exc is None:
        return "hang", "in-flight client got neither a result nor an error"
    if isinstance(exc, (TransportError, ServeError)):
        return f"diagnosed:{type(exc).__name__}", str(exc)
    return f"unclassified:{type(exc).__name__}", str(exc)
