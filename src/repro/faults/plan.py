"""Deterministic fault plans.

A :class:`FaultPlan` is a seeded, reproducible list of :class:`FaultSpec`
entries across the platform's three fault surfaces:

* ``trace``     — damage to the bytes of a recorded trace file (a bit
  flip from bad storage, a truncated tail from a full disk, a torn write
  from a crash mid-flush);
* ``native``    — the host environment failing underneath the guest (the
  Nth non-deterministic native call raises);
* ``transport`` — the debugger wire misbehaving (a dropped, delayed, or
  garbled frame);
* ``checkpoint`` — damage to a ``<trace>.ckpt`` sidecar (bit flip,
  truncated tail, a torn write that left only the writer's tmp file, or
  a sidecar that is missing outright).  Opt-in: campaigns pass
  ``layers=`` explicitly because the checkpoint family needs a
  checkpointed baseline replay the default three layers don't build;
* ``remote``     — a `repro worker` host misbehaving under a multi-host
  campaign (dropped / truncated / corrupted result frames, a mid-shard
  worker kill, a stalled heartbeat, a slow-loris connect).  Also
  opt-in: each remote fault runs a small sabotaged loopback campaign
  and checks the merged report against a clean reference digest;
* ``serve``      — a `repro serve` daemon under attack (a client that
  vanishes mid-job, a poison job payload, a hung workload against a
  deadline, a queue-full storm, a kill mid-drain).  Opt-in like remote:
  each serve fault drives a loopback daemon and requires a concurrent
  well-formed job to return results identical to the clean reference.

Specs are *symbolic*: byte positions are stored as fractions in [0, 1)
and resolved against the actual artifact at injection time, so the same
plan applies to any workload while ``FaultPlan.generate(seed, count)``
stays byte-for-byte reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

LAYER_TRACE = "trace"
LAYER_NATIVE = "native"
LAYER_TRANSPORT = "transport"
LAYER_CHECKPOINT = "checkpoint"
LAYER_REMOTE = "remote"
LAYER_SERVE = "serve"

#: every fault kind, with its layer (new kinds go at the END: generation
#: draws from the filtered kind list, so appending keeps every seeded
#: plan over the older layer sets byte-for-byte reproducible)
KINDS: dict[str, str] = {
    "bit-flip": LAYER_TRACE,
    "truncate": LAYER_TRACE,
    "torn-write": LAYER_TRACE,
    "native-error": LAYER_NATIVE,
    "drop-frame": LAYER_TRANSPORT,
    "delay-frame": LAYER_TRANSPORT,
    "garble-frame": LAYER_TRANSPORT,
    "ckpt-bit-flip": LAYER_CHECKPOINT,
    "ckpt-truncate": LAYER_CHECKPOINT,
    "ckpt-torn": LAYER_CHECKPOINT,
    "ckpt-missing": LAYER_CHECKPOINT,
    "remote-drop-frame": LAYER_REMOTE,
    "remote-truncate-frame": LAYER_REMOTE,
    "remote-corrupt-frame": LAYER_REMOTE,
    "remote-kill-worker": LAYER_REMOTE,
    "remote-stall-heartbeat": LAYER_REMOTE,
    "remote-slow-connect": LAYER_REMOTE,
    "serve-client-vanish": LAYER_SERVE,
    "serve-poison-job": LAYER_SERVE,
    "serve-hung-workload": LAYER_SERVE,
    "serve-deadline-exceeded": LAYER_SERVE,
    "serve-queue-storm": LAYER_SERVE,
    "serve-kill-during-drain": LAYER_SERVE,
}


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.  ``params`` meaning by kind:

    ========================  =============================================
    ``bit-flip``              ``(position_frac, bit)`` — flip bit *bit* of
                              the byte at ``frac * (size - 1)``
    ``truncate``              ``(position_frac,)`` — drop everything from
                              that byte on
    ``torn-write``            ``(boundary_frac,)`` — crash after the K-th
                              flushed segment (resolved against the
                              recording's segment boundaries)
    ``native-error``          ``(n,)`` — the n-th non-deterministic native
                              call raises
    ``drop-frame``            ``()`` — the request frame never arrives
    ``delay-frame``           ``(delay_s,)`` — the frame arrives late
    ``garble-frame``          ``(position_frac, bit)`` — flip one bit of
                              the encoded frame before sending
    ``ckpt-bit-flip``         ``(position_frac, bit)`` — flip one bit of
                              the sealed checkpoint sidecar
    ``ckpt-truncate``         ``(position_frac,)`` — drop the sidecar's
                              tail from that byte on
    ``ckpt-torn``             ``(boundary_frac,)`` — crash after the K-th
                              flushed snapshot segment: the sealed
                              sidecar never appears, only its tmp prefix
    ``ckpt-missing``          ``()`` — no sidecar exists at all
    ``remote-drop-frame``     ``(shard_frac,)`` — the item frame at that
                              fraction of a shard is never sent
    ``remote-truncate-frame``  ``(shard_frac,)`` — half a frame, then a
                              dead connection
    ``remote-corrupt-frame``  ``(shard_frac, bit)`` — flip one bit inside
                              the frame's pickled region (CRC must catch)
    ``remote-kill-worker``    ``(shard_frac,)`` — the worker dies
                              (``os._exit``) mid-shard
    ``remote-stall-heartbeat``  ``(shard_frac,)`` — the worker goes mute:
                              no items, no heartbeats, process alive
    ``remote-slow-connect``   ``(delay_s,)`` — the handshake answer is
                              held past the client's hello timeout
    ``serve-client-vanish``   ``(frac,)`` — a serve client disconnects
                              mid-job, at that fraction of its wait
    ``serve-poison-job``      ``(variant,)`` — a hostile submit: garbage
                              bytes (0), a CRC-valid non-job frame (1),
                              or a malformed job dict (2)
    ``serve-hung-workload``   ``(deadline_s,)`` — an infinite guest loop
                              submitted with that deadline: cooperative
                              cancellation must fire at a safe point
    ``serve-deadline-exceeded``  ``(deadline_s,)`` — a normal job with a
                              deadline too small to finish
    ``serve-queue-storm``     ``(burst,)`` — *burst* concurrent jobs
                              against a tiny admission queue: typed
                              overloaded rejections + retry must land
                              every job eventually
    ``serve-kill-during-drain``  ``(delay_s,)`` — SIGKILL that many
                              seconds after a SIGTERM drain began
    ========================  =============================================
    """

    index: int
    kind: str
    params: tuple = ()

    @property
    def layer(self) -> str:
        return KINDS[self.kind]

    def describe(self) -> str:
        return f"#{self.index:03d} {self.layer}/{self.kind}{self.params!r}"


@dataclass
class FaultPlan:
    seed: int
    specs: list[FaultSpec] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @classmethod
    def generate(
        cls,
        seed: int,
        count: int,
        layers: tuple[str, ...] = (LAYER_TRACE, LAYER_NATIVE, LAYER_TRANSPORT),
    ) -> "FaultPlan":
        """*count* faults drawn uniformly over the kinds of *layers*."""
        rng = random.Random(seed)
        kinds = [k for k, layer in KINDS.items() if layer in layers]
        if not kinds:
            raise ValueError(f"no fault kinds in layers {layers!r}")
        specs = []
        for i in range(count):
            kind = rng.choice(kinds)
            if kind in ("bit-flip", "garble-frame", "ckpt-bit-flip",
                        "remote-corrupt-frame"):
                params = (rng.random(), rng.randrange(8))
            elif kind in (
                "truncate",
                "torn-write",
                "ckpt-truncate",
                "ckpt-torn",
                "remote-drop-frame",
                "remote-truncate-frame",
                "remote-kill-worker",
                "remote-stall-heartbeat",
            ):
                params = (rng.random(),)
            elif kind == "native-error":
                params = (rng.randrange(1, 9),)
            elif kind == "delay-frame":
                params = (round(rng.uniform(0.01, 0.08), 3),)
            elif kind == "remote-slow-connect":
                params = (round(rng.uniform(0.6, 1.2), 2),)
            elif kind == "serve-client-vanish":
                params = (rng.random(),)
            elif kind == "serve-poison-job":
                params = (rng.randrange(3),)
            elif kind == "serve-hung-workload":
                params = (round(rng.uniform(0.3, 0.8), 2),)
            elif kind == "serve-deadline-exceeded":
                params = (round(rng.uniform(0.005, 0.05), 3),)
            elif kind == "serve-queue-storm":
                params = (rng.randrange(6, 14),)
            elif kind == "serve-kill-during-drain":
                params = (round(rng.uniform(0.05, 0.3), 2),)
            else:  # drop-frame, ckpt-missing
                params = ()
            specs.append(FaultSpec(index=i, kind=kind, params=params))
        return cls(seed=seed, specs=specs)

    def by_layer(self, layer: str) -> list[FaultSpec]:
        return [s for s in self.specs if s.layer == layer]
