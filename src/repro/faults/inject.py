"""Fault injectors: the mechanics of making each surface misbehave.

Each injector either applies damage to an artifact (trace bytes), arms a
time bomb inside a VM (native layer), or performs one sabotaged exchange
against a live debugger server (transport layer).  Injectors are
mechanical — classification of what happened afterwards belongs to
:mod:`repro.faults.campaign`.
"""

from __future__ import annotations

import socket
import time
from typing import TYPE_CHECKING

from repro.core.tracelog import (
    MAGIC,
    MAX_SEGMENT_BYTES,
    SEG_FOOTER,
    SEG_META,
    SEG_SWITCH,
    SEG_VALUE,
    _SEG_HEADER_BYTES,
    _SEG_HEADER_BYTES_V31,
)
from repro.debugger.protocol import FrameDecoder, TransportError, decode, frame
from repro.faults.plan import FaultSpec
from repro.vm.errors import VMError

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.machine import VirtualMachine

_HEADER_BYTES = len(MAGIC) + 2  # magic + u16 version

_SEG_KINDS = (SEG_META, SEG_SWITCH, SEG_VALUE, SEG_FOOTER)


class InjectedFault(VMError):
    """The typed error an armed native raises — what a failing syscall,
    exhausted fd table, or dead network looks like to the guest."""


# ---------------------------------------------------------------------------
# trace-file faults


def segment_boundaries(blob: bytes) -> list[int]:
    """Byte offsets just *after* each complete segment — the positions a
    crash between flushes can leave a tmp file cut at.

    Version-aware: v3 segments carry a 9-byte header, v3.1 adds the
    codec byte (10 bytes, length field one byte later).
    """
    version = int.from_bytes(blob[4:6], "little") if len(blob) >= 6 else 0
    seg_header = _SEG_HEADER_BYTES if version == 3 else _SEG_HEADER_BYTES_V31
    len_at = 1 if version == 3 else 2
    offsets: list[int] = []
    pos = _HEADER_BYTES
    while pos + seg_header <= len(blob):
        kind = blob[pos:pos + 1]
        if kind not in _SEG_KINDS:
            break
        length = int.from_bytes(blob[pos + len_at:pos + len_at + 4], "little")
        if length > MAX_SEGMENT_BYTES:
            break
        end = pos + seg_header + length
        if end > len(blob):
            break
        offsets.append(end)
        pos = end
    return offsets


def apply_trace_fault(blob: bytes, spec: FaultSpec) -> bytes:
    """Damaged copy of *blob* per *spec* (``bit-flip`` / ``truncate`` /
    ``torn-write``).  Fractional positions resolve against this blob."""
    if spec.kind == "bit-flip":
        frac, bit = spec.params
        pos = min(len(blob) - 1, int(frac * len(blob)))
        damaged = bytearray(blob)
        damaged[pos] ^= 1 << bit
        return bytes(damaged)
    if spec.kind == "truncate":
        (frac,) = spec.params
        cut = max(1, min(len(blob) - 1, int(frac * len(blob))))
        return blob[:cut]
    if spec.kind == "torn-write":
        # a crash between segment flushes: the tmp file ends exactly at a
        # segment boundary (or right after the header, before any flush),
        # with no footer
        (frac,) = spec.params
        candidates = [_HEADER_BYTES] + segment_boundaries(blob)[:-1]
        cut = candidates[min(len(candidates) - 1, int(frac * len(candidates)))]
        return blob[:cut]
    raise ValueError(f"not a trace fault: {spec.kind}")


# ---------------------------------------------------------------------------
# checkpoint-sidecar faults


def ckpt_segment_boundaries(blob: bytes) -> list[int]:
    """Byte offsets just after each complete sidecar segment (the cuts a
    crash between snapshot flushes can leave a ``.ckpt.tmp`` at)."""
    from repro.core.checkpoint import (
        CKPT_MAGIC,
        MAX_SNAPSHOT_BYTES,
        SEG_CKPT_FOOTER,
        SEG_CKPT_META,
        SEG_SNAPSHOT,
    )
    from repro.core.checkpoint import _SEG_HEADER_BYTES as ckpt_seg_header

    header_bytes = len(CKPT_MAGIC) + 2
    kinds = (SEG_SNAPSHOT, SEG_CKPT_META, SEG_CKPT_FOOTER)
    offsets: list[int] = []
    pos = header_bytes
    while pos + ckpt_seg_header <= len(blob):
        kind = blob[pos:pos + 1]
        if kind not in kinds:
            break
        length = int.from_bytes(blob[pos + 1:pos + 5], "little")
        if length > MAX_SNAPSHOT_BYTES:
            break
        end = pos + ckpt_seg_header + length
        if end > len(blob):
            break
        offsets.append(end)
        pos = end
    return offsets


def apply_checkpoint_fault(
    blob: bytes, spec: FaultSpec
) -> tuple[bytes | None, str]:
    """Damaged sidecar per *spec*; returns ``(bytes_or_None, destination)``.

    Destination says where the damaged artifact belongs on disk:
    ``"sidecar"`` — the sealed ``<trace>.ckpt`` itself is damaged;
    ``"tmp"`` — a crash mid-seal: only ``<trace>.ckpt.tmp`` exists, cut
    at a segment boundary; ``"absent"`` — no sidecar at all (bytes is
    ``None``).
    """
    from repro.core.checkpoint import CKPT_MAGIC

    if spec.kind == "ckpt-bit-flip":
        frac, bit = spec.params
        pos = min(len(blob) - 1, int(frac * len(blob)))
        damaged = bytearray(blob)
        damaged[pos] ^= 1 << bit
        return bytes(damaged), "sidecar"
    if spec.kind == "ckpt-truncate":
        (frac,) = spec.params
        cut = max(1, min(len(blob) - 1, int(frac * len(blob))))
        return blob[:cut], "sidecar"
    if spec.kind == "ckpt-torn":
        # crash between snapshot flushes and before the atomic-rename
        # seal: the sealed file never appears; the tmp ends exactly at a
        # segment boundary (or right after the header, pre-first-flush)
        (frac,) = spec.params
        header_bytes = len(CKPT_MAGIC) + 2
        candidates = [header_bytes] + ckpt_segment_boundaries(blob)[:-1]
        cut = candidates[min(len(candidates) - 1, int(frac * len(candidates)))]
        return blob[:cut], "tmp"
    if spec.kind == "ckpt-missing":
        return None, "absent"
    raise ValueError(f"not a checkpoint fault: {spec.kind}")


# ---------------------------------------------------------------------------
# native-layer faults


def arm_native_fault(vm: "VirtualMachine", fail_at: int) -> dict:
    """Wrap every non-deterministic native so the *fail_at*-th call (over
    all of them, in call order) raises :class:`InjectedFault`.

    Returns a live ``{"calls": n}`` counter so the harness can tell a
    triggered fault from a run that never reached the n-th call.
    """
    from repro.vm.native import NativeDef

    state = {"calls": 0}

    def _wrap(nd):
        def faulty(ctx):
            state["calls"] += 1
            if state["calls"] == fail_at:
                raise InjectedFault(
                    f"injected environment failure in {nd.qualname} "
                    f"(non-deterministic native call #{fail_at})"
                )
            return nd.fn(ctx)

        return NativeDef(nd.qualname, faulty, nondet=True)

    for qualname, nd in list(vm.natives._natives.items()):
        if nd.nondet:
            vm.natives._natives[qualname] = _wrap(nd)
    return state


# ---------------------------------------------------------------------------
# transport-layer faults

_PROBE = {"id": 1, "cmd": "info", "args": {}}


def send_faulted_request(
    address: tuple[str, int], spec: FaultSpec, *, timeout: float = 2.0
) -> tuple[str, str]:
    """One debugger exchange with *spec*'s transport fault applied.

    Returns ``(outcome, detail)`` where outcome is ``"recovered"`` (the
    exchange still worked) or ``"diagnosed:..."`` (a typed transport
    failure).  Anything else — a hang, an unexpected exception — escapes
    to the campaign's watchdog and is a harness failure.
    """
    if spec.kind == "delay-frame":
        (delay,) = spec.params
        with socket.create_connection(address, timeout=timeout) as sock:
            time.sleep(delay)  # the frame arrives late, but intact
            sock.sendall(frame(_PROBE))
            response = _read_response(sock, timeout)
        if response.get("ok"):
            return "recovered", f"frame delayed {delay}s; request still served"
        return "diagnosed:server-error", str(response.get("error"))

    if spec.kind == "drop-frame":
        with socket.create_connection(address, timeout=timeout) as sock:
            # the request frame vanishes in transit: send nothing, wait
            sock.settimeout(0.3)
            try:
                chunk = sock.recv(4096)
            except TimeoutError:
                return (
                    "diagnosed:timeout",
                    "dropped frame produced no response; timeout fired as designed",
                )
            if chunk == b"":
                return "diagnosed:closed", "server closed the idle connection"
            return "recovered", "server answered an unsent request?!"

    if spec.kind == "garble-frame":
        frac, bit = spec.params
        wire = bytearray(frame(_PROBE))
        wire[min(len(wire) - 1, int(frac * len(wire)))] ^= 1 << bit
        with socket.create_connection(address, timeout=timeout) as sock:
            sock.sendall(bytes(wire))
            try:
                response = _read_response(sock, min(timeout, 1.0))
            except TransportError as exc:
                return "diagnosed:transport", str(exc)
            if response.get("ok"):
                # the flip missed anything load-bearing (e.g. hit a digit
                # of the id) and the request still parsed
                return "recovered", "garbled frame still parsed and was served"
            return "diagnosed:rejected", str(response.get("error"))

    raise ValueError(f"not a transport fault: {spec.kind}")


# ---------------------------------------------------------------------------
# remote-layer faults


def remote_sabotage(spec: FaultSpec) -> str:
    """The ``repro worker --sabotage`` arming string for *spec*.

    The remote family is injected *inside the worker daemon* (the
    sabotage seam of :class:`repro.campaign.remote.WorkerServer`), so the
    injector here just serialises the planned fault into the daemon's
    one-shot arming syntax ``kind[:frac[:extra]]``.
    """
    if spec.kind == "remote-corrupt-frame":
        frac, bit = spec.params
        return f"{spec.kind}:{frac}:{bit}"
    if spec.kind == "remote-slow-connect":
        (delay,) = spec.params
        return f"{spec.kind}::{delay}"
    if spec.layer == "remote":
        (frac,) = spec.params
        return f"{spec.kind}:{frac}"
    raise ValueError(f"not a remote fault: {spec.kind}")


def _read_response(sock: socket.socket, timeout: float) -> dict:
    decoder = FrameDecoder()
    sock.settimeout(timeout)
    frames: list[bytes] = []
    while not frames:
        try:
            chunk = sock.recv(4096)
        except TimeoutError as exc:
            raise TransportError("no response frame within the timeout") from exc
        if not chunk:
            raise TransportError("server closed the connection mid-response")
        frames = decoder.feed(chunk)
    return decode(frames[0])
