"""Deterministic fault injection for the replay platform.

Four surfaces, one contract: a fault may cost data, never correctness —
every injected failure must end in clean recovery or a typed diagnostic,
and nothing may hang, crash with a raw traceback, or silently return a
wrong answer.

* :mod:`repro.faults.plan`     — seeded, reproducible fault plans;
* :mod:`repro.faults.inject`   — the injectors (trace bytes, native
  layer, debugger transport, checkpoint sidecars);
* :mod:`repro.faults.campaign` — the campaign runner and outcome
  classification (``repro faults`` on the CLI).

Pytest integration: ``from repro.faults.fixtures import *`` in a
conftest exposes the ``fault_plan`` fixture.
"""

from repro.faults.campaign import (
    CampaignReport,
    FaultOutcome,
    FaultRunContext,
    run_campaign,
)
from repro.faults.inject import (
    InjectedFault,
    apply_checkpoint_fault,
    apply_trace_fault,
    arm_native_fault,
    ckpt_segment_boundaries,
    segment_boundaries,
    send_faulted_request,
)
from repro.faults.plan import (
    KINDS,
    LAYER_CHECKPOINT,
    LAYER_NATIVE,
    LAYER_REMOTE,
    LAYER_TRACE,
    LAYER_TRANSPORT,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "CampaignReport",
    "FaultOutcome",
    "FaultPlan",
    "FaultRunContext",
    "FaultSpec",
    "InjectedFault",
    "KINDS",
    "LAYER_CHECKPOINT",
    "LAYER_NATIVE",
    "LAYER_REMOTE",
    "LAYER_TRACE",
    "LAYER_TRANSPORT",
    "apply_checkpoint_fault",
    "apply_trace_fault",
    "arm_native_fault",
    "ckpt_segment_boundaries",
    "run_campaign",
    "segment_boundaries",
    "send_faulted_request",
]
