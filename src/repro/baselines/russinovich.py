"""Russinovich & Cogswell-style replay: log and steer every thread switch.

Their system (modified Mach kernel, PLDI '96) is notified on **each**
thread switch and logs which thread was scheduled.  "Since they do not
replay the thread package itself, their replay mechanism must tell the
thread package which thread to schedule at each thread switch.  This
entails maintaining a mapping between the thread executing during record
and during replay.  This is a significant execution cost that DejaVu does
not incur."

Concretely, versus DejaVu this baseline

* writes a ``(yield-point delta, thread id)`` pair for **every dispatch**
  — synchronization switches included — where DejaVu writes a single
  delta only for *preemptive* switches;
* on replay, overrides the scheduler's choice with the mapped thread and
  maintains the record↔replay thread-id map at run time (``map_ops``
  counts that work).

Wall-clock and native values are logged exactly as DejaVu does (the
paper's footnote 7: every replay scheme needs that stream).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.api import GuestProgram, build_vm
from repro.core.controller import MODE_RECORD, MODE_REPLAY, DejaVu
from repro.core.tracelog import TraceLog
from repro.vm.errors import ReplayDivergenceError
from repro.vm.machine import _DEFAULT, VMConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.threads import GreenThread


class RussinovichCogswell(DejaVu):
    """DejaVu's value logging + per-dispatch switch logging + steering."""

    DISPATCH_NATURAL = 0
    DISPATCH_PREEMPTIVE = 1

    def __init__(self, vm, mode, trace=None, **kwargs):
        super().__init__(vm, mode, trace=trace, **kwargs)
        self._yp_count = 0
        self._yp_at_last_dispatch = 0
        self._last_was_preempt = False
        self._countdown: int | None = None
        self._expected_tid: int | None = None
        self._expected_kind: int | None = None
        #: record thread id -> replay thread object (maintained per spawn)
        self.thread_map: dict[int, "GreenThread"] = {}
        self.map_ops = 0
        self.stats["dispatch_records"] = 0
        if self.recording:
            vm.scheduler.on_dispatch = self._record_dispatch
        else:
            vm.scheduler.dispatch_override = self._steer_dispatch
            vm.scheduler.on_dispatch = self._replay_dispatched

    # ------------------------------------------------------------------
    # record side

    def _record_dispatch(self, thread: "GreenThread") -> None:
        delta = self._yp_count - self._yp_at_last_dispatch
        self._yp_at_last_dispatch = self._yp_count
        kind = (
            self.DISPATCH_PREEMPTIVE if self._last_was_preempt else self.DISPATCH_NATURAL
        )
        self._last_was_preempt = False
        prev = self.liveclock
        self.liveclock = False
        try:
            self._put_switch(delta)
            self._put_switch(thread.tid)
            self._put_switch(kind)
        finally:
            self.liveclock = prev
        self.stats["dispatch_records"] += 1

    # ------------------------------------------------------------------
    # the yield-point instrumentation (replaces Figure 2's)

    def at_yieldpoint(self, thread: "GreenThread", tag: int) -> None:
        self.sym.stack_check(thread)
        self._yp_count += 1
        if self.recording:
            engine = self.vm.engine
            if engine.hw_bit:
                engine.hw_bit = False
                self._last_was_preempt = True
                self.vm.scheduler.preempt()  # dispatch hook logs it
        else:
            if self._countdown is not None:
                self._countdown -= 1
                if (
                    self._countdown == 0
                    and self._expected_kind == self.DISPATCH_PREEMPTIVE
                    and not self.vm.engine.switch_pending
                ):
                    # the record run was preempted at this yield point;
                    # force the same switch (natural dispatches happen by
                    # themselves — deterministic blocking)
                    self.vm.scheduler.preempt()

    def internal_yieldpoint(self) -> None:  # no logical clock to protect
        self.stats["internal_yieldpoints"] += 1

    # ------------------------------------------------------------------
    # replay side

    def on_run_start(self) -> None:
        self.sym.init_actions()
        if self.replaying:
            self.vm.engine.timer_enabled = False
            self._advance_log()

    def _advance_log(self) -> None:
        delta = self._take_switch()
        if delta is None:
            self._countdown = None
            self._expected_tid = None
            self._expected_kind = None
            return
        tid = self._take_switch()
        kind = self._take_switch()
        if tid is None or kind is None:
            raise ReplayDivergenceError("truncated dispatch record")
        self._countdown = delta
        self._expected_tid = tid
        self._expected_kind = kind

    def _steer_dispatch(self, ready):
        """Tell the thread package which thread to schedule (their cost)."""
        if self._expected_tid is None:
            return None
        self.map_ops += 1  # one map lookup per dispatch
        target = self.thread_map.get(self._expected_tid)
        if target is None:
            # map threads as they appear; tids are assigned in spawn order
            for t in self.vm.scheduler.threads:
                if t.tid == self._expected_tid:
                    self.thread_map[self._expected_tid] = t
                    self.map_ops += 1
                    target = t
                    break
        if target is None or target not in ready:
            raise ReplayDivergenceError(
                f"recorded thread {self._expected_tid} is not ready "
                f"(ready: {[t.tid for t in ready]})"
            )
        return target

    def _replay_dispatched(self, thread: "GreenThread") -> None:
        if self._expected_tid is not None and thread.tid != self._expected_tid:
            raise ReplayDivergenceError(
                f"dispatched thread {thread.tid}, recorded {self._expected_tid}"
            )
        self._yp_count = self._yp_at_last_dispatch = 0
        self._advance_log()

    def _verify_end(self) -> None:
        # the END witnesses still apply; leftover-switch accounting differs
        assert self._trace is not None
        want = dict(self._trace.meta.get("end") or ())
        got = self._make_end_meta()
        for key, expected in want.items():
            if got.get(key) != expected:
                raise ReplayDivergenceError(
                    f"end-of-run mismatch on {key}: recorded {expected!r}, "
                    f"replayed {got.get(key)!r}"
                )


def rc_record(program: GuestProgram, *, config: VMConfig | None = None, timer=_DEFAULT, clock=None, env=None):
    """Record under the R&C scheme; returns (RunResult, TraceLog, stats)."""
    vm = build_vm(program, config, timer=timer, clock=clock, env=env)
    controller = RussinovichCogswell(vm, MODE_RECORD)
    result = vm.run(program.main)
    trace = controller.trace()
    trace.meta["scheme"] = "russinovich-cogswell"
    return result, trace, dict(controller.stats)


def rc_replay(program: GuestProgram, trace: TraceLog, *, config: VMConfig | None = None):
    """Replay an R&C trace; returns (RunResult, map_ops)."""
    vm = build_vm(program, config)
    controller = RussinovichCogswell(vm, MODE_REPLAY, trace=trace)
    result = vm.run(program.main)
    return result, controller.map_ops
