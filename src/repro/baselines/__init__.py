"""Related-work baselines (paper §5), implemented on the same VM.

* :mod:`repro.baselines.repeated` — naive repeated execution: no trace at
  all, and (measurably) no reproduction of non-deterministic behaviour.
* :mod:`repro.baselines.russinovich` — Russinovich & Cogswell: log *every*
  thread dispatch with the scheduled thread's identity and steer the
  scheduler on replay, maintaining a record↔replay thread map — the
  execution cost DejaVu avoids by replaying the thread package itself.
* :mod:`repro.baselines.instant_replay` — LeBlanc & Mellor-Crummey's
  Instant Replay: log versioned CREW (coarse, monitor-level) operations
  only; replay enforces their order.  Works for CREW-disciplined
  programs, demonstrably fails on data races outside monitors.
* :mod:`repro.baselines.recap` — Pan & Linton's Recap: capture the effect
  of **every read of shared memory locations** ("quite expensive") via a
  bytecode-rewriting pass; the trace-size comparison's upper bar.
"""

from repro.baselines.instant_replay import (
    instant_replay_record,
    instant_replay_replay,
)
from repro.baselines.recap import recap_record, recap_replay, recap_transform
from repro.baselines.repeated import repeated_execution
from repro.baselines.russinovich import rc_record, rc_replay

__all__ = [
    "instant_replay_record",
    "instant_replay_replay",
    "rc_record",
    "rc_replay",
    "recap_record",
    "recap_replay",
    "recap_transform",
    "repeated_execution",
]
