"""Naive repeated execution — the non-solution the paper opens with.

"Repeated execution, however, fails to reproduce the same execution
behavior for non-deterministic applications."  This baseline quantifies
that: run the program N times under live (differently-seeded) timers and
report how many distinct behaviours appear.  Zero trace bytes, zero
reproduction guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import GuestProgram, build_vm
from repro.vm.machine import Environment, VMConfig
from repro.vm.timerdev import SeededJitterClock, SeededJitterTimer


@dataclass
class RepeatedExecutionReport:
    runs: int
    #: distinct (output, heap digest, switch count, cycles) behaviours
    distinct_outputs: int
    distinct_behaviors: int
    outputs: list[str] = field(default_factory=list)
    reproduced_first: int = 0  # how many later runs matched run #0's output

    @property
    def divergence_rate(self) -> float:
        if self.runs <= 1:
            return 0.0
        return 1.0 - self.reproduced_first / (self.runs - 1)


def repeated_execution(
    program_factory,
    runs: int = 10,
    config: VMConfig | None = None,
    base_seed: int = 0,
    timer_lo: int = 40,
    timer_hi: int = 400,
) -> RepeatedExecutionReport:
    """Run fresh program instances under varying timers; count behaviours.

    ``program_factory`` must build a fresh :class:`GuestProgram` per run
    (native state, e.g. the server's network source, is per-instance).
    """
    outputs: list[str] = []
    behaviors: set[tuple] = set()
    for i in range(runs):
        program = program_factory()
        assert isinstance(program, GuestProgram)
        vm = build_vm(
            program,
            config,
            timer=SeededJitterTimer(base_seed + i, timer_lo, timer_hi),
            clock=SeededJitterClock(base_seed + i),
            env=Environment(seed=base_seed + i),
        )
        result = vm.run(program.main)
        outputs.append(result.output_text)
        behaviors.add((result.output_text, result.heap_digest, result.switches, result.cycles))
    reproduced = sum(1 for out in outputs[1:] if out == outputs[0])
    return RepeatedExecutionReport(
        runs=runs,
        distinct_outputs=len(set(outputs)),
        distinct_behaviors=len(behaviors),
        outputs=outputs,
        reproduced_first=reproduced,
    )
