"""Instant Replay (LeBlanc & Mellor-Crummey) on the Pequeño VM.

Instant Replay assumes every shared object is accessed through a correct
coarse-grained CREW operation and logs only those operations: per shared
object, a version number; per access, a record.  Here the coarse
operations are monitor acquisitions — record logs the global sequence of
``(object serial, thread id)`` acquisitions, and replay *enforces* that
sequence through an admission gate on the monitor table while the rest of
the execution runs free (live timer — Instant Replay does not log
preemption points).

Two properties the paper claims, both demonstrated by the benchmarks:

* for CREW-disciplined programs the *results* replay (the interleaving
  between critical sections may differ — Instant Replay promises
  equivalent computations, not cycle-identical executions);
* "this approach will not work for applications that do not use the CREW
  discipline" — a data race outside any monitor (``racy_bank``) replays
  to a different answer.

Object identity across runs uses first-acquisition serials.  If the
replayed run's first-acquisition order diverges (it can, for non-CREW
programs), serial binding itself goes wrong — one more way the scheme
fails without the discipline it assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.api import GuestProgram, build_vm
from repro.vm.errors import ReplayDivergenceError
from repro.vm.machine import _DEFAULT, VMConfig
from repro.vm.scheduler_types import RunResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.machine import VirtualMachine
    from repro.vm.threads import GreenThread


@dataclass
class CrewTrace:
    """The Instant Replay log: versioned coarse operations."""

    #: (object serial, thread id) per acquisition, in global order
    events: list[tuple[int, int]] = field(default_factory=list)
    n_objects: int = 0

    @property
    def n_records(self) -> int:
        return len(self.events)

    @property
    def encoded_size_bytes(self) -> int:
        from repro.core.tracelog import encode_words

        flat: list[int] = []
        for serial, tid in self.events:
            flat.extend((serial, tid))
        return len(encode_words(flat))


class _CrewRecorder:
    def __init__(self, vm: "VirtualMachine"):
        self.vm = vm
        self.trace = CrewTrace()
        self._serials: dict[int, int] = {}
        vm.monitors.on_acquire = self._on_acquire
        vm.extra_root_visitors.append(self._rekey)

    def _serial_for(self, addr: int) -> int:
        serial = self._serials.get(addr)
        if serial is None:
            serial = self.trace.n_objects
            self.trace.n_objects += 1
            self._serials[addr] = serial
        return serial

    def _on_acquire(self, addr: int, thread: "GreenThread") -> None:
        self.trace.events.append((self._serial_for(addr), thread.tid))

    def _rekey(self, fwd) -> None:
        self._serials = {fwd(addr): s for addr, s in self._serials.items()}


class _CrewEnforcer:
    """Admission gate: only the recorded next (object, thread) may lock."""

    def __init__(self, vm: "VirtualMachine", trace: CrewTrace):
        self.vm = vm
        self.trace = trace
        self.cursor = 0
        self._serials: dict[int, int] = {}
        self._next_fresh = 0
        self._waking = False
        vm.monitors.acquire_gate = self._gate
        vm.monitors.on_acquire = self._on_acquire
        vm.extra_root_visitors.append(self._rekey)

    def _expected(self) -> tuple[int, int] | None:
        if self.cursor >= len(self.trace.events):
            return None
        return self.trace.events[self.cursor]

    def _gate(self, addr: int, thread: "GreenThread") -> bool:
        expected = self._expected()
        if expected is None:
            return True  # log exhausted: run free (and likely diverge)
        exp_serial, exp_tid = expected
        if thread.tid != exp_tid:
            return False
        serial = self._serials.get(addr)
        if serial is None:
            # an object acquired for the first time must match a
            # first-acquisition (fresh-serial) record
            return exp_serial == self._next_fresh
        return serial == exp_serial

    def _on_acquire(self, addr: int, thread: "GreenThread") -> None:
        serial = self._serials.get(addr)
        if serial is None:
            serial = self._next_fresh
            self._next_fresh += 1
            self._serials[addr] = serial
        expected = self._expected()
        if expected is not None:
            exp_serial, exp_tid = expected
            if (serial, thread.tid) != (exp_serial, exp_tid):
                raise ReplayDivergenceError(
                    f"CREW order violated at event {self.cursor}: "
                    f"recorded {(exp_serial, exp_tid)}, got {(serial, thread.tid)}"
                )
        self.cursor += 1
        self._wake_admissible()

    def _wake_admissible(self) -> None:
        """After the cursor advances, a parked contender may have become
        the expected one — hand free locks to newly admissible threads."""
        if self._waking:
            return
        self._waking = True
        try:
            progress = True
            while progress:
                progress = False
                for addr in list(self.vm.monitors.monitors):
                    heir = self.vm.monitors.grant_if_free(addr)
                    if heir is not None:
                        self.vm.scheduler.make_ready(heir)
                        progress = True
        finally:
            self._waking = False

    def _rekey(self, fwd) -> None:
        self._serials = {fwd(addr): s for addr, s in self._serials.items()}


def instant_replay_record(
    program: GuestProgram,
    *,
    config: VMConfig | None = None,
    timer=_DEFAULT,
    clock=None,
    env=None,
) -> tuple[RunResult, CrewTrace]:
    vm = build_vm(program, config, timer=timer, clock=clock, env=env)
    recorder = _CrewRecorder(vm)
    result = vm.run(program.main)
    return result, recorder.trace


def instant_replay_replay(
    program: GuestProgram,
    trace: CrewTrace,
    *,
    config: VMConfig | None = None,
    timer=_DEFAULT,
    clock=None,
    env=None,
) -> RunResult:
    """Re-execute enforcing the CREW order; everything else runs free."""
    vm = build_vm(program, config, timer=timer, clock=clock, env=env)
    _CrewEnforcer(vm, trace)
    return vm.run(program.main)
