"""Recap (Pan & Linton): capture every read of shared memory.

"Recap ... handles non-determinism in multithreaded applications by
capturing the effect of every read of shared memory locations, which is
quite expensive."  We reproduce the scheme with a **bytecode-rewriting
pass**: every instruction that reads potentially-shared int data
(``getfield``/``getstatic`` of int fields, ``iaload``) is suffixed with a
call to a value-logging native, ``Recap.read(I)I`` — identity in record
mode, with the value recorded; substituted from the log in replay mode.

Riding on the same record/replay carrier as DejaVu keeps the comparison
honest: the *delta* between a Recap trace and a DejaVu trace for the same
execution is exactly the cost of read logging, and the *overhead* delta
is exactly the inserted instrumentation.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.api import GuestProgram, RecordedRun, record, replay
from repro.core.tracelog import TraceLog
from repro.vm.builder import ClassBuilder
from repro.vm.bytecode import Instr, Op, OPERAND_KIND, OperandKind
from repro.vm.classfile import ClassDef
from repro.vm.corelib import core_classdefs
from repro.vm.errors import VMError
from repro.vm.machine import _DEFAULT, VMConfig
from repro.vm.refmaps import field_ref, split_field_ref
from repro.vm.scheduler_types import RunResult

_READ_NATIVE = "Recap.read(I)I"


def _recap_classdef() -> ClassDef:
    cb = ClassBuilder("Recap")
    cb.native_method("read", "(I)I")
    return cb.build()


def _read_native(ctx):
    """Identity — the record/replay machinery does the capturing."""
    return ctx.arg(0)


def _int_field_index(classdefs: list[ClassDef]) -> dict[tuple[str, str], str]:
    """(class, field) -> descriptor over the whole program + core library."""
    index: dict[tuple[str, str], str] = {}
    universe = list(core_classdefs().values()) + classdefs
    for cd in universe:
        for fd in cd.fields:
            index[(cd.name, fd.name)] = fd.desc
    return index


def _field_is_int(index, classdefs, ref: str) -> bool:
    cls, fld = split_field_ref(ref)
    # walk the (single-inheritance) super chain in the classdef universe
    by_name = {cd.name: cd for cd in list(core_classdefs().values()) + classdefs}
    walk = cls
    while walk is not None:
        desc = index.get((walk, fld))
        if desc is not None:
            return desc == "I"
        cd = by_name.get(walk)
        walk = cd.super_name if cd is not None else None
    return False  # unresolved here: the loader will complain later anyway


def recap_transform(program: GuestProgram) -> GuestProgram:
    """Insert a ``Recap.read`` call after every shared-int read."""
    if any(cd.name == "Recap" for cd in program.classdefs):
        raise VMError("program already defines a class named Recap")
    index = _int_field_index(program.classdefs)
    new_defs: list[ClassDef] = []
    for cd in program.classdefs:
        cd = copy.deepcopy(cd)
        for m in cd.methods:
            if m.native:
                continue
            _transform_method(m, index, program.classdefs)
        new_defs.append(cd)
    new_defs.append(_recap_classdef())
    return GuestProgram(
        classdefs=new_defs,
        main=program.main,
        natives=list(program.natives) + [(_READ_NATIVE, _read_native, True)],
        name=program.name + "+recap",
    )


def _transform_method(m, index, classdefs) -> None:
    insert_after: set[int] = set()
    for bci, instr in enumerate(m.code):
        if instr.op is Op.IALOAD:
            insert_after.add(bci)
        elif instr.op in (Op.GETFIELD, Op.GETSTATIC):
            ref, _ = field_ref(instr.arg)
            if _field_is_int(index, classdefs, ref):
                insert_after.add(bci)
    if not insert_after:
        m.compute_max_locals()
        return

    new_code: list[Instr] = []
    new_lines: dict[int, int] = {}
    remap: list[int] = []
    for bci, instr in enumerate(m.code):
        remap.append(len(new_code))
        new_code.append(instr)
        if bci in m.line_table:
            new_lines[len(new_code) - 1] = m.line_table[bci]
        if bci in insert_after:
            new_code.append(Instr(Op.INVOKESTATIC, _READ_NATIVE))
    for i, instr in enumerate(new_code):
        if OPERAND_KIND[instr.op] is OperandKind.TARGET:
            new_code[i] = Instr(instr.op, remap[int(instr.arg)])
    m.code = new_code
    m.line_table = new_lines
    m.compute_max_locals()


@dataclass
class RecapSession:
    result: RunResult
    trace: TraceLog
    read_records: int
    transformed: GuestProgram


def recap_record(
    program: GuestProgram,
    *,
    config: VMConfig | None = None,
    timer=_DEFAULT,
    clock=None,
    env=None,
    symmetry=None,
) -> RecapSession:
    transformed = recap_transform(program)
    session: RecordedRun = record(
        transformed, config=config, timer=timer, clock=clock, env=env, symmetry=symmetry
    )
    return RecapSession(
        result=session.result,
        trace=session.trace,
        read_records=session.stats.get("native_records", 0),
        transformed=transformed,
    )


def recap_replay(
    session: RecapSession, *, config: VMConfig | None = None, symmetry=None
) -> RunResult:
    return replay(session.transformed, session.trace, config=config, symmetry=symmetry)
