"""The bank workload: a racy read-modify-write bug and its fix.

``racy_bank`` is the debugging target of the examples: ``tellers`` threads
each perform ``deposits`` unsynchronized ``balance += 1`` updates.  Under
preemptive switching, updates are lost non-deterministically — the final
balance varies run to run, and *which* update is lost depends on exactly
where the timer fired.  This is the class of bug the paper motivates
DejaVu with: it doesn't even fail reliably.

``synced_bank`` is the same program with the update inside a monitor;
its final balance is always ``tellers * deposits``.
"""

from __future__ import annotations

from repro.api import GuestProgram


def _source(tellers: int, deposits: int, synced: bool) -> str:
    if synced:
        update = """
    getstatic Main.lock LObject;
    monitorenter
    getstatic Main.balance I
    iconst 1
    iadd
    putstatic Main.balance I
    getstatic Main.lock LObject;
    monitorexit
"""
    else:
        # The race: read balance, burn a few cycles holding the stale
        # value in a local (widening the window), write it back + 1.
        update = """
    getstatic Main.balance I
    istore 2
    iconst 0
    istore 3
stall$:
    iload 3
    iconst 3
    if_icmpge go$
    iinc 3 1
    goto stall$
go$:
    iload 2
    iconst 1
    iadd
    putstatic Main.balance I
"""
    update = update.replace("$", "")
    return f"""
.class Teller
.super Thread
.method run ()V
    iconst 0
    istore 1
loop:
    iload 1
    iconst {deposits}
    if_icmpge done
{update}
    iinc 1 1
    goto loop
done:
    return
.end

.class Main
.field static balance I
.field static lock LObject;
.field static tellers [LThread;
.method static main ()V
    new Object
    putstatic Main.lock LObject;
    iconst {tellers}
    anewarray LThread;
    putstatic Main.tellers [LThread;
    iconst 0
    istore 0
spawn:
    iload 0
    iconst {tellers}
    if_icmpge started
    getstatic Main.tellers [LThread;
    iload 0
    new Teller
    aastore
    getstatic Main.tellers [LThread;
    iload 0
    aaload
    invokestatic Thread.start(LThread;)V
    iinc 0 1
    goto spawn
started:
    iconst 0
    istore 0
join:
    iload 0
    iconst {tellers}
    if_icmpge joined
    getstatic Main.tellers [LThread;
    iload 0
    aaload
    invokestatic Thread.join(LThread;)V
    iinc 0 1
    goto join
joined:
    ldc "balance="
    invokestatic System.print(LString;)V
    getstatic Main.balance I
    invokestatic System.printInt(I)V
    return
.end
"""


def racy_bank(tellers: int = 3, deposits: int = 40) -> GuestProgram:
    """The buggy version: lost updates under preemption."""
    return GuestProgram.from_source(
        _source(tellers, deposits, synced=False), name="racy_bank"
    )


def synced_bank(tellers: int = 3, deposits: int = 40) -> GuestProgram:
    """The fixed version: ``balance`` guarded by a monitor."""
    return GuestProgram.from_source(
        _source(tellers, deposits, synced=True), name="synced_bank"
    )
