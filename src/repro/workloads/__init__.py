"""Guest workloads: the multithreaded programs the experiments run.

Each module exposes ``program(...)`` factories returning
:class:`repro.api.GuestProgram`.  The suite covers:

* ``figure1`` — the paper's Figure 1 scenarios (A–D): schedule- and
  clock-dependent divergence;
* ``bank`` — racy read-modify-write on a shared balance (the debugging
  target of the examples) and its synchronized fix;
* ``producer_consumer`` — bounded buffer with ``wait``/``notify``;
* ``philosophers`` — dining philosophers over object monitors;
* ``server`` — the paper's motivating shape: a request queue fed by a
  non-deterministic "network" native, a worker pool, timed waits;
* ``sorter`` — CPU + allocation pressure (parallel sort/merge);
* ``gc_churn`` — allocation churn, deep recursion (stack growth) and
  identity-hash observation, the workload that makes symmetry ablations
  visibly diverge;
* ``readers_writers`` — a writers-priority read/write lock, written in
  MiniJ (:mod:`repro.lang`) rather than assembly.
"""

from repro.workloads.bank import racy_bank, synced_bank
from repro.workloads.figure1 import figure1_ab, figure1_cd
from repro.workloads.gc_churn import gc_churn
from repro.workloads.philosophers import philosophers
from repro.workloads.producer_consumer import producer_consumer
from repro.workloads.readers_writers import readers_writers
from repro.workloads.registry import (
    REGISTRY,
    WorkloadSpec,
    canonical_workload_key,
    get_workload,
    workload_names,
)
from repro.workloads.server import server
from repro.workloads.sorter import sorter

#: name -> zero-arg default-configuration factory (derived from the registry)
ALL_WORKLOADS = {
    name: spec.program_factory() for name, spec in REGISTRY.items()
}

__all__ = [
    "ALL_WORKLOADS",
    "REGISTRY",
    "WorkloadSpec",
    "canonical_workload_key",
    "get_workload",
    "workload_names",
    "readers_writers",
    "figure1_ab",
    "figure1_cd",
    "gc_churn",
    "philosophers",
    "producer_consumer",
    "racy_bank",
    "server",
    "sorter",
    "synced_bank",
]
