"""Parallel sorter: CPU plus allocation pressure.

The main thread fills an array with pseudo-random values from the guest's
own LCG (deterministic), hands disjoint chunks to worker threads that
insertion-sort them in place (allocating scratch arrays as they go), then
merges and prints a positional checksum.  The checksum is schedule-
independent; the cycle-level interleaving, allocation addresses and GC
points are not — making this the heap-heavy accuracy stress.
"""

from __future__ import annotations

from repro.api import GuestProgram


def _source(n_workers: int, chunk: int) -> str:
    total = n_workers * chunk
    return f"""
.class SortWorker
.super Thread
.field lo I
.method run ()V
    ; copy my chunk into a scratch array (allocation), sort, copy back
    iconst {chunk}
    newarray
    astore 1
    getstatic Main.data [I
    aload 0
    getfield SortWorker.lo I
    aload 1
    iconst 0
    iconst {chunk}
    invokestatic System.arraycopy([II[III)V
    ; insertion sort scratch
    iconst 1
    istore 2
outer:
    iload 2
    iconst {chunk}
    if_icmpge copyback
    aload 1
    iload 2
    iaload
    istore 3                    ; key
    iload 2
    iconst 1
    isub
    istore 4                    ; j
inner:
    iload 4
    iflt place
    aload 1
    iload 4
    iaload
    iload 3
    if_icmple place
    aload 1
    iload 4
    iconst 1
    iadd
    aload 1
    iload 4
    iaload
    iastore
    iinc 4 -1
    goto inner
place:
    aload 1
    iload 4
    iconst 1
    iadd
    iload 3
    iastore
    iinc 2 1
    goto outer
copyback:
    aload 1
    iconst 0
    getstatic Main.data [I
    aload 0
    getfield SortWorker.lo I
    iconst {chunk}
    invokestatic System.arraycopy([II[III)V
    return
.end

.class Main
.field static data [I
.field static workers [LThread;
.method static main ()V
    iconst {total}
    newarray
    putstatic Main.data [I
    ; fill with a guest-side LCG (deterministic)
    iconst 12345
    istore 1                    ; seed
    iconst 0
    istore 0
fill:
    iload 0
    iconst {total}
    if_icmpge spawn
    iload 1
    iconst 1103515245
    imul
    iconst 12345
    iadd
    istore 1
    getstatic Main.data [I
    iload 0
    iload 1
    iconst 8
    iushr
    iconst 9973
    irem
    iastore
    iinc 0 1
    goto fill
spawn:
    iconst {n_workers}
    anewarray LThread;
    putstatic Main.workers [LThread;
    iconst 0
    istore 0
mkloop:
    iload 0
    iconst {n_workers}
    if_icmpge launch
    new SortWorker
    astore 2
    aload 2
    iload 0
    iconst {chunk}
    imul
    putfield SortWorker.lo I
    getstatic Main.workers [LThread;
    iload 0
    aload 2
    aastore
    iinc 0 1
    goto mkloop
launch:
    iconst 0
    istore 0
startloop:
    iload 0
    iconst {n_workers}
    if_icmpge joinall
    getstatic Main.workers [LThread;
    iload 0
    aaload
    invokestatic Thread.start(LThread;)V
    iinc 0 1
    goto startloop
joinall:
    iconst 0
    istore 0
joinloop:
    iload 0
    iconst {n_workers}
    if_icmpge check
    getstatic Main.workers [LThread;
    iload 0
    aaload
    invokestatic Thread.join(LThread;)V
    iinc 0 1
    goto joinloop
check:
    ; positional checksum: sum of data[i] * (i % 31 + 1), 32-bit wrap
    iconst 0
    istore 1
    iconst 0
    istore 0
sumloop:
    iload 0
    iconst {total}
    if_icmpge report
    getstatic Main.data [I
    iload 0
    iaload
    iload 0
    iconst 31
    irem
    iconst 1
    iadd
    imul
    iload 1
    iadd
    istore 1
    iinc 0 1
    goto sumloop
report:
    ldc "checksum="
    invokestatic System.print(LString;)V
    iload 1
    invokestatic System.printInt(I)V
    return
.end
"""


def sorter(n_workers: int = 3, chunk: int = 48) -> GuestProgram:
    return GuestProgram.from_source(_source(n_workers, chunk), name="sorter")
