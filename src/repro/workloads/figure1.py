"""The paper's Figure 1: four non-deterministic execution examples.

**A/B** — two threads race on unsynchronized globals ``x`` and ``y``::

    T1:  y = 1;  x = y * 2;
    T2:  y = x * 2;  y = y * 2;  print y;

If T1 runs before T2 reads ``x`` (scenario A) the program prints **8**;
if the preemptive switch lands before T1 executes (scenario B) it prints
**0**.  The timer decides — exactly the Figure 1-(A)/(B) divergence.

**C/D** — the program state after a wall-clock read decides whether a
*deterministic* thread switch (a ``wait``) happens::

    T1:  y = Date();  if (y < 15) o1.wait();  y = x + 100;  print y;
    T2:  x = 1;  o1.notify();

A small clock value (scenario C) takes the ``wait`` branch — T1 blocks,
T2 runs, stores ``x`` and notifies — so T1 prints 101.  A large value
(scenario D) skips the wait; whether T1 sees ``x == 0`` or ``1`` depends
on the preemption again.
"""

from __future__ import annotations

from repro.api import GuestProgram

_AB_SOURCE = """
.class T1
.super Thread
.method run ()V
    iconst 1
    putstatic Main.y I          ; y = 1
    getstatic Main.y I
    iconst 2
    imul
    putstatic Main.x I          ; x = y * 2
    return
.end

.class T2
.super Thread
.method run ()V
    getstatic Main.x I
    iconst 2
    imul
    putstatic Main.y I          ; y = x * 2
    getstatic Main.y I
    iconst 2
    imul
    putstatic Main.y I          ; y = y * 2
    getstatic Main.y I
    invokestatic System.printInt(I)V
    return
.end

.class Main
.field static x I
.field static y I
.method static main ()V
    new T1
    astore 1
    new T2
    astore 2
    aload 1
    invokestatic Thread.start(LThread;)V
    aload 2
    invokestatic Thread.start(LThread;)V
    aload 1
    invokestatic Thread.join(LThread;)V
    aload 2
    invokestatic Thread.join(LThread;)V
    return
.end
"""

_CD_SOURCE = """
.class T1
.super Thread
.method run ()V
    invokestatic System.currentTimeMillis()I
    putstatic Main.y I                       ; y = Date()
    getstatic Main.y I
    getstatic Main.threshold I
    if_icmpge skipwait                       ; if (y < threshold)
    getstatic Main.o1 LObject;
    monitorenter
    getstatic Main.o1 LObject;
    invokestatic System.wait(LObject;)V      ;     o1.wait()
    getstatic Main.o1 LObject;
    monitorexit
skipwait:
    getstatic Main.x I
    iconst 100
    iadd
    putstatic Main.y I                       ; y = x + 100
    getstatic Main.y I
    invokestatic System.printInt(I)V
    return
.end

.class T2
.super Thread
.method run ()V
    iconst 1
    putstatic Main.x I                       ; x = 1
    getstatic Main.o1 LObject;
    monitorenter
    getstatic Main.o1 LObject;
    invokestatic System.notify(LObject;)V    ; o1.notify()
    getstatic Main.o1 LObject;
    monitorexit
    return
.end

.class Main
.field static x I
.field static y I
.field static threshold I
.field static o1 LObject;
.method static main ()V
    new Object
    putstatic Main.o1 LObject;
    iconst 1000004
    putstatic Main.threshold I
    new T1
    astore 1
    new T2
    astore 2
    aload 1
    invokestatic Thread.start(LThread;)V
    aload 2
    invokestatic Thread.start(LThread;)V
    aload 1
    invokestatic Thread.join(LThread;)V
    aload 2
    invokestatic Thread.join(LThread;)V
    return
.end
"""


def figure1_ab() -> GuestProgram:
    """Scenarios A/B: output depends purely on preemptive switch timing."""
    return GuestProgram.from_source(_AB_SOURCE, name="figure1_ab")


def figure1_cd() -> GuestProgram:
    """Scenarios C/D: a wall-clock value steers a wait/notify switch.

    The threshold is ``1_000_004`` so that a
    :class:`~repro.vm.timerdev.SeededJitterClock` starting at its default
    ``1_000_000`` produces values on either side of the threshold
    depending on how many reads (and how much jitter) precede T1's read —
    the Figure 1-(C)/(D) pair.
    """
    return GuestProgram.from_source(_CD_SOURCE, name="figure1_cd")
