"""Readers/writers — a MiniJ workload (compiled from source, not assembly).

A writers-priority readers/writers lock built from one monitor: readers
proceed together unless a writer is waiting; writers get exclusive access.
Reader threads accumulate a checksum of the shared table; writer threads
mutate it.  The final table state depends only on the *number* of writer
rounds (writes are commutative increments), so ``sum=`` is schedule-
independent while the read-side observations (``seen=``) are not — a good
accuracy probe for replaying wait/notifyAll storms.
"""

from __future__ import annotations

from repro.api import GuestProgram
from repro.lang import compile_source

_SOURCE = """
class RwLock {
    int readers;
    int writers;
    int writersWaiting;

    void lockRead() {
        synchronized (this) {
            while (this.writers > 0 || this.writersWaiting > 0) {
                System.wait(this);
            }
            this.readers += 1;
        }
    }
    void unlockRead() {
        synchronized (this) {
            this.readers -= 1;
            if (this.readers == 0) {
                System.notifyAll(this);
            }
        }
    }
    void lockWrite() {
        synchronized (this) {
            this.writersWaiting += 1;
            while (this.readers > 0 || this.writers > 0) {
                System.wait(this);
            }
            this.writersWaiting -= 1;
            this.writers = 1;
        }
    }
    void unlockWrite() {
        synchronized (this) {
            this.writers = 0;
            System.notifyAll(this);
        }
    }
}

class Reader extends Thread {
    int rounds;
    void run() {
        for (int r = 0; r < this.rounds; r++) {
            Main.lock.lockRead();
            int snapshot = 0;
            for (int i = 0; i < Main.table.length; i++) {
                snapshot += Main.table[i];
            }
            synchronized (Main.statsLock) { Main.seen ^= snapshot; }
            Main.lock.unlockRead();
            if (r % 4 == 0) Thread.yield();
        }
    }
}

class Writer extends Thread {
    int rounds;
    int stride;
    void run() {
        for (int r = 0; r < this.rounds; r++) {
            Main.lock.lockWrite();
            for (int i = 0; i < Main.table.length; i += 1) {
                Main.table[i] = Main.table[i] + this.stride;
            }
            Main.lock.unlockWrite();
            if (r % 3 == 0) Thread.sleep(1);
        }
    }
}

class Main {
    static RwLock lock;
    static Object statsLock;
    static int[] table;
    static int seen;

    static void main() {
        Main.lock = new RwLock();
        Main.statsLock = new Object();
        Main.table = new int[NREADERS + NWRITERS];

        Thread[] workers = new Thread[NREADERS + NWRITERS];
        for (int i = 0; i < NREADERS; i++) {
            Reader rd = new Reader();
            rd.rounds = ROUNDS;
            workers[i] = rd;
        }
        for (int i = 0; i < NWRITERS; i++) {
            Writer wr = new Writer();
            wr.rounds = ROUNDS;
            wr.stride = i + 1;
            workers[NREADERS + i] = wr;
        }
        for (int i = 0; i < workers.length; i++) Thread.start(workers[i]);
        for (int i = 0; i < workers.length; i++) Thread.join(workers[i]);

        int sum = 0;
        for (int i = 0; i < Main.table.length; i++) sum += Main.table[i];
        System.print("sum=");
        System.printInt(sum);
        System.print(" seen=");
        System.printInt(Main.seen);
    }
}
"""


def readers_writers(
    n_readers: int = 3, n_writers: int = 2, rounds: int = 8
) -> GuestProgram:
    source = (
        _SOURCE.replace("NREADERS", str(n_readers))
        .replace("NWRITERS", str(n_writers))
        .replace("ROUNDS", str(rounds))
    )
    return GuestProgram(
        classdefs=compile_source(source), name="readers_writers"
    )


def expected_sum(n_readers: int = 3, n_writers: int = 2, rounds: int = 8) -> int:
    """Every writer adds its stride to every slot, ``rounds`` times."""
    slots = n_readers + n_writers
    per_slot = sum(range(1, n_writers + 1)) * rounds
    return slots * per_slot
