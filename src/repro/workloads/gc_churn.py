"""GC churn + deep recursion + identity hashes: the symmetry stressor.

Two threads allocate garbage in a loop (forcing collections), observe
``System.identityHashCode`` of freshly allocated objects (making heap
*addresses* guest-visible — the canary for allocation-stream divergence),
and periodically recurse deeply (driving the activation stack toward its
growth threshold — the canary for stack-overflow asymmetry).

Any of the paper's §2.4 symmetry mechanisms, when ablated, shifts either
the allocation stream or the stack-growth points between record and
replay, and this workload turns that shift into differing output.
"""

from __future__ import annotations

from repro.api import GuestProgram


def _source(iters: int, depth: int, hash_every: int) -> str:
    return f"""
.class Node
.field next LNode;
.field value I

.class Churner
.super Thread
.method run ()V
    iconst 0
    istore 1
loop:
    iload 1
    iconst {iters}
    if_icmpge done
    ; allocate a small chain of nodes (garbage after this iteration)
    new Node
    astore 2
    new Node
    astore 3
    aload 2
    aload 3
    putfield Node.next LNode;
    aload 2
    iload 1
    putfield Node.value I
    ; every few iterations, mix an identity hash into the checksum
    iload 1
    iconst {hash_every}
    irem
    ifne nohash
    getstatic Main.hashes I
    aload 2
    invokestatic System.identityHashCode(LObject;)I
    ixor
    putstatic Main.hashes I
nohash:
    ; every few iterations, recurse deeply (stack pressure)
    iload 1
    iconst 7
    irem
    ifne norec
    iconst {depth}
    invokestatic Churner.deep(I)I
    getstatic Main.depthSum I
    iadd
    putstatic Main.depthSum I
norec:
    iinc 1 1
    goto loop
done:
    return
.end
.method static deep (I)I
    iload 0
    ifgt more
    iconst 0
    ireturn
more:
    iload 0
    iconst 1
    isub
    invokestatic Churner.deep(I)I
    iconst 1
    iadd
    ireturn
.end

.class Main
.field static hashes I
.field static depthSum I
.method static main ()V
    new Churner
    astore 1
    new Churner
    astore 2
    aload 1
    invokestatic Thread.start(LThread;)V
    aload 2
    invokestatic Thread.start(LThread;)V
    aload 1
    invokestatic Thread.join(LThread;)V
    aload 2
    invokestatic Thread.join(LThread;)V
    ldc "hashes="
    invokestatic System.print(LString;)V
    getstatic Main.hashes I
    invokestatic System.printInt(I)V
    ldc " depthSum="
    invokestatic System.print(LString;)V
    getstatic Main.depthSum I
    invokestatic System.printInt(I)V
    return
.end
"""


def gc_churn(iters: int = 80, depth: int = 40, hash_every: int = 3) -> GuestProgram:
    return GuestProgram.from_source(
        _source(iters, depth, hash_every), name="gc_churn"
    )
