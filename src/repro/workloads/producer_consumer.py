"""Bounded-buffer producer/consumer over ``wait``/``notifyAll``.

Producers push sequence numbers into a fixed-capacity ring; consumers pop
and accumulate a checksum.  All switches here are *deterministic*
(monitor contention and wait/notify) except timer preemptions — so this
workload exercises exactly the paper's claim that synchronization switches
need no trace records because the thread package is replayed.
"""

from __future__ import annotations

from repro.api import GuestProgram


def _source(producers: int, consumers: int, items_per_producer: int, capacity: int) -> str:
    total = producers * items_per_producer
    return f"""
.class Ring
.field buf [I
.field head I
.field tail I
.field count I
.method init ()V
    aload 0
    iconst {capacity}
    newarray
    putfield Ring.buf [I
    return
.end
.method put (I)V
full:
    aload 0
    getfield Ring.count I
    iconst {capacity}
    if_icmplt ok
    aload 0
    invokestatic System.wait(LObject;)V
    goto full
ok:
    aload 0
    getfield Ring.buf [I
    aload 0
    getfield Ring.tail I
    iload 1
    iastore
    aload 0
    aload 0
    getfield Ring.tail I
    iconst 1
    iadd
    iconst {capacity}
    irem
    putfield Ring.tail I
    aload 0
    aload 0
    getfield Ring.count I
    iconst 1
    iadd
    putfield Ring.count I
    aload 0
    invokestatic System.notifyAll(LObject;)V
    return
.end
.method take ()I
empty:
    aload 0
    getfield Ring.count I
    ifgt ok
    aload 0
    invokestatic System.wait(LObject;)V
    goto empty
ok:
    aload 0
    getfield Ring.buf [I
    aload 0
    getfield Ring.head I
    iaload
    istore 1
    aload 0
    aload 0
    getfield Ring.head I
    iconst 1
    iadd
    iconst {capacity}
    irem
    putfield Ring.head I
    aload 0
    aload 0
    getfield Ring.count I
    iconst 1
    isub
    putfield Ring.count I
    aload 0
    invokestatic System.notifyAll(LObject;)V
    iload 1
    ireturn
.end

.class Producer
.super Thread
.field base I
.method run ()V
    iconst 0
    istore 1
loop:
    iload 1
    iconst {items_per_producer}
    if_icmpge done
    getstatic Main.ring LRing;
    monitorenter
    getstatic Main.ring LRing;
    aload 0
    getfield Producer.base I
    iload 1
    iadd
    invokevirtual Ring.put(I)V
    getstatic Main.ring LRing;
    monitorexit
    iinc 1 1
    goto loop
done:
    return
.end

.class Consumer
.super Thread
.method run ()V
loop:
    getstatic Main.taken I
    iconst {total}
    if_icmpge done
    getstatic Main.ring LRing;
    monitorenter
    getstatic Main.taken I
    iconst {total}
    if_icmpge unlock
    getstatic Main.taken I
    iconst 1
    iadd
    putstatic Main.taken I
    getstatic Main.ring LRing;
    invokevirtual Ring.take()I
    getstatic Main.sum I
    iadd
    putstatic Main.sum I
unlock:
    getstatic Main.ring LRing;
    monitorexit
    goto loop
done:
    return
.end

.class Main
.field static ring LRing;
.field static sum I
.field static taken I
.field static workers [LThread;
.method static main ()V
    new Ring
    dup
    invokevirtual Ring.init()V
    putstatic Main.ring LRing;
    iconst {producers + consumers}
    anewarray LThread;
    putstatic Main.workers [LThread;
    iconst 0
    istore 0
mkprod:
    iload 0
    iconst {producers}
    if_icmpge mkcons
    new Producer
    astore 1
    aload 1
    iload 0
    iconst {items_per_producer}
    imul
    putfield Producer.base I
    getstatic Main.workers [LThread;
    iload 0
    aload 1
    aastore
    iinc 0 1
    goto mkprod
mkcons:
    iload 0
    iconst {producers + consumers}
    if_icmpge launch
    getstatic Main.workers [LThread;
    iload 0
    new Consumer
    aastore
    iinc 0 1
    goto mkcons
launch:
    iconst 0
    istore 0
startloop:
    iload 0
    iconst {producers + consumers}
    if_icmpge joinall
    getstatic Main.workers [LThread;
    iload 0
    aaload
    invokestatic Thread.start(LThread;)V
    iinc 0 1
    goto startloop
joinall:
    iconst 0
    istore 0
joinloop:
    iload 0
    iconst {producers + consumers}
    if_icmpge report
    getstatic Main.workers [LThread;
    iload 0
    aaload
    invokestatic Thread.join(LThread;)V
    iinc 0 1
    goto joinloop
report:
    ldc "sum="
    invokestatic System.print(LString;)V
    getstatic Main.sum I
    invokestatic System.printInt(I)V
    return
.end
"""


def producer_consumer(
    producers: int = 2,
    consumers: int = 2,
    items_per_producer: int = 30,
    capacity: int = 4,
) -> GuestProgram:
    """Bounded buffer; the final ``sum`` is deterministic, the interleaving
    is not — a good accuracy stress for monitor/wait replay."""
    return GuestProgram.from_source(
        _source(producers, consumers, items_per_producer, capacity),
        name="producer_consumer",
    )
