"""The shared workload registry: every CLI-visible workload in one place.

Before this module existed each consumer kept its own ad-hoc list —
``ALL_WORKLOADS`` for the tests, hand-written factories elsewhere — and
workloads like ``gc_churn`` and ``philosophers`` were invisible to the
CLI entirely.  A :class:`WorkloadSpec` bundles what every consumer needs:

* ``factory`` + ``defaults`` — build the program (``repro run
  --workload bank``);
* ``explore_kwargs`` — a deliberately small instance for systematic
  schedule exploration, where run count dominates run length;
* ``make_oracle`` — the workload's correctness condition as a function
  of the build kwargs, so ``repro explore`` knows a wrong answer when it
  sees one (trap/deadlock detection needs no oracle and always applies).

Specs are looked up by name or alias via :func:`get_workload`; the
mapping in :data:`REGISTRY` is keyed by canonical name only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.vm.errors import VMError
from repro.workloads.bank import racy_bank, synced_bank
from repro.workloads.figure1 import figure1_ab, figure1_cd
from repro.workloads.gc_churn import gc_churn
from repro.workloads.philosophers import philosophers
from repro.workloads.producer_consumer import producer_consumer
from repro.workloads.readers_writers import readers_writers
from repro.workloads.server import server
from repro.workloads.sorter import sorter

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import GuestProgram
    from repro.vm.scheduler_types import RunResult

#: oracle over a finished run: None = pass, string = failure description
Oracle = Callable[["RunResult"], "str | None"]


@dataclass
class WorkloadSpec:
    """One registered workload: how to build it and how to judge it."""

    name: str
    factory: "Callable[..., GuestProgram]"
    description: str
    defaults: dict = field(default_factory=dict)
    #: overrides for exploration (small instances: many runs beat long runs)
    explore_kwargs: dict = field(default_factory=dict)
    #: build kwargs -> oracle; None when trap/deadlock is the only failure
    make_oracle: "Callable[[dict], Oracle] | None" = None
    aliases: tuple = ()

    def merged_kwargs(self, overrides: "dict | None" = None, *, explore: bool = False) -> dict:
        kwargs = dict(self.defaults)
        if explore:
            kwargs.update(self.explore_kwargs)
        if overrides:
            kwargs.update(overrides)
        return kwargs

    def _check_known(self, resolved: dict) -> None:
        unknown = set(resolved) - set(self.defaults) - set(self.explore_kwargs)
        if unknown:
            from repro.vm.errors import UsageError

            raise UsageError(
                f"workload {self.name!r} has no parameter "
                f"{', '.join(sorted(unknown))} (known: "
                f"{', '.join(sorted(set(self.defaults) | set(self.explore_kwargs)))})"
            )

    def build(self, kwargs: "dict | None" = None) -> "GuestProgram":
        resolved = kwargs or self.defaults
        self._check_known(resolved)
        return self.factory(**resolved)

    def program_factory(self, kwargs: "dict | None" = None):
        """A zero-arg factory producing a *fresh* program per call (stateful
        natives — e.g. the server's network source — are per-instance)."""
        resolved = dict(kwargs) if kwargs is not None else dict(self.defaults)
        self._check_known(resolved)
        return lambda: self.factory(**resolved)

    def oracle(self, kwargs: "dict | None" = None) -> "Oracle | None":
        if self.make_oracle is None:
            return None
        return self.make_oracle(kwargs if kwargs is not None else dict(self.defaults))


# ---------------------------------------------------------------------------
# oracles


def _bank_oracle(kwargs: dict) -> Oracle:
    want = kwargs.get("tellers", 3) * kwargs.get("deposits", 40)

    def oracle(result: "RunResult") -> "str | None":
        got = result.output_text.strip()
        if got != f"balance={want}":
            return f"lost update: {got!r} (want balance={want})"
        return None

    return oracle


def _server_oracle(kwargs: dict) -> Oracle:
    want = kwargs.get("n_requests", 40)

    def oracle(result: "RunResult") -> "str | None":
        last = result.output_text.splitlines()[-1] if result.output_text else ""
        if not last.startswith("served="):
            return f"missing report line: {last!r}"
        served = int(last.split()[0].split("=", 1)[1])
        if served != want:
            return f"lost served update: served={served} (want {want})"
        return None

    return oracle


def _producer_consumer_oracle(kwargs: dict) -> Oracle:
    producers = kwargs.get("producers", 2)
    per = kwargs.get("items_per_producer", 30)
    want = sum(range(producers * per))  # items are 0..n-1, summed by consumers

    def oracle(result: "RunResult") -> "str | None":
        last = result.output_text.splitlines()[-1] if result.output_text else ""
        if last != f"sum={want}":
            return f"wrong sum: {last!r} (want sum={want})"
        return None

    return oracle


# ---------------------------------------------------------------------------
# the registry


_SPECS = [
    WorkloadSpec(
        name="racy_bank",
        factory=racy_bank,
        description="unsynchronized balance += 1 — the lost-update race",
        defaults=dict(tellers=3, deposits=40),
        explore_kwargs=dict(tellers=2, deposits=6),
        make_oracle=_bank_oracle,
        aliases=("bank",),
    ),
    WorkloadSpec(
        name="synced_bank",
        factory=synced_bank,
        description="the bank with the update inside a monitor (race-free)",
        defaults=dict(tellers=3, deposits=40),
        explore_kwargs=dict(tellers=2, deposits=6),
        make_oracle=_bank_oracle,
    ),
    WorkloadSpec(
        name="server",
        factory=server,
        description="request queue + worker pool over a nondet network native",
        defaults=dict(n_workers=3, n_requests=40, seed=0, work_scale=10),
        explore_kwargs=dict(
            n_workers=2, n_requests=6, work_scale=1, served_window=3
        ),
        make_oracle=_server_oracle,
    ),
    WorkloadSpec(
        name="producer_consumer",
        factory=producer_consumer,
        description="bounded buffer with wait/notify",
        defaults=dict(producers=2, consumers=2, items_per_producer=30, capacity=4),
        explore_kwargs=dict(producers=2, consumers=1, items_per_producer=4, capacity=2),
        make_oracle=_producer_consumer_oracle,
    ),
    WorkloadSpec(
        name="philosophers",
        factory=philosophers,
        description="dining philosophers over object monitors",
        defaults=dict(n=4, rounds=12, nap_every=5),
        explore_kwargs=dict(n=3, rounds=3, nap_every=2),
    ),
    WorkloadSpec(
        name="sorter",
        factory=sorter,
        description="parallel sort/merge: CPU + allocation pressure",
        defaults=dict(n_workers=3, chunk=48),
        explore_kwargs=dict(n_workers=2, chunk=8),
    ),
    WorkloadSpec(
        name="gc_churn",
        factory=gc_churn,
        description="allocation churn, deep recursion, identity hashes",
        defaults=dict(iters=80, depth=40, hash_every=3),
        explore_kwargs=dict(iters=10, depth=8, hash_every=3),
    ),
    WorkloadSpec(
        name="readers_writers",
        factory=readers_writers,
        description="writers-priority read/write lock (MiniJ)",
        defaults=dict(n_readers=3, n_writers=2, rounds=8),
        explore_kwargs=dict(n_readers=2, n_writers=1, rounds=2),
    ),
    WorkloadSpec(
        name="figure1_ab",
        factory=figure1_ab,
        description="paper Figure 1 scenarios A/B: switch-timing divergence",
    ),
    WorkloadSpec(
        name="figure1_cd",
        factory=figure1_cd,
        description="paper Figure 1 scenarios C/D: clock-steered divergence",
    ),
]

REGISTRY: dict[str, WorkloadSpec] = {spec.name: spec for spec in _SPECS}

_ALIASES: dict[str, str] = {
    alias: spec.name for spec in _SPECS for alias in spec.aliases
}


def workload_names() -> list[str]:
    """Canonical names plus aliases, for CLI choices/help."""
    return sorted(REGISTRY) + sorted(_ALIASES)


def canonical_workload_key(name: str, kwargs: "dict | None" = None) -> str:
    """A stable identity string for (workload, build kwargs) — the key the
    campaign corpus and results store group by.  Aliases resolve to the
    canonical name and kwargs are sorted, so the same build always maps
    to the same key no matter how it was spelled."""
    spec = get_workload(name)
    resolved = spec.merged_kwargs(kwargs)
    params = ",".join(f"{k}={resolved[k]}" for k in sorted(resolved))
    return f"{spec.name}({params})"


def get_workload(name: str) -> WorkloadSpec:
    spec = REGISTRY.get(_ALIASES.get(name, name))
    if spec is None:
        raise VMError(
            f"unknown workload {name!r} (have: {', '.join(workload_names())})"
        )
    return spec
