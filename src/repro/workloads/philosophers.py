"""Dining philosophers over object monitors (deadlock-free ordering).

Each philosopher grabs the lower-numbered fork first (total order on
locks), eats — a short compute loop plus an occasional ``Thread.sleep`` —
and releases.  Exercises nested ``monitorenter``, contended hand-off, and
timed events together.
"""

from __future__ import annotations

from repro.api import GuestProgram


def _source(n: int, rounds: int, nap_every: int) -> str:
    return f"""
.class Phil
.super Thread
.field seat I
.method run ()V
    iconst 0
    istore 1                     ; round
loop:
    iload 1
    iconst {rounds}
    if_icmpge done
    ; first = min(seat, (seat+1)%n), second = max(...)
    aload 0
    getfield Phil.seat I
    istore 2
    iload 2
    iconst 1
    iadd
    iconst {n}
    irem
    istore 3
    iload 2
    iload 3
    if_icmplt ordered
    iload 2
    istore 4
    iload 3
    istore 2
    iload 4
    istore 3
ordered:
    getstatic Main.forks [LObject;
    iload 2
    aaload
    monitorenter
    getstatic Main.forks [LObject;
    iload 3
    aaload
    monitorenter
    ; eat: bump the shared meal counter (guarded by both forks)
    getstatic Main.meals I
    iconst 1
    iadd
    putstatic Main.meals I
    getstatic Main.forks [LObject;
    iload 3
    aaload
    monitorexit
    getstatic Main.forks [LObject;
    iload 2
    aaload
    monitorexit
    ; think: nap every few rounds (timed event)
    iload 1
    iconst {nap_every}
    irem
    ifne nonap
    iconst 2
    invokestatic Thread.sleep(I)V
nonap:
    iinc 1 1
    goto loop
done:
    return
.end

.class Main
.field static forks [LObject;
.field static phils [LThread;
.field static meals I
.method static main ()V
    iconst {n}
    anewarray LObject;
    putstatic Main.forks [LObject;
    iconst 0
    istore 0
mkforks:
    iload 0
    iconst {n}
    if_icmpge mkphils
    getstatic Main.forks [LObject;
    iload 0
    new Object
    aastore
    iinc 0 1
    goto mkforks
mkphils:
    iconst {n}
    anewarray LThread;
    putstatic Main.phils [LThread;
    iconst 0
    istore 0
mkloop:
    iload 0
    iconst {n}
    if_icmpge launch
    new Phil
    astore 1
    aload 1
    iload 0
    putfield Phil.seat I
    getstatic Main.phils [LThread;
    iload 0
    aload 1
    aastore
    iinc 0 1
    goto mkloop
launch:
    iconst 0
    istore 0
startloop:
    iload 0
    iconst {n}
    if_icmpge joinall
    getstatic Main.phils [LThread;
    iload 0
    aaload
    invokestatic Thread.start(LThread;)V
    iinc 0 1
    goto startloop
joinall:
    iconst 0
    istore 0
joinloop:
    iload 0
    iconst {n}
    if_icmpge report
    getstatic Main.phils [LThread;
    iload 0
    aaload
    invokestatic Thread.join(LThread;)V
    iinc 0 1
    goto joinloop
report:
    ldc "meals="
    invokestatic System.print(LString;)V
    getstatic Main.meals I
    invokestatic System.printInt(I)V
    return
.end
"""


def philosophers(n: int = 4, rounds: int = 12, nap_every: int = 5) -> GuestProgram:
    return GuestProgram.from_source(_source(n, rounds, nap_every), name="philosophers")
