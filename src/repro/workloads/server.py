"""The server workload — the paper's motivating application shape.

A listener thread pulls request ids from a *non-deterministic* simulated
network native (``Net.recv()I`` — JNI per §2.5: only its return value
reaches the guest, and DejaVu records/replays it), enqueues them into a
monitor-guarded queue, and a pool of workers dequeues with timed waits,
"processes" each request (a compute loop whose length depends on the
request id), and prints a response line.  The interleaving of responses
is highly non-deterministic; their multiset is not.

``Net.recv`` also demonstrates a JNI *callback*: every 8th request it
schedules an upcall into ``Main.netStats(II)V`` with packet statistics —
the callback parameters are recorded and regenerated on replay.
"""

from __future__ import annotations

import random

from repro.api import GuestProgram
from repro.vm.native import NativeResult


def _served_update(served_window: int) -> str:
    if served_window <= 0:
        # getstatic/iadd/putstatic back to back: no yield point can fall
        # between the read and the write, so the increment is atomic on
        # green threads even though it is unsynchronized.
        return """\
    getstatic Main.served I
    iconst 1
    iadd
    putstatic Main.served I"""
    # Seeded atomicity bug: park the stale value in a local and burn a
    # stall loop before writing it back.  The loop back-edge carries a
    # yield point, so a preemption inside the window loses an update —
    # the bug `repro explore` hunts on this workload.
    return f"""\
    getstatic Main.served I
    istore 4
    iconst 0
    istore 5
svcstall:
    iload 5
    iconst {served_window}
    if_icmpge svcbump
    iinc 5 1
    goto svcstall
svcbump:
    iload 4
    iconst 1
    iadd
    putstatic Main.served I"""


def _source(
    n_workers: int, n_requests: int, work_scale: int, served_window: int
) -> str:
    return f"""
.class Queue
.field buf [I
.field head I
.field tail I
.field count I
.field closed I
.method init (I)V
    aload 0
    iload 1
    newarray
    putfield Queue.buf [I
    return
.end
.method push (I)V
    aload 0
    getfield Queue.buf [I
    aload 0
    getfield Queue.tail I
    iload 1
    iastore
    aload 0
    aload 0
    getfield Queue.tail I
    iconst 1
    iadd
    aload 0
    getfield Queue.buf [I
    arraylength
    irem
    putfield Queue.tail I
    aload 0
    aload 0
    getfield Queue.count I
    iconst 1
    iadd
    putfield Queue.count I
    aload 0
    invokestatic System.notifyAll(LObject;)V
    return
.end
.method pop ()I
    ; returns -1 when closed and drained
wait:
    aload 0
    getfield Queue.count I
    ifgt have
    aload 0
    getfield Queue.closed I
    ifeq block
    iconst -1
    ireturn
block:
    aload 0
    iconst 20
    invokestatic System.timedWait(LObject;I)V
    goto wait
have:
    aload 0
    getfield Queue.buf [I
    aload 0
    getfield Queue.head I
    iaload
    istore 1
    aload 0
    aload 0
    getfield Queue.head I
    iconst 1
    iadd
    aload 0
    getfield Queue.buf [I
    arraylength
    irem
    putfield Queue.head I
    aload 0
    aload 0
    getfield Queue.count I
    iconst 1
    isub
    putfield Queue.count I
    iload 1
    ireturn
.end

.class Net
.native static recv ()I

.class Listener
.super Thread
.method run ()V
    iconst 0
    istore 1
loop:
    iload 1
    iconst {n_requests}
    if_icmpge close
    invokestatic Net.recv()I
    istore 2
    getstatic Main.queue LQueue;
    monitorenter
    getstatic Main.queue LQueue;
    iload 2
    invokevirtual Queue.push(I)V
    getstatic Main.queue LQueue;
    monitorexit
    iinc 1 1
    goto loop
close:
    getstatic Main.queue LQueue;
    monitorenter
    getstatic Main.queue LQueue;
    iconst 1
    putfield Queue.closed I
    getstatic Main.queue LQueue;
    invokestatic System.notifyAll(LObject;)V
    getstatic Main.queue LQueue;
    monitorexit
    return
.end

.class Worker
.super Thread
.method run ()V
loop:
    getstatic Main.queue LQueue;
    monitorenter
    getstatic Main.queue LQueue;
    invokevirtual Queue.pop()I
    istore 1
    getstatic Main.queue LQueue;
    monitorexit
    iload 1
    iconst -1
    if_icmpeq done
    ; process: a compute loop scaled by (request % 7)
    iload 1
    iconst 7
    irem
    iconst {work_scale}
    imul
    istore 2
    iconst 0
    istore 3
work:
    iload 3
    iload 2
    if_icmpge respond
    iinc 3 1
    goto work
respond:
    ldc "resp:"
    invokestatic System.print(LString;)V
    iload 1
    invokestatic System.printInt(I)V
    ldc "\\n"
    invokestatic System.print(LString;)V
{_served_update(served_window)}
    goto loop
done:
    return
.end

.class Main
.field static queue LQueue;
.field static served I
.field static statPackets I
.field static statBytes I
.field static workers [LThread;
.method static netStats (II)V
    ; JNI callback target: accumulate native-reported statistics
    getstatic Main.statPackets I
    iload 0
    iadd
    putstatic Main.statPackets I
    getstatic Main.statBytes I
    iload 1
    iadd
    putstatic Main.statBytes I
    return
.end
.method static main ()V
    new Queue
    dup
    iconst 64
    invokevirtual Queue.init(I)V
    putstatic Main.queue LQueue;
    iconst {n_workers + 1}
    anewarray LThread;
    putstatic Main.workers [LThread;
    getstatic Main.workers [LThread;
    iconst 0
    new Listener
    aastore
    iconst 1
    istore 0
mkworkers:
    iload 0
    iconst {n_workers + 1}
    if_icmpge launch
    getstatic Main.workers [LThread;
    iload 0
    new Worker
    aastore
    iinc 0 1
    goto mkworkers
launch:
    iconst 0
    istore 0
startloop:
    iload 0
    iconst {n_workers + 1}
    if_icmpge joinall
    getstatic Main.workers [LThread;
    iload 0
    aaload
    invokestatic Thread.start(LThread;)V
    iinc 0 1
    goto startloop
joinall:
    iconst 0
    istore 0
joinloop:
    iload 0
    iconst {n_workers + 1}
    if_icmpge report
    getstatic Main.workers [LThread;
    iload 0
    aaload
    invokestatic Thread.join(LThread;)V
    iinc 0 1
    goto joinloop
report:
    ldc "served="
    invokestatic System.print(LString;)V
    getstatic Main.served I
    invokestatic System.printInt(I)V
    ldc " packets="
    invokestatic System.print(LString;)V
    getstatic Main.statPackets I
    invokestatic System.printInt(I)V
    ldc " bytes="
    invokestatic System.print(LString;)V
    getstatic Main.statBytes I
    invokestatic System.printInt(I)V
    return
.end
"""


class _NetSource:
    """Host side of the simulated network: jittered request ids + callbacks."""

    def __init__(self, seed: int | None):
        self._rng = random.Random(seed)
        self._count = 0

    def recv(self, ctx) -> NativeResult:
        self._count += 1
        request_id = 1000 + self._rng.randrange(0, 97)
        result = NativeResult(value=request_id)
        if self._count % 8 == 0:
            # JNI callback: parameters flow guest-ward and are recorded.
            result.upcalls.append(
                ("Main.netStats(II)V", (8, self._rng.randrange(100, 2000)))
            )
        return result


def server(
    n_workers: int = 3,
    n_requests: int = 40,
    seed: int | None = 0,
    work_scale: int = 10,
    served_window: int = 0,
) -> GuestProgram:
    """``served_window > 0`` seeds an atomicity bug into the workers'
    ``served`` counter update (a stall loop between read and write);
    the default keeps the increment preemption-atomic."""
    net = _NetSource(seed)
    return GuestProgram.from_source(
        _source(n_workers, n_requests, work_scale, served_window),
        name="server",
        natives=[("Net.recv()I", net.recv, True)],
    )
