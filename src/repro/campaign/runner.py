"""The fleet-scale campaign runner: shard a deterministic work-list
across N worker processes.

A :class:`Campaign` takes a picklable *payload* (which single-process
engine to run — see :mod:`repro.campaign.jobs`) and a deterministic
work-list of *items* (schedules or fault indices).  Items are sharded
round-robin across ``jobs`` workers; each worker builds the engine once
(warm — the expensive baselines amortise across its shard, iReplayer's
in-situ model applied to sweeps) and streams one result message per
item back to the parent.

The determinism contract: every item's result is a pure function of
``(payload, item)`` — workers share nothing and the parent merges into
structures keyed by work-list index — so ``jobs=1`` and ``jobs=N`` are
observably identical, which ``tests/test_campaign_differential.py``
pins.  ``jobs=1`` runs inline in the parent through the *same* item
runner: the serial twin is the same code, minus the processes.

Failure handling — a shard is never silently dropped:

* a worker that **dies** (crash, ``os._exit``, OOM kill) is detected by
  liveness polling; its unfinished items are reassigned to a freshly
  spawned worker (up to a restart budget);
* a worker that **hangs** (no message within ``watchdog`` seconds while
  holding unfinished items) is terminated and treated the same way;
* when the restart budget is exhausted, the parent runs the remaining
  items **inline** itself — coverage is guaranteed, and every incident
  is recorded as a typed :class:`WorkerIncident` on the outcome.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import threading
import time
from dataclasses import dataclass, field

from repro.vm.errors import VMError


class CampaignHarnessError(VMError):
    """The campaign runner itself failed in a way reassignment cannot
    mask (e.g. the item runner cannot even be constructed)."""


@dataclass
class WorkerIncident:
    """One worker failure the runner survived, as a typed diagnostic."""

    worker_id: int
    kind: str  # "crash" | "hang" | "fatal"
    detail: str
    reassigned: int

    def describe(self) -> str:
        return (
            f"worker {self.worker_id} {self.kind}: {self.detail} "
            f"({self.reassigned} item(s) reassigned)"
        )


@dataclass
class CampaignOutcome:
    """Merged results of one campaign: per-item results keyed by the
    item's position in the work-list (shard order can never leak)."""

    jobs: int
    total: int
    results: "dict[int, dict]" = field(default_factory=dict)
    incidents: "list[WorkerIncident]" = field(default_factory=list)

    @property
    def covered(self) -> bool:
        return len(self.results) == self.total


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        return multiprocessing.get_context("spawn")


def _worker_entry(worker_id, payload, shard, out_queue, sabotage=None):
    """Worker main: build the item runner once, stream one message per
    item.  Module-level so every start method can import it.

    *sabotage* is the campaign's own fault-injection seam (tests only):
    ``{"worker": W, "after": K}`` makes worker W die via ``os._exit``
    after its K-th completed item — exactly the mid-shard death the
    reassignment path must survive.
    """
    from repro.campaign.jobs import make_item_runner

    try:
        runner = make_item_runner(payload)
    except Exception as exc:  # noqa: BLE001 - shipped as a typed message
        out_queue.put(("fatal", worker_id, f"{type(exc).__name__}: {exc}"))
        return
    completed = 0
    try:
        for index, item in shard:
            try:
                result = runner.run(item)
            except Exception as exc:  # noqa: BLE001 - per-item containment
                result = {"error": f"{type(exc).__name__}: {exc}"}
            out_queue.put(("item", worker_id, index, result))
            completed += 1
            if (
                sabotage
                and worker_id == sabotage.get("worker")
                and completed >= sabotage.get("after", 1)
            ):
                os._exit(13)  # simulated kill -9 mid-shard
        out_queue.put(("done", worker_id))
    finally:
        runner.close()


class WorkerBackend:
    """Strategy seam: *how* a campaign's items reach worker processes.

    A backend delivers item results through ``campaign._accept`` (which
    is idempotent and thread-safe) and appends a typed
    :class:`WorkerIncident` for every failure it survived.  A backend is
    **not** required to deliver every item: whatever is still missing
    when it returns, :meth:`Campaign.run` re-runs inline in the parent —
    the shared bottom rung of the degradation ladder — so coverage is a
    campaign guarantee, not a per-backend obligation.

    Implementations: :class:`ForkBackend` (local fork workers, the
    default) and :class:`repro.campaign.pool.RemoteWorkerPool` (remote
    hosts over the framed TCP protocol).
    """

    def run(self, campaign: "Campaign", indexed, outcome: CampaignOutcome) -> None:
        raise NotImplementedError


class Campaign:
    def __init__(
        self,
        payload: dict,
        items: list,
        *,
        jobs: int = 1,
        watchdog: float = 300.0,
        max_restarts: "int | None" = None,
        progress=None,
        backend: "WorkerBackend | None" = None,
        _sabotage: "dict | None" = None,
    ):
        if jobs < 1:
            raise VMError(f"campaign jobs must be >= 1 (got {jobs})")
        self.payload = payload
        self.items = list(items)
        self.jobs = jobs
        self.watchdog = watchdog
        self.max_restarts = max_restarts
        self.progress = progress
        self.backend = backend
        self._sabotage = _sabotage
        self._accept_lock = threading.Lock()

    # ------------------------------------------------------------------

    def run(self) -> CampaignOutcome:
        indexed = list(enumerate(self.items))
        outcome = CampaignOutcome(jobs=self.jobs, total=len(indexed))
        if not indexed:
            return outcome
        if self.backend is None and self.jobs == 1 and self._sabotage is None:
            self._run_inline(indexed, outcome)
            return outcome
        backend = self.backend if self.backend is not None else ForkBackend()
        backend.run(self, indexed, outcome)
        # the coverage guarantee, shared by every backend: whatever no
        # worker delivered, the parent runs itself — a dead shard is
        # reassigned (or degraded), never dropped
        item_by_index = dict(indexed)
        missing = sorted(set(item_by_index) - outcome.results.keys())
        if missing:
            self._run_inline(
                [(index, item_by_index[index]) for index in missing], outcome
            )
        if not outcome.covered:  # pragma: no cover - inline fallback raises first
            raise CampaignHarnessError(
                f"campaign lost {outcome.total - len(outcome.results)} item(s) "
                f"despite the inline fallback"
            )
        return outcome

    # ------------------------------------------------------------------

    def _run_inline(self, indexed, outcome: CampaignOutcome) -> None:
        """The serial twin (and the coverage-of-last-resort path): run
        *indexed* items in the parent through the same item runner."""
        from repro.campaign.jobs import make_item_runner

        try:
            runner = make_item_runner(self.payload)
        except VMError:
            raise
        except Exception as exc:
            raise CampaignHarnessError(
                f"cannot build campaign item runner: {exc}"
            ) from exc
        try:
            for index, item in indexed:
                if index in outcome.results:
                    continue
                try:
                    result = runner.run(item)
                except Exception as exc:  # noqa: BLE001 - per-item containment
                    result = {"error": f"{type(exc).__name__}: {exc}"}
                self._accept(outcome, index, result)
        finally:
            runner.close()

    # ------------------------------------------------------------------

    def _accept(self, outcome: CampaignOutcome, index: int, result: dict) -> None:
        with self._accept_lock:
            if index in outcome.results:  # stale duplicate after a reassignment
                return
            outcome.results[index] = result
        if self.progress is not None:
            self.progress(index, result)


class ForkBackend(WorkerBackend):
    """Local fork workers: the default backend (PR 6 behavior).

    Shards round-robin across ``campaign.jobs`` processes, polls a
    result queue, and survives crash/hang/fatal via reassignment within
    a restart budget.
    """

    def run(self, campaign: Campaign, indexed, outcome: CampaignOutcome) -> None:
        ctx = _mp_context()
        out_queue = ctx.Queue()
        item_by_index = dict(indexed)
        jobs = campaign.jobs
        shards = [s for s in (indexed[i::jobs] for i in range(jobs)) if s]
        restart_budget = (
            campaign.max_restarts
            if campaign.max_restarts is not None
            else len(shards) + 2
        )

        procs: dict[int, object] = {}
        assigned: dict[int, set] = {}
        last_seen: dict[int, float] = {}
        finished: set[int] = set()
        orphaned: set[int] = set()
        next_id = 0
        restarts = 0

        def spawn(shard) -> None:
            nonlocal next_id
            worker_id = next_id
            next_id += 1
            proc = ctx.Process(
                target=_worker_entry,
                args=(
                    worker_id,
                    campaign.payload,
                    shard,
                    out_queue,
                    campaign._sabotage,
                ),
                daemon=True,
            )
            proc.start()
            procs[worker_id] = proc
            assigned[worker_id] = {index for index, _ in shard}
            last_seen[worker_id] = time.monotonic()

        def reassign(worker_id: int, kind: str, detail: str) -> None:
            nonlocal restarts
            remaining = sorted(assigned.get(worker_id, set()) - outcome.results.keys())
            outcome.incidents.append(
                WorkerIncident(worker_id, kind, detail, len(remaining))
            )
            finished.add(worker_id)
            if not remaining:
                return
            if restarts < restart_budget:
                restarts += 1
                spawn([(index, item_by_index[index]) for index in remaining])
            else:
                orphaned.update(remaining)

        for shard in shards:
            spawn(shard)

        try:
            while True:
                waiting = set(item_by_index) - outcome.results.keys() - orphaned
                if not waiting:
                    break
                if all(w in finished for w in procs):
                    orphaned.update(waiting)  # no one left to produce them
                    break
                try:
                    message = out_queue.get(timeout=0.25)
                except queue_mod.Empty:
                    now = time.monotonic()
                    for worker_id in [w for w in procs if w not in finished]:
                        proc = procs[worker_id]
                        pending = assigned[worker_id] - outcome.results.keys()
                        if not proc.is_alive():
                            reassign(
                                worker_id,
                                "crash",
                                f"worker process died (exit code {proc.exitcode})",
                            )
                        elif (
                            pending
                            and now - last_seen[worker_id] > campaign.watchdog
                        ):
                            proc.terminate()
                            proc.join(5)
                            reassign(
                                worker_id,
                                "hang",
                                f"no progress within {campaign.watchdog:.0f}s",
                            )
                    continue
                kind = message[0]
                if kind == "item":
                    _, worker_id, index, result = message
                    last_seen[worker_id] = time.monotonic()
                    campaign._accept(outcome, index, result)
                elif kind == "done":
                    finished.add(message[1])
                elif kind == "fatal":
                    _, worker_id, detail = message
                    procs[worker_id].join(5)
                    reassign(worker_id, "fatal", detail)
        finally:
            for proc in procs.values():
                if proc.is_alive():
                    proc.terminate()
                proc.join(2)
            out_queue.close()
            out_queue.join_thread()
