"""Fleet-scale campaigns: shard a deterministic work-list across worker
processes and merge the results into one deterministic report.

The package has three layers:

* :mod:`repro.campaign.runner` — the generic sharded runner
  (:class:`Campaign`): round-robin shards, warm per-worker engines,
  watchdog with crash/hang reassignment, inline coverage fallback;
* :mod:`repro.campaign.jobs` — the job kinds (explore sweeps over
  schedules, fault-injection sweeps over plans) plus the parent-side
  merge into :class:`ExploreCampaignReport` / :class:`FaultsCampaignSweep`;
* :mod:`repro.campaign.corpus` — the content-addressed failure corpus
  every sweep can stream its failing traces into;
* :mod:`repro.campaign.remote` / :mod:`repro.campaign.pool` — the
  multi-host rung: the `repro worker` daemon and the fault-tolerant
  :class:`RemoteWorkerPool` backend with its remote→local degradation
  ladder.

The load-bearing property — pinned by
``tests/test_campaign_differential.py`` — is that ``jobs=1`` and
``jobs=N`` are observably identical: same behaviour-digest set, same
failures, byte-identical corpus.
"""

from repro.campaign.corpus import Corpus, CorpusEntry, entry_name
from repro.campaign.jobs import (
    ExploreCampaignReport,
    FaultsCampaignSweep,
    SweepFailure,
    run_explore_campaign,
    run_faults_campaign,
)
from repro.campaign.pool import RemoteWorkerPool, shutdown_worker
from repro.campaign.remote import WorkerServer, spawn_worker_process
from repro.campaign.runner import (
    Campaign,
    CampaignHarnessError,
    CampaignOutcome,
    ForkBackend,
    WorkerBackend,
    WorkerIncident,
)

__all__ = [
    "Campaign",
    "CampaignHarnessError",
    "CampaignOutcome",
    "Corpus",
    "CorpusEntry",
    "ExploreCampaignReport",
    "FaultsCampaignSweep",
    "ForkBackend",
    "RemoteWorkerPool",
    "SweepFailure",
    "WorkerBackend",
    "WorkerIncident",
    "WorkerServer",
    "entry_name",
    "run_explore_campaign",
    "run_faults_campaign",
    "shutdown_worker",
    "spawn_worker_process",
]
