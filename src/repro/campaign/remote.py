"""The remote campaign wire protocol and the `repro worker` daemon.

Multi-host campaigns ride the platform's one framing discipline — the
u32-big-endian length-prefixed frames of :mod:`repro.core.framing` —
with a campaign-specific payload: each frame carries a **u32-BE CRC32
checksum followed by a pickled message dict**.  The checksum is what
makes a corrupted frame *deterministically detectable*: a bit flipped
in flight (or by the LAYER_REMOTE fault injector) fails the CRC and the
receiver tears the connection down with a typed :class:`FrameError`
instead of unpickling garbage into a silently-wrong result.

Message ops (every message is ``{"op": ..., ...}``):

====================  =========  =============================================
op                    direction  meaning
====================  =========  =============================================
``hello``             → worker   handshake; carries the protocol version
``hello-ok``          ← worker   handshake accepted; carries version + pid
``shard``             → worker   one shard: campaign payload + indexed items
``item``              ← worker   one item result (streamed as produced)
``heartbeat``         ← worker   liveness pulse while a shard is running
``shard-done``        ← worker   shard complete; carries completed count
``ping`` / ``pong``   both       transport keepalive
``shutdown``/``bye``  both       orderly daemon termination
``error``             ← worker   typed in-band failure (bad op, bad payload)
====================  =========  =============================================

The daemon (:class:`WorkerServer`, surfaced as ``repro worker``) serves
one connection at a time — the parent pool uses a connection per shard —
and keeps a **warm item runner per campaign payload** (keyed by payload
digest), so baselines amortise across every shard a host receives,
iReplayer-style.  While a shard runs, a background pump emits
``heartbeat`` frames every ``heartbeat_every`` seconds; the parent's
hang detector treats *any* frame as liveness, so a slow item and a dead
worker are distinguishable.

Trust model: frames carry **pickles**, so the protocol is for hosts you
already trust to run your code (a lab cluster, loopback CI) — exactly
the machines a campaign would shard across.  It is not an
internet-facing protocol.

The ``sabotage`` seam is the LAYER_REMOTE fault injector's hook: a
one-shot fault (dropped / truncated / corrupted frame, mid-shard kill,
stalled heartbeat, slow-loris connect) armed at daemon construction and
consumed the first time it fires, which models the transient faults the
pool's reassignment ladder must absorb without perturbing results.
"""

from __future__ import annotations

import hashlib
import pickle
import socket
import threading
import time

from repro.core.framing import (
    CRC_BYTES,
    FrameDecoder,
    FrameError,
    TransportError,
    decode_pickle_payload,
    encode_pickle_message,
)
from repro.core.server import SocketServer

#: remote protocol revision; bumped on any wire-incompatible change
PROTOCOL_VERSION = 1
#: shard results can carry sealed trace blobs, so the frame cap is far
#: above the debugger protocol's "small packets" 1 MiB
MAX_REMOTE_FRAME_BYTES = 64 << 20

#: the sabotage kinds the daemon understands (the LAYER_REMOTE family)
SABOTAGE_KINDS = (
    "remote-drop-frame",
    "remote-truncate-frame",
    "remote-corrupt-frame",
    "remote-kill-worker",
    "remote-stall-heartbeat",
    "remote-slow-connect",
)


def encode_message(message: dict) -> bytes:
    """One wire frame: length prefix + CRC32 + pickled message.

    The codec itself lives in :mod:`repro.core.framing`
    (:func:`~repro.core.framing.encode_pickle_message`) — it is shared
    with the serve protocol; this wrapper pins the remote frame cap.
    """
    return encode_pickle_message(message, MAX_REMOTE_FRAME_BYTES)


def decode_payload(payload: bytes) -> dict:
    """Check the CRC and unpickle one frame payload.

    Raises :class:`FrameError` on a checksum mismatch or an unpicklable
    blob — both mean the stream is untrustworthy and the connection must
    close (the parent then requeues the shard; results never merge from
    a connection that produced one bad frame).
    """
    return decode_pickle_payload(payload)


def payload_key(payload: dict) -> str:
    """Digest identifying a campaign payload — the warm-runner cache key."""
    return hashlib.sha256(
        pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    ).hexdigest()[:16]


def parse_sabotage(text: str) -> dict:
    """Parse the CLI arming syntax ``kind[:frac[:extra]]``.

    ``frac`` positions the fault within a shard (fraction of its items);
    ``extra`` is the bit index for corrupt-frame or the delay for
    slow-connect.
    """
    parts = text.split(":")
    kind = parts[0]
    if kind not in SABOTAGE_KINDS:
        raise TransportError(
            f"unknown sabotage kind {kind!r} (known: {', '.join(SABOTAGE_KINDS)})"
        )
    sabotage: dict = {"kind": kind}
    if len(parts) > 1 and parts[1]:
        sabotage["frac"] = float(parts[1])
    if len(parts) > 2 and parts[2]:
        if kind == "remote-corrupt-frame":
            sabotage["bit"] = int(parts[2])
        else:
            sabotage["delay"] = float(parts[2])
    return sabotage


class WorkerServer(SocketServer):
    """The `repro worker` daemon: framed shard execution over TCP.

    Serves one connection at a time (the pool opens a connection per
    shard) on the shared :class:`~repro.core.server.SocketServer`
    accept loop.  Hardening mirrors the debugger server: a hostile or
    vanished client tears down *its connection*, never the accept loop,
    and every survived failure is observable via ``log`` and the
    ``frame_errors`` / ``connections_served`` counters.  SIGTERM (wired
    by the CLI via ``install_term_handler``) lands in
    :meth:`~repro.core.server.SocketServer.request_stop`, so a TERM'd
    worker drains its connection, joins its heartbeat pump, closes its
    warm runners, and exits 0.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        log=None,
        sabotage: "dict | None" = None,
    ):
        super().__init__(host, port, log=log, concurrency=1, name="repro-worker")
        self._sabotage = dict(sabotage) if sabotage else None
        self._runners: dict[str, object] = {}
        self.shards_served = 0
        self.frame_errors = 0

    # ------------------------------------------------------------------
    # lifecycle

    def stop(self) -> None:
        super().stop()
        self._close_runners()

    def on_stopped(self) -> None:
        self._close_runners()

    def _close_runners(self) -> None:
        runners, self._runners = self._runners, {}
        for runner in runners.values():
            try:
                runner.close()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass

    # ------------------------------------------------------------------
    # connection handling

    def handle_connection(self, conn: socket.socket) -> None:
        decoder = FrameDecoder(MAX_REMOTE_FRAME_BYTES)
        conn.settimeout(0.2)
        while not self.stopping:
            try:
                chunk = conn.recv(65536)
            except TimeoutError:
                continue
            except OSError:
                return  # client vanished: tear down this connection only
            if not chunk:
                return  # orderly client disconnect
            try:
                payloads = decoder.feed(chunk)
                messages = [decode_payload(p) for p in payloads]
            except FrameError as exc:
                self.frame_errors += 1
                self.log(f"unframeable client stream: {exc}")
                self._send(conn, {"op": "error", "detail": str(exc)})
                return
            for message in messages:
                if not self._handle_message(conn, message):
                    return

    def _handle_message(self, conn: socket.socket, message: dict) -> bool:
        """Dispatch one message; False closes the connection."""
        op = message.get("op")
        if op == "hello":
            sabotage = self._take_sabotage("remote-slow-connect")
            if sabotage is not None:
                # slow-loris: hold the handshake long enough to trip the
                # client's hello timeout (one-shot; the retry succeeds)
                time.sleep(sabotage.get("delay", 5.0))
            if message.get("version") != PROTOCOL_VERSION:
                self._send(
                    conn,
                    {
                        "op": "error",
                        "detail": (
                            f"protocol version mismatch: worker speaks "
                            f"{PROTOCOL_VERSION}, client sent "
                            f"{message.get('version')!r}"
                        ),
                    },
                )
                return False
            import os

            return self._send(
                conn, {"op": "hello-ok", "version": PROTOCOL_VERSION, "pid": os.getpid()}
            )
        if op == "ping":
            return self._send(conn, {"op": "pong"})
        if op == "shard":
            return self._run_shard(conn, message)
        if op == "shutdown":
            self._send(conn, {"op": "bye"})
            self.request_stop()
            return False
        return self._send(conn, {"op": "error", "detail": f"unknown op {op!r}"})

    # ------------------------------------------------------------------
    # shard execution

    def _runner_for(self, payload: dict):
        key = payload_key(payload)
        runner = self._runners.get(key)
        if runner is None:
            from repro.campaign.jobs import make_item_runner

            runner = make_item_runner(payload)
            self._runners[key] = runner
            self.log(f"warm runner built for payload {key}")
        return runner

    def _run_shard(self, conn: socket.socket, message: dict) -> bool:
        items = list(message.get("items") or [])
        heartbeat_every = float(message.get("heartbeat_every") or 1.0)
        try:
            runner = self._runner_for(message["payload"])
        except Exception as exc:  # noqa: BLE001 - shipped as a typed frame
            return self._send(
                conn,
                {"op": "error", "detail": f"{type(exc).__name__}: {exc}"},
            )
        self.shards_served += 1

        send_lock = threading.Lock()
        stop_pump = threading.Event()
        state = {"completed": 0}

        def pump() -> None:
            while not stop_pump.wait(heartbeat_every):
                with send_lock:
                    try:
                        conn.sendall(
                            encode_message(
                                {"op": "heartbeat", "completed": state["completed"]}
                            )
                        )
                    except OSError:
                        return

        pump_thread = threading.Thread(
            target=pump, daemon=True, name="repro-worker-heartbeat"
        )
        pump_thread.start()
        try:
            for position, (index, item) in enumerate(items):
                try:
                    result = runner.run(item)
                except Exception as exc:  # noqa: BLE001 - per-item containment
                    result = {"error": f"{type(exc).__name__}: {exc}"}
                frame_bytes = encode_message(
                    {"op": "item", "index": index, "result": result}
                )
                if not self._deliver_item(
                    conn, send_lock, stop_pump, frame_bytes, position, len(items)
                ):
                    return False
                state["completed"] += 1
            with send_lock:
                ok = self._send_raw(
                    conn,
                    encode_message(
                        {"op": "shard-done", "completed": state["completed"]}
                    ),
                )
            return ok
        finally:
            stop_pump.set()
            pump_thread.join(timeout=2)

    def _deliver_item(
        self,
        conn: socket.socket,
        send_lock: threading.Lock,
        stop_pump: threading.Event,
        frame_bytes: bytes,
        position: int,
        total: int,
    ) -> bool:
        """Send one item frame — or enact the armed sabotage on it."""
        sabotage = self._take_sabotage_at(position, total)
        if sabotage is None:
            with send_lock:
                return self._send_raw(conn, frame_bytes)
        kind = sabotage["kind"]
        self.log(f"sabotage firing: {kind} at item position {position}")
        if kind == "remote-drop-frame":
            # the frame simply never leaves: shard-done will later reveal
            # the missing index and the parent requeues it
            return True
        if kind == "remote-corrupt-frame":
            # flip one bit inside the pickled region: framing stays
            # intact, the CRC does not — detection, not silent corruption
            bit = int(sabotage.get("bit", 0)) % 8
            mid = (len(frame_bytes) + 4 + CRC_BYTES) // 2
            corrupted = bytearray(frame_bytes)
            corrupted[mid] ^= 1 << bit
            with send_lock:
                self._send_raw(conn, bytes(corrupted))
            return True
        if kind == "remote-truncate-frame":
            # half a frame then a dead connection: the parent sees a
            # partial read + EOF and requeues the shard remainder
            with send_lock:
                self._send_raw(conn, frame_bytes[: max(1, len(frame_bytes) // 2)])
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            return False
        if kind == "remote-kill-worker":
            # deliver the item, then die mid-shard: no shard-done, no
            # process — the crash path end to end
            with send_lock:
                self._send_raw(conn, frame_bytes)
            import os

            os._exit(13)
        if kind == "remote-stall-heartbeat":
            # the worker is alive but mute: heartbeats stop, the item
            # never arrives, and only the parent watchdog can tell
            stop_pump.set()
            while not self.stopping:  # pragma: no branch
                time.sleep(0.1)
            return False
        raise TransportError(f"unhandled sabotage kind {kind!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # sabotage bookkeeping (one-shot)

    def _take_sabotage(self, kind: str) -> "dict | None":
        if self._sabotage is not None and self._sabotage.get("kind") == kind:
            sabotage, self._sabotage = self._sabotage, None
            return sabotage
        return None

    def _take_sabotage_at(self, position: int, total: int) -> "dict | None":
        if self._sabotage is None:
            return None
        kind = self._sabotage.get("kind")
        if kind in ("remote-slow-connect",) or kind not in SABOTAGE_KINDS:
            return None
        frac = float(self._sabotage.get("frac", 0.0))
        target = min(max(0, total - 1), int(frac * total))
        if position != target:
            return None
        sabotage, self._sabotage = self._sabotage, None
        return sabotage

    # ------------------------------------------------------------------
    # send helpers

    def _send(self, conn: socket.socket, message: dict) -> bool:
        return self._send_raw(conn, encode_message(message))

    @staticmethod
    def _send_raw(conn: socket.socket, data: bytes) -> bool:
        """Send bytes; False means the client is gone (stop this
        connection, never the loop)."""
        try:
            conn.sendall(data)
            return True
        except OSError:
            return False


def spawn_worker_process(
    sabotage: "str | None" = None, host: str = "127.0.0.1"
):
    """Launch ``repro worker`` as a subprocess; return ``(proc, (host,
    port))`` once the daemon announces its listening address.

    The worker prints ``repro worker listening on HOST:PORT`` as its
    first stdout line (flushed), which is the only rendezvous needed —
    no port race, no sleep-and-hope.
    """
    import os
    import subprocess
    import sys

    import repro

    argv = [sys.executable, "-m", "repro.cli", "worker", "--host", host, "--port", "0"]
    if sabotage:
        argv += ["--sabotage", sabotage]
    # the daemon must find the same `repro` the parent runs, however the
    # parent got it onto sys.path (installed, PYTHONPATH, or a test rig)
    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = package_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline().strip()
    marker = "listening on "
    if marker not in line:
        proc.kill()
        raise TransportError(f"worker failed to start: {line!r}")
    addr = line.split(marker, 1)[1]
    host_part, port_part = addr.rsplit(":", 1)
    return proc, (host_part, int(port_part))
