"""The parent side of multi-host campaigns: a fault-tolerant worker pool.

:class:`RemoteWorkerPool` is a :class:`~repro.campaign.runner.WorkerBackend`
that shards a campaign's work-list across `repro worker` daemons over
the framed protocol of :mod:`repro.campaign.remote`.  Its design centre
is the **graceful-degradation ladder**: work flows to the first rung
that can take it, and a campaign always reaches 100 % coverage —

1. **remote host** — a host thread pulls shards from a shared queue and
   streams results over a connection per shard;
2. **another remote host** — the shared queue *is* the reassignment
   mechanism: a failed shard's unfinished remainder goes back on the
   queue, where any healthy host (including the same one, reconnected)
   steals it;
3. **local fork** — when every host is quarantined or the host list is
   exhausted, the leftovers run through the ordinary
   :class:`~repro.campaign.runner.ForkBackend` on the parent machine;
4. **inline in the parent** — :meth:`Campaign.run` itself re-runs
   anything still missing (shared bottom rung of all backends).

Reassignment is **idempotent by construction**: item results are pure
functions of ``(payload, item)``, the parent merges by work-list index
with first-write-wins dedup, and the failure corpus is
content-addressed (duplicate ingest is a no-op) — so replaying an item
on two hosts is wasteful at worst, never wrong.

Failure detection feeds the existing :class:`WorkerIncident` taxonomy
with remote-specific kinds:

==================  =====================================================
kind                meaning
==================  =====================================================
``remote-connect``  connect/handshake failed after the backoff budget
``remote-transport``  the connection died mid-shard (EOF, reset, send)
``remote-hang``     no frame — item *or* heartbeat — within the watchdog
``remote-protocol``  an unframeable/corrupt frame or an in-band error
``quarantine``      circuit breaker opened: N consecutive incidents
``degraded-local``  leftovers ran on the local-fork rung
==================  =====================================================

Hang detection rides the campaign watchdog: the daemon pulses a
heartbeat every ``min(1, watchdog/4)`` seconds, so a healthy-but-slow
item keeps the connection warm while a stalled worker goes silent and
trips the per-frame timeout.
"""

from __future__ import annotations

import socket
import threading
from collections import deque

from repro.campaign.remote import (
    PROTOCOL_VERSION,
    MAX_REMOTE_FRAME_BYTES,
    decode_payload,
    encode_message,
)
from repro.campaign.runner import (
    Campaign,
    CampaignOutcome,
    ForkBackend,
    WorkerBackend,
    WorkerIncident,
)
from repro.core.framing import BackoffPolicy, FrameDecoder, FrameError, TransportError


class _ShardFailure(Exception):
    """One shard attempt failed; carries the incident kind + detail."""

    def __init__(self, kind: str, detail: str):
        super().__init__(detail)
        self.kind = kind
        self.detail = detail


class _HostState:
    """Per-host bookkeeping: identity, breaker state, statistics."""

    def __init__(self, host_id: int, address: "tuple[str, int]"):
        self.host_id = host_id
        self.address = address
        self.consecutive_failures = 0
        self.shards_ok = 0
        self.quarantined = False

    @property
    def name(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"


class RemoteWorkerPool(WorkerBackend):
    def __init__(
        self,
        hosts: "list[tuple[str, int]]",
        *,
        backoff: "BackoffPolicy | None" = None,
        hello_timeout: float = 5.0,
        breaker_threshold: int = 3,
        heartbeat_every: "float | None" = None,
        log=None,
    ):
        if not hosts:
            raise TransportError("remote worker pool needs at least one host")
        self.hosts = list(hosts)
        #: the connect retry schedule — the same policy object the
        #: debugger client uses, seeded so tests can assert it exactly
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.hello_timeout = hello_timeout
        self.breaker_threshold = breaker_threshold
        self.heartbeat_every = heartbeat_every
        self.log = log if log is not None else (lambda message: None)

    # ------------------------------------------------------------------

    def run(self, campaign: Campaign, indexed, outcome: CampaignOutcome) -> None:
        item_by_index = dict(indexed)
        jobs = campaign.jobs
        shards = deque(
            s for s in (indexed[i::jobs] for i in range(jobs)) if s
        )
        cond = threading.Condition()
        state = {"in_flight": 0}
        incidents_lock = threading.Lock()
        host_states = [_HostState(i, addr) for i, addr in enumerate(self.hosts)]

        def record(host: _HostState, kind: str, detail: str, reassigned: int) -> None:
            with incidents_lock:
                outcome.incidents.append(
                    WorkerIncident(host.host_id, kind, f"[{host.name}] {detail}", reassigned)
                )

        def requeue(shard) -> int:
            """Put a failed shard's unfinished remainder back on the
            queue (idempotent: finished indices are dropped here and
            deduped again at ``_accept``)."""
            remaining = [
                (index, item)
                for index, item in shard
                if index not in outcome.results
            ]
            if remaining:
                with cond:
                    shards.append(remaining)
                    cond.notify_all()
            return len(remaining)

        def host_loop(host: _HostState) -> None:
            while True:
                with cond:
                    while not shards and state["in_flight"] > 0:
                        cond.wait(0.1)
                    if not shards:
                        return  # queue drained and nothing can refill it
                    shard = shards.popleft()
                    state["in_flight"] += 1
                try:
                    received = self._run_shard(campaign, outcome, host, shard)
                except _ShardFailure as failure:
                    host.consecutive_failures += 1
                    reassigned = requeue(shard)
                    record(host, failure.kind, failure.detail, reassigned)
                    self.log(
                        f"host {host.name}: {failure.kind}: {failure.detail} "
                        f"({reassigned} item(s) requeued)"
                    )
                    if host.consecutive_failures >= self.breaker_threshold:
                        host.quarantined = True
                        record(
                            host,
                            "quarantine",
                            f"circuit breaker open after "
                            f"{host.consecutive_failures} consecutive incidents",
                            0,
                        )
                        with cond:
                            state["in_flight"] -= 1
                            cond.notify_all()
                        return
                else:
                    host.consecutive_failures = 0
                    host.shards_ok += 1
                    # drop-frame case: shard-done arrived but an item
                    # frame never did — requeue exactly the gap
                    missing = [
                        (index, item)
                        for index, item in shard
                        if index not in outcome.results
                    ]
                    if missing:
                        reassigned = requeue(shard)
                        record(
                            host,
                            "remote-protocol",
                            f"shard-done with {len(missing)} item(s) missing "
                            f"(received {received})",
                            reassigned,
                        )
                with cond:
                    state["in_flight"] -= 1
                    cond.notify_all()

        threads = [
            threading.Thread(target=host_loop, args=(host,), daemon=True)
            for host in host_states
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # rung 3 of the ladder: every host quarantined (or the queue
        # outlived them) — run the leftovers through local fork workers
        leftovers = [
            (index, item_by_index[index])
            for index in sorted(set(item_by_index) - outcome.results.keys())
        ]
        if leftovers:
            with incidents_lock:
                outcome.incidents.append(
                    WorkerIncident(
                        -1,
                        "degraded-local",
                        f"{len(leftovers)} item(s) degraded to local fork "
                        f"workers (hosts: "
                        f"{', '.join(h.name + (' quarantined' if h.quarantined else '') for h in host_states)})",
                        len(leftovers),
                    )
                )
            self.log(
                f"degrading {len(leftovers)} item(s) to local fork workers"
            )
            sub = Campaign(
                campaign.payload,
                [item for _, item in leftovers],
                jobs=max(1, min(campaign.jobs, len(leftovers))),
                watchdog=campaign.watchdog,
                max_restarts=campaign.max_restarts,
                backend=ForkBackend(),
            )
            sub_outcome = sub.run()
            outcome.incidents.extend(sub_outcome.incidents)
            for position, (index, _) in enumerate(leftovers):
                result = sub_outcome.results.get(position)
                if result is not None:
                    campaign._accept(outcome, index, result)
        # rung 4 (inline in the parent) is Campaign.run's own fallback

    # ------------------------------------------------------------------
    # one shard over one connection

    def _run_shard(
        self,
        campaign: Campaign,
        outcome: CampaignOutcome,
        host: _HostState,
        shard,
    ) -> int:
        """Stream one shard; returns the number of item frames received.

        Raises :class:`_ShardFailure` with a typed kind on any failure —
        the caller requeues whatever was not delivered.
        """
        watchdog = campaign.watchdog
        heartbeat_every = (
            self.heartbeat_every
            if self.heartbeat_every is not None
            else min(1.0, max(0.05, watchdog / 4.0))
        )
        try:
            sock = self._connect(host.address)
        except TransportError as exc:
            raise _ShardFailure("remote-connect", str(exc)) from exc
        received = 0
        try:
            try:
                sock.sendall(
                    encode_message(
                        {
                            "op": "shard",
                            "payload": campaign.payload,
                            "items": list(shard),
                            "heartbeat_every": heartbeat_every,
                        }
                    )
                )
            except OSError as exc:
                raise _ShardFailure(
                    "remote-transport", f"shard send failed: {exc}"
                ) from exc
            decoder = FrameDecoder(MAX_REMOTE_FRAME_BYTES)
            # the hang detector: any frame (item, heartbeat, …) counts
            # as liveness; silence for a whole watchdog interval means
            # the worker stalled, however alive its process looks
            sock.settimeout(watchdog)
            while True:
                try:
                    chunk = sock.recv(65536)
                except TimeoutError as exc:
                    raise _ShardFailure(
                        "remote-hang",
                        f"no frame within the {watchdog:.0f}s watchdog "
                        f"({received} item(s) received first)",
                    ) from exc
                except OSError as exc:
                    raise _ShardFailure(
                        "remote-transport", f"receive failed: {exc}"
                    ) from exc
                if not chunk:
                    raise _ShardFailure(
                        "remote-transport",
                        f"connection closed mid-shard "
                        f"({received} item(s) received first)",
                    )
                try:
                    messages = [decode_payload(p) for p in decoder.feed(chunk)]
                except FrameError as exc:
                    raise _ShardFailure("remote-protocol", str(exc)) from exc
                for message in messages:
                    op = message.get("op")
                    if op == "item":
                        campaign._accept(
                            outcome, message["index"], message["result"]
                        )
                        received += 1
                    elif op == "heartbeat":
                        continue
                    elif op == "shard-done":
                        return received
                    elif op == "error":
                        raise _ShardFailure(
                            "remote-protocol",
                            f"worker error: {message.get('detail')}",
                        )
                    else:
                        raise _ShardFailure(
                            "remote-protocol", f"unexpected op {op!r}"
                        )
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # connect + handshake under the backoff policy

    def _connect(self, address: "tuple[str, int]") -> socket.socket:
        """Connect and complete the hello handshake, retrying the whole
        sequence under the pool's :class:`BackoffPolicy` — a slow-loris
        daemon that accepts but never answers hello is a *connect*
        failure, not a hang."""

        def attempt() -> socket.socket:
            sock = socket.create_connection(address, timeout=self.hello_timeout)
            try:
                sock.sendall(
                    encode_message({"op": "hello", "version": PROTOCOL_VERSION})
                )
                sock.settimeout(self.hello_timeout)
                decoder = FrameDecoder(MAX_REMOTE_FRAME_BYTES)
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        raise OSError("connection closed during handshake")
                    payloads = decoder.feed(chunk)
                    if payloads:
                        reply = decode_payload(payloads[0])
                        break
            except (FrameError, OSError):
                sock.close()
                raise
            if reply.get("op") != "hello-ok":
                sock.close()
                raise OSError(
                    f"handshake refused: {reply.get('detail', reply.get('op'))}"
                )
            return sock

        return self.backoff.call(
            attempt,
            retry_on=(OSError, FrameError),
            describe=f"could not connect to worker at {address[0]}:{address[1]}",
        )


def shutdown_worker(
    address: "tuple[str, int]", *, timeout: float = 5.0
) -> bool:
    """Ask a `repro worker` daemon to exit; True iff it said bye."""
    try:
        sock = socket.create_connection(address, timeout=timeout)
    except OSError:
        return False
    try:
        sock.sendall(encode_message({"op": "shutdown"}))
        sock.settimeout(timeout)
        decoder = FrameDecoder(MAX_REMOTE_FRAME_BYTES)
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return False
            payloads = decoder.feed(chunk)
            if payloads:
                return decode_payload(payloads[0]).get("op") == "bye"
    except (OSError, FrameError):
        return False
    finally:
        sock.close()
