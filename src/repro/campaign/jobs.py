"""Campaign job kinds: what one worker runs per item, and the
parent-side sweeps that shard, merge, and feed the corpus.

Two kinds convert the existing single-process engines onto the shared
:class:`~repro.campaign.runner.Campaign`:

* ``explore`` — one item is one schedule (a tuple of preemption
  positions); the worker holds a warm :class:`~repro.explore.Explorer`
  and calls :meth:`~repro.explore.Explorer.evaluate` per item;
* ``faults`` — one item is one fault index into a seeded
  :class:`~repro.faults.FaultPlan`; the worker holds a warm
  :class:`~repro.faults.FaultRunContext` (baseline recording, optional
  checkpoint baseline and transport server) and injects per item.

Item results are plain picklable dicts; anything that should land in
the corpus travels as sealed trace bytes under ``"trace"`` with its
reproduction meta under ``"meta"`` — the parent ingests them in
work-list order, so the corpus a sweep leaves behind is independent of
worker count and message arrival order.
"""

from __future__ import annotations

import hashlib
import itertools
import shutil
import tempfile
from dataclasses import dataclass, field

from repro.campaign.corpus import Corpus
from repro.campaign.runner import Campaign, CampaignHarnessError, WorkerIncident
from repro.explore.digestset import DigestSet
from repro.explore.explorer import Explorer
from repro.faults.campaign import CampaignReport, FaultOutcome, FaultRunContext
from repro.faults.plan import FaultPlan
from repro.vm.errors import VMError

#: campaign jobs re-record failing schedules? No — the worker already
#: holds the trace; it ships the sealed bytes (deterministic encoding).
from repro.api import trace_to_bytes


# ---------------------------------------------------------------------------
# item runners (worker side)


class _ExploreRunner:
    """Warm per-worker explore engine: one Explorer, many schedules."""

    def __init__(self, payload: dict):
        from repro.workloads.registry import get_workload

        spec = get_workload(payload["workload"])
        kwargs = dict(payload["workload_kwargs"])
        self.spec = spec
        self.kwargs = kwargs
        self.explorer = Explorer(
            spec.program_factory(kwargs),
            oracle=spec.oracle(kwargs),
            bound=payload["bound"],
            budget=payload["budget"],
            seed=payload["seed"],
            env_seed=payload["env_seed"],
            config=payload["config"],
            minimize=False,
        )
        self.heap = (
            payload["config"].semispace_words if payload["config"] is not None else None
        )

    def run(self, item) -> dict:
        evaluated = self.explorer.evaluate(tuple(item))
        result = {"digest": evaluated.digest, "reason": evaluated.reason}
        if evaluated.failed:
            evaluated.trace.meta["workload"] = self.spec.name
            evaluated.trace.meta["workload_kwargs"] = dict(self.kwargs)
            result["trace"] = trace_to_bytes(evaluated.trace)
            result["meta"] = {
                "kind": "explore",
                "workload": self.spec.name,
                "workload_kwargs": dict(self.kwargs),
                "seed": self.explorer.seed,
                "env_seed": self.explorer.env_seed,
                "schedule": list(evaluated.positions),
                "reason": evaluated.reason,
                "behavior": evaluated.digest,
                "heap": self.heap,
            }
        return result

    def close(self) -> None:
        pass


class _FaultsRunner:
    """Warm per-worker fault harness: one baseline set, many injections."""

    def __init__(self, payload: dict):
        plan = FaultPlan.generate(
            payload["seed"], payload["count"], layers=tuple(payload["layers"])
        )
        self.spec_by_index = {s.index: s for s in plan}
        self.workload = payload["workload"]
        self.workload_kwargs = dict(payload.get("workload_kwargs") or {})
        self.heap = (
            payload["config"].semispace_words if payload["config"] is not None else None
        )
        self.workdir = tempfile.mkdtemp(prefix="repro-campaign-faults-")
        self.context = FaultRunContext(
            seed=payload["seed"],
            layers={s.layer for s in plan},
            workload=payload["workload"],
            workload_kwargs=payload.get("workload_kwargs"),
            config=payload["config"],
            workdir=self.workdir,
            fault_timeout=payload["fault_timeout"],
        )
        self.context.__enter__()

    def run(self, item) -> dict:
        spec = self.spec_by_index[int(item)]
        outcome = self.context.run_spec(spec)
        result = {"outcome": outcome.outcome, "detail": outcome.detail}
        if not outcome.ok:
            # a contract violation: ship the clean baseline (always a
            # replayable trace) plus the spec that broke the contract —
            # enough to re-run the injection exactly
            result["trace"] = self.context.baseline_blob
            result["meta"] = {
                "kind": "faults",
                "workload": self.context.workload_name,
                "workload_kwargs": self.workload_kwargs,
                "seed": self.context.seed,
                "fault": spec.describe(),
                "reason": outcome.outcome,
                "behavior": f"fault:{spec.index}:{spec.kind}:{outcome.outcome}",
                "heap": self.heap,
            }
        return result

    def close(self) -> None:
        self.context.__exit__(None, None, None)
        shutil.rmtree(self.workdir, ignore_errors=True)


_RUNNERS = {"explore": _ExploreRunner, "faults": _FaultsRunner}


def make_item_runner(payload: dict):
    kind = payload.get("kind")
    if kind not in _RUNNERS:
        raise CampaignHarnessError(f"unknown campaign job kind {kind!r}")
    return _RUNNERS[kind](payload)


def _resolve_backend(backend, hosts):
    """Sweep-level backend selection: an explicit backend wins, a host
    list builds a :class:`RemoteWorkerPool`, neither means local fork."""
    if backend is not None:
        return backend
    if hosts:
        from repro.campaign.pool import RemoteWorkerPool

        return RemoteWorkerPool(list(hosts))
    return None


# ---------------------------------------------------------------------------
# explore sweep (parent side)


@dataclass
class SweepFailure:
    """One failing schedule in a sweep's merged result."""

    positions: tuple
    reason: str
    behavior: str
    entry: "str | None" = None  # corpus entry name, when a corpus was given


@dataclass
class ExploreCampaignReport:
    workload: str
    horizon: int
    bound: int
    budget: int
    seed: int
    jobs: int
    schedules_run: int = 0
    behaviors: DigestSet = field(default_factory=DigestSet)
    failures: "list[SweepFailure]" = field(default_factory=list)
    errors: "list[tuple[tuple, str]]" = field(default_factory=list)
    incidents: "list[WorkerIncident]" = field(default_factory=list)
    corpus_dir: "str | None" = None
    corpus_new: int = 0
    corpus_dup: int = 0

    @property
    def unique_behaviors(self) -> int:
        return len(self.behaviors)

    @property
    def found(self) -> bool:
        return bool(self.failures)

    def behavior_set(self) -> tuple:
        """The merged distinct-behaviour identity, order-free: the
        sorted sampled keys plus the sampling level.  jobs=1 and jobs=N
        must produce this exact value."""
        return (self.behaviors.level, tuple(sorted(self.behaviors._keys)))

    def digest(self) -> str:
        """Order-insensitive digest of everything observable: behaviour
        set, failures, and errors — the jobs=1 ≡ jobs=N witness."""
        h = hashlib.sha256()
        level, keys = self.behavior_set()
        h.update(f"level={level}\n".encode())
        for key in keys:
            h.update(f"b:{key:016x}\n".encode())
        for f in sorted(self.failures, key=lambda f: f.positions):
            h.update(f"f:{list(f.positions)}:{f.reason}:{f.behavior}\n".encode())
        for positions, error in sorted(self.errors):
            h.update(f"e:{list(positions)}:{error}\n".encode())
        return h.hexdigest()[:16]

    def format(self) -> str:
        lines = [
            f"campaign: workload={self.workload} jobs={self.jobs} "
            f"bound={self.bound} budget={self.budget} seed={self.seed}",
            f"horizon: {self.horizon} yield points   "
            f"schedules run: {self.schedules_run}   "
            f"distinct behaviors: {self.unique_behaviors}"
            + ("" if self.behaviors.exact else " (estimated)"),
        ]
        if self.failures:
            lines.append(f"FAILURES: {len(self.failures)} failing schedule(s)")
            first = min(self.failures, key=lambda f: f.positions)
            lines.append(
                f"  first (by position): {list(first.positions)} — {first.reason}"
            )
        else:
            lines.append("no failing schedule found")
        for positions, error in self.errors:
            lines.append(f"  ERROR at {list(positions)}: {error}")
        for incident in self.incidents:
            lines.append(f"  incident: {incident.describe()}")
        if self.corpus_dir is not None:
            lines.append(
                f"corpus: {self.corpus_new} new, {self.corpus_dup} duplicate "
                f"entr{'y' if self.corpus_new + self.corpus_dup == 1 else 'ies'} "
                f"-> {self.corpus_dir}"
            )
        return "\n".join(lines)


def run_explore_campaign(
    workload: str,
    *,
    overrides: "dict | None" = None,
    bound: int = 2,
    budget: int = 250,
    seed: int = 0,
    env_seed: int = 0,
    jobs: int = 1,
    config=None,
    corpus_dir=None,
    watchdog: float = 300.0,
    max_restarts: "int | None" = None,
    behavior_cap: int = 65536,
    progress=None,
    hosts: "list[tuple[str, int]] | None" = None,
    backend=None,
    _sabotage: "dict | None" = None,
) -> ExploreCampaignReport:
    """A parallel (sharded) CHESS sweep over one workload.

    Unlike :meth:`Explorer.run`, a campaign evaluates its whole
    work-list — the budget-truncated candidate enumeration is fixed up
    front, so the result cannot depend on which worker found a failure
    first — and collects *every* failure instead of stopping at the
    first.  Failing traces stream into *corpus_dir* (content-addressed)
    when given.
    """
    from repro.workloads.registry import get_workload

    spec = get_workload(workload)
    kwargs = spec.merged_kwargs(overrides, explore=True)
    explorer = Explorer(
        spec.program_factory(kwargs),
        oracle=spec.oracle(kwargs),
        bound=bound,
        budget=budget,
        seed=seed,
        env_seed=env_seed,
        config=config,
        minimize=False,
        behavior_cap=behavior_cap,
    )
    base, horizon = explorer.baseline()
    items = [
        tuple(positions)
        for positions in itertools.islice(
            explorer.candidates(horizon), max(0, budget - 1)
        )
    ]
    payload = {
        "kind": "explore",
        "workload": spec.name,
        "workload_kwargs": kwargs,
        "bound": bound,
        "budget": budget,
        "seed": seed,
        "env_seed": env_seed,
        "config": config,
    }
    outcome = Campaign(
        payload,
        items,
        jobs=jobs,
        watchdog=watchdog,
        max_restarts=max_restarts,
        progress=progress,
        backend=_resolve_backend(backend, hosts),
        _sabotage=_sabotage,
    ).run()

    report = ExploreCampaignReport(
        workload=spec.name,
        horizon=horizon,
        bound=bound,
        budget=budget,
        seed=seed,
        jobs=jobs,
        incidents=outcome.incidents,
        behaviors=DigestSet(behavior_cap),
    )
    corpus = Corpus(corpus_dir, create=True) if corpus_dir is not None else None
    report.corpus_dir = str(corpus_dir) if corpus_dir is not None else None

    # merge in work-list order (never arrival order): schedule #0 first
    report.schedules_run = 1
    report.behaviors.add(base.digest)
    pending_entries = []
    if base.failed:
        base.trace.meta["workload"] = spec.name
        base.trace.meta["workload_kwargs"] = dict(kwargs)
        failure = SweepFailure((), base.reason, base.digest)
        report.failures.append(failure)
        pending_entries.append(
            (
                failure,
                trace_to_bytes(base.trace),
                {
                    "kind": "explore",
                    "workload": spec.name,
                    "workload_kwargs": dict(kwargs),
                    "seed": seed,
                    "env_seed": env_seed,
                    "schedule": [],
                    "reason": base.reason,
                    "behavior": base.digest,
                    "heap": config.semispace_words if config is not None else None,
                },
            )
        )
    for index, positions in enumerate(items):
        result = outcome.results.get(index)
        if result is None:  # pragma: no cover - runner guarantees coverage
            report.errors.append((positions, "item result missing"))
            continue
        if "error" in result:
            report.errors.append((positions, result["error"]))
            continue
        report.schedules_run += 1
        report.behaviors.add(result["digest"])
        if result["reason"] is not None:
            failure = SweepFailure(positions, result["reason"], result["digest"])
            report.failures.append(failure)
            pending_entries.append((failure, result["trace"], result["meta"]))
    if corpus is not None:
        for failure, blob, meta in pending_entries:
            name, new = corpus.ingest(blob, meta)
            failure.entry = name
            if new:
                report.corpus_new += 1
            else:
                report.corpus_dup += 1
    return report


# ---------------------------------------------------------------------------
# faults sweep (parent side)


@dataclass
class FaultsCampaignSweep:
    """A sharded fault campaign's merged outcome: the classic
    :class:`CampaignReport` plus the campaign-level bookkeeping."""

    report: CampaignReport
    jobs: int
    incidents: "list[WorkerIncident]" = field(default_factory=list)
    corpus_dir: "str | None" = None
    corpus_new: int = 0
    corpus_dup: int = 0

    @property
    def ok(self) -> bool:
        return self.report.ok

    def digest(self) -> str:
        return self.report.digest()

    def format(self) -> str:
        lines = [self.report.format()]
        lines[0:0] = [f"jobs: {self.jobs}"]
        for incident in self.incidents:
            lines.append(f"  incident: {incident.describe()}")
        if self.corpus_dir is not None:
            lines.append(
                f"corpus: {self.corpus_new} new, {self.corpus_dup} duplicate "
                f"-> {self.corpus_dir}"
            )
        return "\n".join(lines)


def run_faults_campaign(
    plan: FaultPlan,
    *,
    workload: str,
    workload_kwargs: "dict | None" = None,
    layers: "tuple[str, ...] | None" = None,
    config=None,
    jobs: int = 1,
    fault_timeout: float = 30.0,
    watchdog: float = 300.0,
    max_restarts: "int | None" = None,
    corpus_dir=None,
    progress=None,
    hosts: "list[tuple[str, int]] | None" = None,
    backend=None,
    _sabotage: "dict | None" = None,
) -> FaultsCampaignSweep:
    """Shard *plan* across *jobs* warm workers and merge the outcomes.

    The plan is regenerated inside each worker from ``(seed, count,
    layers)`` — cheaper to ship than the specs and reproducible by
    construction — so *layers* must name the layers *plan* was built
    with.  Outcomes merge by spec index; the merged report is identical
    to a serial :func:`repro.faults.run_campaign` run modulo the
    free-text details (which may name per-worker scratch paths).
    """
    from repro.workloads.registry import get_workload

    plan_layers = tuple(sorted({s.layer for s in plan})) if layers is None else layers
    payload = {
        "kind": "faults",
        "workload": workload,
        "workload_kwargs": workload_kwargs,
        "seed": plan.seed,
        "count": len(plan),
        "layers": list(plan_layers),
        "config": config,
        "fault_timeout": fault_timeout,
    }
    check = FaultPlan.generate(plan.seed, len(plan), layers=tuple(plan_layers))
    if check.specs != plan.specs:
        raise VMError(
            "fault plan is not reproducible from (seed, count, layers) — "
            "pass the layers the plan was generated with"
        )
    items = [s.index for s in plan]
    outcome = Campaign(
        payload,
        items,
        jobs=jobs,
        watchdog=watchdog,
        max_restarts=max_restarts,
        progress=progress,
        backend=_resolve_backend(backend, hosts),
        _sabotage=_sabotage,
    ).run()

    spec_by_index = {s.index: s for s in plan}
    report = CampaignReport(seed=plan.seed, workload=get_workload(workload).name)
    sweep = FaultsCampaignSweep(
        report=report, jobs=jobs, incidents=outcome.incidents
    )
    corpus = Corpus(corpus_dir, create=True) if corpus_dir is not None else None
    sweep.corpus_dir = str(corpus_dir) if corpus_dir is not None else None
    for position, index in enumerate(items):
        result = outcome.results.get(position)
        spec = spec_by_index[index]
        if result is None:  # pragma: no cover - runner guarantees coverage
            report.outcomes.append(
                FaultOutcome(spec, "unclassified:CampaignLost", "no result")
            )
            continue
        if "error" in result:
            report.outcomes.append(
                FaultOutcome(spec, "unclassified:CampaignItemError", result["error"])
            )
            continue
        report.outcomes.append(FaultOutcome(spec, result["outcome"], result["detail"]))
        if corpus is not None and "trace" in result:
            _, new = corpus.ingest(result["trace"], result["meta"])
            if new:
                sweep.corpus_new += 1
            else:
                sweep.corpus_dup += 1
    return sweep
