"""The content-addressed failure corpus (``repro corpus ...``).

Every failing schedule a campaign finds ships as a standard replayable
``.trace``; the corpus is where they accumulate across sweeps.  Entries
are *content addressed*: an entry's file name is ``sha256(bytes)[:16]``
of its sealed trace bytes, so ingesting the same failure twice — from
two workers, two sweeps, or two machines — is a no-op by construction,
and a jobs=1 and a jobs=N campaign over the same work-list produce
byte-identical corpora.

On-disk layout (one directory)::

    corpus/
      index.json        # {"version": 1, "entries": {name: meta}}
      3fb2a1c4d5e6f708.djv   # sealed v3.1 trace bytes

Durability follows the trace-format conventions: blobs are written to a
``*.tmp*`` name and atomically renamed into place, the index is
rewritten atomically after every mutation, and loading ignores torn
``*.tmp*`` leftovers.  The index is a cache, not the truth — an entry
file that appears without an index row (a crash between the two writes)
is re-adopted from the trace's own meta on the next load.

Entry meta records how to reproduce: workload + build kwargs + seeds +
the schedule (or fault spec) plus the behaviour digest the campaign
deduplicates by.  ``prune`` thins per-behaviour groups but never removes
the last entry of a distinct behaviour.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.vm.errors import TraceFormatError, UsageError

INDEX_NAME = "index.json"
ENTRY_SUFFIX = ".djv"
#: content-address width: 64 bits of sha256 in hex
NAME_LEN = 16


def entry_name(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()[:NAME_LEN]


@dataclass
class CorpusEntry:
    name: str
    meta: dict
    path: Path

    @property
    def size(self) -> int:
        return self.path.stat().st_size

    def describe(self) -> str:
        workload = self.meta.get("workload", "?")
        schedule = self.meta.get("schedule")
        what = (
            f"schedule {list(schedule)}"
            if schedule is not None
            else self.meta.get("source", "?")
        )
        reason = self.meta.get("reason", "")
        return f"{self.name}  {workload:<18} {what}  — {reason}"


class Corpus:
    """One corpus directory.  The parent campaign process is the only
    writer during a sweep; readers tolerate everything a crash between
    blob write and index write can leave behind."""

    def __init__(self, root: "str | Path", *, create: bool = False):
        self.root = Path(root)
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        if not self.root.is_dir():
            raise UsageError(f"no corpus directory at {self.root}")
        self._index = self._load_index()
        self._reconcile()

    # -- loading -----------------------------------------------------------

    def _load_index(self) -> dict:
        path = self.root / INDEX_NAME
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            return {}
        except (OSError, ValueError):
            return {}  # damaged index: rebuilt from the entries below
        entries = data.get("entries")
        return dict(entries) if isinstance(entries, dict) else {}

    def _reconcile(self) -> None:
        """Make the in-memory index agree with the directory: drop rows
        whose blob is gone, adopt blobs the index never heard of, and
        ignore torn ``*.tmp*`` files outright."""
        on_disk = {
            p.stem: p
            for p in self.root.iterdir()
            if p.suffix == ENTRY_SUFFIX and ".tmp" not in p.name
        }
        for name in list(self._index):
            if name not in on_disk:
                del self._index[name]
        adopted = False
        for name, path in on_disk.items():
            if name in self._index:
                continue
            self._index[name] = self._meta_from_blob(path)
            adopted = True
        if adopted:
            self._write_index()

    @staticmethod
    def _meta_from_blob(path: Path) -> dict:
        """Recover reproduction meta from the trace file itself (the
        index row that a crash lost)."""
        from repro.core.tracelog import TraceLog

        try:
            trace_meta = TraceLog.load(path).meta
        except TraceFormatError:
            return {"source": "unreadable", "reason": "entry does not load"}
        meta = {"source": "adopted"}
        for key in ("workload", "workload_kwargs", "schedule"):
            if key in trace_meta:
                value = trace_meta[key]
                meta[key] = list(value) if isinstance(value, tuple) else value
        return meta

    # -- writing -----------------------------------------------------------

    def _write_index(self) -> None:
        payload = {"version": 1, "entries": dict(sorted(self._index.items()))}
        tmp = self.root / f"{INDEX_NAME}.tmp.{os.getpid()}"
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        os.replace(tmp, self.root / INDEX_NAME)

    def ingest(self, blob: bytes, meta: dict) -> "tuple[str, bool]":
        """Store one failing trace; returns ``(name, new)``.  Duplicate
        content is a no-op (``new=False``) — the content address is the
        dedup."""
        name = entry_name(blob)
        path = self.root / f"{name}{ENTRY_SUFFIX}"
        if path.exists():
            return name, False
        tmp = self.root / f"{name}{ENTRY_SUFFIX}.tmp.{os.getpid()}"
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        row = dict(meta)
        row["bytes"] = len(blob)
        row["sha256"] = hashlib.sha256(blob).hexdigest()
        self._index[name] = _jsonable(row)
        self._write_index()
        return name, True

    # -- reading -----------------------------------------------------------

    def entries(self) -> "list[CorpusEntry]":
        return [
            CorpusEntry(name, self._index[name], self.root / f"{name}{ENTRY_SUFFIX}")
            for name in sorted(self._index)
        ]

    def get(self, name: str) -> CorpusEntry:
        if name not in self._index:
            raise UsageError(f"no corpus entry {name!r} in {self.root}")
        return CorpusEntry(name, self._index[name], self.root / f"{name}{ENTRY_SUFFIX}")

    def blob(self, name: str) -> bytes:
        return self.get(name).path.read_bytes()

    def trace(self, name: str):
        from repro.core.tracelog import TraceLog

        return TraceLog.load(self.get(name).path)

    def __len__(self) -> int:
        return len(self._index)

    # -- maintenance -------------------------------------------------------

    def _behavior_groups(self) -> "dict[str, list[str]]":
        groups: dict[str, list[str]] = {}
        for name in sorted(self._index):
            behavior = self._index[name].get("behavior") or f"solo:{name}"
            groups.setdefault(behavior, []).append(name)
        return groups

    def prune(self, keep_per_behavior: int = 1) -> "tuple[int, int]":
        """Thin each distinct-behaviour group to at most
        *keep_per_behavior* entries (first names in sorted order — a
        deterministic choice).  The last copy of a behaviour is never
        deleted; returns ``(kept, removed)``."""
        keep = max(1, keep_per_behavior)
        removed = 0
        for names in self._behavior_groups().values():
            for name in names[keep:]:
                (self.root / f"{name}{ENTRY_SUFFIX}").unlink(missing_ok=True)
                del self._index[name]
                removed += 1
        if removed:
            self._write_index()
        return len(self._index), removed

    def stats(self) -> dict:
        from repro.workloads.registry import canonical_workload_key

        by_workload: dict[str, int] = {}
        total_bytes = 0
        for entry in self.entries():
            workload = entry.meta.get("workload")
            if workload is not None:
                key = canonical_workload_key(
                    workload, entry.meta.get("workload_kwargs") or {}
                )
            else:
                key = entry.meta.get("source", "?")
            by_workload[key] = by_workload.get(key, 0) + 1
            total_bytes += entry.meta.get("bytes", 0)
        return {
            "entries": len(self._index),
            "bytes": total_bytes,
            "behaviors": len(self._behavior_groups()),
            "by_workload": by_workload,
        }


def _jsonable(value):
    """Meta rows must survive a JSON round trip unchanged, or two
    campaigns ingesting the same failure would disagree with a reloaded
    index; normalise tuples eagerly."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value
