"""The command-line interface: ``python -m repro <command> ...``.

Commands:

* ``run program.jasm``            — execute a guest program
* ``record program.jasm -o t.djv``— execute under DejaVu, save the trace
  (``--slim`` drops sync-inferable switch deltas, format v3.2)
* ``replay program.jasm t.djv``   — deterministically re-execute a trace
* ``debug program.jasm t.djv``    — interactive debugger over a replay
* ``debug-serve program.jasm t.djv`` — TCP debugger server (Figure 4 tier 2)
* ``serve --workers 4``           — long-lived replay service: jobs over
  the framed transport on a supervised warm-session pool (admission
  control, per-job deadlines, SIGTERM graceful drain)
* ``profile program.jasm t.djv``  — exact profile of a recorded execution
* ``coverage program.jasm t.djv`` — bytecode/line coverage of a trace
* ``disasm program.jasm``         — verify + disassemble
* ``trace-info t.djv``            — describe a saved trace
* ``trace-stats t.djv``           — per-stream encoding statistics
* ``engine-stats program.jasm``   — run + host-side dispatch statistics
* ``explore --workload bank``     — systematic schedule exploration
  (``--jobs N`` shards the sweep across N worker processes and collects
  *every* failure; ``--corpus DIR`` streams failing traces into a
  content-addressed corpus; ``--hosts HOST:PORT`` shards across remote
  ``repro worker`` daemons instead)
* ``races program.jasm t.djv``    — happens-before race detection on a trace
* ``doctor t.djv``                — classify why a trace fails to replay
* ``faults --seed 42 -W bank``    — run a fault-injection campaign
  (``--jobs N`` / ``--corpus DIR`` / ``--hosts`` as for explore)
* ``worker --port 7000``          — remote campaign worker daemon: serves
  shards to ``explore --hosts`` / ``faults --hosts`` parents
* ``corpus list|stats|prune|replay`` — inspect, thin, or re-verify a
  campaign's failure corpus (every entry is a standard replayable trace)
* ``checkpoint list t.djv``       — inspect/verify/prune a trace's
  checkpoint sidecar (``repro replay --checkpoint-every N`` writes one;
  ``repro replay --resume`` finishes a replay from it)

Programs may be written in assembly (``.jasm``) or MiniJ (``.mj`` /
``.minij``); the extension picks the front end.  Everywhere a program
path is accepted, ``--workload NAME`` builds a registered workload
instead (see :mod:`repro.workloads.registry`); ``-W key=value`` overrides
its build parameters.

Exit status convention (all commands):

* **0** — success: the command did its job and found nothing wrong;
* **1** — a finding: replay diverged, races were detected, the doctor
  classified a problem, a fault campaign had contract violations;
* **2** — unusable input: bad usage, a missing/unreadable program, or a
  file that is not a readable DejaVu trace (empty, bad magic, version
  skew, corrupt framing).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.api import (
    ENGINE_PRESETS,
    GuestProgram,
    build_vm,
    record as api_record,
    replay as api_replay,
    standard_knobs,
)
from repro.core import TraceLog
from repro.vm.errors import TraceFormatError, UsageError, VMError
from repro.vm.machine import VMConfig


def load_program(path: str, main: str) -> GuestProgram:
    p = Path(path)
    if not p.exists():
        raise UsageError(f"no such file: {path}")
    text = p.read_text()
    if p.suffix in (".mj", ".minij"):
        from repro.lang import compile_source

        return GuestProgram(classdefs=compile_source(text), main=main, name=p.stem)
    if p.suffix == ".jasm":
        return GuestProgram.from_source(text, main=main, name=p.stem)
    raise UsageError(f"unknown program type {p.suffix!r} (want .jasm, .mj, .minij)")


def _workload_overrides(args) -> dict:
    """Parse repeated ``-W key=value`` into build kwargs (ints when they
    look like ints, strings otherwise)."""
    overrides = {}
    for item in getattr(args, "workload_arg", None) or ():
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise UsageError(f"bad -W argument {item!r} (want key=value)")
        try:
            overrides[key] = int(value)
        except ValueError:
            overrides[key] = value
    return overrides


def _resolve_program(args, trace: "TraceLog | None" = None) -> GuestProgram:
    """A program comes from a source path or from ``--workload``; when
    rebuilding for a trace, the trace's recorded build kwargs win (so the
    replayed program is the recorded one) unless overridden with -W."""
    workload = getattr(args, "workload", None)
    if workload is None:
        if args.program is None:
            raise UsageError("need a program file or --workload NAME")
        return load_program(args.program, args.main)
    if args.program is not None:
        raise UsageError("give a program file or --workload, not both")
    from repro.workloads.registry import get_workload

    spec = get_workload(workload)
    kwargs = dict(spec.defaults)
    if trace is not None and trace.meta.get("workload") == spec.name:
        kwargs.update(dict(trace.meta.get("workload_kwargs") or {}))
    kwargs.update(_workload_overrides(args))
    # so `record` can stamp the build into the trace meta
    args._workload_meta = {"workload": spec.name, "workload_kwargs": kwargs}
    return spec.build(kwargs)


def _knobs(args) -> dict:
    return standard_knobs(args.seed)


def _config(args) -> VMConfig:
    engine = ENGINE_PRESETS[getattr(args, "engine", "full")]
    return VMConfig(semispace_words=args.heap, engine=engine)


def _print_result(result, out=None) -> None:
    out = out if out is not None else sys.stdout
    print(result.output_text, file=out)
    print(
        f"-- cycles={result.cycles} switches={result.switches} "
        f"gc={result.gc_count} threads={len(result.yieldpoints)}",
        file=out,
    )
    if result.deadlocked:
        print(f"-- DEADLOCK: threads {list(result.deadlocked)}", file=out)
    for tid, kind, detail in result.traps:
        print(f"-- trap in thread {tid}: {detail}", file=out)


# ---------------------------------------------------------------------------
# commands


def cmd_run(args) -> int:
    program = _resolve_program(args)
    vm = build_vm(program, _config(args), **_knobs(args))
    _print_result(vm.run(program.main))
    return 0


def cmd_record(args) -> int:
    program = _resolve_program(args)
    # stream segments to <out>.tmp as the run progresses; a crash leaves
    # a salvageable prefix there instead of nothing
    session = api_record(
        program,
        config=_config(args),
        out=args.out,
        compress=args.compress,
        extra_meta=getattr(args, "_workload_meta", {}),
        slim=getattr(args, "slim", False),
        **_knobs(args),
    )
    _print_result(session.result)
    print(
        f"-- trace: {session.trace.n_switch_records} switch records, "
        f"{session.trace.n_value_words} value words, "
        f"{session.trace.encoded_size_bytes} bytes -> {args.out}"
    )
    slim_info = session.trace.slim_info
    if slim_info is not None:
        print(
            f"-- slim: kept {slim_info['kept']} switch delta(s), "
            f"dropped {slim_info['dropped']} (model "
            f"{slim_info['model'][0]}, {slim_info['sync_total']} sync events)"
        )
    elif getattr(args, "slim", False):
        reason = session.trace.meta.get("slim_fallback", "?")
        print(f"-- slim: fell back to full recording ({reason})")
    return 0


def cmd_replay(args) -> int:
    from repro.core.checkpoint import sidecar_path

    trace = TraceLog.load(args.trace)
    program = _resolve_program(args, trace)
    if args.resume:
        from repro.api import resume_replay

        resumed = resume_replay(
            program, trace, checkpoints=sidecar_path(args.trace), config=_config(args)
        )
        for step in resumed.attempts:
            print(f"-- {step}")
        _print_result(resumed.result)
        print("-- replay verified against the recorded END witnesses")
        return 0
    checkpoint_out = sidecar_path(args.trace) if args.checkpoint_every else None
    result = api_replay(
        program,
        trace,
        config=_config(args),
        checkpoint_every=args.checkpoint_every or None,
        checkpoint_out=checkpoint_out,
    )
    _print_result(result)
    print("-- replay verified against the recorded END witnesses")
    if checkpoint_out is not None:
        print(f"-- checkpoints -> {checkpoint_out}")
    return 0


def cmd_checkpoint(args) -> int:
    """Inspect, verify, or prune a trace's ``.ckpt`` sidecar.

    ``verify`` exit status: 0 the sidecar is sealed and every snapshot
    passes its digest; 1 it is damaged/unsealed (resume still degrades
    gracefully); 2 there is no readable sidecar at all."""
    from repro.core.checkpoint import CheckpointStore, CheckpointWriter, sidecar_path
    from repro.vm.errors import CheckpointFormatError

    sidecar = sidecar_path(args.trace)
    try:
        store = CheckpointStore.load(sidecar)
    except CheckpointFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.action == "list":
        print(f"{store.path}: {store.describe()}")
        for key, value in sorted(store.meta.items()):
            print(f"  meta {key} = {value}")
        for snap in sorted(store.snapshots, key=lambda s: s.cycles):
            print(f"  {snap.describe()}")
        return 0

    if args.action == "verify":
        print(f"{store.path}: {store.describe()}")
        for note in store.notes:
            print(f"  {note}")
        return 1 if store.damaged else 0

    # prune: rewrite the sidecar keeping only the newest --keep snapshots
    # (late seeks are what checkpoints accelerate; early ones cost little)
    kept = sorted(store.snapshots, key=lambda s: s.cycles)[-max(1, args.keep):]
    writer = CheckpointWriter(sidecar)
    for snap in kept:
        writer.add(snap)
    writer.seal(store.meta)
    print(
        f"pruned {store.path}: kept {len(kept)} of "
        f"{len(store.snapshots)} snapshot(s)"
    )
    return 0


def cmd_trace_info(args) -> int:
    trace = TraceLog.load(args.trace)
    print(f"program:        {trace.meta.get('program', '?')}")
    print(f"switch records: {trace.n_switch_records}")
    print(f"value words:    {trace.n_value_words}")
    print(f"encoded bytes:  {trace.encoded_size_bytes}")
    end = dict(trace.meta.get("end") or ())
    for key in ("cycles", "switches", "gc_count", "output_len"):
        if key in end:
            print(f"{key + ':':<16}{end[key]}")
    stats = dict(trace.meta.get("stats") or ())
    if stats:
        print("record stats:   " + ", ".join(f"{k}={v}" for k, v in sorted(stats.items())))
    return 0


def cmd_trace_stats(args) -> int:
    """Per-stream encoding statistics of a saved trace.

    Exit status 0 on a readable trace; 2 when the file is not a readable
    DejaVu trace (the :class:`TraceFormatError` tier, like trace-info)."""
    from repro.core.tracelog import trace_stats

    stats = trace_stats(args.trace)
    major, minor = divmod(stats["format_version"], 256) if stats[
        "format_version"
    ] >= 256 else (stats["format_version"], None)
    version = f"{major}.{minor}" if minor is not None else str(major)
    print(f"format version: {version}")
    print(f"file bytes:     {stats['file_bytes']}")
    for name in ("switch", "value", "slim"):
        st = stats["streams"].get(name)
        if st is None:
            continue
        codecs = ",".join(f"0x{c:02x}" for c in st["codecs"]) or "-"
        print(f"{name} stream:")
        print(f"  entries:       {st['entries']}")
        print(f"  segments:      {st['segments']}")
        print(f"  encoded bytes: {st['encoded_bytes']}")
        print(f"  varint bytes:  {st['raw_bytes']}")
        print(f"  ratio:         {st['ratio']:.3f}x (codecs {codecs})")
    slim = stats.get("slim")
    if slim is not None:
        print(
            f"slim recording: kept {slim['kept']} switch delta(s), "
            f"dropped {slim['dropped']}"
        )
    return 0


def cmd_engine_stats(args) -> int:
    """Run a program and report how the engine dispatched it (host-side
    statistics only — they never appear in a RunResult or a trace)."""
    program = _resolve_program(args)
    vm = build_vm(program, _config(args), **_knobs(args))
    result = vm.run(program.main)
    _print_result(result)
    stats = vm.engine_stats()
    print(f"-- engine: {stats.pop('config')}")
    for key in (
        "cycles",
        "dispatches",
        "fused_sites",
        "fused_ops_executed",
        "fused_extra_cycles",
        "ic_sites",
        "ic_hits",
        "ic_misses",
        "ic_invalidations",
    ):
        print(f"   {key + ':':<20}{stats[key]}")
    return 0


def cmd_disasm(args) -> int:
    from repro.vm import VirtualMachine
    from repro.vm.bytecode import disassemble

    program = _resolve_program(args)
    vm = VirtualMachine(_config(args))
    vm.declare(program.classdefs)
    for cd in program.classdefs:
        vm.load(cd.name)
        print(f".class {cd.name}" + (f" extends {cd.super_name}" if cd.super_name else ""))
        for m in cd.methods:
            flags = " static" if m.static else ""
            if m.native:
                print(f"  .native{flags} {m.name}{m.signature.spell()}")
                continue
            rm = vm.loader.resolve_method_any(f"{cd.name}.{m.key}")
            print(f"  .method{flags} {m.name}{m.signature.spell()}  "
                  f"; {len(rm.code.ops)} machine ops, {rm.code.n_yieldpoints} yield points")
            print(disassemble(m.code, m.line_table))
        print()
    return 0


def cmd_profile(args) -> int:
    from repro.tools import ReplayProfiler

    trace = TraceLog.load(args.trace)
    program = _resolve_program(args, trace)
    report = ReplayProfiler(program, trace, _config(args)).run()
    print(report.format(args.top))
    return 0


def cmd_coverage(args) -> int:
    from repro.tools import ReplayCoverage

    trace = TraceLog.load(args.trace)
    program = _resolve_program(args, trace)
    print(ReplayCoverage(program, trace, _config(args)).run().format())
    return 0


def cmd_debug_serve(args) -> int:
    from repro.core.server import install_term_handler
    from repro.debugger import Debugger, DebuggerServer, ReplaySession

    trace = TraceLog.load(args.trace)
    program = _resolve_program(args, trace)
    session = ReplaySession(program, trace, config=_config(args))
    server = DebuggerServer(Debugger(session), port=args.port).start()
    install_term_handler(server.request_stop)
    print(f"debugger serving on {server.address[0]}:{server.address[1]}")
    print("press Ctrl-C (or SIGTERM) to stop")
    try:
        import time

        while not server.stopping:
            time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def cmd_serve(args) -> int:
    """The long-lived replay service: record/replay/explore/doctor/
    trace-stats jobs over the framed transport, on a supervised warm
    session pool.

    Prints ``repro serve listening on HOST:PORT`` as its first line
    (the rendezvous :func:`repro.serve.spawn_serve_process` and scripts
    parse).  SIGTERM drains gracefully: accepting stops, every accepted
    job finishes and delivers, then the daemon exits 0.
    """
    from repro.core.server import install_term_handler
    from repro.serve import ServeDaemon

    log = (lambda message: print(f"-- {message}", flush=True)) if args.verbose else None
    daemon = ServeDaemon(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue,
        default_deadline=args.deadline,
        drain_grace=args.drain_grace,
        warm=not args.cold,
        log=log,
    )
    install_term_handler(daemon.request_stop)
    print(
        f"repro serve listening on {daemon.address[0]}:{daemon.address[1]}",
        flush=True,
    )
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        daemon.stop()
    return 0


def cmd_debug(args) -> int:
    """A small interactive (or scripted) debugger REPL."""
    from repro.debugger import Debugger, ReplaySession

    trace = TraceLog.load(args.trace)
    program = _resolve_program(args, trace)
    session = ReplaySession(program, trace, config=_config(args))
    dbg = Debugger(session)
    print("dejavu debugger — commands: break M [bci] | cont | step [mode] | "
          "jump CYCLES | bt | threads | static Cls field | lines M | output | "
          "info | finish | quit")
    while True:
        try:
            line = input("(djv) ") if sys.stdin.isatty() else sys.stdin.readline()
        except EOFError:
            break
        if not line:
            break
        parts = line.split()
        if not parts:
            continue
        cmd, *rest = parts
        try:
            if cmd == "quit":
                break
            elif cmd == "break":
                bci = int(rest[1]) if len(rest) > 1 else 0
                print(dbg.break_(rest[0], bci=bci))
            elif cmd == "cont":
                print(dbg.cont())
            elif cmd == "step":
                print(dbg.step(rest[0] if rest else "into"))
            elif cmd == "jump":
                print(dbg.jump(int(rest[0])))
            elif cmd == "bt":
                for frame in dbg.backtrace():
                    print(f"  {frame['method']} @bci {frame['bci']} (line {frame['line']})")
            elif cmd == "threads":
                for t in dbg.threads():
                    print(f"  tid {t['tid']}: {t['state']}")
            elif cmd == "static":
                print(dbg.print_static(rest[0], rest[1])["value"])
            elif cmd == "lines":
                listing = dbg.source(rest[0])
                for row in listing["code"]:
                    print(f"  {row['bci']:4d}: {row['instr']:<30s} ; line {row['line']}")
            elif cmd == "output":
                print(dbg.output()["output"])
            elif cmd == "info":
                print(dbg.info())
            elif cmd == "finish":
                print(dbg.finish())
            else:
                print(f"unknown command {cmd!r}")
        except Exception as exc:
            print(f"error: {exc}")
    return 0


def cmd_workloads(args) -> int:
    from repro.workloads.registry import REGISTRY

    for name, spec in sorted(REGISTRY.items()):
        alias = f" (alias: {', '.join(spec.aliases)})" if spec.aliases else ""
        print(f"{name:<20}{spec.description}{alias}")
        defaults = ", ".join(f"{k}={v}" for k, v in spec.defaults.items())
        if defaults:
            print(f"{'':<20}defaults: {defaults}")
    return 0


def cmd_explore(args) -> int:
    """Systematically explore schedules of a workload; on failure, write
    the ddmin-minimized failing schedule as a standard replayable trace.

    With ``--jobs``/``--corpus`` the sweep runs as a sharded campaign
    instead: the fixed work-list is evaluated exhaustively (all failures
    collected, none minimized) and failing traces stream into the corpus.
    """
    from repro.explore import Explorer, detect_races
    from repro.workloads.registry import get_workload

    if args.jobs is not None or args.corpus is not None or args.hosts:
        return _explore_campaign(args)
    if args.workload is not None:
        spec = get_workload(args.workload)
        kwargs = spec.merged_kwargs(_workload_overrides(args), explore=True)
        factory = spec.program_factory(kwargs)
        oracle = spec.oracle(kwargs)
        meta = {"workload": spec.name, "workload_kwargs": kwargs}
    elif args.program is not None:
        factory = lambda: load_program(args.program, args.main)  # noqa: E731
        oracle = None
        meta = {}
    else:
        raise UsageError("need a program file or --workload NAME")

    report = Explorer(
        factory,
        oracle=oracle,
        bound=args.bound,
        budget=args.budget,
        seed=args.seed if args.seed is not None else 0,
        config=_config(args),
    ).run()
    print(report.format())
    if report.minimized is None:
        return 0

    trace = report.minimized.trace
    trace.meta.update(meta)
    trace.save(args.out)
    print(f"-- minimized failing trace -> {args.out}")
    if not args.no_races:
        races = detect_races(factory(), trace, config=_config(args))
        print(races.format())
    return 0


def _explore_campaign(args) -> int:
    """The sharded (``--jobs N``) explore path: deterministic regardless
    of worker count — jobs=1 and jobs=N produce the same behaviour set,
    the same failures, and a byte-identical corpus."""
    from repro.campaign import run_explore_campaign

    if args.workload is None:
        raise UsageError("--jobs/--corpus campaigns need --workload NAME")
    report = run_explore_campaign(
        args.workload,
        overrides=_workload_overrides(args),
        bound=args.bound,
        budget=args.budget,
        seed=args.seed if args.seed is not None else 0,
        jobs=args.jobs if args.jobs is not None else 1,
        config=_config(args),
        corpus_dir=args.corpus,
        watchdog=args.watchdog,
        hosts=_parse_hosts(args.hosts),
    )
    print(report.format())
    return 0


def _parse_hosts(hosts) -> "list[tuple[str, int]] | None":
    """``HOST:PORT`` strings (repeatable ``--hosts``) → address tuples."""
    if not hosts:
        return None
    parsed = []
    for text in hosts:
        host, sep, port = text.rpartition(":")
        if not sep or not port.isdigit():
            raise UsageError(f"--hosts wants HOST:PORT (got {text!r})")
        parsed.append((host or "127.0.0.1", int(port)))
    return parsed


def cmd_races(args) -> int:
    """Replay a trace with the happens-before detector attached.

    Exit status 1 means races were detected (0 = clean replay)."""
    from repro.explore import detect_races

    trace = TraceLog.load(args.trace)
    program = _resolve_program(args, trace)
    report = detect_races(program, trace, config=_config(args))
    print(report.format())
    stats = report.stats
    print(
        f"-- {stats['accesses']} shared-memory accesses, "
        f"{stats['sync_edges']} sync edges, "
        f"{stats['gc_invalidations']} gc invalidations"
    )
    return 1 if report.races else 0


def cmd_doctor(args) -> int:
    """Diagnose why a trace fails (or would fail) to replay.

    Exit status follows the classification: 0 clean, 1 a finding
    (truncation, corruption, mismatch, nondeterminism), 2 the file is not
    a readable trace at all."""
    from repro.core.doctor import diagnose

    program = None
    workload_kwargs = None
    if getattr(args, "workload", None) is not None:
        from repro.workloads.registry import get_workload

        spec = get_workload(args.workload)
        # intended build parameters: the defaults plus explicit -W, NOT
        # merged with the trace meta — diffing them against the recording
        # is the doctor's job
        workload_kwargs = dict(spec.defaults)
        workload_kwargs.update(_workload_overrides(args))
        program = spec.build(workload_kwargs)
    elif args.program is not None:
        program = load_program(args.program, args.main)
    report = diagnose(
        args.trace,
        program=program,
        config=_config(args),
        workload_kwargs=workload_kwargs,
    )
    print(report.format())
    return report.exit_code


def cmd_faults(args) -> int:
    """Run a seeded fault-injection campaign against a workload.

    Exit status 1 means the recovery contract was violated (a hang, a raw
    traceback, or silent corruption); 0 means every fault ended in clean
    recovery or a typed diagnostic."""
    import tempfile

    from repro.faults import FaultPlan, run_campaign

    seed = args.seed if args.seed is not None else 42
    layers = tuple(args.layers) if args.layers else ("trace", "native", "transport")
    plan = FaultPlan.generate(seed, args.count, layers=layers)
    if args.jobs is not None or args.corpus is not None or args.hosts:
        from repro.campaign import run_faults_campaign

        sweep = run_faults_campaign(
            plan,
            workload=args.workload,
            layers=layers,
            config=VMConfig(semispace_words=args.heap),
            jobs=args.jobs if args.jobs is not None else 1,
            fault_timeout=args.watchdog,
            watchdog=args.campaign_watchdog,
            corpus_dir=args.corpus,
            hosts=_parse_hosts(args.hosts),
        )
        print(sweep.format())
        return 0 if sweep.ok else 1
    progress = None
    if args.verbose:
        progress = lambda o: print(  # noqa: E731
            f"  {o.spec.describe()}: {o.outcome}"
        )
    with tempfile.TemporaryDirectory(prefix="repro-faults-") as workdir:
        report = run_campaign(
            plan,
            workload=args.workload,
            config=VMConfig(semispace_words=args.heap),
            workdir=workdir,
            fault_timeout=args.watchdog,
            progress=progress,
        )
    print(report.format())
    return 0 if report.ok else 1


def cmd_worker(args) -> int:
    """Serve campaign shards to remote `explore --hosts` / `faults
    --hosts` parents (the multi-host campaign daemon).

    Prints ``repro worker listening on HOST:PORT`` as its first line (the
    rendezvous :func:`spawn_worker_process` and scripts parse), then
    serves until killed or told ``shutdown``.  ``--sabotage`` arms the
    one-shot LAYER_REMOTE fault seam — testing only.
    """
    from repro.campaign.remote import WorkerServer, parse_sabotage
    from repro.core.server import install_term_handler

    sabotage = parse_sabotage(args.sabotage) if args.sabotage else None
    log = (lambda message: print(f"-- {message}", flush=True)) if args.verbose else None
    server = WorkerServer(
        host=args.host, port=args.port, log=log, sabotage=sabotage
    )
    # SIGTERM → graceful stop: drain the live connection, join the
    # heartbeat pump, close warm runners, exit 0 (no orphaned threads)
    install_term_handler(server.request_stop)
    print(
        f"repro worker listening on {server.address[0]}:{server.address[1]}",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def cmd_corpus(args) -> int:
    """Inspect or maintain a campaign failure corpus.

    Exit status: ``list``/``stats``/``prune`` return 0; ``replay``
    returns 0 when every selected entry replays and verifies, 1 when any
    entry diverges from its recording, 2 when an entry name is unknown
    or the directory is not a corpus."""
    from repro.campaign import Corpus

    corpus = Corpus(args.dir)
    if args.action == "list":
        for entry in corpus.entries():
            print(entry.describe())
        print(f"-- {len(corpus)} entr{'y' if len(corpus) == 1 else 'ies'} in {args.dir}")
        return 0

    if args.action == "stats":
        stats = corpus.stats()
        print(f"entries:   {stats['entries']}")
        print(f"bytes:     {stats['bytes']}")
        print(f"behaviors: {stats['behaviors']}")
        for key, n in sorted(stats["by_workload"].items()):
            print(f"  {key:<40}{n}")
        return 0

    if args.action == "prune":
        kept, removed = corpus.prune(args.keep)
        print(
            f"pruned {args.dir}: kept {kept} entr{'y' if kept == 1 else 'ies'} "
            f"({removed} removed, <= {max(1, args.keep)} per distinct behavior)"
        )
        return 0

    # replay: every entry (or just the named one) must still reproduce
    from repro.workloads.registry import get_workload

    names = [args.entry] if args.entry else [e.name for e in corpus.entries()]
    if not names:
        print("corpus is empty — nothing to replay")
        return 0
    diverged = 0
    for name in names:
        entry = corpus.get(name)  # UsageError (exit 2) on unknown names
        workload = entry.meta.get("workload")
        if workload is None:
            print(f"{name}: SKIP — no workload recorded in entry meta")
            continue
        spec = get_workload(workload)
        kwargs = dict(entry.meta.get("workload_kwargs") or {})
        heap = entry.meta.get("heap")
        config = VMConfig(semispace_words=heap) if heap else None
        try:
            result = api_replay(spec.build(kwargs), corpus.trace(name), config=config)
        except VMError as exc:
            diverged += 1
            print(f"{name}: DIVERGED — {exc}")
            continue
        reason = entry.meta.get("reason", "")
        print(f"{name}: verified ({result.cycles} cycles) — {reason}")
    print(f"-- {len(names) - diverged}/{len(names)} verified")
    return 1 if diverged else 0


# ---------------------------------------------------------------------------


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DejaVu deterministic replay platform"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, trace_arg=False):
        p.add_argument(
            "program",
            nargs="?",
            default=None,
            help="guest program (.jasm / .mj / .minij); or use --workload",
        )
        if trace_arg:
            p.add_argument("trace", help="recorded trace (.djv)")
        p.add_argument(
            "--workload",
            default=None,
            metavar="NAME",
            help="build a registered workload instead of loading a file "
            "(see `repro workloads`)",
        )
        p.add_argument(
            "-W",
            "--workload-arg",
            action="append",
            default=[],
            metavar="K=V",
            help="override a workload build parameter (repeatable)",
        )
        p.add_argument("--main", default="Main.main()V")
        p.add_argument("--heap", type=int, default=400_000, help="semispace words")
        p.add_argument(
            "--seed",
            type=int,
            default=None,
            help="seeded non-determinism (default: host timer/clock)",
        )
        p.add_argument(
            "--engine",
            choices=sorted(ENGINE_PRESETS),
            default="full",
            help="dispatch layers: baseline | threaded | fused | full "
            "(guest behavior is identical under all of them)",
        )

    p = sub.add_parser("run", help="execute a guest program")
    common(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("record", help="execute under DejaVu, save the trace")
    common(p)
    p.add_argument("-o", "--out", default="run.djv")
    p.add_argument(
        "--compress",
        action="store_true",
        help="zlib-compress each trace segment (smaller file, same replay)",
    )
    p.add_argument(
        "--slim",
        action="store_true",
        help="race-guided trace slimming (format v3.2): drop sync-inferable "
        "switch deltas, reconstructed at replay from the modelled timer "
        "(falls back to a full recording when the timer has no model)",
    )
    p.set_defaults(fn=cmd_record)

    p = sub.add_parser("replay", help="re-execute a recorded trace")
    common(p, trace_arg=True)
    p.add_argument(
        "--resume",
        action="store_true",
        help="finish the replay from the newest usable checkpoint in "
        "<trace>.ckpt (graceful fallback to replay-from-zero)",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="capture a verified machine snapshot every N cycles into "
        "<trace>.ckpt",
    )
    p.set_defaults(fn=cmd_replay)

    p = sub.add_parser(
        "checkpoint", help="inspect/verify/prune a trace's checkpoint sidecar"
    )
    p.add_argument("action", choices=("list", "verify", "prune"))
    p.add_argument("trace", help="recorded trace (.djv); sidecar is <trace>.ckpt")
    p.add_argument(
        "--keep",
        type=int,
        default=4,
        help="snapshots to keep when pruning (newest first; default 4)",
    )
    p.set_defaults(fn=cmd_checkpoint)

    p = sub.add_parser("debug", help="interactive debugger over a replay")
    common(p, trace_arg=True)
    p.set_defaults(fn=cmd_debug)

    p = sub.add_parser("debug-serve", help="TCP debugger server over a replay")
    common(p, trace_arg=True)
    p.add_argument("--port", type=int, default=0)
    p.set_defaults(fn=cmd_debug_serve)

    p = sub.add_parser(
        "serve",
        help="long-lived replay service (warm sessions, admission "
        "control, deadlines, graceful drain)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0)
    p.add_argument(
        "--workers", type=int, default=2, help="supervised job workers"
    )
    p.add_argument(
        "--queue",
        type=int,
        default=8,
        metavar="N",
        help="admission limit: queued+running jobs beyond N get a typed "
        "overloaded rejection carrying retry_after",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECS",
        help="default per-job deadline (cooperative cancellation at "
        "engine safe points; jobs may set their own)",
    )
    p.add_argument(
        "--drain-grace",
        type=float,
        default=60.0,
        metavar="SECS",
        help="max seconds a SIGTERM drain waits for accepted jobs",
    )
    p.add_argument(
        "--cold",
        action="store_true",
        help="disable the warm session pool (every job rebuilds its "
        "state; the bench's cold baseline)",
    )
    p.add_argument(
        "-v", "--verbose", action="store_true", help="log served connections"
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("profile", help="perturbation-free profile of a trace")
    common(p, trace_arg=True)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("coverage", help="bytecode/line coverage of a trace")
    common(p, trace_arg=True)
    p.set_defaults(fn=cmd_coverage)

    p = sub.add_parser("disasm", help="verify and disassemble a program")
    common(p)
    p.set_defaults(fn=cmd_disasm)

    p = sub.add_parser("trace-info", help="describe a saved trace")
    p.add_argument("trace")
    p.set_defaults(fn=cmd_trace_info)

    p = sub.add_parser(
        "trace-stats", help="per-stream encoding statistics of a saved trace"
    )
    p.add_argument("trace")
    p.set_defaults(fn=cmd_trace_stats)

    p = sub.add_parser(
        "engine-stats", help="run a program and report dispatch statistics"
    )
    common(p)
    p.set_defaults(fn=cmd_engine_stats)

    p = sub.add_parser(
        "explore",
        help="systematic schedule exploration (preemption-bounded)",
    )
    common(p)
    p.add_argument(
        "--bound", type=int, default=2, help="max preemptions per schedule"
    )
    p.add_argument(
        "--budget", type=int, default=250, help="max schedules to run"
    )
    p.add_argument("-o", "--out", default="failure.djv")
    p.add_argument(
        "--no-races",
        action="store_true",
        help="skip race detection on the minimized failing trace",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="shard the sweep across N worker processes (campaign mode: "
        "all failures collected; jobs=1 and jobs=N are observably identical)",
    )
    p.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="stream failing traces into a content-addressed corpus "
        "(implies campaign mode; see `repro corpus`)",
    )
    p.add_argument(
        "--watchdog",
        type=float,
        default=300.0,
        metavar="SECS",
        help="campaign hang threshold: a worker holding unfinished items "
        "with no progress (local) or no frame (remote) for SECS seconds "
        "is reassigned (default 300)",
    )
    p.add_argument(
        "--hosts",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="shard across `repro worker` daemons instead of local forks "
        "(repeatable; implies campaign mode; degrades remote→local so "
        "coverage never depends on host health)",
    )
    p.set_defaults(fn=cmd_explore)

    p = sub.add_parser(
        "races", help="happens-before race detection over a replay"
    )
    common(p, trace_arg=True)
    p.set_defaults(fn=cmd_races)

    p = sub.add_parser(
        "doctor", help="classify why a trace fails to replay"
    )
    common(p, trace_arg=True)
    p.set_defaults(fn=cmd_doctor)

    p = sub.add_parser(
        "faults", help="seeded fault-injection campaign against a workload"
    )
    p.add_argument(
        "-W",
        "--workload",
        default="bank",
        metavar="NAME",
        help="registered workload to attack (default: bank)",
    )
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--count", type=int, default=100, help="number of faults")
    p.add_argument("--heap", type=int, default=200_000, help="semispace words")
    p.add_argument(
        "--layers",
        action="append",
        default=None,
        choices=("trace", "native", "transport", "checkpoint", "remote", "serve"),
        help="fault layers to draw from (repeatable; default: trace, "
        "native, transport — checkpoint, remote and serve are opt-in)",
    )
    p.add_argument(
        "--watchdog",
        type=float,
        default=30.0,
        metavar="SECS",
        help="per-fault watchdog: a fault with no outcome within SECS "
        "seconds is reported as a hang (default 30)",
    )
    p.add_argument(
        "-v", "--verbose", action="store_true", help="print each fault outcome"
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="shard the plan across N worker processes (each builds its "
        "baselines once and injects its shard against them)",
    )
    p.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="stream each contract violation's baseline trace + fault "
        "spec into a content-addressed corpus",
    )
    p.add_argument(
        "--campaign-watchdog",
        type=float,
        default=300.0,
        metavar="SECS",
        help="campaign hang threshold for --jobs/--hosts sharding (a "
        "worker silent for SECS seconds is reassigned; default 300 — "
        "distinct from --watchdog, the per-fault outcome timeout)",
    )
    p.add_argument(
        "--hosts",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="shard across `repro worker` daemons instead of local forks "
        "(repeatable; implies campaign mode)",
    )
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser(
        "corpus", help="inspect/maintain a campaign failure corpus"
    )
    p.add_argument("action", choices=("list", "stats", "prune", "replay"))
    p.add_argument(
        "entry",
        nargs="?",
        default=None,
        help="entry name (replay only; default: every entry)",
    )
    p.add_argument("--dir", default="corpus", help="corpus directory")
    p.add_argument(
        "--keep",
        type=int,
        default=1,
        help="entries to keep per distinct behavior when pruning "
        "(never below 1 — the last copy of a behavior survives)",
    )
    p.set_defaults(fn=cmd_corpus)

    p = sub.add_parser(
        "worker", help="remote campaign worker daemon (multi-host sharding)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0)
    p.add_argument(
        "--sabotage",
        default=None,
        metavar="KIND[:FRAC[:EXTRA]]",
        help="arm one one-shot LAYER_REMOTE fault (testing only): "
        "remote-drop-frame, remote-truncate-frame, remote-corrupt-frame, "
        "remote-kill-worker, remote-stall-heartbeat, remote-slow-connect",
    )
    p.add_argument(
        "-v", "--verbose", action="store_true", help="log served connections"
    )
    p.set_defaults(fn=cmd_worker)

    p = sub.add_parser("workloads", help="list the registered workloads")
    p.set_defaults(fn=cmd_workloads)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    try:
        return args.fn(args)
    except UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except TraceFormatError as exc:
        # the input file is not a usable trace — same tier as bad usage
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except VMError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
