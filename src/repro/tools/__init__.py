"""Replay-based development tools.

The paper positions DejaVu as "a perturbation-free replay platform that
enables a family of replay-based development tools for understanding and
performance tuning, as well as for debugging".  The debugger lives in
:mod:`repro.debugger`; this package holds the others:

* :class:`repro.tools.profiler.ReplayProfiler` — exact, perturbation-free
  profiling: cycle attribution per method/thread, switch timelines,
  monitor contention and GC statistics, all collected host-side while a
  trace replays (the guest cannot observe the profiler, so the profile is
  identical on every run — no probe effect);
* :class:`repro.tools.coverage.ReplayCoverage` — bytecode coverage of one
  recorded execution, mapped back to source lines via the same line
  tables the reflection interface exposes;
* :mod:`repro.tools.heapdump` — a live-object census, computable either
  host-side or purely through the ptrace port (perturbation-free heap
  inspection at any breakpoint).
"""

from repro.tools.coverage import CoverageReport, ReplayCoverage
from repro.tools.heapdump import HeapCensus, census, remote_census
from repro.tools.profiler import MethodProfile, ProfileReport, ReplayProfiler

__all__ = [
    "CoverageReport",
    "HeapCensus",
    "MethodProfile",
    "ProfileReport",
    "ReplayCoverage",
    "ReplayProfiler",
    "census",
    "remote_census",
]
