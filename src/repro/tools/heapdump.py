"""Heap inspection: live-object census of a (replaying or finished) VM.

The "understanding" side of the paper's tool family: what is on the heap
at this moment of the recorded execution?  The census is computed either
directly (host side, at a safe point) or **remotely** through the ptrace
port — the remote flavour never executes guest code, so it can run at any
debugger breakpoint without perturbing the replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.vm.layout import HEADER_AUX, HEADER_CLASS, HEADER_WORDS

if TYPE_CHECKING:  # pragma: no cover
    from repro.remote.ptrace import DebugPort
    from repro.remote.remote_object import RemoteResolver
    from repro.vm.machine import VirtualMachine


@dataclass
class ClassCensus:
    class_name: str
    count: int = 0
    words: int = 0


@dataclass
class HeapCensus:
    total_objects: int
    total_words: int
    by_class: dict[str, ClassCensus]

    def top(self, n: int = 10) -> list[ClassCensus]:
        return sorted(self.by_class.values(), key=lambda c: -c.words)[:n]

    def format(self, n: int = 10) -> str:
        lines = [
            f"live objects: {self.total_objects}   live words: {self.total_words}",
            f"{'class':<32}{'count':>8}{'words':>10}",
        ]
        for c in self.top(n):
            lines.append(f"{c.class_name:<32}{c.count:>8}{c.words:>10}")
        return "\n".join(lines)


def census(vm: "VirtualMachine") -> HeapCensus:
    """Direct census of *vm*'s heap (host side, read-only)."""
    by_class: dict[str, ClassCensus] = {}
    total_objects = 0
    total_words = 0
    for addr, layout in vm.om.walk_heap():
        size = vm.om.object_size_words(addr)
        bucket = by_class.setdefault(layout.name, ClassCensus(layout.name))
        bucket.count += 1
        bucket.words += size
        total_objects += 1
        total_words += size
    return HeapCensus(total_objects, total_words, by_class)


def remote_census(port: "DebugPort", resolver: "RemoteResolver") -> HeapCensus:
    """The same census through raw remote memory reads only.

    Walks the remote active semispace object by object, resolving class
    ids through the remote VM_Dictionary — zero guest execution.
    """
    # locate the remote active semispace bounds: the boot record has no
    # bump pointer, but walking from either base until headers stop
    # resolving works; instead we use the memory geometry the port's
    # target exposes read-only (semispace bases are structural constants).
    mem = port._memory  # geometry only; all data reads go through peek()
    lo = mem.base[mem.active]
    hi = mem.bump
    by_class: dict[str, ClassCensus] = {}
    total_objects = 0
    total_words = 0
    addr = lo
    while addr < hi:
        class_id = port.peek(addr + HEADER_CLASS)
        layout = resolver.layout_for_remote(addr)
        if layout.is_array:
            size = HEADER_WORDS + port.peek(addr + HEADER_AUX)
        else:
            size = layout.size_words
        bucket = by_class.setdefault(layout.name, ClassCensus(layout.name))
        bucket.count += 1
        bucket.words += size
        total_objects += 1
        total_words += size
        addr += size
    return HeapCensus(total_objects, total_words, by_class)
