"""Replay-based bytecode/line coverage.

Which code did the *recorded* execution actually run?  Replaying under a
host-side observer answers exactly, without instrumenting the guest —
coverage of a production recording, after the fact, with zero probe
effect.  Results map to source lines through the same line tables the
reflection interface (Figure 3) exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.controller import MODE_REPLAY, DejaVu
from repro.vm.machine import VMConfig, with_baseline_engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import GuestProgram
    from repro.core.tracelog import TraceLog


@dataclass
class MethodCoverage:
    qualname: str
    total_bcis: int
    hit_bcis: set[int] = field(default_factory=set)
    line_table: dict[int, int] = field(default_factory=dict)

    @property
    def hit_count(self) -> int:
        return len(self.hit_bcis)

    @property
    def ratio(self) -> float:
        return self.hit_count / self.total_bcis if self.total_bcis else 1.0

    @property
    def missed_lines(self) -> list[int]:
        missed = {
            self.line_table[bci]
            for bci in range(self.total_bcis)
            if bci not in self.hit_bcis and bci in self.line_table
        }
        hit_lines = {self.line_table[b] for b in self.hit_bcis if b in self.line_table}
        return sorted(missed - hit_lines)


@dataclass
class CoverageReport:
    methods: dict[str, MethodCoverage]

    @property
    def total_ratio(self) -> float:
        total = sum(m.total_bcis for m in self.methods.values())
        hit = sum(m.hit_count for m in self.methods.values())
        return hit / total if total else 1.0

    def format(self) -> str:
        lines = [f"{'method':<44}{'covered':>10}{'missed lines':>20}"]
        for qual in sorted(self.methods):
            m = self.methods[qual]
            missed = ",".join(map(str, m.missed_lines[:8])) or "-"
            lines.append(
                f"{qual:<44}{m.hit_count:>4}/{m.total_bcis:<5}{missed:>20}"
            )
        lines.append(f"overall: {self.total_ratio:.1%}")
        return "\n".join(lines)


class _CoverageHook:
    def __init__(self) -> None:
        self.paused = False
        self.reason = None
        self.breakpoints: set = set()
        self.hits: dict[str, set[int]] = {}

    def resume(self) -> None:  # pragma: no cover
        self.paused = False

    def check(self, thread, frame, pc) -> bool:
        qual = frame.method.qualname
        bucket = self.hits.get(qual)
        if bucket is None:
            bucket = self.hits[qual] = set()
        bucket.add(frame.code.xbci_of[pc])
        return False


class ReplayCoverage:
    """Coverage of one recorded execution, by user (non-core) method."""

    def __init__(self, program: "GuestProgram", trace: "TraceLog", config: VMConfig | None = None):
        self.program = program
        self.trace = trace
        self.config = config

    def run(self) -> CoverageReport:
        from repro.api import build_vm

        vm = build_vm(self.program, with_baseline_engine(self.config))
        DejaVu(vm, MODE_REPLAY, trace=self.trace)
        hook = _CoverageHook()
        vm.engine.debug = hook
        vm.run(self.program.main)

        program_classes = {cd.name for cd in self.program.classdefs}
        methods: dict[str, MethodCoverage] = {}
        for rm in vm.loader.method_by_id:
            if rm.owner.name not in program_classes or rm.native:
                continue
            cov = MethodCoverage(
                qualname=rm.qualname,
                total_bcis=len(rm.mdef.code),
                hit_bcis=hook.hits.get(rm.qualname, set()),
                line_table=dict(rm.mdef.line_table),
            )
            methods[rm.qualname] = cov
        return CoverageReport(methods=methods)
