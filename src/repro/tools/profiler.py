"""Perturbation-free replay profiling.

A profiler normally distorts what it measures (the probe effect).  On a
replay platform it cannot: the profiler observes the engine host-side,
the guest executes the recorded instruction stream cycle for cycle, and —
because replay is accurate — the profile of run N equals the profile of
run N+1 exactly.  That determinism is itself asserted by the tests.

Implementation: the profiler attaches through the engine's debug-hook
slot (the same host-side seam the breakpoint controller uses); its
``check`` is called before every micro-op and attributes that cycle to
the executing method and thread.  Switch/GC/monitor statistics come from
the observer stream and the monitor table after the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.controller import MODE_REPLAY, DejaVu
from repro.vm.machine import VMConfig, with_baseline_engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import GuestProgram
    from repro.core.tracelog import TraceLog


@dataclass
class MethodProfile:
    qualname: str
    cycles: int = 0
    invocations: int = 0

    @property
    def cycles_per_call(self) -> float:
        return self.cycles / self.invocations if self.invocations else 0.0


@dataclass
class ProfileReport:
    total_cycles: int
    methods: dict[str, MethodProfile]
    thread_cycles: dict[int, int]
    switches: int
    preemptive_switch_records: int
    gc_count: int
    gc_live_words: list[int]
    monitor_acquisitions: int
    monitor_contentions: int
    output_text: str

    def top_methods(self, n: int = 10) -> list[MethodProfile]:
        return sorted(self.methods.values(), key=lambda m: -m.cycles)[:n]

    def format(self, n: int = 10) -> str:
        lines = [
            f"total cycles: {self.total_cycles}   threads: {len(self.thread_cycles)}"
            f"   switches: {self.switches} ({self.preemptive_switch_records} preemptive)",
            f"gc: {self.gc_count} collections   monitors: "
            f"{self.monitor_acquisitions} acquisitions, "
            f"{self.monitor_contentions} contended",
            f"{'method':<40}{'cycles':>10}{'calls':>8}{'cyc/call':>10}{'%':>7}",
        ]
        for m in self.top_methods(n):
            pct = 100.0 * m.cycles / self.total_cycles if self.total_cycles else 0
            lines.append(
                f"{m.qualname:<40}{m.cycles:>10}{m.invocations:>8}"
                f"{m.cycles_per_call:>10.1f}{pct:>6.1f}%"
            )
        return "\n".join(lines)


class _ProfilerHook:
    """Engine debug-hook that attributes every cycle; never pauses."""

    def __init__(self) -> None:
        self.paused = False  # controller protocol
        self.reason = None
        self.breakpoints: set = set()
        self.method_cycles: dict[str, int] = {}
        self.method_entries: dict[str, int] = {}
        self.thread_cycles: dict[int, int] = {}
        self._last_frame_id: int | None = None

    def resume(self) -> None:  # pragma: no cover - protocol completeness
        self.paused = False

    def check(self, thread, frame, pc) -> bool:
        qual = frame.method.qualname
        self.method_cycles[qual] = self.method_cycles.get(qual, 0) + 1
        self.thread_cycles[thread.tid] = self.thread_cycles.get(thread.tid, 0) + 1
        if pc == 0 and id(frame) != self._last_frame_id:
            self.method_entries[qual] = self.method_entries.get(qual, 0) + 1
        self._last_frame_id = id(frame)
        return False


class ReplayProfiler:
    """Profile one recorded execution by replaying it under observation."""

    def __init__(self, program: "GuestProgram", trace: "TraceLog", config: VMConfig | None = None):
        self.program = program
        self.trace = trace
        self.config = config

    def run(self) -> ProfileReport:
        from repro.api import build_vm

        vm = build_vm(self.program, with_baseline_engine(self.config))
        DejaVu(vm, MODE_REPLAY, trace=self.trace)
        hook = _ProfilerHook()
        vm.engine.debug = hook
        result = vm.run(self.program.main)

        methods = {
            qual: MethodProfile(
                qualname=qual,
                cycles=cycles,
                invocations=hook.method_entries.get(qual, 0),
            )
            for qual, cycles in hook.method_cycles.items()
        }
        gc_events = [e for e in result.events if e[0] == "gc"]
        return ProfileReport(
            total_cycles=result.cycles,
            methods=methods,
            thread_cycles=dict(hook.thread_cycles),
            switches=result.switches,
            preemptive_switch_records=self.trace.n_switch_records,
            gc_count=result.gc_count,
            gc_live_words=[e[2] for e in gc_events],
            monitor_acquisitions=vm.monitors.acquisitions,
            monitor_contentions=vm.monitors.contentions,
            output_text=result.output_text,
        )


def profile(program: "GuestProgram", trace: "TraceLog", config: VMConfig | None = None) -> ProfileReport:
    """One-call convenience: replay *trace* and return its exact profile."""
    return ReplayProfiler(program, trace, config).run()
