"""Guest-side debugger code, interpreted by the *tool* VM.

``Debugger.lineNumberOf`` is the paper's Figure 3, assembled verbatim:
it calls the mapped ``VM_Dictionary.getMethods()``, indexes the returned
(remote) method table, and invokes the application VM's own
``VM_Method.getLineNumberAt`` reflection method on the remote object.
"""

from __future__ import annotations

from repro.vm.asm import assemble
from repro.vm.classfile import ClassDef

_DEBUGGER_SRC = """
.class Debugger
.method static lineNumberOf (II)I
    ; VM_Method[] mtable = VM_Dictionary.getMethods();
    invokestatic VM_Dictionary.getMethods()[LVM_Method;
    astore 2
    ; VM_Method candidate = mtable[methodNumber];
    aload 2
    iload 0
    aaload
    astore 3
    ; int lineNumber = candidate.getLineNumberAt(offset);
    aload 3
    iload 1
    invokevirtual VM_Method.getLineNumberAt(I)I
    ireturn
.end
.method static methodCount ()I
    invokestatic VM_Dictionary.getMethodCount()I
    ireturn
.end
"""


def debugger_classdefs() -> list[ClassDef]:
    return assemble(_DEBUGGER_SRC, source="guestlib.Debugger")
