"""Time-travel debugging on top of deterministic replay.

The paper's §5 surveys checkpoint-based reverse executors (Igor, Recap,
Boothe's bidirectional debugger).  DejaVu makes the capability almost
free: because a trace pins the *entire* execution, "going back" is just
replaying the same trace and stopping earlier.  This module adds that
tool: a :class:`TimeTravelSession` that addresses execution positions by
**cycle count** (the deterministic logical time of the engine) and can
jump to any of them, forwards or backwards, by re-replaying.

Without checkpoints every backwards jump re-replays from cycle zero —
the degenerate single-checkpoint scheme.  With ``checkpoint_every`` set
the session snapshots the machine at safe points as it travels
(:mod:`repro.core.checkpoint`) and a backwards jump restores the nearest
snapshot *strictly before* the target instead, making seeks O(interval)
rather than O(trace length).  Checkpoints only ever accelerate: a
snapshot that fails its digest or refuses to restore is dropped and the
seek falls back to the next earlier one, then to cycle zero, landing on
the identical machine state either way (the seek-equivalence tests pin
TimePoint *and* machine digest against the from-zero path).

Positions are stable: cycle N denotes the same machine state in every
replay of the same trace (that is exactly DejaVu's accuracy guarantee, and
the replay verifier enforces it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.debugger.session import ReplaySession
from repro.vm.errors import VMError
from repro.vm.machine import VMConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import GuestProgram
    from repro.core.checkpoint import Snapshot
    from repro.core.tracelog import TraceLog


@dataclass
class TimePoint:
    """One remembered moment of the execution."""

    cycles: int
    tid: int
    method: str
    bci: int
    line: int


class _CycleStop:
    """A debug controller that pauses once a cycle target is reached."""

    def __init__(self, target_cycles: int, engine):
        self.target = target_cycles
        self.engine = engine
        self.paused = False
        self.reason: tuple | None = None
        self.breakpoints: set = set()  # controller protocol compatibility

    def resume(self) -> None:
        self.paused = False

    def check(self, thread, frame, pc) -> bool:
        if self.engine.cycles >= self.target:
            self.paused = True
            self.reason = ("timepoint", self.engine.cycles)
            self.target = 1 << 62  # one-shot
            return True
        return False


class TimeTravelSession:
    """Forward/backward navigation over one recorded execution.

    The session owns a *current* :class:`ReplaySession` positioned at some
    cycle count; travelling backwards discards it and replays a fresh one
    up to the earlier position — resumed from the nearest usable
    checkpoint when ``checkpoint_every`` (or a pre-captured *checkpoints*
    list) provides one.
    """

    def __init__(
        self,
        program: "GuestProgram",
        trace: "TraceLog",
        config: VMConfig | None = None,
        *,
        checkpoint_every: int | None = None,
        checkpoints: "list[Snapshot] | None" = None,
        session: ReplaySession | None = None,
    ):
        self.program = program
        self.trace = trace
        self.config = config
        self.checkpoint_every = checkpoint_every
        self._snapshots: "dict[int, Snapshot]" = {
            s.cycles: s for s in (checkpoints or [])
        }
        #: how many seeks were checkpoint-accelerated (observability)
        self.restores = 0
        self.session = (
            session
            if session is not None
            else ReplaySession(program, trace, config=config)
        )
        self._attach_recorder()
        self.history: list[TimePoint] = []

    # ------------------------------------------------------------------
    # checkpoint plumbing

    def _attach_recorder(self) -> None:
        if not self.checkpoint_every:
            return
        from repro.core.checkpoint import CheckpointRecorder

        CheckpointRecorder(
            self.session.vm,
            self.checkpoint_every,
            sink=self._remember,
            keep=False,
        )

    def _remember(self, snapshot: "Snapshot") -> None:
        self._snapshots.setdefault(snapshot.cycles, snapshot)

    def _rewind_session(self, target: int) -> ReplaySession:
        """A session positioned somewhere ≤ *target*: restored from the
        nearest snapshot strictly before it (strictly — the from-zero
        stopper can pause mid-dispatch *at* a boundary cycle, which a
        restore exactly at that cycle would skip past), walking the
        fallback ladder down to a plain from-zero replay."""
        candidates = sorted(
            (s for c, s in self._snapshots.items() if c < target),
            key=lambda s: s.cycles,
            reverse=True,
        )
        for snap in candidates:
            try:
                fresh = ReplaySession(
                    self.program, self.trace, config=self.config, resume_from=snap
                )
            except VMError:
                # corrupt / mismatched snapshot: out of the ladder it goes
                del self._snapshots[snap.cycles]
                continue
            self.restores += 1
            return fresh
        return ReplaySession(self.program, self.trace, config=self.config)

    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        return self.session.vm.engine.cycles

    def here(self) -> TimePoint:
        """Describe the current position (remote-reflection data only)."""
        frames = self.session.where()
        thread = self.session.current_thread()
        if frames:
            top = frames[0]
            return TimePoint(
                cycles=self.now,
                tid=thread.tid if thread else -1,
                method=f"{top.class_name}.{top.method_name}",
                bci=top.bci,
                line=top.line,
            )
        return TimePoint(cycles=self.now, tid=-1, method="<no frame>", bci=-1, line=0)

    def mark(self) -> TimePoint:
        """Remember the current position for later travel."""
        point = self.here()
        self.history.append(point)
        return point

    # ------------------------------------------------------------------
    # travel

    def run_to_breakpoint(self, method_ref: str, bci: int = 0) -> str:
        self.session.clear_breakpoints()
        self.session.add_breakpoint(method_ref, bci)
        return self.session.resume()

    def goto_cycles(self, target: int) -> TimePoint:
        """Position the session at the first safe point with cycles ≥ target,
        travelling backwards by re-replaying when needed."""
        if target < 0:
            raise VMError(f"bad time target {target}")
        if target < self.now or self.session.finished:
            # backwards (or past the end): fresh replay, checkpoint-
            # accelerated when a snapshot before the target survives
            self.session = self._rewind_session(target)
            self._attach_recorder()
        if target > 0:
            stopper = _CycleStop(target, self.session.vm.engine)
            saved = self.session.control
            self.session.vm.engine.debug = stopper
            self.session.vm.engine.run()
            self.session.vm.engine.debug = saved
            saved.paused = stopper.paused
            if not stopper.paused and not self.session.vm.completed:
                raise VMError("replay stalled before reaching the time target")
            if self.session.vm.completed and self.session.result is None:
                self.session.result = self.session.vm.finish()
        return self.here()

    def back(self, cycles: int = 1) -> TimePoint:
        """Travel *cycles* backwards (reverse-step at machine granularity)."""
        return self.goto_cycles(max(0, self.now - cycles))

    def goto(self, point: TimePoint) -> TimePoint:
        """Return to a previously marked moment."""
        landed = self.goto_cycles(point.cycles)
        return landed

    def reverse_to_last_mark(self) -> TimePoint:
        if not self.history:
            raise VMError("no marked time points")
        return self.goto(self.history[-1])

    # ------------------------------------------------------------------
    # inspection passthrough (all perturbation-free)

    def read_static(self, class_name: str, field: str):
        return self.session.read_static(class_name, field)

    def where(self):
        return self.session.where()

    def finish(self):
        return self.session.run_to_completion()
