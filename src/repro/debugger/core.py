"""The debugger core: command-level operations over a replay session.

Every query returns plain JSON-serialisable data so the TCP frontend can
ship it as small packets.  The GUI features the paper lists map to:

* source/machine view with breakpoints & stepping — ``source``, ``break_``,
  ``step``, ``cont``;
* instance/static inspection through a tree-based viewer — ``inspect``,
  ``print_static``;
* call-stack view — ``backtrace`` (via remote shadow stacks);
* thread viewer — ``threads``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.debugger.session import ReplaySession
from repro.remote.remote_object import RemoteObject
from repro.vm.bytecode import format_instr
from repro.vm.errors import VMError
from repro.vm.threads import thread_state_name

if TYPE_CHECKING:  # pragma: no cover
    pass

_MAX_TREE_DEPTH = 4


class Debugger:
    def __init__(self, session: ReplaySession):
        self.session = session
        self._timetravel = None  # lazy: created by the first jump

    # ------------------------------------------------------------------
    # control

    def break_(self, method: str, bci: int | None = None, line: int | None = None) -> dict:
        if line is not None:
            mid, at = self.session.add_line_breakpoint(method, line)
        else:
            mid, at = self.session.add_breakpoint(method, bci or 0)
        return {"method_id": mid, "bci": at}

    def cont(self) -> dict:
        status = self.session.resume()
        return self._status(status)

    def step(self, mode: str = "into") -> dict:
        status = self.session.step(mode)
        return self._status(status)

    def jump(self, cycles: int) -> dict:
        """Checkpoint-accelerated time travel to a cycle count.

        Forward jumps drive the current session; backward jumps restore
        the nearest snapshot captured while travelling (falling back to
        replay-from-zero when none survives).  The debugger's session is
        swapped for the time-travel session's, so subsequent commands
        (backtrace, locals, cont, …) operate at the new position.
        """
        from repro.core.checkpoint import DEFAULT_CHECKPOINT_INTERVAL
        from repro.debugger.timetravel import TimeTravelSession

        if self._timetravel is None:
            self._timetravel = TimeTravelSession(
                self.session.program,
                self.session.trace,
                config=self.session.base_config,
                checkpoint_every=DEFAULT_CHECKPOINT_INTERVAL,
                session=self.session,
            )
        point = self._timetravel.goto_cycles(cycles)
        self.session = self._timetravel.session
        return {
            "status": "done" if self.session.finished else "timepoint",
            "cycles": point.cycles,
            "tid": point.tid,
            "method": point.method,
            "bci": point.bci,
            "line": point.line,
            "restores": self._timetravel.restores,
        }

    def finish(self) -> dict:
        result = self.session.run_to_completion()
        return {
            "status": "done",
            "output": result.output_text,
            "cycles": result.cycles,
            "switches": result.switches,
        }

    def _status(self, status: str) -> dict:
        out = {"status": status}
        if status in ("breakpoint", "step") and self.session.control.reason:
            reason = self.session.control.reason
            out["reason"] = list(reason)
            frames = self.backtrace()
            if frames:
                out["top"] = frames[0]
        return out

    # ------------------------------------------------------------------
    # inspection

    def backtrace(self) -> list[dict]:
        return [
            {
                "method": f"{f.class_name}.{f.method_name}",
                "method_id": f.method_id,
                "bci": f.bci,
                "line": f.line,
            }
            for f in self.session.where()
        ]

    def threads(self) -> list[dict]:
        return [
            {
                "tid": t.tid,
                "state": thread_state_name(t.state),
                "frames": [
                    f"{f.class_name}.{f.method_name}@{f.bci} (line {f.line})"
                    for f in t.frames
                ],
            }
            for t in self.session.threads()
        ]

    def print_static(self, class_name: str, field: str) -> dict:
        value = self.session.read_static(class_name, field)
        return {"value": self._render(value, depth=0)}

    def inspect(self, addr: int) -> dict:
        """Tree-render the remote object at *addr* (the class viewer)."""
        obj = self.session.reflector.object_at(addr)
        return {"object": self._render(obj, depth=0)}

    def _render(self, value, depth: int):
        if value is None:
            return None
        if isinstance(value, int):
            return value
        assert isinstance(value, RemoteObject)
        if value.layout.name == "String":
            return {"class": "String", "addr": value.addr, "value": value.as_string()}
        node: dict = {"class": value.layout.name, "addr": value.addr}
        if depth >= _MAX_TREE_DEPTH:
            node["truncated"] = True
            return node
        if value.layout.is_array:
            n = value.length
            node["length"] = n
            shown = min(n, 16)
            node["elements"] = [
                self._render(value.elem(i), depth + 1) for i in range(shown)
            ]
            if shown < n:
                node["truncated"] = True
        else:
            node["fields"] = {
                slot.name: self._render(value.field(slot.name), depth + 1)
                for slot in value.layout.instance_fields
            }
        return node

    def locals(self) -> dict:
        return {"locals": self.session.read_locals()}

    def line_number_of(self, method_id: int, offset: int) -> dict:
        """Figure 3 through the tool VM's extended interpreter."""
        return {"line": self.session.line_number_of(method_id, offset)}

    def source(self, method: str) -> dict:
        """Machine-instruction view with source-line annotations."""
        rm = self.session.resolve_method(method)
        if rm.native:
            raise VMError(f"{rm.qualname} is native")
        listing = []
        for bci, instr in enumerate(rm.mdef.code):
            listing.append(
                {
                    "bci": bci,
                    "instr": format_instr(instr),
                    "line": rm.mdef.line_table.get(bci, 0),
                }
            )
        return {"method": rm.qualname, "method_id": rm.method_id, "code": listing}

    def output(self) -> dict:
        return {"output": self.session.vm.output_text}

    def info(self) -> dict:
        return {
            "paused": self.session.paused,
            "finished": self.session.finished,
            "breakpoints": sorted(self.session.control.breakpoints),
            "port_reads": self.session.port.reads,
            "cycles": self.session.vm.engine.cycles,
        }
