"""Wire protocol between debugger core and frontend: JSON lines over TCP.

The paper's GUI runs on a third JVM and talks to the debugger JVM over
TCP, minimising bandwidth by "transmitting small packets of data rather
than large images".  Our packets are single-line JSON objects::

    → {"id": 7, "cmd": "backtrace", "args": {}}
    ← {"id": 7, "ok": true, "result": [...]}
    ← {"id": 8, "ok": false, "error": "no such method"}
"""

from __future__ import annotations

import json
from typing import Callable

from repro.debugger.core import Debugger

#: command name -> (method name on Debugger, allowed argument names)
COMMANDS: dict[str, tuple[str, tuple[str, ...]]] = {
    "break": ("break_", ("method", "bci", "line")),
    "cont": ("cont", ()),
    "step": ("step", ("mode",)),
    "finish": ("finish", ()),
    "backtrace": ("backtrace", ()),
    "threads": ("threads", ()),
    "print_static": ("print_static", ("class_name", "field")),
    "inspect": ("inspect", ("addr",)),
    "locals": ("locals", ()),
    "line_number_of": ("line_number_of", ("method_id", "offset")),
    "source": ("source", ("method",)),
    "output": ("output", ()),
    "info": ("info", ()),
}


def encode(message: dict) -> bytes:
    return (json.dumps(message, separators=(",", ":")) + "\n").encode()


def decode(line: bytes) -> dict:
    message = json.loads(line.decode())
    if not isinstance(message, dict):
        # valid JSON but not a protocol message; dispatch would blow up
        # on a list/scalar, and an uncaught error kills the serve loop
        raise ValueError("protocol message must be a JSON object")
    return message


def dispatch(debugger: Debugger, request: dict) -> dict:
    """Execute one request against the debugger core."""
    req_id = request.get("id")
    cmd = request.get("cmd")
    args = request.get("args") or {}
    spec = COMMANDS.get(cmd)
    if spec is None:
        return {"id": req_id, "ok": False, "error": f"unknown command {cmd!r}"}
    method_name, allowed = spec
    unknown = set(args) - set(allowed)
    if unknown:
        return {"id": req_id, "ok": False, "error": f"bad arguments {sorted(unknown)}"}
    fn: Callable = getattr(debugger, method_name)
    try:
        result = fn(**args)
    except Exception as exc:  # the server must survive bad queries
        return {"id": req_id, "ok": False, "error": f"{type(exc).__name__}: {exc}"}
    return {"id": req_id, "ok": True, "result": result}
