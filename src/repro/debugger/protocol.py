"""Wire protocol between debugger core and frontend: framed JSON over TCP.

The paper's GUI runs on a third JVM and talks to the debugger JVM over
TCP, minimising bandwidth by "transmitting small packets of data rather
than large images".  Our packets are JSON objects::

    → {"id": 7, "cmd": "backtrace", "args": {}}
    ← {"id": 7, "ok": true, "result": [...]}
    ← {"id": 8, "ok": false, "error": "no such method"}

each carried in a **length-prefixed frame**: a 4-byte big-endian payload
length followed by the JSON bytes.  Length prefixes make partial reads a
non-event (the decoder simply waits for the rest) and make garbage
*detectable*: random bytes parse as an implausible length, which is
rejected up front with a bounded read — the receiver never tries to
buffer gigabytes on a bad prefix.  A frame whose payload is not a JSON
object is an application-level error (answered in-band); a frame whose
*length* is invalid is a transport-level error (the connection cannot be
resynchronised and must close).
"""

from __future__ import annotations

import json
from typing import Callable

from repro.debugger.core import Debugger
from repro.vm.errors import VMError

#: frames larger than this are rejected without reading the payload —
#: real responses are "small packets", so 1 MiB is generous
MAX_FRAME_BYTES = 1 << 20
#: length prefix size (u32 big-endian)
LEN_BYTES = 4


class TransportError(VMError):
    """The debugger connection itself failed: unframeable bytes, an
    oversized length prefix, a timeout, or a peer that vanished."""


class FrameError(TransportError):
    """The byte stream cannot be parsed as frames; resync is impossible
    and the connection must be torn down."""


#: command name -> (method name on Debugger, allowed argument names)
COMMANDS: dict[str, tuple[str, tuple[str, ...]]] = {
    "break": ("break_", ("method", "bci", "line")),
    "cont": ("cont", ()),
    "step": ("step", ("mode",)),
    "jump": ("jump", ("cycles",)),
    "finish": ("finish", ()),
    "backtrace": ("backtrace", ()),
    "threads": ("threads", ()),
    "print_static": ("print_static", ("class_name", "field")),
    "inspect": ("inspect", ("addr",)),
    "locals": ("locals", ()),
    "line_number_of": ("line_number_of", ("method_id", "offset")),
    "source": ("source", ("method",)),
    "output": ("output", ()),
    "info": ("info", ()),
}

#: handled at the transport layer, without touching the Debugger: the
#: keepalive probe both sides use to tell "slow" from "dead"
PING_COMMAND = "ping"


def encode(message: dict) -> bytes:
    """JSON payload bytes (no framing)."""
    return json.dumps(message, separators=(",", ":")).encode()


def decode(data: bytes) -> dict:
    message = json.loads(data.decode())
    if not isinstance(message, dict):
        # valid JSON but not a protocol message; dispatch would blow up
        # on a list/scalar, and an uncaught error kills the serve loop
        raise ValueError("protocol message must be a JSON object")
    return message


def frame(message: dict) -> bytes:
    """One wire frame: length prefix + JSON payload."""
    payload = encode(message)
    if len(payload) > MAX_FRAME_BYTES:  # pragma: no cover - defensive
        raise FrameError(f"outgoing frame of {len(payload)} bytes exceeds cap")
    return len(payload).to_bytes(LEN_BYTES, "big") + payload


class FrameDecoder:
    """Incremental frame reassembly over arbitrary byte chunks.

    ``feed`` never blocks and never over-buffers: the declared length is
    validated *before* any payload accumulates, so an adversarial or
    corrupted prefix costs at most ``LEN_BYTES`` of buffered data plus
    one :class:`FrameError`.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buf = b""

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)

    def feed(self, data: bytes) -> list[bytes]:
        """Buffer *data*; return every complete frame payload now available.

        Raises :class:`FrameError` on an oversized or absurd length
        prefix — the caller must close the connection (there is no way to
        find the next frame boundary in a stream with a broken prefix).
        """
        self._buf += data
        payloads: list[bytes] = []
        while len(self._buf) >= LEN_BYTES:
            length = int.from_bytes(self._buf[:LEN_BYTES], "big")
            if length > self.max_frame_bytes:
                raise FrameError(
                    f"frame length {length} exceeds the {self.max_frame_bytes}"
                    f"-byte cap (garbage or hostile prefix); closing"
                )
            if len(self._buf) < LEN_BYTES + length:
                break  # partial frame: wait for more bytes
            payloads.append(self._buf[LEN_BYTES:LEN_BYTES + length])
            self._buf = self._buf[LEN_BYTES + length:]
        return payloads


def dispatch(debugger: Debugger, request: dict) -> dict:
    """Execute one request against the debugger core."""
    req_id = request.get("id")
    cmd = request.get("cmd")
    args = request.get("args") or {}
    if cmd == PING_COMMAND:
        return {"id": req_id, "ok": True, "result": "pong"}
    spec = COMMANDS.get(cmd)
    if spec is None:
        return {"id": req_id, "ok": False, "error": f"unknown command {cmd!r}"}
    method_name, allowed = spec
    unknown = set(args) - set(allowed)
    if unknown:
        return {"id": req_id, "ok": False, "error": f"bad arguments {sorted(unknown)}"}
    fn: Callable = getattr(debugger, method_name)
    try:
        result = fn(**args)
    except Exception as exc:  # the server must survive bad queries
        return {"id": req_id, "ok": False, "error": f"{type(exc).__name__}: {exc}"}
    return {"id": req_id, "ok": True, "result": result}
