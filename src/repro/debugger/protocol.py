"""Wire protocol between debugger core and frontend: framed JSON over TCP.

The paper's GUI runs on a third JVM and talks to the debugger JVM over
TCP, minimising bandwidth by "transmitting small packets of data rather
than large images".  Our packets are JSON objects::

    → {"id": 7, "cmd": "backtrace", "args": {}}
    ← {"id": 7, "ok": true, "result": [...]}
    ← {"id": 8, "ok": false, "error": "no such method"}

each carried in a **length-prefixed frame**: a 4-byte big-endian payload
length followed by the JSON bytes.  The framing layer itself (length
validation, incremental reassembly, the retry/backoff policy) lives in
:mod:`repro.core.framing` — it is shared with the remote campaign
protocol — and is re-exported here for backward compatibility.  A frame
whose payload is not a JSON object is an application-level error
(answered in-band); a frame whose *length* is invalid is a
transport-level error (the connection cannot be resynchronised and must
close).
"""

from __future__ import annotations

import json
from typing import Callable

from repro.core.framing import (  # noqa: F401 - re-exported public names
    LEN_BYTES,
    MAX_FRAME_BYTES,
    BackoffPolicy,
    FrameDecoder,
    FrameError,
    TransportError,
    frame_payload,
)
from repro.debugger.core import Debugger


#: command name -> (method name on Debugger, allowed argument names)
COMMANDS: dict[str, tuple[str, tuple[str, ...]]] = {
    "break": ("break_", ("method", "bci", "line")),
    "cont": ("cont", ()),
    "step": ("step", ("mode",)),
    "jump": ("jump", ("cycles",)),
    "finish": ("finish", ()),
    "backtrace": ("backtrace", ()),
    "threads": ("threads", ()),
    "print_static": ("print_static", ("class_name", "field")),
    "inspect": ("inspect", ("addr",)),
    "locals": ("locals", ()),
    "line_number_of": ("line_number_of", ("method_id", "offset")),
    "source": ("source", ("method",)),
    "output": ("output", ()),
    "info": ("info", ()),
}

#: handled at the transport layer, without touching the Debugger: the
#: keepalive probe both sides use to tell "slow" from "dead"
PING_COMMAND = "ping"


def encode(message: dict) -> bytes:
    """JSON payload bytes (no framing)."""
    return json.dumps(message, separators=(",", ":")).encode()


def decode(data: bytes) -> dict:
    message = json.loads(data.decode())
    if not isinstance(message, dict):
        # valid JSON but not a protocol message; dispatch would blow up
        # on a list/scalar, and an uncaught error kills the serve loop
        raise ValueError("protocol message must be a JSON object")
    return message


def frame(message: dict) -> bytes:
    """One wire frame: length prefix + JSON payload."""
    return frame_payload(encode(message))


def dispatch(debugger: Debugger, request: dict) -> dict:
    """Execute one request against the debugger core."""
    req_id = request.get("id")
    cmd = request.get("cmd")
    args = request.get("args") or {}
    if cmd == PING_COMMAND:
        return {"id": req_id, "ok": True, "result": "pong"}
    spec = COMMANDS.get(cmd)
    if spec is None:
        return {"id": req_id, "ok": False, "error": f"unknown command {cmd!r}"}
    method_name, allowed = spec
    unknown = set(args) - set(allowed)
    if unknown:
        return {"id": req_id, "ok": False, "error": f"bad arguments {sorted(unknown)}"}
    fn: Callable = getattr(debugger, method_name)
    try:
        result = fn(**args)
    except Exception as exc:  # the server must survive bad queries
        return {"id": req_id, "ok": False, "error": f"{type(exc).__name__}: {exc}"}
    return {"id": req_id, "ok": True, "result": result}
