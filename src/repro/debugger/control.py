"""Execution control: breakpoints and stepping over a paused engine.

The controller is consulted by the engine before every micro-op.  It is
purely host-side state — attaching it changes nothing the guest can
observe (cycle counts, scheduling, heap), so replay accuracy is preserved
whether or not a debugger is watching.  Tests verify exactly that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.threads import Frame, GreenThread

STEP_INTO = "into"
STEP_OVER = "over"
STEP_OUT = "out"


class DebugController:
    def __init__(self) -> None:
        #: (method_id, bci) pairs
        self.breakpoints: set[tuple[int, int]] = set()
        self.paused = False
        #: why we last paused: ("breakpoint", mid, bci) or ("step",) ...
        self.reason: tuple | None = None
        self._resume_token: tuple | None = None
        self._step_mode: str | None = None
        self._step_tid: int | None = None
        self._step_frame_depth = 0
        self._step_origin: tuple | None = None

    # ------------------------------------------------------------------
    # configuration

    def add_breakpoint(self, method_id: int, bci: int) -> None:
        self.breakpoints.add((method_id, bci))

    def remove_breakpoint(self, method_id: int, bci: int) -> None:
        self.breakpoints.discard((method_id, bci))

    def clear_breakpoints(self) -> None:
        self.breakpoints.clear()

    # ------------------------------------------------------------------
    # resume / step requests (called by the session before engine.run())

    def resume(self) -> None:
        self.paused = False
        self._step_mode = None

    def step(self, thread: "GreenThread", mode: str = STEP_INTO) -> None:
        """Arm a single step of *thread* at bytecode granularity."""
        self.paused = False
        self._step_mode = mode
        self._step_tid = thread.tid
        self._step_frame_depth = len(thread.frames)
        frame = thread.frames[-1] if thread.frames else None
        self._step_origin = (id(frame), frame.bci if frame else -1)

    # ------------------------------------------------------------------
    # the engine-side check

    def check(self, thread: "GreenThread", frame: "Frame", pc: int) -> bool:
        """True ⇒ the engine parks the thread and returns to the session."""
        bci = frame.code.xbci_of[pc]
        token = (thread.tid, id(frame), bci)
        if token == self._resume_token:
            # still on the bytecode we just paused at (a bci spans several
            # micro-ops); don't immediately re-pause.
            return False
        self._resume_token = None
        if self._step_mode is not None and thread.tid == self._step_tid:
            depth = len(thread.frames)
            at_new_spot = (id(frame), bci) != self._step_origin
            if at_new_spot and self._should_stop_step(depth):
                self._pause(token, ("step", thread.tid, frame.method.method_id, bci))
                return True

        if (frame.method.method_id, bci) in self.breakpoints:
            self._pause(token, ("breakpoint", frame.method.method_id, bci))
            return True
        return False

    def _should_stop_step(self, depth: int) -> bool:
        if self._step_mode == STEP_INTO:
            return True
        if self._step_mode == STEP_OVER:
            return depth <= self._step_frame_depth
        if self._step_mode == STEP_OUT:
            return depth < self._step_frame_depth
        return False

    def _pause(self, token: tuple, reason: tuple) -> None:
        self.paused = True
        self.reason = reason
        self._resume_token = token
        self._step_mode = None
