"""A replay session under debugger control.

``ReplaySession`` owns the three pieces of Figure 4's bottom two tiers:
the **application VM** (replaying a trace under DejaVu), the **tool VM**
(same classes, used by remote reflection and the extended interpreter),
and the :class:`~repro.debugger.control.DebugController` that pauses the
application engine at breakpoints.

Perturbation-freedom in practice: while paused, every inspection goes
through the read-only :class:`~repro.remote.ptrace.DebugPort`; resuming
continues the replay, and when it completes, DejaVu's END verification
still passes — inspection left no trace in the guest.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.controller import MODE_REPLAY, DejaVu
from repro.debugger.control import STEP_INTO, DebugController
from repro.remote.interp_ext import ToolInterpreter
from repro.remote.mapping import default_mappings
from repro.remote.ptrace import DebugPort
from repro.remote.reflector import RemoteReflector
from repro.vm.errors import VMError
from repro.vm.machine import VirtualMachine, VMConfig, with_baseline_engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import GuestProgram
    from repro.core.checkpoint import Snapshot
    from repro.core.tracelog import TraceLog
    from repro.vm.scheduler_types import RunResult
    from repro.vm.threads import GreenThread


class ReplaySession:
    def __init__(
        self,
        program: "GuestProgram",
        trace: "TraceLog",
        config: VMConfig | None = None,
        symmetry=None,
        resume_from: "Snapshot | None" = None,
    ):
        from repro.api import build_vm

        self.program = program
        self.trace = trace
        #: the caller's config, pre baseline-forcing — what a rebuilt or
        #: checkpoint-restored session must be constructed from
        self.base_config = config
        if resume_from is not None:
            # rehydrate mid-flight: the snapshot must have been captured
            # by a debugger session (they all force the baseline engine)
            from repro.core.checkpoint import restore_vm

            self.vm = restore_vm(
                resume_from,
                program,
                trace,
                config=with_baseline_engine(config),
                symmetry=symmetry,
            )
            self.dejavu = self.vm.dejavu
        else:
            self.vm = build_vm(program, with_baseline_engine(config))
            self.dejavu = DejaVu(self.vm, MODE_REPLAY, trace=trace, symmetry=symmetry)
        self.control = DebugController()
        self.vm.engine.debug = self.control

        # tool tier: its own VM with the same classes, plus remote access
        self.tool_vm = VirtualMachine(config)
        self.tool_vm.declare(program.classdefs)
        self.port = DebugPort(self.vm)
        self.reflector = RemoteReflector(self.port, self.tool_vm)
        self.interp = ToolInterpreter(self.tool_vm, self.port, default_mappings())

        self.result: "RunResult | None" = None
        if resume_from is None:
            self.vm.start(program.main)

    # ------------------------------------------------------------------
    # breakpoint management (resolution is host-side metadata only)

    def resolve_method(self, method_ref: str):
        return self.vm.loader.resolve_method_any(method_ref)

    def add_breakpoint(self, method_ref: str, bci: int = 0) -> tuple[int, int]:
        rm = self.resolve_method(method_ref)
        if rm.native:
            raise VMError(f"cannot break in native {rm.qualname}")
        if not (0 <= bci < len(rm.mdef.code)):
            raise VMError(f"bci {bci} out of range for {rm.qualname}")
        self.control.add_breakpoint(rm.method_id, bci)
        return rm.method_id, bci

    def add_line_breakpoint(self, method_ref: str, line: int) -> tuple[int, int]:
        """Break at the first bci whose source line is *line*."""
        rm = self.resolve_method(method_ref)
        for bci in sorted(rm.mdef.line_table):
            if rm.mdef.line_table[bci] == line:
                return self.add_breakpoint(method_ref, bci)
        raise VMError(f"no code at line {line} of {rm.qualname}")

    def clear_breakpoints(self) -> None:
        self.control.clear_breakpoints()

    # ------------------------------------------------------------------
    # execution control

    @property
    def paused(self) -> bool:
        return self.control.paused

    @property
    def finished(self) -> bool:
        return self.result is not None

    def resume(self) -> str:
        """Continue the replay; returns 'breakpoint', 'step', or 'done'."""
        if self.finished:
            return "done"
        self.control.resume()
        return self._drive()

    def step(self, mode: str = STEP_INTO) -> str:
        if self.finished:
            return "done"
        thread = self.current_thread()
        if thread is None:
            return self.resume()
        self.control.step(thread, mode)
        return self._drive()

    def _drive(self) -> str:
        self.vm.engine.run()
        if self.control.paused:
            assert self.control.reason is not None
            return self.control.reason[0]
        self.result = self.vm.finish()
        return "done"

    def run_to_completion(self) -> "RunResult":
        while not self.finished:
            self.control.clear_breakpoints()
            self.resume()
        assert self.result is not None
        return self.result

    # ------------------------------------------------------------------
    # inspection (all remote / read-only)

    def current_thread(self) -> "GreenThread | None":
        return self.vm.scheduler.current

    def where(self):
        """Remote stack trace of the paused thread (via shadow stacks)."""
        thread = self.current_thread()
        if thread is None:
            return []
        remote_thread = self.reflector.object_at(thread.guest_addr)
        return self.reflector.stack_trace(remote_thread)

    def threads(self):
        return self.reflector.threads()

    def read_static(self, class_name: str, field: str):
        statics = self.reflector.statics_of(class_name)
        if statics is None:
            raise VMError(f"{class_name} has no statics")
        return statics.field(field)

    def line_number_of(self, method_number: int, offset: int) -> int:
        """Figure 3, executed as guest bytecode on the tool VM."""
        self._ensure_debugger_class()
        return self.interp.call(
            "Debugger.lineNumberOf(II)I", [method_number, offset]
        )

    def _ensure_debugger_class(self) -> None:
        if "Debugger" not in self.tool_vm.loader.classdefs:
            from repro.debugger.guestlib import debugger_classdefs

            self.tool_vm.declare(debugger_classdefs())
        self.tool_vm.loader.load("Debugger")

    # ------------------------------------------------------------------
    # simulated stack reads (see docstring caveat in DESIGN.md)

    def read_locals(self, tid: int | None = None) -> list:
        """Read the paused thread's top-frame locals.

        Jalapeño keeps activation stacks in heap arrays, so dbx-style raw
        reads reach them; our frames are host objects (a documented
        substitution), so this is a host-side — still strictly read-only —
        access.
        """
        thread = (
            self.vm.scheduler.threads[tid]
            if tid is not None
            else self.current_thread()
        )
        if thread is None or not thread.frames:
            return []
        return list(thread.frames[-1].locals)
