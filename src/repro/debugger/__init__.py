"""The DejaVu-based debugger (§4 + Figure 4).

Three tiers, as in the paper:

1. the **application VM**, replaying under DejaVu — it executes nothing on
   the debugger's behalf;
2. the **tool VM / debugger core** (:class:`repro.debugger.core.Debugger`
   over a :class:`repro.debugger.session.ReplaySession`), which inspects
   the application VM via remote reflection only;
3. the **frontend** (:mod:`repro.debugger.frontend`), a thin client
   talking to the debugger core over TCP with small JSON packets ("small
   packets of data rather than large images").
"""

from repro.debugger.control import DebugController
from repro.debugger.core import Debugger
from repro.debugger.session import ReplaySession
from repro.debugger.frontend import DebuggerClient, DebuggerServer

__all__ = [
    "DebugController",
    "Debugger",
    "DebuggerClient",
    "DebuggerServer",
    "ReplaySession",
]
