"""The third tier: a TCP server around the debugger core, plus a client.

``DebuggerServer`` accepts one frontend connection at a time and serves
protocol requests against its :class:`~repro.debugger.core.Debugger`.
``DebuggerClient`` is the thin frontend side — what the paper's Swing GUI
would be built on — exposing each protocol command as a method.

The server runs on a background (host) thread; the guest VM only executes
inside request handling, so the session stays single-threaded from the
guest's point of view.
"""

from __future__ import annotations

import socket
import threading

from repro.debugger.core import Debugger
from repro.debugger.protocol import COMMANDS, decode, dispatch, encode
from repro.vm.errors import VMError


class DebuggerServer:
    def __init__(self, debugger: Debugger, host: str = "127.0.0.1", port: int = 0):
        self.debugger = debugger
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(1)
        self.address = self._sock.getsockname()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    def start(self) -> "DebuggerServer":
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()
        return self

    def _serve(self) -> None:
        self._sock.settimeout(0.2)
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            with conn:
                self._serve_connection(conn)

    def _serve_connection(self, conn: socket.socket) -> None:
        buf = b""
        conn.settimeout(0.2)
        while not self._stop.is_set():
            try:
                chunk = conn.recv(4096)
            except TimeoutError:
                continue
            except OSError:
                return
            if not chunk:
                return
            buf += chunk
            while b"\n" in buf:
                line, buf = buf.split(b"\n", 1)
                if not line.strip():
                    continue
                try:
                    request = decode(line)
                except ValueError:
                    conn.sendall(encode({"ok": False, "error": "bad json"}))
                    continue
                response = dispatch(self.debugger, request)
                conn.sendall(encode(response))

    def stop(self) -> None:
        self._stop.set()
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass
        if self._thread is not None:
            self._thread.join(timeout=2)


class DebuggerClient:
    """Thin frontend: one method per protocol command."""

    def __init__(self, address: tuple[str, int], timeout: float = 10.0):
        self._sock = socket.create_connection(address, timeout=timeout)
        self._buf = b""
        self._next_id = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "DebuggerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(self, cmd: str, **args):
        self._next_id += 1
        payload = encode({"id": self._next_id, "cmd": cmd, "args": args})
        self._sock.sendall(payload)
        self.bytes_sent += len(payload)
        while b"\n" not in self._buf:
            chunk = self._sock.recv(4096)
            if not chunk:
                raise VMError("debugger server closed the connection")
            self._buf += chunk
            self.bytes_received += len(chunk)
        line, self._buf = self._buf.split(b"\n", 1)
        response = decode(line)
        if response.get("id") != self._next_id:
            raise VMError("out-of-order debugger response")
        if not response.get("ok"):
            raise VMError(f"debugger error: {response.get('error')}")
        return response.get("result")

    def __getattr__(self, name: str):
        if name in COMMANDS:
            return lambda **args: self.request(name, **args)
        raise AttributeError(name)
