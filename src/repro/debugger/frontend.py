"""The third tier: a TCP server around the debugger core, plus a client.

``DebuggerServer`` accepts one frontend connection at a time and serves
framed protocol requests against its :class:`~repro.debugger.core.Debugger`.
``DebuggerClient`` is the thin frontend side — what the paper's Swing GUI
would be built on — exposing each protocol command as a method.

Hardening posture: the server must survive **any** single bad client — a
frame split across sends, an oversized length prefix, garbage bytes, a
peer that vanishes mid-request — because killing the serve loop kills the
replay session it is inspecting.  The client, for its part, retries the
initial connect with capped exponential backoff + jitter (servers take a
moment to come up), applies a per-request timeout so a dead server cannot
hang it, and exposes a transport-level keepalive ``ping``.

The server runs on a background (host) thread; the guest VM only executes
inside request handling, so the session stays single-threaded from the
guest's point of view.
"""

from __future__ import annotations

import logging
import socket
import time

from repro.core.framing import BackoffPolicy
from repro.core.server import SocketServer
from repro.debugger.core import Debugger
from repro.debugger.protocol import (
    COMMANDS,
    FrameDecoder,
    FrameError,
    TransportError,
    decode,
    dispatch,
    frame,
)


logger = logging.getLogger(__name__)


class DebuggerServer(SocketServer):
    """One-connection-at-a-time framed server on the shared
    :class:`~repro.core.server.SocketServer` accept loop.

    One bad client must never take down the serve loop (and with it the
    replay session it is observing): the base loop logs the drop and
    goes back to accepting.  ``log`` defaults to the module logger
    (tests pass a capturing callable); ``connections_served`` /
    ``frame_errors`` let tests assert the loop *survived* a hostile
    client, not just that it didn't crash.
    """

    def __init__(
        self,
        debugger: Debugger,
        host: str = "127.0.0.1",
        port: int = 0,
        log=None,
    ):
        super().__init__(
            host,
            port,
            log=log if log is not None else logger.info,
            concurrency=1,
            name="repro-debugger",
        )
        self.debugger = debugger
        self.frame_errors = 0

    def handle_connection(self, conn: socket.socket) -> None:
        decoder = FrameDecoder()
        conn.settimeout(0.2)
        while not self.stopping:
            try:
                chunk = conn.recv(4096)
            except TimeoutError:
                continue
            except OSError:
                return  # client vanished mid-request: tear down gracefully
            if not chunk:
                return  # orderly client disconnect
            try:
                payloads = decoder.feed(chunk)
            except FrameError as exc:
                # the stream cannot be resynchronised: log, answer once
                # (best effort) and close this connection only
                self.frame_errors += 1
                self.log(f"unframeable client stream: {exc}")
                self._send(conn, {"ok": False, "error": str(exc)})
                return
            for payload in payloads:
                try:
                    request = decode(payload)
                except ValueError as exc:
                    self.log(f"undecodable request payload: {exc}")
                    if not self._send(conn, {"ok": False, "error": "bad json"}):
                        return
                    continue
                response = dispatch(self.debugger, request)
                if not self._send(conn, response):
                    return

    @staticmethod
    def _send(conn: socket.socket, message: dict) -> bool:
        """Send one frame; False means the client is gone (stop serving
        this connection, but never crash the loop)."""
        try:
            conn.sendall(frame(message))
            return True
        except OSError:
            return False


class DebuggerClient:
    """Thin frontend: one method per protocol command.

    ``timeout`` bounds every request round trip.  Construction connects
    immediately; use :meth:`connect` for retry-with-backoff semantics
    when the server may not be accepting yet.
    """

    def __init__(self, address: tuple[str, int], timeout: float = 10.0):
        self._sock = socket.create_connection(address, timeout=timeout)
        self.timeout = timeout
        self._decoder = FrameDecoder()
        self._next_id = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    @classmethod
    def connect(
        cls,
        address: tuple[str, int],
        *,
        timeout: float = 10.0,
        attempts: int = 6,
        base_delay: float = 0.05,
        max_delay: float = 1.0,
        jitter_seed: int | None = 0,
        policy: BackoffPolicy | None = None,
        sleep=time.sleep,
    ) -> "DebuggerClient":
        """Connect with capped exponential backoff + jitter.

        The retry schedule is a :class:`~repro.core.framing.BackoffPolicy`
        (pass one as *policy*, or let the legacy knobs build it): jitter
        is drawn from a seeded RNG so tests (and coordinated fleets of
        frontends) stay deterministic, and *sleep* is injectable so
        backoff-sequence tests run against a fake clock.  Raises
        :class:`TransportError` after the final attempt fails.
        """
        policy = policy or BackoffPolicy(
            attempts=attempts,
            base_delay=base_delay,
            max_delay=max_delay,
            jitter_seed=jitter_seed,
        )
        return policy.call(
            lambda: cls(address, timeout=timeout),
            retry_on=(OSError,),
            sleep=sleep,
            describe=f"could not connect to debugger at {address[0]}:{address[1]}",
        )

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "DebuggerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def ping(self) -> bool:
        """Transport keepalive: round-trip a ping without touching the
        debugger session.  True iff the server answered."""
        try:
            return self.request("ping") == "pong"
        except TransportError:
            return False

    def request(self, cmd: str, timeout: float | None = None, **args):
        self._next_id += 1
        payload = frame({"id": self._next_id, "cmd": cmd, "args": args})
        self._sock.settimeout(timeout if timeout is not None else self.timeout)
        try:
            self._sock.sendall(payload)
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc
        self.bytes_sent += len(payload)
        response = decode(self._read_frame())
        if response.get("id") != self._next_id:
            raise TransportError("out-of-order debugger response")
        if not response.get("ok"):
            raise TransportError(f"debugger error: {response.get('error')}")
        return response.get("result")

    def _read_frame(self) -> bytes:
        frames: list[bytes] = []
        while not frames:
            try:
                chunk = self._sock.recv(4096)
            except TimeoutError as exc:
                raise TransportError(
                    f"debugger request timed out after {self.timeout}s"
                ) from exc
            except OSError as exc:
                raise TransportError(f"receive failed: {exc}") from exc
            if not chunk:
                raise TransportError("debugger server closed the connection")
            self.bytes_received += len(chunk)
            frames = self._decoder.feed(chunk)
        return frames[0]

    def __getattr__(self, name: str):
        if name in COMMANDS:
            return lambda **args: self.request(name, **args)
        raise AttributeError(name)
