"""The `repro serve` wire protocol: job schema, typed errors, codec.

The serve daemon rides the platform's one framing discipline — the
u32-big-endian length-prefixed frames of :mod:`repro.core.framing` —
with the same checksummed-pickle payloads the remote campaign protocol
uses (:func:`~repro.core.framing.encode_pickle_message`).  Like that
protocol it is for hosts you already trust to run your code; it is not
an internet-facing protocol.

Message ops (every message is ``{"op": ..., ...}``):

====================  =========  =============================================
op                    direction  meaning
====================  =========  =============================================
``hello``             → daemon   handshake; carries the protocol version
``hello-ok``          ← daemon   handshake accepted; carries version + pid
``submit``            → daemon   one job dict (see :func:`validate_job`)
``result``            ← daemon   the job's outcome: ``ok`` + result or a
                                 typed error dict (``type``/``detail`` and,
                                 for rejections, ``retry_after``)
``health``            → daemon   readiness probe
``health-ok``         ← daemon   state (``ready``/``draining``) + counters
``drain``             → daemon   begin graceful drain (the signal-free
                                 equivalent of SIGTERM, for tests/CI)
``ping`` / ``pong``   both       transport keepalive
``shutdown``/``bye``  both       drain + terminate, like ``drain``
``error``             ← daemon   typed in-band protocol failure
====================  =========  =============================================

**Job schema.**  A job is a plain dict.  Common fields:

* ``kind`` — ``record`` | ``replay`` | ``explore`` | ``doctor`` |
  ``trace-stats``
* ``workload`` + ``workload_args`` — a registered workload build, or
* ``source`` (+ ``main``, ``name``) — inline ``.jasm`` text
* ``seed`` — the CLI ``--seed`` knob (None: host timer/clock)
* ``engine`` — an :data:`repro.api.ENGINE_PRESETS` name (default
  ``full``) or a dict of engine flags (the 8-combo ablation space)
* ``heap`` — semispace words (default 400 000, the CLI default)
* ``deadline`` — per-job wall-clock budget in seconds; exceeding it
  lands a typed ``JobDeadlineExceeded``, enforced cooperatively at
  engine safe points
* ``trace`` — sealed trace bytes (replay / doctor / trace-stats)
* ``bound`` / ``budget`` — explore parameters (CLI defaults 2 / 250)
* ``out_name`` — the label printed in record output (default
  ``run.djv``), so daemon stdout is byte-identical to the CLI's
* ``trace_name`` — the path label doctor output prints (the daemon
  diagnoses from a temp file; this substitutes the client's path so
  stdout matches the CLI one-shot)

Results carry ``stdout`` (byte-identical to the CLI one-shot's stdout),
``exit`` (the CLI exit status), and for record jobs ``trace`` (sealed
trace bytes, byte-identical to the CLI-written file).
"""

from __future__ import annotations

from repro.core.framing import (
    FrameDecoder,
    FrameError,
    TransportError,
    decode_pickle_payload,
    encode_pickle_message,
)
from repro.vm.errors import VMError

__all__ = [
    "SERVE_PROTOCOL_VERSION",
    "MAX_SERVE_FRAME_BYTES",
    "JOB_KINDS",
    "ServeError",
    "JobRejected",
    "JobDeadlineExceeded",
    "JobCancelled",
    "encode_serve_message",
    "decode_serve_payload",
    "validate_job",
    "error_reply",
    "FrameDecoder",
    "FrameError",
    "TransportError",
]

#: serve protocol revision; bumped on any wire-incompatible change
SERVE_PROTOCOL_VERSION = 1
#: jobs and results carry sealed trace blobs, so the cap matches the
#: remote campaign protocol, not the debugger's small packets
MAX_SERVE_FRAME_BYTES = 64 << 20

#: the job kinds the daemon executes
JOB_KINDS = ("record", "replay", "explore", "doctor", "trace-stats")


class ServeError(VMError):
    """A serve-layer failure with a stable type name — the daemon's
    typed-diagnostic currency: every failure a client can cause maps to
    a subclass, never a raw traceback."""


class JobRejected(ServeError):
    """The daemon declined the job *before* running it: admission queue
    full (``reason='overloaded'``) or drain in progress
    (``reason='draining'``).  ``retry_after`` tells a client when a
    retry is worth attempting."""

    def __init__(self, detail: str, *, reason: str, retry_after: float):
        super().__init__(detail)
        self.reason = reason
        self.retry_after = retry_after


class JobDeadlineExceeded(ServeError):
    """The job ran past its deadline and was cancelled cooperatively at
    an engine safe point (or a sweep/stage boundary)."""


class JobCancelled(ServeError):
    """The job was cancelled by the daemon (drain hit its grace period
    or the client asked) before it could finish."""


def encode_serve_message(message: dict) -> bytes:
    """One wire frame: length prefix + CRC32 + pickled message."""
    return encode_pickle_message(message, MAX_SERVE_FRAME_BYTES)


def decode_serve_payload(payload: bytes) -> dict:
    """Check the CRC and unpickle one frame payload (typed
    :class:`FrameError` on anything untrustworthy)."""
    return decode_pickle_payload(payload)


def validate_job(job) -> dict:
    """Normalize and validate one job dict; typed :class:`ServeError` on
    anything malformed (a poison payload must land in a diagnostic the
    client can read, never a worker traceback)."""
    if not isinstance(job, dict):
        raise ServeError(f"job must be a dict, got {type(job).__name__}")
    kind = job.get("kind")
    if kind not in JOB_KINDS:
        raise ServeError(
            f"unknown job kind {kind!r} (known: {', '.join(JOB_KINDS)})"
        )
    out = dict(job)
    out.setdefault("workload_args", {})
    out.setdefault("seed", None)
    out.setdefault("engine", "full")
    out.setdefault("heap", 400_000)
    out.setdefault("deadline", None)
    out.setdefault("main", "Main.main()V")
    if out["seed"] is not None and not isinstance(out["seed"], int):
        raise ServeError(f"job seed must be an int or None, got {out['seed']!r}")
    if not isinstance(out["heap"], int) or out["heap"] <= 0:
        raise ServeError(f"job heap must be a positive int, got {out['heap']!r}")
    if out["deadline"] is not None:
        try:
            out["deadline"] = float(out["deadline"])
        except (TypeError, ValueError):
            raise ServeError(f"job deadline must be seconds, got {out['deadline']!r}")
        if out["deadline"] <= 0:
            raise ServeError("job deadline must be positive")
    if not isinstance(out["workload_args"], dict):
        raise ServeError("job workload_args must be a dict")
    has_program = ("workload" in out and out["workload"]) or (
        "source" in out and out["source"]
    )
    if kind in ("record", "explore") and not has_program:
        raise ServeError(f"{kind} job needs a 'workload' name or 'source' text")
    if kind in ("replay", "doctor", "trace-stats"):
        blob = out.get("trace")
        if not isinstance(blob, (bytes, bytearray)) or not blob:
            raise ServeError(f"{kind} job needs sealed trace bytes in 'trace'")
        out["trace"] = bytes(blob)
    if kind == "replay" and not has_program:
        raise ServeError("replay job needs a 'workload' name or 'source' text")
    if kind == "explore":
        out.setdefault("bound", 2)
        out.setdefault("budget", 250)
        if not isinstance(out["bound"], int) or out["bound"] < 1:
            raise ServeError(f"explore bound must be >= 1, got {out['bound']!r}")
        if not isinstance(out["budget"], int) or out["budget"] < 1:
            raise ServeError(f"explore budget must be >= 1, got {out['budget']!r}")
    if kind == "record":
        out.setdefault("out_name", "run.djv")
        out.setdefault("slim", False)
    engine = out["engine"]
    if isinstance(engine, str):
        from repro.api import ENGINE_PRESETS

        if engine not in ENGINE_PRESETS:
            raise ServeError(
                f"unknown engine preset {engine!r} "
                f"(known: {', '.join(sorted(ENGINE_PRESETS))})"
            )
    elif isinstance(engine, dict):
        allowed = {"threaded_dispatch", "fusion", "inline_caches"}
        bad = set(engine) - allowed
        if bad:
            raise ServeError(
                f"unknown engine flag(s) {sorted(bad)} "
                f"(known: {sorted(allowed)})"
            )
    else:
        raise ServeError(
            f"job engine must be a preset name or a flag dict, got {engine!r}"
        )
    return out


def error_reply(exc: Exception) -> dict:
    """The in-band ``result`` error dict for a typed failure."""
    error: dict = {"type": type(exc).__name__, "detail": str(exc)}
    if isinstance(exc, JobRejected):
        error["reason"] = exc.reason
        error["retry_after"] = exc.retry_after
    return {"op": "result", "ok": False, "error": error}
