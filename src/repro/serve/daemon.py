"""The `repro serve` daemon: a long-lived, supervised replay service.

Built on the shared :class:`~repro.core.server.SocketServer` accept
loop with per-connection handler threads: each framed connection may
submit jobs sequentially; concurrency comes from concurrent
connections.  Every job passes through the robustness envelope — typed
validation (:func:`~repro.serve.protocol.validate_job`), bounded
admission, deadline tokens, warm→cold degradation — implemented by the
:class:`~repro.serve.supervisor.Supervisor` over a shared
:class:`~repro.serve.sessions.SessionPool`.

**Drain state machine.**  ``ready`` —SIGTERM/``drain`` op→ ``draining``
—all accepted jobs delivered→ exit 0:

* :meth:`request_stop` (signal-safe; wired to SIGTERM by the CLI) stops
  the accept loop; new connections get connection-refused, new submits
  on live connections get a typed ``draining`` rejection.
* The base loop then calls :meth:`on_draining`, which waits until the
  supervisor is idle *and* every in-flight response has been written to
  its socket — graceful drain loses zero accepted jobs.
* Only then are surviving (idle) connections closed, workers joined,
  and the process exits 0.

A hostile client — garbage frames, a vanish mid-response, a poison job
— costs exactly its own connection: the base loop survives, the
``frame_errors`` / ``handler_errors`` counters tick, and every other
client's results are unaffected (the concurrent-clients differential
test pins byte-identity against serial runs).
"""

from __future__ import annotations

import os
import socket
import threading

from repro.core.server import SocketServer
from repro.serve.protocol import (
    MAX_SERVE_FRAME_BYTES,
    SERVE_PROTOCOL_VERSION,
    FrameDecoder,
    FrameError,
    ServeError,
    TransportError,
    decode_serve_payload,
    encode_serve_message,
    error_reply,
    validate_job,
)
from repro.serve.sessions import SessionPool
from repro.serve.supervisor import Supervisor


class ServeDaemon(SocketServer):
    """The serve daemon; see the module docstring for the contract."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 2,
        queue_limit: int = 8,
        retry_after: float = 0.25,
        default_deadline: "float | None" = None,
        drain_grace: float = 60.0,
        warm: bool = True,
        log=None,
        executor=None,
        max_connection_seconds: "float | None" = None,
    ):
        super().__init__(
            host,
            port,
            log=log,
            concurrency=max(4, workers * 4),
            name="repro-serve",
            max_connection_seconds=max_connection_seconds,
        )
        #: warm=False runs every job on a throwaway cold pool — the
        #: bench's cold-session baseline and a degradation diagnostic
        self.warm = warm
        self.pool = SessionPool() if warm else None
        self.supervisor = Supervisor(
            self.pool,
            workers=workers,
            queue_limit=queue_limit,
            retry_after=retry_after,
            default_deadline=default_deadline,
            log=self.log,
            executor=executor,
        )
        self.drain_grace = drain_grace
        self.frame_errors = 0
        self.jobs_served = 0
        #: responses admitted but not yet written to their socket — the
        #: quantity drain waits on (zero accepted-job loss)
        self._busy = 0
        self._busy_lock = threading.Lock()

    # ------------------------------------------------------------------
    # connection handling

    def handle_connection(self, conn: socket.socket) -> None:
        decoder = FrameDecoder(MAX_SERVE_FRAME_BYTES)
        conn.settimeout(0.2)
        while not self.stopping:
            try:
                chunk = conn.recv(65536)
            except TimeoutError:
                continue
            except OSError:
                return  # client vanished: tear down this connection only
            if not chunk:
                return  # orderly client disconnect
            try:
                payloads = decoder.feed(chunk)
                messages = [decode_serve_payload(p) for p in payloads]
            except FrameError as exc:
                self.frame_errors += 1
                self.log(f"unframeable client stream: {exc}")
                self._send(conn, {"op": "error", "detail": str(exc)})
                return
            for message in messages:
                if not self._handle_message(conn, message):
                    return

    def _handle_message(self, conn: socket.socket, message: dict) -> bool:
        """Dispatch one message; False closes the connection."""
        if not isinstance(message, dict):
            # a CRC-valid frame whose payload is no message at all: a
            # typed in-band answer, never a handler traceback
            return self._send(
                conn,
                {
                    "op": "error",
                    "detail": (
                        f"message must be a dict, "
                        f"got {type(message).__name__}"
                    ),
                },
            )
        op = message.get("op")
        if op == "hello":
            if message.get("version") != SERVE_PROTOCOL_VERSION:
                self._send(
                    conn,
                    {
                        "op": "error",
                        "detail": (
                            f"protocol version mismatch: daemon speaks "
                            f"{SERVE_PROTOCOL_VERSION}, client sent "
                            f"{message.get('version')!r}"
                        ),
                    },
                )
                return False
            return self._send(
                conn,
                {
                    "op": "hello-ok",
                    "version": SERVE_PROTOCOL_VERSION,
                    "pid": os.getpid(),
                },
            )
        if op == "ping":
            return self._send(conn, {"op": "pong"})
        if op == "health":
            return self._send(conn, self._health())
        if op == "submit":
            return self._handle_submit(conn, message)
        if op == "drain":
            self._send(conn, {"op": "draining"})
            self.request_stop()
            return False
        if op == "shutdown":
            self._send(conn, {"op": "bye"})
            self.request_stop()
            return False
        return self._send(conn, {"op": "error", "detail": f"unknown op {op!r}"})

    def _handle_submit(self, conn: socket.socket, message: dict) -> bool:
        with self._busy_lock:
            self._busy += 1
        try:
            try:
                job = validate_job(message.get("job"))
                pending = self.supervisor.submit(job)
            except ServeError as exc:
                # poison payloads and overload land here: a typed in-band
                # answer, the connection stays usable
                return self._send(conn, error_reply(exc))
            budget = job["deadline"] or self.supervisor.default_deadline
            # generous envelope over the cooperative deadline: the token
            # fires first in any live run; this only catches a dead seam
            wait = (budget + 30.0) if budget is not None else 600.0
            reply = pending.wait(wait)
            self.jobs_served += 1
            return self._send(conn, reply)
        finally:
            with self._busy_lock:
                self._busy -= 1

    def _health(self) -> dict:
        health = {
            "op": "health-ok",
            "state": "draining" if self.stopping else "ready",
            "warm": self.warm,
            "pid": os.getpid(),
            "jobs_served": self.jobs_served,
            "frame_errors": self.frame_errors,
            "connections_served": self.connections_served,
            "handler_errors": self.handler_errors,
            "supervisor": self.supervisor.stats(),
        }
        if self.pool is not None:
            health["sessions"] = self.pool.stats()
        # health doubles as the supervision heartbeat: a crashed worker
        # is replaced the next time anyone asks whether we are healthy
        self.supervisor.ensure_workers()
        return health

    # ------------------------------------------------------------------
    # drain

    def on_draining(self) -> None:
        """The drain window: every accepted job completes and delivers
        its response before any connection is torn down."""
        self.supervisor.drain(self.drain_grace)
        import time

        deadline = time.monotonic() + min(self.drain_grace, 30.0)
        while time.monotonic() < deadline:
            with self._busy_lock:
                if self._busy == 0:
                    return
            time.sleep(0.02)

    def on_stopped(self) -> None:
        self.supervisor.shutdown(grace=1.0)

    # ------------------------------------------------------------------
    # send helper

    def _send(self, conn: socket.socket, message: dict) -> bool:
        try:
            conn.sendall(encode_serve_message(message))
            return True
        except OSError:
            return False


def spawn_serve_process(
    host: str = "127.0.0.1",
    *,
    workers: int = 2,
    queue_limit: int = 8,
    deadline: "float | None" = None,
    cold: bool = False,
    extra_args: "list[str] | None" = None,
):
    """Launch ``repro serve`` as a subprocess; return ``(proc, (host,
    port))`` once the daemon announces its listening address (the same
    rendezvous discipline as :func:`repro.campaign.remote
    .spawn_worker_process`)."""
    import subprocess
    import sys

    import repro

    argv = [
        sys.executable, "-m", "repro.cli", "serve",
        "--host", host, "--port", "0",
        "--workers", str(workers), "--queue", str(queue_limit),
    ]
    if deadline is not None:
        argv += ["--deadline", str(deadline)]
    if cold:
        argv += ["--cold"]
    argv += list(extra_args or [])
    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = package_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline().strip()
    marker = "listening on "
    if marker not in line:
        proc.kill()
        raise TransportError(f"serve daemon failed to start: {line!r}")
    addr = line.split(marker, 1)[1]
    host_part, port_part = addr.rsplit(":", 1)
    return proc, (host_part, int(port_part))
