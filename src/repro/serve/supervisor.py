"""Job supervision: admission control, deadlines, and worker restart.

The supervisor is the robustness envelope around job execution.  Its
contract, in order of the failure ladder:

* **Admission** is bounded: at most ``queue_limit`` jobs may be pending
  (queued + running) at once.  Beyond that, :meth:`Supervisor.submit`
  raises a typed :class:`~repro.serve.protocol.JobRejected` carrying
  ``retry_after`` — overload is a *first-class answer*, never a hang or
  an unbounded queue.
* **Deadlines** are cooperative: each job gets a
  :class:`CancelToken`; executors install its check at engine safe
  points (``vm_hook``) and sweep boundaries (the explorer's ``check``
  seam), so even an infinite guest loop — which keeps hitting safe
  points thanks to the preemption timer — lands in a typed
  :class:`~repro.serve.protocol.JobDeadlineExceeded`, not a hang.
* **Degradation** is warm → cold → typed failure: a job that dies with
  an *unexpected* (non-VMError) exception invalidates the shared
  session pool — the crashed session is rebuilt, not reused — and is
  retried once against a throwaway cold pool.  Only if the cold run
  also dies does the client get a typed two-strikes diagnostic.
* **Supervision**: worker threads catch only ``Exception``.  Anything
  harsher (``SystemExit`` — the crash model) kills the thread; the
  supervisor notices on the next :meth:`ensure_workers` and starts a
  replacement (``worker_restarts`` counts them), after a ``finally``
  block has delivered a typed failure to the waiting client so no one
  blocks on a dead worker.
* **Drain** finishes what was admitted: :meth:`drain` stops admission
  (typed ``draining`` rejections) and waits for every accepted job to
  complete and deliver — graceful shutdown loses zero accepted jobs.
"""

from __future__ import annotations

import queue
import threading
import time

from repro.serve.protocol import (
    JobCancelled,
    JobDeadlineExceeded,
    JobRejected,
    ServeError,
)
from repro.serve.sessions import SessionPool


class CancelToken:
    """Cooperative cancellation: a check callable that raises typed
    errors once the deadline passes or a cancel lands.

    ``install`` is the ``vm_hook``: it puts :meth:`check` on the
    engine's safe-point hook, where the complete machine state is
    committed — cancellation can never tear a job mid-instruction.
    """

    def __init__(self, deadline: "float | None" = None, clock=time.monotonic):
        self.budget = deadline
        self.clock = clock
        self.deadline_at = None if deadline is None else clock() + deadline
        self._cancelled = threading.Event()

    def cancel(self) -> None:
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def check(self, engine=None) -> None:
        """Raise the typed cancellation error if one is due (the engine
        argument makes this directly usable as a safe-point hook)."""
        if self._cancelled.is_set():
            raise JobCancelled("job cancelled by the daemon")
        if self.deadline_at is not None and self.clock() > self.deadline_at:
            raise JobDeadlineExceeded(
                f"job exceeded its {self.budget:g}s deadline "
                f"(cancelled at an engine safe point)"
            )

    def install(self, vm) -> None:
        """The ``vm_hook`` seam: check at every engine safe point."""
        vm.engine.safepoint_hook = self.check


class PendingJob:
    """One admitted job: the waitable slot its result lands in."""

    def __init__(self, job: dict, token: CancelToken, on_done):
        self.job = job
        self.token = token
        self._on_done = on_done
        self._done = threading.Event()
        self.reply: "dict | None" = None

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def deliver(self, reply: dict) -> None:
        if self._done.is_set():  # pragma: no cover - single-delivery guard
            return
        self.reply = reply
        self._done.set()
        self._on_done()

    def wait(self, timeout: "float | None" = None) -> dict:
        if not self._done.wait(timeout):
            self.token.cancel()
            from repro.serve.protocol import error_reply

            return error_reply(
                ServeError(f"job produced no result within {timeout:g}s")
            )
        return self.reply


_SHUTDOWN = object()


class Supervisor:
    """A bounded queue feeding supervised worker threads."""

    def __init__(
        self,
        pool: "SessionPool | None",
        *,
        workers: int = 2,
        queue_limit: int = 8,
        retry_after: float = 0.25,
        default_deadline: "float | None" = None,
        log=None,
        executor=None,
        clock=time.monotonic,
    ):
        self.pool = pool
        self.workers = max(1, workers)
        self.queue_limit = max(1, queue_limit)
        self.retry_after = retry_after
        self.default_deadline = default_deadline
        self.log = log if log is not None else (lambda message: None)
        self.clock = clock
        if executor is None:
            from repro.serve.jobs import run_job

            executor = run_job
        self._executor = executor
        self._queue: "queue.Queue" = queue.Queue()
        self._lock = threading.Lock()
        self._pending = 0
        self._live: "list[PendingJob]" = []
        self._idle = threading.Event()
        self._idle.set()
        self.draining = False
        self._threads: list[threading.Thread] = []
        self._started = 0
        self.jobs_accepted = 0
        self.jobs_completed = 0
        self.jobs_rejected = 0
        self.worker_restarts = 0
        self.degraded_cold = 0
        self.ensure_workers()

    # ------------------------------------------------------------------
    # admission

    def submit(self, job: dict) -> PendingJob:
        """Admit one validated job or raise a typed
        :class:`JobRejected` (``draining`` / ``overloaded``)."""
        with self._lock:
            if self.draining:
                self.jobs_rejected += 1
                raise JobRejected(
                    "daemon is draining: no new jobs are admitted",
                    reason="draining",
                    retry_after=self.retry_after * 4,
                )
            if self._pending >= self.queue_limit:
                self.jobs_rejected += 1
                raise JobRejected(
                    f"admission queue full ({self._pending} job(s) pending, "
                    f"limit {self.queue_limit})",
                    reason="overloaded",
                    retry_after=self._retry_after_locked(),
                )
            self._pending += 1
            self._idle.clear()
            self.jobs_accepted += 1
        deadline = job.get("deadline")
        if deadline is None:
            deadline = self.default_deadline
        token = CancelToken(deadline, clock=self.clock)
        pending = PendingJob(job, token, self._job_done)
        with self._lock:
            self._live.append(pending)
        self.ensure_workers()
        self._queue.put(pending)
        return pending

    def _retry_after_locked(self) -> float:
        # scale the hint with depth: a storm backs off harder than a blip
        return self.retry_after * (1.0 + self._pending / self.workers)

    def _job_done(self) -> None:
        with self._lock:
            self._pending -= 1
            self.jobs_completed += 1
            self._live = [p for p in self._live if not p.done]
            if self._pending == 0:
                self._idle.set()

    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending

    # ------------------------------------------------------------------
    # the worker fleet

    def ensure_workers(self) -> None:
        """Start missing workers; a dead one (SystemExit took it) is
        replaced, never resurrected."""
        with self._lock:
            if self.draining:
                return
            self._threads = [t for t in self._threads if t.is_alive()]
            missing = self.workers - len(self._threads)
            if missing > 0 and self._started > 0:
                self.worker_restarts += missing
                self.log(f"restarting {missing} crashed worker(s)")
            for _ in range(max(0, missing)):
                self._started += 1
                thread = threading.Thread(
                    target=self._worker_loop,
                    daemon=True,
                    name=f"repro-serve-worker-{self._started}",
                )
                self._threads.append(thread)
                thread.start()

    def _worker_loop(self) -> None:
        while True:
            pending = self._queue.get()
            if pending is _SHUTDOWN:
                return
            try:
                self._run_one(pending)
            finally:
                # even a SystemExit mid-job (which kills this thread and
                # trips the supervisor's restart path) leaves the client
                # a typed answer instead of a wait on a dead worker
                if not pending.done:
                    if self.pool is not None:
                        self.pool.invalidate()
                    from repro.serve.protocol import error_reply

                    pending.deliver(
                        error_reply(
                            ServeError(
                                "worker crashed mid-job; session pool "
                                "invalidated and the worker replaced"
                            )
                        )
                    )

    def _run_one(self, pending: PendingJob) -> None:
        from repro.serve.protocol import error_reply

        job, token = pending.job, pending.token
        try:
            # a job that aged out while queued is cancelled before any work
            token.check()
            result = self._executor(job, self.pool, token)
        except ServeError as exc:
            pending.deliver(error_reply(exc))
            return
        except Exception as exc:  # noqa: BLE001 - degradation ladder
            # warm session state is now suspect: rebuild it, retry cold
            if self.pool is not None:
                self.pool.invalidate()
            self.degraded_cold += 1
            self.log(
                f"warm run died ({type(exc).__name__}: {exc}); "
                f"retrying on a cold session"
            )
            try:
                result = self._executor(job, SessionPool(max_entries=2), token)
            except ServeError as cold_exc:
                pending.deliver(error_reply(cold_exc))
                return
            except Exception as cold_exc:  # noqa: BLE001 - two strikes
                pending.deliver(
                    error_reply(
                        ServeError(
                            f"job failed warm and cold: "
                            f"{type(cold_exc).__name__}: {cold_exc}"
                        )
                    )
                )
                return
        pending.deliver({"op": "result", "ok": True, "result": result})

    # ------------------------------------------------------------------
    # drain / shutdown

    def drain(self, grace: float = 60.0) -> bool:
        """Stop admitting, wait for every accepted job to finish.

        True when the queue drained inside *grace* seconds; False means
        the grace period expired with jobs still pending (they were
        cancelled via their tokens so they land in typed errors)."""
        with self._lock:
            self.draining = True
        drained = self._idle.wait(grace)
        if not drained:
            # cancel stragglers cooperatively; their clients get typed
            # JobCancelled, not silence
            with self._lock:
                stragglers = list(self._live)
            for pending in stragglers:
                pending.token.cancel()
            drained = self._idle.wait(min(grace, 10.0))
        return drained

    def shutdown(self, grace: float = 60.0) -> None:
        """Drain, then stop and join every worker thread."""
        self.drain(grace)
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads = []

    def stats(self) -> dict:
        with self._lock:
            return {
                "pending": self._pending,
                "workers": sum(1 for t in self._threads if t.is_alive()),
                "queue_limit": self.queue_limit,
                "jobs_accepted": self.jobs_accepted,
                "jobs_completed": self.jobs_completed,
                "jobs_rejected": self.jobs_rejected,
                "worker_restarts": self.worker_restarts,
                "degraded_cold": self.degraded_cold,
                "draining": self.draining,
            }
