"""The serve client: framed job submission with overload-aware retry.

``ServeClient`` is the thin, well-behaved frontend the daemon's
contract is written for: it connects with the shared
:class:`~repro.core.framing.BackoffPolicy` (seeded jitter, injectable
sleep), performs the version handshake, bounds every round trip with a
timeout, and — the part the admission-control story depends on —
honors the daemon's ``retry_after`` hint in
:meth:`ServeClient.submit_with_retry`: an ``overloaded`` rejection
sleeps at least ``retry_after`` (never less, even if the backoff
schedule says so) before trying again, so a storm of clients converges
instead of hammering a full queue.
"""

from __future__ import annotations

import socket
import time

from repro.core.framing import BackoffPolicy
from repro.serve.protocol import (
    MAX_SERVE_FRAME_BYTES,
    SERVE_PROTOCOL_VERSION,
    FrameDecoder,
    JobDeadlineExceeded,
    JobCancelled,
    JobRejected,
    ServeError,
    TransportError,
    decode_serve_payload,
    encode_serve_message,
)

#: error types the daemon sends that map back to typed client raises
_ERROR_TYPES = {
    "JobRejected": JobRejected,
    "JobDeadlineExceeded": JobDeadlineExceeded,
    "JobCancelled": JobCancelled,
}


class ServeClient:
    """One framed connection to a serve daemon."""

    def __init__(self, address: "tuple[str, int]", timeout: float = 120.0):
        self._sock = socket.create_connection(address, timeout=timeout)
        self.timeout = timeout
        self._decoder = FrameDecoder(MAX_SERVE_FRAME_BYTES)
        self.bytes_sent = 0
        self.bytes_received = 0
        reply = self.request({"op": "hello", "version": SERVE_PROTOCOL_VERSION})
        if reply.get("op") != "hello-ok":
            raise TransportError(
                f"serve handshake refused: {reply.get('detail', reply)}"
            )
        self.daemon_pid = reply.get("pid")

    @classmethod
    def connect(
        cls,
        address: "tuple[str, int]",
        *,
        timeout: float = 120.0,
        policy: "BackoffPolicy | None" = None,
        sleep=time.sleep,
    ) -> "ServeClient":
        """Connect with capped, seeded exponential backoff + jitter."""
        policy = policy or BackoffPolicy()
        return policy.call(
            lambda: cls(address, timeout=timeout),
            retry_on=(OSError,),
            sleep=sleep,
            describe=f"could not connect to serve daemon at "
            f"{address[0]}:{address[1]}",
        )

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # transport

    def request(self, message: dict, timeout: "float | None" = None) -> dict:
        data = encode_serve_message(message)
        self._sock.settimeout(timeout if timeout is not None else self.timeout)
        try:
            self._sock.sendall(data)
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc
        self.bytes_sent += len(data)
        return decode_serve_payload(self._read_frame())

    def _read_frame(self) -> bytes:
        frames: list[bytes] = []
        while not frames:
            try:
                chunk = self._sock.recv(65536)
            except TimeoutError as exc:
                raise TransportError(
                    f"serve request timed out after {self.timeout}s"
                ) from exc
            except OSError as exc:
                raise TransportError(f"receive failed: {exc}") from exc
            if not chunk:
                raise TransportError("serve daemon closed the connection")
            self.bytes_received += len(chunk)
            frames = self._decoder.feed(chunk)
        return frames[0]

    # ------------------------------------------------------------------
    # the ops

    def ping(self) -> bool:
        try:
            return self.request({"op": "ping"}).get("op") == "pong"
        except TransportError:
            return False

    def health(self) -> dict:
        reply = self.request({"op": "health"})
        if reply.get("op") != "health-ok":
            raise TransportError(f"bad health reply: {reply}")
        return reply

    def drain(self) -> None:
        """Ask the daemon to drain gracefully (the signal-free SIGTERM)."""
        self.request({"op": "drain"})

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})

    def submit(self, job: dict, timeout: "float | None" = None) -> dict:
        """Submit one job; return its result dict or raise the typed
        serve error the daemon reported."""
        if timeout is None and job.get("deadline") is not None:
            timeout = float(job["deadline"]) + 60.0
        reply = self.request({"op": "submit", "job": job}, timeout=timeout)
        if reply.get("op") == "error":
            raise TransportError(f"protocol error: {reply.get('detail')}")
        if reply.get("op") != "result":
            raise TransportError(f"unexpected reply {reply.get('op')!r}")
        if reply.get("ok"):
            return reply["result"]
        error = reply.get("error") or {}
        kind = _ERROR_TYPES.get(error.get("type"))
        detail = error.get("detail", "unknown serve failure")
        if kind is JobRejected:
            raise JobRejected(
                detail,
                reason=error.get("reason", "overloaded"),
                retry_after=float(error.get("retry_after", 0.25)),
            )
        if kind is not None:
            raise kind(detail)
        raise ServeError(f"{error.get('type', 'ServeError')}: {detail}")

    def submit_with_retry(
        self,
        job: dict,
        *,
        policy: "BackoffPolicy | None" = None,
        sleep=time.sleep,
        timeout: "float | None" = None,
    ) -> dict:
        """Submit, honoring ``retry_after`` on typed rejections.

        Each rejection sleeps ``max(retry_after, scheduled_backoff)`` —
        the daemon's hint is a floor, the client's own capped jitter
        schedule decorrelates a fleet.  Raises the final
        :class:`JobRejected` once attempts are exhausted."""
        policy = policy or BackoffPolicy()
        delays = policy.delays()
        last: "JobRejected | None" = None
        for attempt in range(max(1, policy.attempts)):
            try:
                return self.submit(job, timeout=timeout)
            except JobRejected as exc:
                last = exc
                if attempt >= len(delays):
                    break
                sleep(max(exc.retry_after, delays[attempt]))
        raise last
