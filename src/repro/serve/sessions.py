"""The warm-session pool: cached, generation-counted replay state.

The whole point of a long-lived daemon (iReplayer's lesson) is that the
expensive, *deterministic* setup work — assembling a guest program,
parsing a sealed trace, loading a checkpoint sidecar — happens once and
amortizes across every job that names the same content.  The pool
caches exactly that: pure functions of content, keyed by content
digest, so a warm hit cannot change a job's result, only its latency.
(VMs themselves are single-run and are never cached.)

Crash safety is generational: every cache entry carries the pool
generation it was built under.  When a job dies in a way that casts
doubt on shared state (a worker crash, an infrastructure error), the
supervisor calls :meth:`SessionPool.invalidate`, which bumps the
generation — every existing entry becomes stale and is *rebuilt on next
use*, never reused.  A crashed session is thus replaced by
construction, not trusted by optimism.

Entries are evicted LRU beyond ``max_entries`` so a long-lived daemon
serving many distinct programs/traces stays bounded.
"""

from __future__ import annotations

import hashlib
import pickle
import threading

from repro.serve.protocol import ServeError


def _digest(obj) -> str:
    return hashlib.sha256(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).hexdigest()[:24]


class SessionPool:
    """Content-addressed caches for programs and parsed traces, with a
    generation counter for crash-driven invalidation."""

    def __init__(self, max_entries: int = 64):
        self.max_entries = max(1, max_entries)
        self._lock = threading.Lock()
        self.generation = 0
        #: key -> (generation, value); insertion order is LRU order
        self._programs: dict[str, tuple[int, object]] = {}
        self._traces: dict[str, tuple[int, object]] = {}
        self.hits = 0
        self.misses = 0
        self.rebuilds = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # cache plumbing

    def _get(self, cache: dict, key: str, build):
        with self._lock:
            generation = self.generation
            entry = cache.get(key)
            if entry is not None and entry[0] == generation:
                self.hits += 1
                # refresh LRU position
                cache[key] = cache.pop(key)
                return entry[1]
            stale = entry is not None
        value = build()
        with self._lock:
            if stale:
                self.rebuilds += 1
            else:
                self.misses += 1
            cache[key] = (generation, value)
            while len(cache) > self.max_entries:
                cache.pop(next(iter(cache)))
        return value

    def invalidate(self) -> None:
        """Bump the generation: every cached entry is now stale and will
        be rebuilt (not reused) on its next lookup."""
        with self._lock:
            self.generation += 1
            self.invalidations += 1

    # ------------------------------------------------------------------
    # the cached artifacts

    def program(self, job: dict):
        """The job's :class:`~repro.api.GuestProgram` — assembled once
        per distinct (workload, build-args) or source text."""
        workload = job.get("workload")
        if workload:
            from repro.workloads.registry import get_workload

            spec = get_workload(workload)
            kwargs = dict(spec.defaults)
            kwargs.update(job["workload_args"])
            # key on the *resolved* build kwargs, so explicit defaults
            # and implicit defaults share one warm entry
            key = "w:" + _digest((spec.name, sorted(kwargs.items())))
            return self._get(
                self._programs, key, lambda: spec.build(kwargs)
            )
        source = job.get("source")
        if not source:
            raise ServeError("job names neither a workload nor source text")
        key = "s:" + _digest((source, job.get("main"), job.get("name")))
        return self._get(self._programs, key, lambda: _build_source_program(job))

    def trace(self, blob: bytes):
        """The parsed :class:`~repro.core.TraceLog` for sealed bytes.
        Replay cursors live in the controller, so one parsed trace is
        safe to share across concurrent jobs."""
        key = "t:" + hashlib.sha256(blob).hexdigest()[:24]
        return self._get(self._traces, key, lambda: _parse_trace(blob))

    def stats(self) -> dict:
        with self._lock:
            return {
                "generation": self.generation,
                "programs": len(self._programs),
                "traces": len(self._traces),
                "hits": self.hits,
                "misses": self.misses,
                "rebuilds": self.rebuilds,
                "invalidations": self.invalidations,
            }


def _build_source_program(job: dict):
    from repro.api import GuestProgram

    return GuestProgram.from_source(
        job["source"], main=job.get("main", "Main.main()V"),
        name=job.get("name", "program"),
    )


def _parse_trace(blob: bytes):
    from repro.api import trace_from_bytes

    return trace_from_bytes(blob)
