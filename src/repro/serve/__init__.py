"""`repro serve`: the supervised, long-lived replay service.

A daemon (:class:`ServeDaemon`) that keeps replay state warm across
requests (:class:`SessionPool`), wraps every job in a robustness
envelope (:class:`Supervisor`: bounded admission, per-job deadlines
with cooperative cancellation at engine safe points, warm→cold
degradation, graceful drain), and speaks the platform's length-framed
transport to a retry-aware client (:class:`ServeClient`).
"""

from repro.serve.client import ServeClient
from repro.serve.daemon import ServeDaemon, spawn_serve_process
from repro.serve.jobs import run_job
from repro.serve.protocol import (
    JOB_KINDS,
    SERVE_PROTOCOL_VERSION,
    JobCancelled,
    JobDeadlineExceeded,
    JobRejected,
    ServeError,
    validate_job,
)
from repro.serve.sessions import SessionPool
from repro.serve.supervisor import CancelToken, Supervisor

__all__ = [
    "ServeDaemon",
    "ServeClient",
    "SessionPool",
    "Supervisor",
    "CancelToken",
    "ServeError",
    "JobRejected",
    "JobDeadlineExceeded",
    "JobCancelled",
    "JOB_KINDS",
    "SERVE_PROTOCOL_VERSION",
    "validate_job",
    "run_job",
    "spawn_serve_process",
]
