"""Job executors: each serve job kind, byte-identical to its CLI twin.

Every executor here mirrors its ``repro.cli`` command function — same
api calls, same knobs (:func:`repro.api.standard_knobs`), same engine
presets, same output formatting (the CLI's own ``_print_result``) — so
the daemon's differential guarantee holds by construction: a job's
``stdout`` is byte-identical to the CLI one-shot's stdout and a record
job's ``trace`` bytes are byte-identical to the CLI-written file.  The
only things a daemon job adds are *warm inputs* (cached programs and
parsed traces from the :class:`~repro.serve.sessions.SessionPool`,
which cannot change results, only latency) and the *cancellation seam*
(the :class:`~repro.serve.supervisor.CancelToken` installed at engine
safe points and sweep boundaries).

The wrapper :func:`run_job` reproduces the CLI's exit-status tiering:
0 success, 1 a finding (``VMError``), 2 unusable input (``UsageError``
/ ``TraceFormatError``) — with the error line on the result's
``stderr`` exactly as ``repro.cli.main`` would print it.  Serve-level
typed errors (deadline, cancel, validation) propagate to the
supervisor instead; they have no CLI twin to mirror.
"""

from __future__ import annotations

import io
import os
import tempfile
from pathlib import Path

from repro.serve.protocol import ServeError
from repro.serve.sessions import SessionPool
from repro.vm.errors import TraceFormatError, UsageError, VMError


def _engine_config(spec):
    from repro.api import ENGINE_PRESETS

    if isinstance(spec, str):
        return ENGINE_PRESETS[spec]
    from repro.vm.engineconfig import EngineConfig

    return EngineConfig(**spec)


def _vm_config(job: dict):
    from repro.vm.machine import VMConfig

    return VMConfig(semispace_words=job["heap"], engine=_engine_config(job["engine"]))


def _workload_meta(job: dict) -> dict:
    """The trace meta the CLI's ``_resolve_program`` stamps for a
    ``--workload`` run (defaults + overrides); empty for source jobs."""
    if not job.get("workload"):
        return {}
    from repro.workloads.registry import get_workload

    spec = get_workload(job["workload"])
    kwargs = dict(spec.defaults)
    kwargs.update(job["workload_args"])
    return {"workload": spec.name, "workload_kwargs": kwargs}


def _program_for_replay(job: dict, pool: SessionPool, trace):
    """Mirror the CLI's trace-aware workload rebuild: the recorded build
    kwargs win over the workload defaults, then explicit overrides."""
    if not job.get("workload"):
        return pool.program(job)
    from repro.workloads.registry import get_workload

    spec = get_workload(job["workload"])
    if trace.meta.get("workload") == spec.name:
        effective = dict(trace.meta.get("workload_kwargs") or {})
        effective.update(job["workload_args"])
        job = dict(job, workload_args=effective)
    return pool.program(job)


def _temp_trace(blob: bytes):
    fd, name = tempfile.mkstemp(suffix=".djv")
    os.close(fd)
    Path(name).write_bytes(blob)
    return name


# ---------------------------------------------------------------------------
# the executors (one per job kind)


def _exec_record(job: dict, pool: SessionPool, token, out: io.StringIO) -> dict:
    from repro.api import record, standard_knobs
    from repro.cli import _print_result

    program = pool.program(job)
    fd, path = tempfile.mkstemp(suffix=".djv")
    os.close(fd)
    try:
        session = record(
            program,
            config=_vm_config(job),
            out=path,
            extra_meta=_workload_meta(job),
            slim=job.get("slim", False),
            vm_hook=token.install,
            **standard_knobs(job["seed"]),
        )
        trace_bytes = Path(path).read_bytes()
    finally:
        Path(path).unlink(missing_ok=True)
        Path(path + ".tmp").unlink(missing_ok=True)
    _print_result(session.result, out=out)
    print(
        f"-- trace: {session.trace.n_switch_records} switch records, "
        f"{session.trace.n_value_words} value words, "
        f"{session.trace.encoded_size_bytes} bytes -> {job['out_name']}",
        file=out,
    )
    slim_info = session.trace.slim_info
    if slim_info is not None:
        print(
            f"-- slim: kept {slim_info['kept']} switch delta(s), "
            f"dropped {slim_info['dropped']} (model "
            f"{slim_info['model'][0]}, {slim_info['sync_total']} sync events)",
            file=out,
        )
    elif job.get("slim", False):
        reason = session.trace.meta.get("slim_fallback", "?")
        print(f"-- slim: fell back to full recording ({reason})", file=out)
    return {"trace": trace_bytes}


def _exec_replay(job: dict, pool: SessionPool, token, out: io.StringIO) -> dict:
    from repro.api import replay
    from repro.cli import _print_result

    trace = pool.trace(job["trace"])
    program = _program_for_replay(job, pool, trace)
    result = replay(
        program, trace, config=_vm_config(job), vm_hook=token.install
    )
    _print_result(result, out=out)
    print("-- replay verified against the recorded END witnesses", file=out)
    return {}


def _exec_explore(job: dict, pool: SessionPool, token, out: io.StringIO) -> dict:
    from repro.explore import Explorer, detect_races
    from repro.serve.protocol import ServeError

    extra: dict = {}
    if job.get("workload"):
        from repro.workloads.registry import get_workload

        spec = get_workload(job["workload"])
        kwargs = spec.merged_kwargs(job["workload_args"], explore=True)
        factory = spec.program_factory(kwargs)
        oracle = spec.oracle(kwargs)
        meta = {"workload": spec.name, "workload_kwargs": kwargs}
    elif job.get("source"):
        program = pool.program(job)
        factory = lambda: program  # noqa: E731 - programs are reusable
        oracle = None
        meta = {}
    else:  # pragma: no cover - validate_job guarantees a program
        raise ServeError("explore job lost its program")

    config = _vm_config(job)
    report = Explorer(
        factory,
        oracle=oracle,
        bound=job["bound"],
        budget=job["budget"],
        seed=job["seed"] if job["seed"] is not None else 0,
        config=config,
        check=token.check,
    ).run()
    print(report.format(), file=out)
    if report.minimized is None:
        return extra

    out_name = job.get("out_name", "failure.djv")
    trace = report.minimized.trace
    trace.meta.update(meta)
    fd, path = tempfile.mkstemp(suffix=".djv")
    os.close(fd)
    try:
        trace.save(path)
        extra["trace"] = Path(path).read_bytes()
    finally:
        Path(path).unlink(missing_ok=True)
    print(f"-- minimized failing trace -> {out_name}", file=out)
    races = detect_races(factory(), trace, config=config)
    print(races.format(), file=out)
    return extra


def _exec_doctor(job: dict, pool: SessionPool, token, out: io.StringIO) -> dict:
    from repro.core.doctor import diagnose

    program = None
    workload_kwargs = None
    if job.get("workload"):
        from repro.workloads.registry import get_workload

        spec = get_workload(job["workload"])
        workload_kwargs = dict(spec.defaults)
        workload_kwargs.update(job["workload_args"])
        program = pool.program(job)
    elif job.get("source"):
        program = pool.program(job)
    path = _temp_trace(job["trace"])
    try:
        report = diagnose(
            path,
            program=program,
            config=_vm_config(job),
            workload_kwargs=workload_kwargs,
        )
    finally:
        Path(path).unlink(missing_ok=True)
    text = report.format()
    label = job.get("trace_name")
    if label:
        # the report names the trace by path; the daemon ran it from a
        # temp file, so substitute the client's label for byte-identity
        # with the CLI one-shot
        text = text.replace(path, str(label))
    print(text, file=out)
    return {"exit": report.exit_code}


def _exec_trace_stats(job: dict, pool: SessionPool, token, out: io.StringIO) -> dict:
    from repro.core.tracelog import trace_stats

    path = _temp_trace(job["trace"])
    try:
        stats = trace_stats(path)
    finally:
        Path(path).unlink(missing_ok=True)
    major, minor = divmod(stats["format_version"], 256) if stats[
        "format_version"
    ] >= 256 else (stats["format_version"], None)
    version = f"{major}.{minor}" if minor is not None else str(major)
    print(f"format version: {version}", file=out)
    print(f"file bytes:     {stats['file_bytes']}", file=out)
    for name in ("switch", "value", "slim"):
        st = stats["streams"].get(name)
        if st is None:
            continue
        codecs = ",".join(f"0x{c:02x}" for c in st["codecs"]) or "-"
        print(f"{name} stream:", file=out)
        print(f"  entries:       {st['entries']}", file=out)
        print(f"  segments:      {st['segments']}", file=out)
        print(f"  encoded bytes: {st['encoded_bytes']}", file=out)
        print(f"  varint bytes:  {st['raw_bytes']}", file=out)
        print(f"  ratio:         {st['ratio']:.3f}x (codecs {codecs})", file=out)
    slim = stats.get("slim")
    if slim is not None:
        print(
            f"slim recording: kept {slim['kept']} switch delta(s), "
            f"dropped {slim['dropped']}",
            file=out,
        )
    return {}


_EXECUTORS = {
    "record": _exec_record,
    "replay": _exec_replay,
    "explore": _exec_explore,
    "doctor": _exec_doctor,
    "trace-stats": _exec_trace_stats,
}


def run_job(job: dict, pool: "SessionPool | None", token) -> dict:
    """Execute one validated job; return its result dict.

    The result always carries ``stdout`` (byte-identical to the CLI
    one-shot), ``stderr`` (the CLI's error line, empty on success) and
    ``exit`` (the CLI status tier); record/explore jobs add ``trace``
    bytes.  Serve-typed errors (deadline, cancel) propagate — they are
    the supervisor's to report."""
    if pool is None:
        pool = SessionPool(max_entries=2)
    buf = io.StringIO()
    executor = _EXECUTORS[job["kind"]]
    try:
        extra = executor(job, pool, token, buf)
    except ServeError:
        raise
    except (UsageError, TraceFormatError) as exc:
        return {
            "stdout": buf.getvalue(),
            "stderr": f"error: {exc}\n",
            "exit": 2,
        }
    except VMError as exc:
        return {
            "stdout": buf.getvalue(),
            "stderr": f"error: {exc}\n",
            "exit": 1,
        }
    result = {"stdout": buf.getvalue(), "stderr": "", "exit": 0}
    result.update(extra)
    return result
