"""Recursive-descent parser for MiniJ."""

from __future__ import annotations

from repro.lang import ast_nodes as A
from repro.lang.errors import MiniJSyntaxError
from repro.lang.lexer import Token, tokenize

_BASE_TYPES = {"int": "I", "boolean": "I", "void": "V"}

#: binary operator precedence, loosest first (Java-like)
_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">=", "instanceof"],
    ["<<", ">>", ">>>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.cur
        self.pos += 1
        return tok

    def at(self, kind: str, text: str | None = None) -> bool:
        return self.cur.kind == kind and (text is None or self.cur.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.at(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        if not self.at(kind, text):
            want = text if text is not None else kind
            raise MiniJSyntaxError(
                f"expected {want!r}, found {self.cur.text or self.cur.kind!r}",
                self.cur.line,
                self.cur.col,
            )
        return self.advance()

    # -- types ---------------------------------------------------------------

    def at_type_start(self) -> bool:
        return (self.cur.kind == "kw" and self.cur.text in _BASE_TYPES) or (
            self.cur.kind == "ident"
        )

    def parse_type(self, *, allow_void: bool = False) -> str:
        tok = self.advance()
        if tok.kind == "kw" and tok.text in _BASE_TYPES:
            desc = _BASE_TYPES[tok.text]
        elif tok.kind == "ident":
            desc = f"L{tok.text};"
        else:
            raise MiniJSyntaxError(f"expected a type, found {tok.text!r}", tok.line, tok.col)
        dims = 0
        while self.at("punct", "[") and self.peek().text == "]":
            self.advance()
            self.advance()
            dims += 1
        if desc == "V":
            if not allow_void or dims:
                raise MiniJSyntaxError("void is not a value type here", tok.line, tok.col)
        return "[" * dims + desc

    # -- declarations ----------------------------------------------------------

    def parse_program(self) -> A.Program:
        classes = []
        while not self.at("eof"):
            classes.append(self.parse_class())
        return A.Program(classes)

    def parse_class(self) -> A.ClassDecl:
        kw = self.expect("kw", "class")
        name = self.expect("ident").text
        super_name = "Object"
        if self.accept("kw", "extends"):
            super_name = self.expect("ident").text
        self.expect("punct", "{")
        fields: list[A.FieldDecl] = []
        methods: list[A.MethodDecl] = []
        while not self.accept("punct", "}"):
            self.parse_member(fields, methods)
        return A.ClassDecl(name, super_name, fields, methods, kw.line)

    def parse_member(self, fields, methods) -> None:
        start = self.cur
        static = bool(self.accept("kw", "static"))
        native = bool(self.accept("kw", "native"))
        if native and not static:
            static = bool(self.accept("kw", "static")) or static
        desc = self.parse_type(allow_void=True)
        name = self.expect("ident").text
        if self.at("punct", "("):
            self.advance()
            params: list[A.Param] = []
            if not self.at("punct", ")"):
                while True:
                    pdesc = self.parse_type()
                    pname = self.expect("ident").text
                    params.append(A.Param(pname, pdesc))
                    if not self.accept("punct", ","):
                        break
            self.expect("punct", ")")
            if native:
                self.expect("punct", ";")
                body = None
            else:
                body = self.parse_block()
            methods.append(
                A.MethodDecl(name, desc, params, body, static, native, start.line)
            )
        else:
            if native:
                raise MiniJSyntaxError("fields cannot be native", start.line, start.col)
            if desc == "V":
                raise MiniJSyntaxError("fields cannot be void", start.line, start.col)
            fields.append(A.FieldDecl(name, desc, static, start.line))
            while self.accept("punct", ","):
                extra = self.expect("ident")
                fields.append(A.FieldDecl(extra.text, desc, static, extra.line))
            self.expect("punct", ";")

    # -- statements ----------------------------------------------------------------

    def parse_block(self) -> A.Block:
        brace = self.expect("punct", "{")
        stmts: list[A.Stmt] = []
        while not self.accept("punct", "}"):
            stmts.append(self.parse_stmt())
        return A.Block(line=brace.line, stmts=stmts)

    def _looks_like_decl(self) -> bool:
        if self.at("kw") and self.cur.text in ("int", "boolean"):
            return True
        if self.cur.kind != "ident":
            return False
        # 'Foo x', 'Foo[] x', 'Foo[][] x' ... vs the expression 'foo[i]'/'foo.x'
        j = 1
        while self.peek(j).text == "[" and self.peek(j + 1).text == "]":
            j += 2
        return self.peek(j).kind == "ident"

    def parse_stmt(self) -> A.Stmt:
        tok = self.cur
        if self.at("punct", "{"):
            return self.parse_block()
        if self.accept("kw", "if"):
            self.expect("punct", "(")
            cond = self.parse_expr()
            self.expect("punct", ")")
            then = self.parse_stmt()
            els = self.parse_stmt() if self.accept("kw", "else") else None
            return A.If(line=tok.line, cond=cond, then=then, els=els)
        if self.accept("kw", "while"):
            self.expect("punct", "(")
            cond = self.parse_expr()
            self.expect("punct", ")")
            return A.While(line=tok.line, cond=cond, body=self.parse_stmt())
        if self.accept("kw", "for"):
            self.expect("punct", "(")
            init = None if self.at("punct", ";") else self.parse_simple_stmt()
            self.expect("punct", ";")
            cond = None if self.at("punct", ";") else self.parse_expr()
            self.expect("punct", ";")
            update = None if self.at("punct", ")") else self.parse_simple_stmt()
            self.expect("punct", ")")
            return A.For(
                line=tok.line, init=init, cond=cond, update=update, body=self.parse_stmt()
            )
        if self.accept("kw", "return"):
            value = None if self.at("punct", ";") else self.parse_expr()
            self.expect("punct", ";")
            return A.Return(line=tok.line, value=value)
        if self.accept("kw", "synchronized"):
            self.expect("punct", "(")
            lock = self.parse_expr()
            self.expect("punct", ")")
            return A.Sync(line=tok.line, lock=lock, body=self.parse_block())
        if self.accept("kw", "break"):
            self.expect("punct", ";")
            return A.Break(line=tok.line)
        if self.accept("kw", "continue"):
            self.expect("punct", ";")
            return A.Continue(line=tok.line)
        stmt = self.parse_simple_stmt()
        self.expect("punct", ";")
        return stmt

    def parse_simple_stmt(self) -> A.Stmt:
        """A declaration, assignment, ++/--, or expression statement."""
        tok = self.cur
        if self._looks_like_decl():
            desc = self.parse_type()
            name = self.expect("ident").text
            init = self.parse_expr() if self.accept("punct", "=") else None
            return A.LocalDecl(line=tok.line, desc=desc, name=name, init=init)
        expr = self.parse_expr()
        if self.at("punct") and self.cur.text in (
            "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="
        ):
            op = self.advance().text
            value = self.parse_expr()
            self._check_lvalue(expr)
            return A.Assign(line=tok.line, target=expr, op=op, value=value)
        if self.at("punct") and self.cur.text in ("++", "--"):
            op = self.advance().text
            self._check_lvalue(expr)
            return A.Assign(
                line=tok.line,
                target=expr,
                op="+=" if op == "++" else "-=",
                value=A.IntLit(line=tok.line, value=1),
            )
        return A.ExprStmt(line=tok.line, expr=expr)

    def _check_lvalue(self, expr: A.Expr) -> None:
        if not isinstance(expr, (A.Name, A.Member, A.Index)):
            raise MiniJSyntaxError("not an assignable target", expr.line)

    # -- expressions ---------------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> A.Expr:
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        ops = _BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while (self.cur.kind == "punct" and self.cur.text in ops) or (
            "instanceof" in ops and self.at("kw", "instanceof")
        ):
            tok = self.advance()
            if tok.text == "instanceof":
                cls = self.expect("ident").text
                left = A.InstanceOf(line=tok.line, operand=left, class_name=cls)
            else:
                right = self._parse_binary(level + 1)
                left = A.Binary(line=tok.line, op=tok.text, left=left, right=right)
        return left

    def parse_unary(self) -> A.Expr:
        tok = self.cur
        if self.at("punct", "-") or self.at("punct", "!") or self.at("punct", "~"):
            self.advance()
            return A.Unary(line=tok.line, op=tok.text, operand=self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> A.Expr:
        expr = self.parse_primary()
        while True:
            if self.accept("punct", "."):
                name = self.expect("ident").text
                if self.at("punct", "("):
                    expr = A.Call(
                        line=expr.line, target=expr, name=name, args=self.parse_args()
                    )
                else:
                    expr = A.Member(line=expr.line, target=expr, name=name)
            elif self.at("punct", "[") and not (self.peek().text == "]"):
                self.advance()
                idx = self.parse_expr()
                self.expect("punct", "]")
                expr = A.Index(line=expr.line, array=expr, index=idx)
            else:
                return expr

    def parse_args(self) -> list[A.Expr]:
        self.expect("punct", "(")
        args: list[A.Expr] = []
        if not self.at("punct", ")"):
            while True:
                args.append(self.parse_expr())
                if not self.accept("punct", ","):
                    break
        self.expect("punct", ")")
        return args

    def parse_primary(self) -> A.Expr:
        tok = self.cur
        if self.accept("punct", "("):
            expr = self.parse_expr()
            self.expect("punct", ")")
            return expr
        if tok.kind == "int":
            self.advance()
            return A.IntLit(line=tok.line, value=int(tok.text, 0))
        if tok.kind == "string":
            self.advance()
            return A.StrLit(line=tok.line, value=tok.text)
        if self.accept("kw", "true"):
            return A.IntLit(line=tok.line, value=1)
        if self.accept("kw", "false"):
            return A.IntLit(line=tok.line, value=0)
        if self.accept("kw", "null"):
            return A.NullLit(line=tok.line)
        if self.accept("kw", "this"):
            return A.This(line=tok.line)
        if self.accept("kw", "new"):
            if self.at("kw") and self.cur.text in ("int", "boolean"):
                self.advance()
                self.expect("punct", "[")
                size = self.parse_expr()
                self.expect("punct", "]")
                return A.NewArray(line=tok.line, elem_desc="I", size=size)
            cls = self.expect("ident").text
            if self.accept("punct", "("):
                self.expect("punct", ")")
                return A.New(line=tok.line, class_name=cls)
            self.expect("punct", "[")
            size = self.parse_expr()
            self.expect("punct", "]")
            return A.NewArray(line=tok.line, elem_desc=f"L{cls};", size=size)
        if tok.kind == "ident":
            self.advance()
            return A.Name(line=tok.line, ident=tok.text)
        raise MiniJSyntaxError(
            f"unexpected token {tok.text or tok.kind!r}", tok.line, tok.col
        )


def parse(source: str) -> A.Program:
    return _Parser(tokenize(source)).parse_program()
