"""MiniJ semantic analysis + code generation.

One type-directed pass lowers the AST onto :class:`MethodBuilder`; the VM
verifier (:mod:`repro.vm.refmaps`) re-checks everything downstream, so a
codegen bug cannot corrupt the heap — it surfaces as a VerifyError.

Conventions:

* ``boolean`` is ``I`` with values 0/1; ``!``, comparisons and the
  short-circuit operators normalise through branches;
* there are no constructors: ``new Foo()`` allocates zeroed fields
  (initialise in an ordinary method if needed);
* ``synchronized (e) { ... }`` evaluates ``e`` once; ``return``/``break``
  /``continue`` may not jump out of the block (no exception-table
  machinery to release the monitor);
* classes may reference the core library (``Thread``, ``System``, ...)
  and any extern class-file passed to :func:`compile_source`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast_nodes as A
from repro.lang.errors import MiniJTypeError
from repro.lang.parser import parse
from repro.vm.builder import ClassBuilder, MethodBuilder
from repro.vm.classfile import ClassDef
from repro.vm.corelib import core_classdefs
from repro.vm.descriptors import (
    class_name,
    element_type,
    is_array,
    is_reference,
    parse_signature,
)

NULL_T = "N"


# ---------------------------------------------------------------------------
# the class universe (program classes + externs + core library)


@dataclass
class _MethodInfo:
    owner: str
    name: str
    sig: str  # "(params)ret"
    static: bool

    @property
    def ret(self) -> str:
        return parse_signature(self.sig).ret

    @property
    def params(self) -> tuple[str, ...]:
        return parse_signature(self.sig).params

    @property
    def ref(self) -> str:
        return f"{self.owner}.{self.name}{self.sig}"


@dataclass
class _ClassInfo:
    name: str
    super_name: str | None
    fields: dict[str, tuple[str, bool]] = field(default_factory=dict)  # name -> (desc, static)
    methods: list[_MethodInfo] = field(default_factory=list)


class _Universe:
    def __init__(self, program: A.Program, externs: list[ClassDef]):
        self.classes: dict[str, _ClassInfo] = {}
        for cd in list(core_classdefs().values()) + list(externs):
            self._add_classdef(cd)
        for decl in program.classes:
            if decl.name in self.classes:
                raise MiniJTypeError(f"duplicate class {decl.name}", decl.line)
            info = _ClassInfo(decl.name, decl.super_name)
            for f in decl.fields:
                if f.name in info.fields:
                    raise MiniJTypeError(
                        f"duplicate field {decl.name}.{f.name}", f.line
                    )
                info.fields[f.name] = (f.desc, f.static)
            for m in decl.methods:
                info.methods.append(_MethodInfo(decl.name, m.name, m.sig, m.static))
            self.classes[decl.name] = info
        # validate super chains exist and are acyclic
        for decl in program.classes:
            seen = set()
            walk: str | None = decl.name
            while walk is not None:
                if walk in seen:
                    raise MiniJTypeError(f"inheritance cycle at {walk}", decl.line)
                seen.add(walk)
                info = self.classes.get(walk)
                if info is None:
                    raise MiniJTypeError(
                        f"unknown superclass {walk} of {decl.name}", decl.line
                    )
                walk = info.super_name

    def _add_classdef(self, cd: ClassDef) -> None:
        info = _ClassInfo(cd.name, cd.super_name)
        for f in cd.fields:
            info.fields[f.name] = (f.desc, f.static)
        for m in cd.methods:
            info.methods.append(
                _MethodInfo(cd.name, m.name, m.signature.spell(), m.static)
            )
        self.classes[cd.name] = info

    # -- queries -----------------------------------------------------------

    def is_class(self, name: str) -> bool:
        return name in self.classes

    def supers(self, name: str):
        walk: str | None = name
        while walk is not None:
            info = self.classes.get(walk)
            if info is None:
                return
            yield info
            walk = info.super_name

    def is_subclass(self, name: str, ancestor: str) -> bool:
        return any(info.name == ancestor for info in self.supers(name))

    def find_field(self, cls: str, name: str) -> tuple[str, str, bool] | None:
        """(declaring class, desc, static) or None."""
        for info in self.supers(cls):
            hit = info.fields.get(name)
            if hit is not None:
                return info.name, hit[0], hit[1]
        return None

    def assignable(self, src: str, dst: str) -> bool:
        if src == dst:
            return True
        if src == NULL_T and is_reference(dst):
            return True
        if not (is_reference(src) and is_reference(dst)):
            return False
        if dst == "LObject;":
            return True
        if is_array(src) and is_array(dst):
            es, ed = element_type(src), element_type(dst)
            if es == "I" or ed == "I":
                return es == ed
            return self.assignable(es, ed)
        if is_array(src) or is_array(dst):
            return False
        return self.is_subclass(class_name(src), class_name(dst))

    def find_method(
        self, cls: str, name: str, arg_types: list[str], line: int
    ) -> _MethodInfo:
        candidates = []
        for info in self.supers(cls):
            for m in info.methods:
                if m.name != name or len(m.params) != len(arg_types):
                    continue
                if all(self.assignable(a, p) for a, p in zip(arg_types, m.params)):
                    candidates.append(m)
            if candidates:
                break  # nearest declaring class wins
        if not candidates:
            raise MiniJTypeError(
                f"no method {cls}.{name}({', '.join(arg_types)})", line
            )
        if len({m.sig for m in candidates}) > 1:
            raise MiniJTypeError(f"ambiguous call {cls}.{name}(...)", line)
        return candidates[0]


# ---------------------------------------------------------------------------
# per-method generation


class _MethodGen:
    def __init__(self, universe: _Universe, cls: A.ClassDecl, method: A.MethodDecl, mb: MethodBuilder):
        self.u = universe
        self.cls = cls
        self.m = method
        self.mb = mb
        #: lexical scopes, innermost last; slots are never reused
        self.scopes: list[dict[str, tuple[int, str]]] = [{}]
        self.next_slot = 0
        if not method.static:
            self.scopes[0]["this"] = (0, f"L{cls.name};")
            self.next_slot = 1
        for p in method.params:
            self._declare(p.name, p.desc, method.line)
        self._label_n = 0
        self._loop_stack: list[tuple[str, str]] = []  # (continue, break) labels
        self._sync_depth = 0
        self._tmp_a: int | None = None  # hidden temps for compound array ops
        self._tmp_i: int | None = None

    _COMPOUND = {
        "+=": "iadd",
        "-=": "isub",
        "*=": "imul",
        "/=": "idiv",
        "%=": "irem",
        "&=": "iand",
        "|=": "ior",
        "^=": "ixor",
    }

    def _emit_compound(self, op: str) -> None:
        getattr(self.mb, self._COMPOUND[op])()

    # -- small helpers --------------------------------------------------------

    def _declare(self, name: str, desc: str, line: int) -> int:
        if name in self.scopes[-1]:
            raise MiniJTypeError(f"duplicate local {name!r}", line)
        slot = self.next_slot
        self.next_slot += 1
        self.scopes[-1][name] = (slot, desc)
        return slot

    def _lookup(self, name: str) -> tuple[int, str] | None:
        for scope in reversed(self.scopes):
            hit = scope.get(name)
            if hit is not None:
                return hit
        return None

    def _is_local(self, name: str) -> bool:
        return self._lookup(name) is not None

    def _fresh(self, hint: str) -> str:
        self._label_n += 1
        return f"{hint}${self._label_n}"

    def _temp_pair(self) -> tuple[int, int]:
        if self._tmp_a is None:
            self._tmp_a = self.next_slot
            self._tmp_i = self.next_slot + 1
            self.next_slot += 2
        return self._tmp_a, self._tmp_i  # type: ignore[return-value]

    def _need(self, cond: bool, msg: str, line: int) -> None:
        if not cond:
            raise MiniJTypeError(msg, line)

    def _need_int(self, t: str, line: int, what: str = "operand") -> None:
        self._need(t == "I", f"{what} must be int, found {_show(t)}", line)

    def _need_ref(self, t: str, line: int, what: str = "operand") -> None:
        self._need(
            t == NULL_T or is_reference(t),
            f"{what} must be a reference, found {_show(t)}",
            line,
        )

    # -- entry ---------------------------------------------------------------

    def generate(self) -> None:
        body = self.m.body
        assert body is not None
        completes = self.gen_block(body)
        if self.m.ret == "V":
            if completes:
                self.mb.line(self.m.line).ret()
        elif completes:
            raise MiniJTypeError(
                f"method {self.cls.name}.{self.m.name} may complete "
                "without returning a value",
                self.m.line,
            )

    # -- statements ---------------------------------------------------------------

    def gen_block(self, block: A.Block) -> bool:
        """Returns whether control can reach the end of the block."""
        self.scopes.append({})
        try:
            completes = True
            for stmt in block.stmts:
                completes = self.gen_stmt(stmt)
            return completes
        finally:
            self.scopes.pop()

    def gen_stmt(self, stmt: A.Stmt) -> bool:
        """Generate *stmt*; returns whether it can complete normally."""
        self.mb.line(stmt.line)
        if isinstance(stmt, A.Block):
            return self.gen_block(stmt)
        if isinstance(stmt, A.LocalDecl):
            self.gen_local_decl(stmt)
            return True
        if isinstance(stmt, A.Assign):
            self.gen_assign(stmt)
            return True
        if isinstance(stmt, A.ExprStmt):
            assert stmt.expr is not None
            t = self.gen_expr(stmt.expr)
            if t != "V":
                self.mb.pop()
            return True
        if isinstance(stmt, A.If):
            return self.gen_if(stmt)
        if isinstance(stmt, A.While):
            return self.gen_while(stmt)
        if isinstance(stmt, A.For):
            return self.gen_for(stmt)
        if isinstance(stmt, A.Return):
            self.gen_return(stmt)
            return False
        if isinstance(stmt, A.Sync):
            return self.gen_sync(stmt)
        if isinstance(stmt, A.Break):
            self._need(bool(self._loop_stack), "break outside a loop", stmt.line)
            self._need(
                self._sync_depth == 0, "break out of synchronized is not supported", stmt.line
            )
            self.mb.goto(self._loop_stack[-1][1])
            return False
        if isinstance(stmt, A.Continue):
            self._need(bool(self._loop_stack), "continue outside a loop", stmt.line)
            self._need(
                self._sync_depth == 0,
                "continue out of synchronized is not supported",
                stmt.line,
            )
            self.mb.goto(self._loop_stack[-1][0])
            return False
        raise MiniJTypeError(  # pragma: no cover
            f"unhandled statement {type(stmt).__name__}", stmt.line
        )

    def gen_local_decl(self, stmt: A.LocalDecl) -> None:
        if stmt.desc.startswith("L") and not self.u.is_class(class_name(stmt.desc)):
            raise MiniJTypeError(f"unknown type {class_name(stmt.desc)}", stmt.line)
        slot = self._declare(stmt.name, stmt.desc, stmt.line)
        if stmt.init is not None:
            t = self.gen_expr(stmt.init)
            self._need(
                self.u.assignable(t, stmt.desc),
                f"cannot initialise {_show(stmt.desc)} from {_show(t)}",
                stmt.line,
            )
        else:
            if stmt.desc == "I":
                self.mb.iconst(0)
            else:
                self.mb.aconst_null()
        if stmt.desc == "I":
            self.mb.istore(slot)
        else:
            self.mb.astore(slot)

    def gen_assign(self, stmt: A.Assign) -> None:
        target = stmt.target
        value = stmt.value
        assert target is not None and value is not None
        compound = stmt.op != "="

        if isinstance(target, A.Name):
            hit = self._lookup(target.ident)
            self._need(hit is not None, f"unknown local {target.ident!r}", stmt.line)
            slot, desc = hit  # type: ignore[misc]
            if compound:
                self._need_int(desc, stmt.line, "compound-assignment target")
                self.mb.iload(slot)
                self._need_int(self.gen_expr(value), stmt.line, "value")
                self._emit_compound(stmt.op)
                self.mb.istore(slot)
            else:
                t = self.gen_expr(value)
                self._need(
                    self.u.assignable(t, desc),
                    f"cannot assign {_show(t)} to {_show(desc)}",
                    stmt.line,
                )
                self.mb.istore(slot) if desc == "I" else self.mb.astore(slot)
            return

        if isinstance(target, A.Member):
            static_cls = self._class_qualifier(target.target)
            if static_cls is not None:
                hit = self.u.find_field(static_cls, target.name)
                self._need(
                    hit is not None and hit[2],
                    f"no static field {static_cls}.{target.name}",
                    stmt.line,
                )
                decl_cls, desc, _ = hit  # type: ignore[misc]
                ref = f"{decl_cls}.{target.name}"
                if compound:
                    self._need_int(desc, stmt.line, "compound-assignment target")
                    self.mb.getstatic(ref)
                    self._need_int(self.gen_expr(value), stmt.line, "value")
                    self._emit_compound(stmt.op)
                else:
                    t = self.gen_expr(value)
                    self._need(
                        self.u.assignable(t, desc),
                        f"cannot assign {_show(t)} to {_show(desc)}",
                        stmt.line,
                    )
                self.mb.putstatic(ref)
                return
            # instance field
            assert target.target is not None
            obj_t = self.gen_expr(target.target)
            self._need_ref(obj_t, stmt.line, "field owner")
            self._need(obj_t != NULL_T, "field store on null", stmt.line)
            owner = class_name(obj_t) if not is_array(obj_t) else None
            self._need(owner is not None, "arrays have no assignable fields", stmt.line)
            hit = self.u.find_field(owner, target.name)  # type: ignore[arg-type]
            self._need(
                hit is not None and not hit[2],
                f"no instance field {owner}.{target.name}",
                stmt.line,
            )
            decl_cls, desc, _ = hit  # type: ignore[misc]
            ref = f"{decl_cls}.{target.name}"
            if compound:
                self._need_int(desc, stmt.line, "compound-assignment target")
                self.mb.dup().getfield(ref)
                self._need_int(self.gen_expr(value), stmt.line, "value")
                self._emit_compound(stmt.op)
            else:
                t = self.gen_expr(value)
                self._need(
                    self.u.assignable(t, desc),
                    f"cannot assign {_show(t)} to {_show(desc)}",
                    stmt.line,
                )
            self.mb.putfield(ref)
            return

        if isinstance(target, A.Index):
            assert target.array is not None and target.index is not None
            arr_t = self.gen_expr(target.array)
            self._need(
                arr_t == NULL_T or is_array(arr_t),
                f"indexing a non-array {_show(arr_t)}",
                stmt.line,
            )
            elem = element_type(arr_t) if is_array(arr_t) else NULL_T
            ta, ti = self._temp_pair()
            self.mb.astore(ta)
            self._need_int(self.gen_expr(target.index), stmt.line, "array index")
            self.mb.istore(ti)
            self.mb.aload(ta).iload(ti)
            if compound:
                self._need_int(elem, stmt.line, "compound-assignment target")
                self.mb.aload(ta).iload(ti).iaload()
                self._need_int(self.gen_expr(value), stmt.line, "value")
                self._emit_compound(stmt.op)
                self.mb.iastore()
            else:
                t = self.gen_expr(value)
                if elem == "I" or elem == NULL_T and t == "I":
                    self._need_int(t, stmt.line, "array element value")
                    self.mb.iastore()
                else:
                    self._need(
                        self.u.assignable(t, elem if elem != NULL_T else "LObject;"),
                        f"cannot store {_show(t)} into {_show(arr_t)}",
                        stmt.line,
                    )
                    self.mb.aastore()
            return

        raise MiniJTypeError("bad assignment target", stmt.line)

    def gen_if(self, stmt: A.If) -> bool:
        assert stmt.cond is not None and stmt.then is not None
        self._need_int(self.gen_expr(stmt.cond), stmt.line, "if condition")
        els = self._fresh("else")
        end = self._fresh("endif")
        self.mb.ifeq(els if stmt.els is not None else end)
        then_c = self.gen_stmt(stmt.then)
        if stmt.els is None:
            self.mb.label(end)
            return True  # the false edge always reaches `end`
        if then_c:
            self.mb.goto(end)
        self.mb.label(els)
        else_c = self.gen_stmt(stmt.els)
        if then_c:
            self.mb.label(end)
        return then_c or else_c

    def gen_while(self, stmt: A.While) -> bool:
        assert stmt.cond is not None and stmt.body is not None
        top = self._fresh("loop")
        end = self._fresh("endloop")
        self.mb.label(top)
        self.mb.line(stmt.line)
        self._need_int(self.gen_expr(stmt.cond), stmt.line, "while condition")
        self.mb.ifeq(end)
        self._loop_stack.append((top, end))
        body_c = self.gen_stmt(stmt.body)
        self._loop_stack.pop()
        if body_c:
            self.mb.goto(top)
        self.mb.label(end)
        return True

    def gen_for(self, stmt: A.For) -> bool:
        assert stmt.body is not None
        self.scopes.append({})  # the for-init variable scopes to the loop
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        top = self._fresh("for")
        cont = self._fresh("forcont")
        end = self._fresh("endfor")
        self.mb.label(top)
        if stmt.cond is not None:
            self.mb.line(stmt.line)
            self._need_int(self.gen_expr(stmt.cond), stmt.line, "for condition")
            self.mb.ifeq(end)
        self._loop_stack.append((cont, end))
        self.gen_stmt(stmt.body)
        self._loop_stack.pop()
        self.mb.label(cont)
        if stmt.update is not None:
            self.gen_stmt(stmt.update)
        self.mb.goto(top)
        self.mb.label(end)
        self.scopes.pop()
        return True

    def gen_return(self, stmt: A.Return) -> None:
        self._need(
            self._sync_depth == 0,
            "return out of synchronized is not supported",
            stmt.line,
        )
        if self.m.ret == "V":
            self._need(stmt.value is None, "void method returns a value", stmt.line)
            self.mb.ret()
            return
        self._need(stmt.value is not None, "missing return value", stmt.line)
        t = self.gen_expr(stmt.value)  # type: ignore[arg-type]
        self._need(
            self.u.assignable(t, self.m.ret),
            f"cannot return {_show(t)} from a {_show(self.m.ret)} method",
            stmt.line,
        )
        if self.m.ret == "I":
            self.mb.ireturn()
        else:
            self.mb.areturn()

    def gen_sync(self, stmt: A.Sync) -> bool:
        assert stmt.lock is not None and stmt.body is not None
        t = self.gen_expr(stmt.lock)
        self._need_ref(t, stmt.line, "synchronized target")
        slot = self._declare(self._fresh("$lock"), t if t != NULL_T else "LObject;", stmt.line)
        self.mb.astore(slot)
        self.mb.aload(slot).monitorenter()
        self._sync_depth += 1
        body_c = self.gen_stmt(stmt.body)
        self._sync_depth -= 1
        self.mb.aload(slot).monitorexit()
        return body_c

    # -- expressions ------------------------------------------------------------

    def _class_qualifier(self, target: A.Expr | None) -> str | None:
        """If *target* is a bare name that is a class (and not shadowed by
        a local), this is a static qualifier."""
        if isinstance(target, A.Name) and not self._is_local(target.ident):
            if self.u.is_class(target.ident):
                return target.ident
        return None

    def gen_expr(self, expr: A.Expr) -> str:
        if isinstance(expr, A.IntLit):
            self.mb.iconst(expr.value)
            return "I"
        if isinstance(expr, A.StrLit):
            self.mb.ldc(expr.value)
            return "LString;"
        if isinstance(expr, A.NullLit):
            self.mb.aconst_null()
            return NULL_T
        if isinstance(expr, A.This):
            self._need(not self.m.static, "'this' in a static method", expr.line)
            self.mb.aload(0)
            return f"L{self.cls.name};"
        if isinstance(expr, A.Name):
            hit = self._lookup(expr.ident)
            if hit is None:
                if self.u.is_class(expr.ident):
                    raise MiniJTypeError(
                        f"class name {expr.ident!r} used as a value", expr.line
                    )
                raise MiniJTypeError(f"unknown name {expr.ident!r}", expr.line)
            slot, desc = hit
            self.mb.iload(slot) if desc == "I" else self.mb.aload(slot)
            return desc
        if isinstance(expr, A.Member):
            return self.gen_member(expr)
        if isinstance(expr, A.Index):
            return self.gen_index(expr)
        if isinstance(expr, A.Call):
            return self.gen_call(expr)
        if isinstance(expr, A.New):
            self._need(
                self.u.is_class(expr.class_name),
                f"unknown class {expr.class_name}",
                expr.line,
            )
            self.mb.new(expr.class_name)
            return f"L{expr.class_name};"
        if isinstance(expr, A.NewArray):
            assert expr.size is not None
            self._need_int(self.gen_expr(expr.size), expr.line, "array size")
            if expr.elem_desc == "I":
                self.mb.newarray()
            else:
                self._need(
                    self.u.is_class(class_name(expr.elem_desc)),
                    f"unknown class {class_name(expr.elem_desc)}",
                    expr.line,
                )
                self.mb.anewarray(expr.elem_desc)
            return "[" + expr.elem_desc
        if isinstance(expr, A.Unary):
            return self.gen_unary(expr)
        if isinstance(expr, A.Binary):
            return self.gen_binary(expr)
        if isinstance(expr, A.InstanceOf):
            assert expr.operand is not None
            t = self.gen_expr(expr.operand)
            self._need_ref(t, expr.line, "instanceof operand")
            self._need(
                self.u.is_class(expr.class_name),
                f"unknown class {expr.class_name}",
                expr.line,
            )
            self.mb.instanceof(expr.class_name)
            return "I"
        raise MiniJTypeError(f"unhandled expression {type(expr).__name__}", expr.line)

    def gen_member(self, expr: A.Member) -> str:
        static_cls = self._class_qualifier(expr.target)
        if static_cls is not None:
            hit = self.u.find_field(static_cls, expr.name)
            self._need(
                hit is not None and hit[2],
                f"no static field {static_cls}.{expr.name}",
                expr.line,
            )
            decl_cls, desc, _ = hit  # type: ignore[misc]
            self.mb.getstatic(f"{decl_cls}.{expr.name}")
            return desc
        assert expr.target is not None
        t = self.gen_expr(expr.target)
        if (t == NULL_T or is_array(t)) and expr.name == "length":
            self.mb.arraylength()
            return "I"
        self._need_ref(t, expr.line, "field owner")
        self._need(
            t != NULL_T and not is_array(t),
            f"{_show(t)} has no field {expr.name!r}",
            expr.line,
        )
        hit = self.u.find_field(class_name(t), expr.name)
        self._need(
            hit is not None and not hit[2],
            f"no instance field {class_name(t)}.{expr.name}",
            expr.line,
        )
        decl_cls, desc, _ = hit  # type: ignore[misc]
        self.mb.getfield(f"{decl_cls}.{expr.name}")
        return desc

    def gen_index(self, expr: A.Index) -> str:
        assert expr.array is not None and expr.index is not None
        t = self.gen_expr(expr.array)
        self._need(
            t == NULL_T or is_array(t), f"indexing a non-array {_show(t)}", expr.line
        )
        self._need_int(self.gen_expr(expr.index), expr.line, "array index")
        elem = element_type(t) if is_array(t) else NULL_T
        if elem == "I":
            self.mb.iaload()
            return "I"
        self.mb.aaload()
        return elem if elem != NULL_T else NULL_T

    def gen_call(self, expr: A.Call) -> str:
        static_cls = self._class_qualifier(expr.target)
        if static_cls is not None:
            arg_types = [self.gen_expr(a) for a in expr.args]
            m = self.u.find_method(static_cls, expr.name, arg_types, expr.line)
            self._need(
                m.static, f"{m.owner}.{m.name} is not static", expr.line
            )
            self.mb.invokestatic(m.ref)
            return m.ret
        assert expr.target is not None
        t = self.gen_expr(expr.target)
        self._need_ref(t, expr.line, "call receiver")
        self._need(
            t != NULL_T and not is_array(t),
            f"{_show(t)} has no methods",
            expr.line,
        )
        arg_types = [self.gen_expr(a) for a in expr.args]
        m = self.u.find_method(class_name(t), expr.name, arg_types, expr.line)
        self._need(not m.static, f"{m.owner}.{m.name} is static", expr.line)
        self.mb.invokevirtual(m.ref)
        return m.ret

    def gen_unary(self, expr: A.Unary) -> str:
        assert expr.operand is not None
        if expr.op == "-":
            self._need_int(self.gen_expr(expr.operand), expr.line)
            self.mb.ineg()
            return "I"
        if expr.op == "~":
            self._need_int(self.gen_expr(expr.operand), expr.line)
            self.mb.iconst(-1).ixor()
            return "I"
        if expr.op == "!":
            self._need_int(self.gen_expr(expr.operand), expr.line)
            yes = self._fresh("not1")
            end = self._fresh("notend")
            self.mb.ifeq(yes).iconst(0).goto(end).label(yes).iconst(1).label(end)
            return "I"
        raise MiniJTypeError(f"unknown unary {expr.op}", expr.line)

    _ARITH = {
        "+": "iadd",
        "-": "isub",
        "*": "imul",
        "/": "idiv",
        "%": "irem",
        "&": "iand",
        "|": "ior",
        "^": "ixor",
        "<<": "ishl",
        ">>": "ishr",
        ">>>": "iushr",
    }
    _CMP = {
        "<": "if_icmplt",
        "<=": "if_icmple",
        ">": "if_icmpgt",
        ">=": "if_icmpge",
    }

    def gen_binary(self, expr: A.Binary) -> str:
        assert expr.left is not None and expr.right is not None
        op = expr.op
        if op in ("&&", "||"):
            return self.gen_shortcircuit(expr)
        if op in self._ARITH:
            self._need_int(self.gen_expr(expr.left), expr.line, f"left of {op}")
            self._need_int(self.gen_expr(expr.right), expr.line, f"right of {op}")
            getattr(self.mb, self._ARITH[op])()
            return "I"
        if op in self._CMP or op in ("==", "!="):
            lt = self.gen_expr(expr.left)
            rt = self.gen_expr(expr.right)
            yes = self._fresh("cmp1")
            end = self._fresh("cmpend")
            if op in self._CMP:
                self._need_int(lt, expr.line, f"left of {op}")
                self._need_int(rt, expr.line, f"right of {op}")
                getattr(self.mb, self._CMP[op])(yes)
            else:
                both_int = lt == "I" and rt == "I"
                both_ref = (lt == NULL_T or is_reference(lt)) and (
                    rt == NULL_T or is_reference(rt)
                )
                self._need(
                    both_int or both_ref,
                    f"cannot compare {_show(lt)} with {_show(rt)}",
                    expr.line,
                )
                if both_int:
                    self.mb.if_icmpeq(yes) if op == "==" else self.mb.if_icmpne(yes)
                else:
                    self.mb.if_acmpeq(yes) if op == "==" else self.mb.if_acmpne(yes)
            self.mb.iconst(0).goto(end).label(yes).iconst(1).label(end)
            return "I"
        raise MiniJTypeError(f"unknown operator {op}", expr.line)

    def gen_shortcircuit(self, expr: A.Binary) -> str:
        assert expr.left is not None and expr.right is not None
        end = self._fresh("scend")
        out = self._fresh("scout")
        if expr.op == "&&":
            self._need_int(self.gen_expr(expr.left), expr.line, "left of &&")
            self.mb.ifeq(out)  # false -> 0
            self._need_int(self.gen_expr(expr.right), expr.line, "right of &&")
            self.mb.ifeq(out)
            self.mb.iconst(1).goto(end).label(out).iconst(0).label(end)
        else:
            self._need_int(self.gen_expr(expr.left), expr.line, "left of ||")
            self.mb.ifne(out)  # true -> 1
            self._need_int(self.gen_expr(expr.right), expr.line, "right of ||")
            self.mb.ifne(out)
            self.mb.iconst(0).goto(end).label(out).iconst(1).label(end)
        return "I"


def _show(t: str) -> str:
    return {"I": "int", "V": "void", NULL_T: "null"}.get(t, t)


# ---------------------------------------------------------------------------
# entry points


def compile_classes(program: A.Program, externs: list[ClassDef] | None = None) -> list[ClassDef]:
    universe = _Universe(program, list(externs or []))
    out: list[ClassDef] = []
    for decl in program.classes:
        cb = ClassBuilder(decl.name, super_name=decl.super_name)
        for f in decl.fields:
            cb.field(f.name, f.desc, static=f.static)
        for m in decl.methods:
            if m.native:
                cb.native_method(m.name, m.sig, static=m.static)
                continue
            mb = cb.method(m.name, m.sig, static=m.static)
            _MethodGen(universe, decl, m, mb).generate()
        out.append(cb.build())
    return out


def compile_source(source: str, externs: list[ClassDef] | None = None) -> list[ClassDef]:
    """MiniJ source text → class files, ready for ``VirtualMachine.declare``."""
    return compile_classes(parse(source), externs)
