"""MiniJ error taxonomy."""

from __future__ import annotations

from repro.vm.errors import VMError


class MiniJError(VMError):
    """Base for all MiniJ front-end errors."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        where = ""
        if line is not None:
            where = f"line {line}"
            if col is not None:
                where += f":{col}"
            where += ": "
        super().__init__(f"{where}{message}")


class MiniJSyntaxError(MiniJError):
    """Lexing or parsing failure."""


class MiniJTypeError(MiniJError):
    """Semantic analysis failure (unknown names, type mismatches, ...)."""
