"""MiniJ: a small Java-like language compiled to Pequeño bytecode.

The paper's platform runs *Java* programs; our assembly-level workloads
are the moral equivalent of javac output.  MiniJ closes the loop: a
high-level front end (lexer → parser → type checker → code generator)
whose output is exactly the class files the rest of the system consumes,
so guest programs can be written the way the paper's examples are::

    class Worker extends Thread {
        int id;
        void run() {
            int i = 0;
            while (i < 100) {
                synchronized (Main.lock) {
                    Main.counter = Main.counter + 1;
                }
                i = i + 1;
            }
        }
    }

Source line numbers flow through to the line tables that remote
reflection (Figure 3) exposes, so the debugger shows MiniJ lines.
"""

from repro.lang.codegen import compile_classes, compile_source
from repro.lang.errors import MiniJError, MiniJSyntaxError, MiniJTypeError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse

__all__ = [
    "MiniJError",
    "MiniJSyntaxError",
    "MiniJTypeError",
    "compile_classes",
    "compile_source",
    "parse",
    "tokenize",
]
