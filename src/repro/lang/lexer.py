"""The MiniJ lexer.

Token kinds: ``ident``, ``int``, ``string``, ``punct``, ``kw``, ``eof``.
Comments: ``//`` to end of line and ``/* ... */`` (non-nesting).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.errors import MiniJSyntaxError

KEYWORDS = frozenset(
    {
        "class",
        "extends",
        "static",
        "native",
        "int",
        "void",
        "boolean",
        "if",
        "else",
        "while",
        "for",
        "return",
        "new",
        "null",
        "this",
        "true",
        "false",
        "synchronized",
        "instanceof",
        "break",
        "continue",
    }
)

#: multi-character punctuation, longest first
_PUNCT3 = (">>>",)
_PUNCT2 = ("==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--")
_PUNCT1 = "+-*/%<>=!&|^(){}[];,.~"

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\", "0": "\0"}


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'int' | 'string' | 'punct' | 'kw' | 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.kind},{self.text!r}@{self.line}:{self.col})"


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg: str) -> MiniJSyntaxError:
        return MiniJSyntaxError(msg, line, col)

    while i < n:
        c = source[i]
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if c in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[i : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        if c.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
            else:
                while i < n and source[i].isdigit():
                    i += 1
            text = source[start:i]
            tokens.append(Token("int", text, line, col))
            col += i - start
            continue
        if c.isalpha() or c == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            col += i - start
            continue
        if c == '"':
            start_line, start_col = line, col
            i += 1
            col += 1
            out: list[str] = []
            while True:
                if i >= n or source[i] == "\n":
                    raise MiniJSyntaxError("unterminated string", start_line, start_col)
                ch = source[i]
                if ch == '"':
                    i += 1
                    col += 1
                    break
                if ch == "\\":
                    if i + 1 >= n:
                        raise MiniJSyntaxError("bad escape", line, col)
                    esc = source[i + 1]
                    if esc not in _ESCAPES:
                        raise MiniJSyntaxError(f"bad escape \\{esc}", line, col)
                    out.append(_ESCAPES[esc])
                    i += 2
                    col += 2
                else:
                    out.append(ch)
                    i += 1
                    col += 1
            tokens.append(Token("string", "".join(out), start_line, start_col))
            continue
        matched = None
        for group in (_PUNCT3, _PUNCT2):
            for p in group:
                if source.startswith(p, i):
                    matched = p
                    break
            if matched:
                break
        if matched is None and c in _PUNCT1:
            matched = c
        if matched is None:
            raise error(f"unexpected character {c!r}")
        tokens.append(Token("punct", matched, line, col))
        i += len(matched)
        col += len(matched)

    tokens.append(Token("eof", "", line, col))
    return tokens
