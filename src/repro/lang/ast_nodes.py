"""MiniJ abstract syntax.

Types are represented as VM descriptors throughout ("I", "V", "LFoo;",
"[I", ...), with MiniJ's ``boolean`` mapped onto ``I`` (0/1) to match the
word-oriented ISA.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# ---------------------------------------------------------------------------
# expressions


@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class StrLit(Expr):
    value: str = ""


@dataclass
class NullLit(Expr):
    pass


@dataclass
class This(Expr):
    pass


@dataclass
class Name(Expr):
    """A bare identifier: a local, a parameter, or (qualifying a static
    access) a class name — resolved during semantic analysis."""

    ident: str = ""


@dataclass
class Member(Expr):
    """``target.name`` — an instance field, a static field (when target is
    a class name), or array ``.length``."""

    target: Expr | None = None
    name: str = ""


@dataclass
class Index(Expr):
    array: Expr | None = None
    index: Expr | None = None


@dataclass
class Call(Expr):
    """``target.name(args)`` — virtual when target is a value, static when
    target is a class name."""

    target: Expr | None = None
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class New(Expr):
    class_name: str = ""


@dataclass
class NewArray(Expr):
    elem_desc: str = ""
    size: Expr | None = None


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr | None = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class InstanceOf(Expr):
    operand: Expr | None = None
    class_name: str = ""


# ---------------------------------------------------------------------------
# statements


@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class LocalDecl(Stmt):
    desc: str = ""
    name: str = ""
    init: Expr | None = None


@dataclass
class Assign(Stmt):
    """``target op= value`` where target is a Name, Member, or Index."""

    target: Expr | None = None
    op: str = "="  # '=', '+=', '-='
    value: Expr | None = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    els: Stmt | None = None


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass
class For(Stmt):
    init: Stmt | None = None
    cond: Expr | None = None
    update: Stmt | None = None
    body: Stmt | None = None


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Sync(Stmt):
    """``synchronized (lock) { ... }``"""

    lock: Expr | None = None
    body: Stmt | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# declarations


@dataclass
class FieldDecl:
    name: str
    desc: str
    static: bool
    line: int


@dataclass
class Param:
    name: str
    desc: str


@dataclass
class MethodDecl:
    name: str
    ret: str
    params: list[Param]
    body: Block | None  # None for native methods
    static: bool
    native: bool
    line: int

    @property
    def sig(self) -> str:
        return f"({''.join(p.desc for p in self.params)}){self.ret}"


@dataclass
class ClassDecl:
    name: str
    super_name: str
    fields: list[FieldDecl]
    methods: list[MethodDecl]
    line: int


@dataclass
class Program:
    classes: list[ClassDecl]
