"""A fluent Python DSL for constructing guest classes.

The builder is the programmatic front end to the class-file model — the
text assembler is implemented on top of it, and workloads written in Python
use it directly::

    cb = ClassBuilder("Counter")
    cb.field("n", "I")
    m = cb.method("bump", "(I)V")
    m.aload(0).getfield("Counter.n").iload(1).iadd()
    m.aload_self().swap().putfield("Counter.n")   # (illustrative)
    m.ret()
    classdef = cb.build()

Branch targets are symbolic labels resolved when the method is finished.
"""

from __future__ import annotations

from repro.vm.bytecode import Instr, Op, OPERAND_KIND, OperandKind
from repro.vm.classfile import ClassDef, FieldDef, MethodDef, validate_classdef
from repro.vm.descriptors import parse_signature
from repro.vm.errors import VMError


class MethodBuilder:
    """Accumulates instructions for one method; supports symbolic labels."""

    def __init__(self, owner: "ClassBuilder", name: str, sig: str, *, static: bool):
        self._owner = owner
        self._def = MethodDef(name=name, signature=parse_signature(sig), static=static)
        self._labels: dict[str, int] = {}
        self._fixups: list[tuple[int, str]] = []
        self._current_line: int | None = None
        self._finished = False

    # -- structural ------------------------------------------------------

    def label(self, name: str) -> "MethodBuilder":
        """Define *name* at the next instruction index."""
        if name in self._labels:
            raise VMError(f"duplicate label {name!r} in {self._def.name}")
        self._labels[name] = len(self._def.code)
        return self

    def line(self, n: int) -> "MethodBuilder":
        """Set the source line recorded for subsequent instructions."""
        self._current_line = n
        return self

    def emit(self, op: Op, arg: object = None) -> "MethodBuilder":
        kind = OPERAND_KIND[op]
        if kind is OperandKind.TARGET and isinstance(arg, str):
            self._fixups.append((len(self._def.code), arg))
            arg = -1  # patched in finish()
        bci = len(self._def.code)
        self._def.code.append(Instr(op, arg))
        if self._current_line is not None:
            self._def.line_table[bci] = self._current_line
        return self

    def finish(self) -> MethodDef:
        if self._finished:
            return self._def
        code = self._def.code
        for bci, label in self._fixups:
            if label not in self._labels:
                raise VMError(f"undefined label {label!r} in {self._def.name}")
            code[bci] = Instr(code[bci].op, self._labels[label])
        self._def.compute_max_locals()
        self._finished = True
        return self._def

    @property
    def here(self) -> int:
        """Current instruction index (useful for manual targets)."""
        return len(self._def.code)

    # -- instruction helpers (one per opcode) ------------------------------

    def nop(self):
        return self.emit(Op.NOP)

    def iconst(self, v: int):
        return self.emit(Op.ICONST, v)

    def ldc(self, text: str):
        return self.emit(Op.LDC, self._owner._classdef.intern_string(text))

    def aconst_null(self):
        return self.emit(Op.ACONST_NULL)

    def dup(self):
        return self.emit(Op.DUP)

    def pop(self):
        return self.emit(Op.POP)

    def swap(self):
        return self.emit(Op.SWAP)

    def iload(self, n: int):
        return self.emit(Op.ILOAD, n)

    def istore(self, n: int):
        return self.emit(Op.ISTORE, n)

    def aload(self, n: int):
        return self.emit(Op.ALOAD, n)

    def astore(self, n: int):
        return self.emit(Op.ASTORE, n)

    def iinc(self, n: int, delta: int):
        return self.emit(Op.IINC, (n, delta))

    def iadd(self):
        return self.emit(Op.IADD)

    def isub(self):
        return self.emit(Op.ISUB)

    def imul(self):
        return self.emit(Op.IMUL)

    def idiv(self):
        return self.emit(Op.IDIV)

    def irem(self):
        return self.emit(Op.IREM)

    def ineg(self):
        return self.emit(Op.INEG)

    def ishl(self):
        return self.emit(Op.ISHL)

    def ishr(self):
        return self.emit(Op.ISHR)

    def iushr(self):
        return self.emit(Op.IUSHR)

    def iand(self):
        return self.emit(Op.IAND)

    def ior(self):
        return self.emit(Op.IOR)

    def ixor(self):
        return self.emit(Op.IXOR)

    def goto(self, label: str):
        return self.emit(Op.GOTO, label)

    def ifeq(self, label: str):
        return self.emit(Op.IFEQ, label)

    def ifne(self, label: str):
        return self.emit(Op.IFNE, label)

    def iflt(self, label: str):
        return self.emit(Op.IFLT, label)

    def ifle(self, label: str):
        return self.emit(Op.IFLE, label)

    def ifgt(self, label: str):
        return self.emit(Op.IFGT, label)

    def ifge(self, label: str):
        return self.emit(Op.IFGE, label)

    def if_icmpeq(self, label: str):
        return self.emit(Op.IF_ICMPEQ, label)

    def if_icmpne(self, label: str):
        return self.emit(Op.IF_ICMPNE, label)

    def if_icmplt(self, label: str):
        return self.emit(Op.IF_ICMPLT, label)

    def if_icmple(self, label: str):
        return self.emit(Op.IF_ICMPLE, label)

    def if_icmpgt(self, label: str):
        return self.emit(Op.IF_ICMPGT, label)

    def if_icmpge(self, label: str):
        return self.emit(Op.IF_ICMPGE, label)

    def if_acmpeq(self, label: str):
        return self.emit(Op.IF_ACMPEQ, label)

    def if_acmpne(self, label: str):
        return self.emit(Op.IF_ACMPNE, label)

    def ifnull(self, label: str):
        return self.emit(Op.IFNULL, label)

    def ifnonnull(self, label: str):
        return self.emit(Op.IFNONNULL, label)

    def new(self, cls: str):
        return self.emit(Op.NEW, cls)

    def getfield(self, ref: str):
        return self.emit(Op.GETFIELD, ref)

    def putfield(self, ref: str):
        return self.emit(Op.PUTFIELD, ref)

    def getstatic(self, ref: str):
        return self.emit(Op.GETSTATIC, ref)

    def putstatic(self, ref: str):
        return self.emit(Op.PUTSTATIC, ref)

    def newarray(self):
        return self.emit(Op.NEWARRAY)

    def anewarray(self, elem_desc: str):
        return self.emit(Op.ANEWARRAY, elem_desc)

    def iaload(self):
        return self.emit(Op.IALOAD)

    def iastore(self):
        return self.emit(Op.IASTORE)

    def aaload(self):
        return self.emit(Op.AALOAD)

    def aastore(self):
        return self.emit(Op.AASTORE)

    def arraylength(self):
        return self.emit(Op.ARRAYLENGTH)

    def instanceof(self, cls: str):
        return self.emit(Op.INSTANCEOF, cls)

    def checkcast(self, cls: str):
        return self.emit(Op.CHECKCAST, cls)

    def invokestatic(self, ref: str):
        return self.emit(Op.INVOKESTATIC, ref)

    def invokevirtual(self, ref: str):
        return self.emit(Op.INVOKEVIRTUAL, ref)

    def ret(self):
        return self.emit(Op.RETURN)

    def ireturn(self):
        return self.emit(Op.IRETURN)

    def areturn(self):
        return self.emit(Op.ARETURN)

    def monitorenter(self):
        return self.emit(Op.MONITORENTER)

    def monitorexit(self):
        return self.emit(Op.MONITOREXIT)


class ClassBuilder:
    """Accumulates fields and methods, producing a validated ClassDef."""

    def __init__(self, name: str, super_name: str | None = "Object"):
        self._classdef = ClassDef(name=name, super_name=super_name)
        self._methods: list[MethodBuilder] = []
        self._built = False

    @property
    def name(self) -> str:
        return self._classdef.name

    def field(self, name: str, desc: str, *, static: bool = False) -> "ClassBuilder":
        self._classdef.fields.append(FieldDef(name=name, desc=desc, static=static))
        return self

    def method(self, name: str, sig: str, *, static: bool = False) -> MethodBuilder:
        mb = MethodBuilder(self, name, sig, static=static)
        self._methods.append(mb)
        return mb

    def native_method(self, name: str, sig: str, *, static: bool = True) -> "ClassBuilder":
        self._classdef.methods.append(
            MethodDef(name=name, signature=parse_signature(sig), static=static, native=True)
        )
        return self

    def build(self) -> ClassDef:
        if not self._built:
            for mb in self._methods:
                self._classdef.methods.append(mb.finish())
            validate_classdef(self._classdef)
            self._built = True
        return self._classdef
