"""Pequeño: a Jalapeño-like virtual machine substrate.

The VM provides everything the DejaVu replay platform depends on:

* a JVM-flavoured bytecode ISA with a text assembler and a builder DSL,
* a baseline compiler that inlines yield points (and, when DejaVu is
  attached, its record/replay instrumentation) into method prologues and
  loop backedges — the paper's "cross-optimization",
* a word-addressable heap with a type-accurate semispace copying collector
  driven by reference maps computed by abstract interpretation,
* a quasi-preemptive green-thread package whose state is itself replayed
  by DejaVu,
* per-object monitors (``monitorenter``/``exit``, ``wait``/``notify``),
* a virtual timer device and pluggable wall-clock sources (the sources of
  non-determinism), and
* a JNI-like native interface whose results DejaVu records and replays.
"""

from repro.vm.machine import VirtualMachine, VMConfig
from repro.vm.asm import assemble, assemble_file
from repro.vm.builder import ClassBuilder
from repro.vm.errors import (
    AssemblyError,
    LinkError,
    ReplayDivergenceError,
    VerifyError,
    VMError,
    VMTrap,
)
from repro.vm.timerdev import (
    FixedTimer,
    HostClock,
    HostTimer,
    SeededJitterClock,
    SeededJitterTimer,
)

__all__ = [
    "AssemblyError",
    "ClassBuilder",
    "FixedTimer",
    "HostClock",
    "HostTimer",
    "LinkError",
    "ReplayDivergenceError",
    "SeededJitterClock",
    "SeededJitterTimer",
    "VMConfig",
    "VMError",
    "VMTrap",
    "VerifyError",
    "VirtualMachine",
    "assemble",
    "assemble_file",
]
