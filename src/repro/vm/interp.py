"""The execution engine: micro-op dispatch with safe-point discipline.

One engine drives all green threads of a VM.  The inner loop executes the
current thread's compiled code until something requests a switch (yield
point preemption, blocking, termination), then returns to the scheduler.

The engine has three interchangeable dispatch loops, selected by the VM's
:class:`~repro.vm.engineconfig.EngineConfig` (see DESIGN.md, "Dispatch
architecture"):

* ``_execute_switch`` — the classic if/elif scan over ``(mop, a, b)``
  tuples.  Also the loop used whenever a debug controller is attached,
  because debug hooks are specified per *canonical* micro-op.
* ``_execute_threaded`` — threaded-code dispatch: each compiled method
  gets a handler table (one pre-bound closure per executable op, operands
  baked in), so the per-op work is one indexed load and one call.
* either loop executes the *executable* program ``MachineCode.xops``,
  which with ``fusion`` enabled contains superinstructions; each charges
  exactly as many cycles as the micro-ops it replaces.

Cycle accounting is batched: instead of comparing against the timer
deadline and the cycle budget on every op, the loops keep a single
``limit`` (min of both) and take a slow path only when the local cycle
counter reaches it.  The slow path replays every deadline crossing the
per-op scheme would have seen — rearming from the *old* deadline — so the
``preemptive_hardware_bit`` is raised at the exact same cycles, and the
budget is tested first, so the budget trap consumes no timer interval and
leaves ``cycles == max_cycles + 1`` (the seed engine could run one op past
an armed deadline reset before noticing the budget).

Safe-point discipline (what makes the type-accurate GC sound):

* a collection can only start inside an allocating micro-op or native;
* every allocating handler stores the live ``pc`` into the frame *before*
  allocating, so the reference maps consulted by the GC describe exactly
  the operand stack the frame holds at that moment;
* handlers never keep a popped reference in a Python temporary across an
  allocation (natives get their reference arguments pinned as temp roots);
* fused handlers never allocate, so a superinstruction is atomic with
  respect to GC and scheduling.

The timer device is folded into the loop: each micro-op is one cycle, and
when the cycle counter passes the armed deadline the
``preemptive_hardware_bit`` is set — observed at the next yield point,
exactly Jalapeño's quasi-preemption.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.vm import words
from repro.vm.compiler import (
    F_AL_GETFIELD,
    F_ALC_PUTFIELD,
    F_ALL_ALOAD,
    F_IINC_BR,
    F_ALL_PUTFIELD,
    F_BIN_STORE,
    F_C_BIN,
    F_CONST_STORE,
    F_DUP_PUTFIELD,
    F_L_BR,
    F_LC_BIN,
    F_LC_CMPBR,
    F_LL_BIN,
    F_LL_CMPBR,
    F_MOVE,
    F_PUSH2,
    F_PUSH_LC,
    F_SC_CMPBR,
    F_SL_CMPBR,
    F_YP_GROUP,
    M_AALOAD,
    M_AASTORE,
    M_ACONST_NULL,
    M_ALOAD,
    M_ANEWARRAY,
    M_ARETURN,
    M_ARRAYLENGTH,
    M_ASTORE,
    M_CHECKCAST,
    M_DUP,
    M_GETFIELD,
    M_GETSTATIC,
    M_GOTO,
    M_IADD,
    M_IALOAD,
    M_IAND,
    M_IASTORE,
    M_ICONST,
    M_IDIV,
    M_IFEQ,
    M_IFGE,
    M_IFGT,
    M_IFLE,
    M_IFLT,
    M_IFNE,
    M_IFNONNULL,
    M_IFNULL,
    M_IF_ACMPEQ,
    M_IF_ACMPNE,
    M_IF_ICMPEQ,
    M_IF_ICMPGE,
    M_IF_ICMPGT,
    M_IF_ICMPLE,
    M_IF_ICMPLT,
    M_IF_ICMPNE,
    M_IINC,
    M_ILOAD,
    M_IMUL,
    M_INEG,
    M_INSTANCEOF,
    M_INVOKESTATIC,
    M_INVOKEVIRTUAL,
    M_IOR,
    M_IREM,
    M_IRETURN,
    M_ISHL,
    M_ISHR,
    M_ISTORE,
    M_ISUB,
    M_IUSHR,
    M_IXOR,
    M_LDC,
    M_MONITORENTER,
    M_MONITOREXIT,
    M_NEW,
    M_NEWARRAY,
    M_NOP,
    M_POP,
    M_PUTFIELD,
    M_PUTSTATIC,
    M_RETURN,
    M_SWAP,
    M_YIELDPOINT,
    idiv_trapping,
    irem_trapping,
)
from repro.vm import corelib
from repro.vm.errors import VMError, VMTrap
from repro.vm.native import BLOCK, NativeResult
from repro.vm.threads import EAGER_STACK_HEADROOM, Frame, GreenThread

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.machine import VirtualMachine

_NEVER = 1 << 62
_NO_VALUE = object()

#: canonical micro-ops that touch guest shared memory — the set the
#: engine's ``mem_hook`` observes (repro.explore race detection)
_MEM_OPS = frozenset(
    (
        M_GETFIELD,
        M_PUTFIELD,
        M_GETSTATIC,
        M_PUTSTATIC,
        M_IALOAD,
        M_IASTORE,
        M_AALOAD,
        M_AASTORE,
    )
)

# Sentinel returns from threaded handlers (real pcs are >= 0).  A handler
# that returns one of these has left the fast path: the loop folds pending
# fused-cycle carries, commits the cycle counter, and acts.
_PARK = -1  # the current thread must stop running (handler stored frame.pc)
_RELOAD = -2  # the frame stack changed; rebind loop state from the top frame
_CALL = -3  # an invoke resolved its target into engine._call


# -- threaded-code handler factories -----------------------------------------
#
# One factory per micro-op.  ``Engine._bind`` calls ``factory(eng, a, b,
# pc, pc + 1)`` for every executable op of a method and stores the
# resulting closure in ``MachineCode.entries``; operands, resolved
# call targets, and hot bound methods are baked into the closure's cells,
# so executing an op is ``entries[pc](stack, locals_)`` and nothing else.
# Handlers return the next pc (or a negative sentinel).
#
# Baking rules: anything the GC can move (statics/constants arrays) or
# the loader can rewrite is read through its holder at call time, never
# captured by address.  Allocating handlers store ``pc`` into the frame
# before allocating (safe-point discipline).


def _f_nop(eng, a, b, pc, np):
    def h(stack, locals_):
        return np

    return h


def _f_iconst(eng, a, b, pc, np):
    def h(stack, locals_):
        stack.append(a)
        return np

    return h


def _f_iload(eng, a, b, pc, np):
    def h(stack, locals_):
        stack.append(locals_[a])
        return np

    return h


def _f_istore(eng, a, b, pc, np):
    def h(stack, locals_):
        locals_[a] = stack.pop()
        return np

    return h


def _f_iinc(eng, a, b, pc, np):
    to_i32 = words.to_i32

    def h(stack, locals_):
        locals_[a] = to_i32(locals_[a] + b)
        return np

    return h


def _f_ldc(eng, a, b, pc, np):
    array_get = eng.vm.om.array_get

    def h(stack, locals_):
        stack.append(array_get(a.constants_addr, b))
        return np

    return h


def _f_aconst_null(eng, a, b, pc, np):
    def h(stack, locals_):
        stack.append(0)
        return np

    return h


def _f_dup(eng, a, b, pc, np):
    def h(stack, locals_):
        stack.append(stack[-1])
        return np

    return h


def _f_pop(eng, a, b, pc, np):
    def h(stack, locals_):
        stack.pop()
        return np

    return h


def _f_swap(eng, a, b, pc, np):
    def h(stack, locals_):
        stack[-1], stack[-2] = stack[-2], stack[-1]
        return np

    return h


def _f_goto(eng, a, b, pc, np):
    def h(stack, locals_):
        return a

    return h


def _f_ifeq(eng, a, b, pc, np):
    def h(stack, locals_):
        return a if stack.pop() == 0 else np

    return h


def _f_ifne(eng, a, b, pc, np):
    def h(stack, locals_):
        return a if stack.pop() != 0 else np

    return h


def _f_iflt(eng, a, b, pc, np):
    def h(stack, locals_):
        return a if stack.pop() < 0 else np

    return h


def _f_ifle(eng, a, b, pc, np):
    def h(stack, locals_):
        return a if stack.pop() <= 0 else np

    return h


def _f_ifgt(eng, a, b, pc, np):
    def h(stack, locals_):
        return a if stack.pop() > 0 else np

    return h


def _f_ifge(eng, a, b, pc, np):
    def h(stack, locals_):
        return a if stack.pop() >= 0 else np

    return h


def _f_if_icmpeq(eng, a, b, pc, np):
    def h(stack, locals_):
        y = stack.pop()
        return a if stack.pop() == y else np

    return h


def _f_if_icmpne(eng, a, b, pc, np):
    def h(stack, locals_):
        y = stack.pop()
        return a if stack.pop() != y else np

    return h


def _f_if_icmplt(eng, a, b, pc, np):
    def h(stack, locals_):
        y = stack.pop()
        return a if stack.pop() < y else np

    return h


def _f_if_icmple(eng, a, b, pc, np):
    def h(stack, locals_):
        y = stack.pop()
        return a if stack.pop() <= y else np

    return h


def _f_if_icmpgt(eng, a, b, pc, np):
    def h(stack, locals_):
        y = stack.pop()
        return a if stack.pop() > y else np

    return h


def _f_if_icmpge(eng, a, b, pc, np):
    def h(stack, locals_):
        y = stack.pop()
        return a if stack.pop() >= y else np

    return h


def _mk_bin(fn):
    def factory(eng, a, b, pc, np):
        def h(stack, locals_):
            y = stack.pop()
            stack[-1] = fn(stack[-1], y)
            return np

        return h

    return factory


def _f_ineg(eng, a, b, pc, np):
    ineg = words.ineg

    def h(stack, locals_):
        stack[-1] = ineg(stack[-1])
        return np

    return h


def _f_getfield(eng, a, b, pc, np):
    get_field = eng.vm.om.get_field

    def h(stack, locals_):
        stack[-1] = get_field(stack[-1], a)
        return np

    return h


def _f_putfield(eng, a, b, pc, np):
    put_field = eng.vm.om.put_field

    def h(stack, locals_):
        value = stack.pop()
        put_field(stack.pop(), a, value)
        return np

    return h


def _f_getstatic(eng, a, b, pc, np):
    get_field = eng.vm.om.get_field

    def h(stack, locals_):
        stack.append(get_field(a.statics_addr, b))
        return np

    return h


def _f_putstatic(eng, a, b, pc, np):
    put_field = eng.vm.om.put_field

    def h(stack, locals_):
        put_field(a.statics_addr, b, stack.pop())
        return np

    return h


def _f_iaload(eng, a, b, pc, np):
    array_get = eng.vm.om.array_get

    def h(stack, locals_):
        idx = stack.pop()
        stack[-1] = array_get(stack[-1], idx)
        return np

    return h


def _f_iastore(eng, a, b, pc, np):
    array_put = eng.vm.om.array_put

    def h(stack, locals_):
        value = stack.pop()
        idx = stack.pop()
        array_put(stack.pop(), idx, value)
        return np

    return h


def _f_arraylength(eng, a, b, pc, np):
    array_length = eng.vm.om.array_length

    def h(stack, locals_):
        stack[-1] = array_length(stack[-1])
        return np

    return h


def _f_new(eng, a, b, pc, np):
    om = eng.vm.om
    layout = a.layout

    def h(stack, locals_):
        eng._frame.pc = pc  # safe point: allocation may collect
        stack.append(om.new_object(layout))
        return np

    return h


def _f_newarray(eng, a, b, pc, np):
    om = eng.vm.om

    def h(stack, locals_):
        length = stack.pop()
        eng._frame.pc = pc
        stack.append(om.new_array("[I", length))
        return np

    return h


def _f_anewarray(eng, a, b, pc, np):
    om = eng.vm.om

    def h(stack, locals_):
        length = stack.pop()
        eng._frame.pc = pc
        stack.append(om.new_array(a, length))
        return np

    return h


def _f_instanceof(eng, a, b, pc, np):
    is_instance = eng.vm.is_instance

    def h(stack, locals_):
        ref = stack.pop()
        stack.append(1 if ref and is_instance(ref, a) else 0)
        return np

    return h


def _f_checkcast(eng, a, b, pc, np):
    vm = eng.vm

    def h(stack, locals_):
        ref = stack[-1]
        if ref and not vm.is_instance(ref, a):
            raise VMTrap(
                "ClassCast",
                f"{vm.om.layout_of(ref).name} is not a {a.name}",
            )
        return np

    return h


def _f_invokestatic(eng, a, b, pc, np):
    rm = a
    nargs = b
    if nargs:

        def h(stack, locals_):
            args = stack[-nargs:]
            del stack[-nargs:]
            eng._call = (rm, args)
            return _CALL

    else:

        def h(stack, locals_):
            eng._call = (rm, [])
            return _CALL

    return h


def _f_invokevirtual(eng, a, b, pc, np):
    key = a
    site = b
    nargs = site.nargs
    ridx = site.recv_index
    loader = eng.vm.loader
    mem_read = eng.vm.om.memory.read
    if eng.cfg.inline_caches:

        def h(stack, locals_):
            receiver = stack[ridx]
            if receiver == 0:
                raise VMTrap("NullPointer", f"invokevirtual {key} on null")
            cid = mem_read(receiver)  # header word 0 = class id
            if cid == site.cid:
                rm = site.target
                eng.ic_hits += 1
            else:
                rm = loader.vtable_lookup(cid, key)
                site.cid = cid
                site.target = rm
                eng.ic_misses += 1
            args = stack[-nargs:]
            del stack[-nargs:]
            eng._call = (rm, args)
            return _CALL

    else:

        def h(stack, locals_):
            receiver = stack[ridx]
            if receiver == 0:
                raise VMTrap("NullPointer", f"invokevirtual {key} on null")
            args = stack[-nargs:]
            del stack[-nargs:]
            eng._call = (loader.vtable_lookup(mem_read(receiver), key), args)
            return _CALL

    return h


def _f_return(eng, a, b, pc, np):
    scheduler = eng.vm.scheduler

    def h(stack, locals_):
        thread = eng._thread
        scheduler.pop_frame(thread)
        if not thread.frames:
            scheduler.on_terminate(thread)
            return _PARK
        return _RELOAD

    return h


def _f_ireturn(eng, a, b, pc, np):
    scheduler = eng.vm.scheduler

    def h(stack, locals_):
        thread = eng._thread
        value = stack.pop()
        scheduler.pop_frame(thread)
        if not thread.frames:
            scheduler.on_terminate(thread)
            return _PARK
        thread.frames[-1].stack.append(value)
        return _RELOAD

    return h


def _f_monitorenter(eng, a, b, pc, np):
    monitors = eng.vm.monitors
    scheduler = eng.vm.scheduler

    def h(stack, locals_):
        ref = stack.pop()
        if ref == 0:
            raise VMTrap("NullPointer", "monitorenter on null")
        thread = eng._thread
        if not monitors.try_enter(ref, thread):
            # contended: park on the entry queue; the lock is handed to us
            # by a future monitorexit, and we resume *after* this
            # instruction already owning the lock.
            eng._frame.pc = np
            monitors.enqueue_contender(ref, thread)
            scheduler.block_current(corelib.THREAD_BLOCKED)
            return _PARK
        return np

    return h


def _f_monitorexit(eng, a, b, pc, np):
    monitors = eng.vm.monitors
    scheduler = eng.vm.scheduler

    def h(stack, locals_):
        ref = stack.pop()
        if ref == 0:
            raise VMTrap("NullPointer", "monitorexit on null")
        heir = monitors.exit(ref, eng._thread)
        if heir is not None:
            scheduler.make_ready(heir)
        return np

    return h


# -- fused (superinstruction) handlers.  Each bumps the engine's fused
# execution counter — pairs in _fstat[0], triples in _fstat[1] — which the
# loop folds into the cycle counter at the next accounting point, charging
# exactly the cycles of the micro-ops the group replaced.


def _f_push2(eng, a, b, pc, np):
    s1, s2 = a
    fstat = eng._fstat

    def h(stack, locals_):
        fstat[0] += 1
        stack.append(locals_[s1])
        stack.append(locals_[s2])
        return np

    return h


def _f_push_lc(eng, a, b, pc, np):
    slot, const = a
    fstat = eng._fstat

    def h(stack, locals_):
        fstat[0] += 1
        stack.append(locals_[slot])
        stack.append(const)
        return np

    return h


def _f_const_store(eng, a, b, pc, np):
    const, slot = a
    fstat = eng._fstat

    def h(stack, locals_):
        fstat[0] += 1
        locals_[slot] = const
        return np

    return h


def _f_move(eng, a, b, pc, np):
    src, dst = a
    fstat = eng._fstat

    def h(stack, locals_):
        fstat[0] += 1
        locals_[dst] = locals_[src]
        return np

    return h


def _f_ll_bin(eng, a, b, pc, np):
    s1, s2 = a
    fn = b
    fstat = eng._fstat

    def h(stack, locals_):
        fstat[1] += 1
        stack.append(fn(locals_[s1], locals_[s2]))
        return np

    return h


def _f_lc_bin(eng, a, b, pc, np):
    slot, const = a
    fn = b
    fstat = eng._fstat

    def h(stack, locals_):
        fstat[1] += 1
        stack.append(fn(locals_[slot], const))
        return np

    return h


def _f_c_bin(eng, a, b, pc, np):
    fn = b
    fstat = eng._fstat

    def h(stack, locals_):
        fstat[0] += 1
        stack[-1] = fn(stack[-1], a)
        return np

    return h


def _f_bin_store(eng, a, b, pc, np):
    fn = b
    fstat = eng._fstat

    def h(stack, locals_):
        fstat[0] += 1
        y = stack.pop()
        locals_[a] = fn(stack.pop(), y)
        return np

    return h


def _f_ll_cmpbr(eng, a, b, pc, np):
    s1, s2 = a
    cmp, target = b
    fstat = eng._fstat

    def h(stack, locals_):
        fstat[1] += 1
        return target if cmp(locals_[s1], locals_[s2]) else np

    return h


def _f_lc_cmpbr(eng, a, b, pc, np):
    slot, const = a
    cmp, target = b
    fstat = eng._fstat

    def h(stack, locals_):
        fstat[1] += 1
        return target if cmp(locals_[slot], const) else np

    return h


def _f_sl_cmpbr(eng, a, b, pc, np):
    cmp, target = b
    fstat = eng._fstat

    def h(stack, locals_):
        fstat[0] += 1
        return target if cmp(stack.pop(), locals_[a]) else np

    return h


def _f_sc_cmpbr(eng, a, b, pc, np):
    cmp, target = b
    fstat = eng._fstat

    def h(stack, locals_):
        fstat[0] += 1
        return target if cmp(stack.pop(), a) else np

    return h


def _f_l_br(eng, a, b, pc, np):
    test, target = b
    fstat = eng._fstat

    def h(stack, locals_):
        fstat[0] += 1
        return target if test(locals_[a]) else np

    return h


def _f_al_getfield(eng, a, b, pc, np):
    slot, offset = a
    get_field = eng.vm.om.get_field
    fstat = eng._fstat

    def h(stack, locals_):
        fstat[0] += 1
        stack.append(get_field(locals_[slot], offset))
        return np

    return h


def _f_dup_putfield(eng, a, b, pc, np):
    put_field = eng.vm.om.put_field
    fstat = eng._fstat

    def h(stack, locals_):
        fstat[0] += 1
        x = stack.pop()
        put_field(x, a, x)
        return np

    return h


def _f_all_putfield(eng, a, b, pc, np):
    objslot, valslot = a
    put_field = eng.vm.om.put_field
    fstat = eng._fstat

    def h(stack, locals_):
        fstat[1] += 1
        put_field(locals_[objslot], b, locals_[valslot])
        return np

    return h


def _f_alc_putfield(eng, a, b, pc, np):
    objslot, const = a
    put_field = eng.vm.om.put_field
    fstat = eng._fstat

    def h(stack, locals_):
        fstat[1] += 1
        put_field(locals_[objslot], b, const)
        return np

    return h


def _f_all_aload(eng, a, b, pc, np):
    arrslot, idxslot = a
    array_get = eng.vm.om.array_get
    fstat = eng._fstat

    def h(stack, locals_):
        fstat[1] += 1
        stack.append(array_get(locals_[arrslot], locals_[idxslot]))
        return np

    return h


def _f_iinc_br(eng, a, b, pc, np):
    slot, delta = a
    fstat = eng._fstat
    to_i32 = words.to_i32

    def h(stack, locals_):
        fstat[0] += 1
        locals_[slot] = to_i32(locals_[slot] + delta)
        return b

    return h


_FACTORIES = {
    M_NOP: _f_nop,
    M_ICONST: _f_iconst,
    M_LDC: _f_ldc,
    M_ACONST_NULL: _f_aconst_null,
    M_DUP: _f_dup,
    M_POP: _f_pop,
    M_SWAP: _f_swap,
    M_ILOAD: _f_iload,
    M_ALOAD: _f_iload,
    M_ISTORE: _f_istore,
    M_ASTORE: _f_istore,
    M_IINC: _f_iinc,
    M_IADD: _mk_bin(words.iadd),
    M_ISUB: _mk_bin(words.isub),
    M_IMUL: _mk_bin(words.imul),
    M_IDIV: _mk_bin(idiv_trapping),
    M_IREM: _mk_bin(irem_trapping),
    M_INEG: _f_ineg,
    M_ISHL: _mk_bin(words.ishl),
    M_ISHR: _mk_bin(words.ishr),
    M_IUSHR: _mk_bin(words.iushr),
    M_IAND: _mk_bin(words.iand),
    M_IOR: _mk_bin(words.ior),
    M_IXOR: _mk_bin(words.ixor),
    M_GOTO: _f_goto,
    M_IFEQ: _f_ifeq,
    M_IFNE: _f_ifne,
    M_IFLT: _f_iflt,
    M_IFLE: _f_ifle,
    M_IFGT: _f_ifgt,
    M_IFGE: _f_ifge,
    M_IF_ICMPEQ: _f_if_icmpeq,
    M_IF_ICMPNE: _f_if_icmpne,
    M_IF_ICMPLT: _f_if_icmplt,
    M_IF_ICMPLE: _f_if_icmple,
    M_IF_ICMPGT: _f_if_icmpgt,
    M_IF_ICMPGE: _f_if_icmpge,
    M_IF_ACMPEQ: _f_if_icmpeq,
    M_IF_ACMPNE: _f_if_icmpne,
    M_IFNULL: _f_ifeq,
    M_IFNONNULL: _f_ifne,
    M_NEW: _f_new,
    M_GETFIELD: _f_getfield,
    M_PUTFIELD: _f_putfield,
    M_GETSTATIC: _f_getstatic,
    M_PUTSTATIC: _f_putstatic,
    M_NEWARRAY: _f_newarray,
    M_ANEWARRAY: _f_anewarray,
    M_IALOAD: _f_iaload,
    M_IASTORE: _f_iastore,
    M_AALOAD: _f_iaload,
    M_AASTORE: _f_iastore,
    M_ARRAYLENGTH: _f_arraylength,
    M_INSTANCEOF: _f_instanceof,
    M_CHECKCAST: _f_checkcast,
    M_INVOKESTATIC: _f_invokestatic,
    M_INVOKEVIRTUAL: _f_invokevirtual,
    M_RETURN: _f_return,
    M_IRETURN: _f_ireturn,
    M_ARETURN: _f_ireturn,
    M_MONITORENTER: _f_monitorenter,
    M_MONITOREXIT: _f_monitorexit,
    F_PUSH2: _f_push2,
    F_PUSH_LC: _f_push_lc,
    F_CONST_STORE: _f_const_store,
    F_MOVE: _f_move,
    F_LL_BIN: _f_ll_bin,
    F_LC_BIN: _f_lc_bin,
    F_C_BIN: _f_c_bin,
    F_BIN_STORE: _f_bin_store,
    F_LL_CMPBR: _f_ll_cmpbr,
    F_LC_CMPBR: _f_lc_cmpbr,
    F_SL_CMPBR: _f_sl_cmpbr,
    F_SC_CMPBR: _f_sc_cmpbr,
    F_L_BR: _f_l_br,
    F_AL_GETFIELD: _f_al_getfield,
    F_DUP_PUTFIELD: _f_dup_putfield,
    F_ALL_PUTFIELD: _f_all_putfield,
    F_ALC_PUTFIELD: _f_alc_putfield,
    F_ALL_ALOAD: _f_all_aload,
    F_IINC_BR: _f_iinc_br,
}


class Engine:
    def __init__(self, vm: "VirtualMachine"):
        self.vm = vm
        self.cfg = vm.config.engine
        self.cycles = 0
        self.hw_bit = False  # preemptive_hardware_bit (Figure 2)
        self.timer_enabled = True
        self.switch_pending = False
        self._deadline = _NEVER
        self._timer_armed = False
        #: optional debug controller (breakpoints / stepping); host-side
        #: only — attaching one perturbs nothing the guest can observe.
        #: Debug hooks are per canonical micro-op, so they require an
        #: unfused engine (EngineConfig.baseline()).
        self.debug = None
        #: optional shared-memory observation hook (repro.explore race
        #: detection): called before every memory micro-op executes, with
        #: the operand stack still holding the op's inputs.  Host-side and
        #: read-only — attaching it perturbs nothing the guest can
        #: observe.  Like debug hooks, it sees *canonical* micro-ops, so
        #: clients force the baseline engine (with_baseline_engine).
        self.mem_hook = None
        #: optional safe-point hook (repro.core.checkpoint): called with
        #: this engine whenever the run loop finds no current thread —
        #: every frame pc and shadow bci is committed and no guest state
        #: is in flight, so the complete machine state is snapshottable.
        #: Fires *before* the scheduler picks the next thread, so a
        #: restored run re-executes schedule() (and its clock reads)
        #: exactly as the original did.  Host-side only; works under
        #: every dispatch config because run() itself is shared.
        self.safepoint_hook = None
        # -- engine stats (host-side observability; never guest-visible).
        #: monotonic fused execution counters: [pairs, triples].  The
        #: loops derive pending cycle carries from deltas of these, so a
        #: fused handler costs exactly one counter bump.
        self._fstat = [0, 0]
        #: fused yield-point groups: [executions, extra cycles charged].
        #: Tracked apart from _fstat because YP groups charge their extra
        #: cycles inline (before the yield point observes the hw bit),
        #: never through the threaded loop's carry-fold.
        self._ypstat = [0, 0]
        self.ic_hits = 0
        self.ic_misses = 0
        # threaded-dispatch plumbing: the current thread/frame (for heavy
        # handlers) and the in-flight resolved call (rm, args).
        self._thread: GreenThread | None = None
        self._frame: Frame | None = None
        self._call = None

    # ------------------------------------------------------------------
    # stats

    @property
    def fused_ops_executed(self) -> int:
        """Superinstruction executions (each replaced 2-4 micro-ops)."""
        return self._fstat[0] + self._fstat[1] + self._ypstat[0]

    @property
    def fused_extra_cycles(self) -> int:
        """Cycles charged by fused handlers beyond their one dispatch."""
        return self._fstat[0] + 2 * self._fstat[1] + self._ypstat[1]

    @property
    def dispatches(self) -> int:
        """Host dispatch count: cycles minus the fused-away dispatches."""
        return self.cycles - self.fused_extra_cycles

    def stats(self) -> dict:
        return {
            "config": self.cfg.describe(),
            "cycles": self.cycles,
            "dispatches": self.dispatches,
            "fused_ops_executed": self.fused_ops_executed,
            "fused_extra_cycles": self.fused_extra_cycles,
            "ic_hits": self.ic_hits,
            "ic_misses": self.ic_misses,
        }

    # ------------------------------------------------------------------

    def arm_timer(self) -> None:
        timer = self.vm.timer
        if self.timer_enabled and timer is not None:
            self._deadline = self.cycles + timer.next_interval()
        else:
            self._deadline = _NEVER

    def _check_limit(self, cycles: int) -> int:
        """Batched deadline/budget accounting; returns the next limit.

        Equivalent to the per-op checks of the seed engine, with two
        deliberate refinements:

        * the budget is tested *first*, so the budget trap cannot consume
          a timer interval or raise the hw bit (the seed's off-by-one
          window), and the trap cycle is pinned at ``max_cycles + 1``;
        * the deadline rearms relative to the *old* deadline, so every
          crossing the per-op scheme would have seen fires at its exact
          cycle even when a fused op advanced the counter by 2-3 at once.
        """
        vm = self.vm
        max_cycles = vm.config.max_cycles
        if cycles > max_cycles:
            self.cycles = max_cycles + 1
            raise VMError(f"cycle budget exceeded ({max_cycles})")
        d = self._deadline
        if d <= cycles:
            self.hw_bit = True
            self.cycles = cycles
            timer = vm.timer
            if self.timer_enabled and timer is not None:
                while d <= cycles:
                    d += timer.next_interval()
            else:
                d = _NEVER
            self._deadline = d
        return d if d <= max_cycles else max_cycles + 1

    def run(self) -> None:
        """Run until completion, deadlock, or a debug pause.

        With a debug controller attached, the loop returns whenever the
        controller pauses; calling run() again resumes the paused thread
        exactly where it stopped (``scheduler.current`` survives pauses).
        """
        vm = self.vm
        scheduler = vm.scheduler
        if not self._timer_armed:
            self.arm_timer()
            self._timer_armed = True
        while True:
            if self.debug is not None and self.debug.paused:
                return
            thread = scheduler.current
            if thread is None:
                hook = self.safepoint_hook
                if hook is not None:
                    hook(self)
                thread = scheduler.schedule()
            if thread is None:
                return
            self.switch_pending = False
            try:
                self._execute(thread)
            except VMTrap as trap:
                self._kill(thread, trap)

    def _kill(self, thread: GreenThread, trap: VMTrap) -> None:
        """A trap terminates the offending thread, deterministically.

        Monitors the thread held are force-released (Java unwinds
        ``synchronized`` sections when a thread dies), so one thread's
        death cannot deadlock the rest of the program."""
        vm = self.vm
        vm.observer.emit("trap", thread.tid, trap.kind)
        vm.trap_reports.append((thread.tid, trap.kind, str(trap)))
        while thread.frames:
            vm.scheduler.pop_frame(thread)
        for heir in vm.monitors.release_all_owned_by(thread):
            vm.scheduler.make_ready(heir)
        vm.scheduler.on_terminate(thread)

    # ------------------------------------------------------------------

    def _execute(self, thread: GreenThread) -> None:
        if self.debug is not None or self.mem_hook is not None:
            # Debug hooks fire once per *executable* op, so the debugger
            # tools (profiler, coverage, time travel, sessions) force the
            # baseline engine for canonical per-micro-op granularity; a
            # directly attached controller on a fused engine still works,
            # checking at fused-group heads.  Memory hooks likewise only
            # see ops the switch loop dispatches one at a time.
            self._execute_switch(thread)
        elif self.cfg.threaded_dispatch:
            self._execute_threaded(thread)
        else:
            self._execute_switch(thread)

    # ------------------------------------------------------------------
    # loop 1: if/elif dispatch (the seed loop, batched accounting)

    def _execute_switch(self, thread: GreenThread) -> None:  # noqa: C901 - the dispatch loop
        vm = self.vm
        om = vm.om
        loader = vm.loader
        scheduler = vm.scheduler
        monitors = vm.monitors
        max_cycles = vm.config.max_cycles
        ic_enabled = self.cfg.inline_caches
        fstat = self._fstat
        ypstat = self._ypstat

        frame = thread.frames[-1]
        ops = frame.code.xops
        pc = frame.pc
        stack = frame.stack
        locals_ = frame.locals
        cycles = self.cycles
        d = self._deadline
        limit = d if d <= max_cycles else max_cycles + 1

        def park() -> None:
            """Spill loop-local state back before returning to the scheduler."""
            frame.pc = pc
            self.cycles = cycles
            scheduler.shadow_sync_bci(thread)

        debug = self.debug
        memhook = self.mem_hook
        while True:
            if self.switch_pending:
                park()
                return
            if debug is not None and debug.check(thread, frame, pc):
                park()
                return

            mop, a, b = ops[pc]
            cycles += 1
            if cycles >= limit:
                limit = self._check_limit(cycles)

            if memhook is not None and mop in _MEM_OPS:
                # pre-execution observation: operands are still on the stack
                memhook(thread, frame, pc, mop, a, b, stack)

            if mop == M_YIELDPOINT or mop == F_YP_GROUP:
                if b is not None:
                    # F_YP_GROUP: run the pure prefix, charge its cycles,
                    # and replay any deadline crossing *before* the yield
                    # point observes the hw bit — the bit is raised at the
                    # exact cycle the unfused program would see it at.
                    b[0](stack, locals_)
                    cycles += b[1]
                    ypstat[0] += 1
                    ypstat[1] += b[1]
                    if cycles >= limit:
                        limit = self._check_limit(cycles)
                thread.yieldpoints += 1
                dejavu = vm.dejavu
                if dejavu is None:
                    if self.hw_bit:
                        self.hw_bit = False
                        scheduler.preempt()
                # -- inline non-firing fast paths (see DejaVu.__init__):
                # with liveclock + eager stacks on and nothing pending,
                # the full Figure-2 body reduces to one counter bump.
                # The clock commit stays (this loop hosts the debug tools,
                # whose cycle-addressed stops read ``engine.cycles``).
                elif (
                    dejavu._fast_record
                    and dejavu.liveclock
                    and not self.hw_bit
                    and not dejavu.threadswitch_bit
                    and thread.stack_capacity - thread.stack_used
                    >= EAGER_STACK_HEADROOM
                ):
                    self.cycles = cycles
                    dejavu.nyp += 1
                elif (
                    dejavu._fast_replay
                    and dejavu.liveclock
                    and not dejavu.threadswitch_bit
                    and dejavu._replay_nyp is not None
                    and dejavu._replay_nyp > 1
                    and thread.stack_capacity - thread.stack_used
                    >= EAGER_STACK_HEADROOM
                ):
                    self.cycles = cycles
                    dejavu._replay_nyp -= 1
                else:
                    frame.pc = pc  # instrumentation may grow the stack (alloc)
                    self.cycles = cycles
                    dejavu.at_yieldpoint(thread, a)
                pc += 1
                continue

            if mop == M_ILOAD or mop == M_ALOAD:
                stack.append(locals_[a])
                pc += 1
            elif mop == M_ICONST:
                stack.append(a)
                pc += 1
            elif mop == M_ISTORE or mop == M_ASTORE:
                locals_[a] = stack.pop()
                pc += 1
            elif mop == M_IINC:
                locals_[a] = words.to_i32(locals_[a] + b)
                pc += 1
            elif mop == M_GOTO:
                pc = a
            elif mop == M_IFEQ:
                pc = a if stack.pop() == 0 else pc + 1
            elif mop == M_IFNE:
                pc = a if stack.pop() != 0 else pc + 1
            elif mop == M_IFLT:
                pc = a if stack.pop() < 0 else pc + 1
            elif mop == M_IFLE:
                pc = a if stack.pop() <= 0 else pc + 1
            elif mop == M_IFGT:
                pc = a if stack.pop() > 0 else pc + 1
            elif mop == M_IFGE:
                pc = a if stack.pop() >= 0 else pc + 1
            elif mop == M_IF_ICMPEQ or mop == M_IF_ACMPEQ:
                y = stack.pop()
                pc = a if stack.pop() == y else pc + 1
            elif mop == M_IF_ICMPNE or mop == M_IF_ACMPNE:
                y = stack.pop()
                pc = a if stack.pop() != y else pc + 1
            elif mop == M_IF_ICMPLT:
                y = stack.pop()
                pc = a if stack.pop() < y else pc + 1
            elif mop == M_IF_ICMPLE:
                y = stack.pop()
                pc = a if stack.pop() <= y else pc + 1
            elif mop == M_IF_ICMPGT:
                y = stack.pop()
                pc = a if stack.pop() > y else pc + 1
            elif mop == M_IF_ICMPGE:
                y = stack.pop()
                pc = a if stack.pop() >= y else pc + 1
            elif mop == M_IFNULL:
                pc = a if stack.pop() == 0 else pc + 1
            elif mop == M_IFNONNULL:
                pc = a if stack.pop() != 0 else pc + 1

            elif mop == M_IADD:
                y = stack.pop()
                stack[-1] = words.iadd(stack[-1], y)
                pc += 1
            elif mop == M_ISUB:
                y = stack.pop()
                stack[-1] = words.isub(stack[-1], y)
                pc += 1
            elif mop == M_IMUL:
                y = stack.pop()
                stack[-1] = words.imul(stack[-1], y)
                pc += 1
            elif mop == M_IDIV:
                y = stack.pop()
                try:
                    stack[-1] = words.idiv(stack[-1], y)
                except ZeroDivisionError:
                    raise VMTrap("ArithmeticDivByZero") from None
                pc += 1
            elif mop == M_IREM:
                y = stack.pop()
                try:
                    stack[-1] = words.irem(stack[-1], y)
                except ZeroDivisionError:
                    raise VMTrap("ArithmeticDivByZero") from None
                pc += 1
            elif mop == M_INEG:
                stack[-1] = words.ineg(stack[-1])
                pc += 1
            elif mop == M_ISHL:
                y = stack.pop()
                stack[-1] = words.ishl(stack[-1], y)
                pc += 1
            elif mop == M_ISHR:
                y = stack.pop()
                stack[-1] = words.ishr(stack[-1], y)
                pc += 1
            elif mop == M_IUSHR:
                y = stack.pop()
                stack[-1] = words.iushr(stack[-1], y)
                pc += 1
            elif mop == M_IAND:
                y = stack.pop()
                stack[-1] = words.iand(stack[-1], y)
                pc += 1
            elif mop == M_IOR:
                y = stack.pop()
                stack[-1] = words.ior(stack[-1], y)
                pc += 1
            elif mop == M_IXOR:
                y = stack.pop()
                stack[-1] = words.ixor(stack[-1], y)
                pc += 1

            elif mop == M_GETFIELD:
                stack[-1] = om.get_field(stack[-1], a)
                pc += 1
            elif mop == M_PUTFIELD:
                value = stack.pop()
                om.put_field(stack.pop(), a, value)
                pc += 1
            elif mop == M_GETSTATIC:
                stack.append(om.get_field(a.statics_addr, b))
                pc += 1
            elif mop == M_PUTSTATIC:
                om.put_field(a.statics_addr, b, stack.pop())
                pc += 1

            elif mop == M_IALOAD or mop == M_AALOAD:
                idx = stack.pop()
                stack[-1] = om.array_get(stack[-1], idx)
                pc += 1
            elif mop == M_IASTORE or mop == M_AASTORE:
                value = stack.pop()
                idx = stack.pop()
                om.array_put(stack.pop(), idx, value)
                pc += 1
            elif mop == M_ARRAYLENGTH:
                stack[-1] = om.array_length(stack[-1])
                pc += 1

            elif mop == M_NEW:
                frame.pc = pc  # safe point: allocation may collect
                stack.append(om.new_object(a.layout))
                pc += 1
            elif mop == M_NEWARRAY:
                length = stack.pop()
                frame.pc = pc
                stack.append(om.new_array("[I", length))
                pc += 1
            elif mop == M_ANEWARRAY:
                length = stack.pop()
                frame.pc = pc
                stack.append(om.new_array(a, length))
                pc += 1

            elif mop == M_LDC:
                stack.append(om.array_get(a.constants_addr, b))
                pc += 1
            elif mop == M_ACONST_NULL:
                stack.append(0)
                pc += 1
            elif mop == M_DUP:
                stack.append(stack[-1])
                pc += 1
            elif mop == M_POP:
                stack.pop()
                pc += 1
            elif mop == M_SWAP:
                stack[-1], stack[-2] = stack[-2], stack[-1]
                pc += 1
            elif mop == M_NOP:
                pc += 1

            elif mop == M_INSTANCEOF:
                ref = stack.pop()
                stack.append(1 if ref and vm.is_instance(ref, a) else 0)
                pc += 1
            elif mop == M_CHECKCAST:
                ref = stack[-1]
                if ref and not vm.is_instance(ref, a):
                    raise VMTrap(
                        "ClassCast",
                        f"{om.layout_of(ref).name} is not a {a.name}",
                    )
                pc += 1

            elif mop == M_INVOKESTATIC or mop == M_INVOKEVIRTUAL:
                if mop == M_INVOKESTATIC:
                    rm = a
                    nargs = b  # precomputed arity
                else:
                    site = b
                    nargs = site.nargs
                    receiver = stack[-nargs]
                    if receiver == 0:
                        raise VMTrap("NullPointer", f"invokevirtual {a} on null")
                    cid = om.memory.read(receiver)  # header word 0 = class id
                    if ic_enabled:
                        if cid == site.cid:
                            rm = site.target
                            self.ic_hits += 1
                        else:
                            rm = loader.vtable_lookup(cid, a)
                            site.cid = cid
                            site.target = rm
                            self.ic_misses += 1
                    else:
                        rm = loader.vtable_lookup(cid, a)
                if nargs:
                    args = stack[-nargs:]
                    del stack[-nargs:]
                else:
                    args = []
                frame.pc = pc + 1  # resume after the call (also: safe point)
                self.cycles = cycles
                if rm.native:
                    result = vm.call_native(thread, rm, args)
                    if result is BLOCK:
                        pc += 1
                        continue  # switch_pending is set; loop top parks
                    if isinstance(result, NativeResult):
                        if rm.mdef.signature.ret != "V":
                            if result.string_value is not None:
                                # materialise the guest String here, so the
                                # allocation happens identically in record
                                # and replay mode (§2.5 + symmetry)
                                stack.append(loader.make_string(result.string_value))
                            else:
                                stack.append(
                                    words.to_i32(result.value if result.value is not None else 0)
                                )
                        for ref, up_args in reversed(result.upcalls):
                            up_rm = loader.resolve_static_method(ref)
                            scheduler.shadow_sync_bci(thread)
                            scheduler.push_frame(thread, Frame(up_rm, list(up_args)))
                        if result.upcalls:
                            frame = thread.frames[-1]
                            ops = frame.code.xops
                            pc = frame.pc
                            stack = frame.stack
                            locals_ = frame.locals
                            continue
                    elif rm.mdef.signature.ret != "V":
                        stack.append(words.to_i32(result if result is not None else 0))
                    pc += 1
                else:
                    scheduler.shadow_sync_bci(thread)
                    callee = Frame(rm, args)
                    scheduler.push_frame(thread, callee)
                    frame = callee
                    ops = frame.code.xops
                    pc = 0
                    stack = frame.stack
                    locals_ = frame.locals

            elif mop == M_RETURN or mop == M_IRETURN or mop == M_ARETURN:
                value = stack.pop() if mop != M_RETURN else _NO_VALUE
                scheduler.pop_frame(thread)
                if not thread.frames:
                    self.cycles = cycles
                    scheduler.on_terminate(thread)
                    return
                frame = thread.frames[-1]
                ops = frame.code.xops
                pc = frame.pc
                stack = frame.stack
                locals_ = frame.locals
                if value is not _NO_VALUE:
                    stack.append(value)

            elif mop == M_MONITORENTER:
                ref = stack.pop()
                if ref == 0:
                    raise VMTrap("NullPointer", "monitorenter on null")
                if not monitors.try_enter(ref, thread):
                    # contended: park on the entry queue; the lock is handed
                    # to us by a future monitorexit, and we resume *after*
                    # this instruction already owning the lock.
                    frame.pc = pc + 1
                    self.cycles = cycles
                    monitors.enqueue_contender(ref, thread)
                    scheduler.block_current(corelib.THREAD_BLOCKED)
                    scheduler.shadow_sync_bci(thread)
                    return
                pc += 1
            elif mop == M_MONITOREXIT:
                ref = stack.pop()
                if ref == 0:
                    raise VMTrap("NullPointer", "monitorexit on null")
                heir = monitors.exit(ref, thread)
                if heir is not None:
                    scheduler.make_ready(heir)
                pc += 1

            # -- superinstructions (fusion ablation path; the threaded loop
            # is the production path for fused code).  Each arm charges the
            # cycles of the micro-ops the group replaced.
            elif mop == F_PUSH2:
                cycles += 1
                fstat[0] += 1
                s1, s2 = a
                stack.append(locals_[s1])
                stack.append(locals_[s2])
                pc += 1
            elif mop == F_PUSH_LC:
                cycles += 1
                fstat[0] += 1
                slot, const = a
                stack.append(locals_[slot])
                stack.append(const)
                pc += 1
            elif mop == F_CONST_STORE:
                cycles += 1
                fstat[0] += 1
                const, slot = a
                locals_[slot] = const
                pc += 1
            elif mop == F_MOVE:
                cycles += 1
                fstat[0] += 1
                src, dst = a
                locals_[dst] = locals_[src]
                pc += 1
            elif mop == F_LL_BIN:
                cycles += 2
                fstat[1] += 1
                s1, s2 = a
                stack.append(b(locals_[s1], locals_[s2]))
                pc += 1
            elif mop == F_LC_BIN:
                cycles += 2
                fstat[1] += 1
                slot, const = a
                stack.append(b(locals_[slot], const))
                pc += 1
            elif mop == F_C_BIN:
                cycles += 1
                fstat[0] += 1
                stack[-1] = b(stack[-1], a)
                pc += 1
            elif mop == F_BIN_STORE:
                cycles += 1
                fstat[0] += 1
                y = stack.pop()
                locals_[a] = b(stack.pop(), y)
                pc += 1
            elif mop == F_LL_CMPBR:
                cycles += 2
                fstat[1] += 1
                s1, s2 = a
                cmp, target = b
                pc = target if cmp(locals_[s1], locals_[s2]) else pc + 1
            elif mop == F_LC_CMPBR:
                cycles += 2
                fstat[1] += 1
                slot, const = a
                cmp, target = b
                pc = target if cmp(locals_[slot], const) else pc + 1
            elif mop == F_SL_CMPBR:
                cycles += 1
                fstat[0] += 1
                cmp, target = b
                pc = target if cmp(stack.pop(), locals_[a]) else pc + 1
            elif mop == F_SC_CMPBR:
                cycles += 1
                fstat[0] += 1
                cmp, target = b
                pc = target if cmp(stack.pop(), a) else pc + 1
            elif mop == F_L_BR:
                cycles += 1
                fstat[0] += 1
                test, target = b
                pc = target if test(locals_[a]) else pc + 1
            elif mop == F_AL_GETFIELD:
                cycles += 1
                fstat[0] += 1
                slot, offset = a
                stack.append(om.get_field(locals_[slot], offset))
                pc += 1
            elif mop == F_DUP_PUTFIELD:
                cycles += 1
                fstat[0] += 1
                x = stack.pop()
                om.put_field(x, a, x)
                pc += 1
            elif mop == F_ALL_PUTFIELD:
                cycles += 2
                fstat[1] += 1
                objslot, valslot = a
                om.put_field(locals_[objslot], b, locals_[valslot])
                pc += 1
            elif mop == F_ALC_PUTFIELD:
                cycles += 2
                fstat[1] += 1
                objslot, const = a
                om.put_field(locals_[objslot], b, const)
                pc += 1
            elif mop == F_ALL_ALOAD:
                cycles += 2
                fstat[1] += 1
                arrslot, idxslot = a
                stack.append(om.array_get(locals_[arrslot], locals_[idxslot]))
                pc += 1
            elif mop == F_IINC_BR:
                cycles += 1
                fstat[0] += 1
                slot, delta = a
                locals_[slot] = words.to_i32(locals_[slot] + delta)
                pc = b

            else:  # pragma: no cover - exhaustive over micro-ops
                raise VMError(f"unknown micro-op {mop}")

    # ------------------------------------------------------------------
    # loop 2: threaded-code dispatch (pre-bound handler tables)

    def _bind(self, code) -> list:
        """Bind the handler table for one compiled method.

        Yield points stay inline in the loop (they need the loop-local
        cycle counter), marked by a ``None`` entry; fused yield-point
        groups (F_YP_GROUP) do too — the loop tells them apart by the
        op's ``b`` operand.  Everything else becomes a pre-bound
        closure."""
        entries: list = []
        append = entries.append
        for pc, (mop, a, b) in enumerate(code.xops):
            if mop == M_YIELDPOINT or mop == F_YP_GROUP:
                append(None)
            else:
                factory = _FACTORIES.get(mop)
                if factory is None:  # pragma: no cover - exhaustive
                    raise VMError(f"unknown micro-op {mop}")
                append(factory(self, a, b, pc, pc + 1))
        code.entries = entries
        return entries

    def _execute_threaded(self, thread: GreenThread) -> None:  # noqa: C901
        vm = self.vm
        loader = vm.loader
        scheduler = vm.scheduler
        max_cycles = vm.config.max_cycles
        fstat = self._fstat
        ypstat = self._ypstat

        self._thread = thread
        frame = thread.frames[-1]
        self._frame = frame
        code = frame.code
        entries = code.entries
        if entries is None:
            entries = self._bind(code)
        xops = code.xops
        pc = frame.pc
        stack = frame.stack
        locals_ = frame.locals
        cycles = self.cycles
        # fused-carry snapshots: cycles the fused counters have accrued
        # since the last fold (pairs carry 1 extra cycle, triples 2)
        ln2 = fstat[0]
        ln3 = fstat[1]
        d = self._deadline
        limit = d if d <= max_cycles else max_cycles + 1

        while True:
            cycles += 1
            if cycles >= limit:
                x = fstat[0] - ln2 + 2 * (fstat[1] - ln3)
                if x:
                    ln2 = fstat[0]
                    ln3 = fstat[1]
                    cycles += x
                limit = self._check_limit(cycles)

            fn = entries[pc]
            if fn is None:
                # -- inlined yield point (plain, or the terminal of a
                # fused F_YP_GROUP).  Run any pure prefix and charge its
                # cycles, fold fused carries, and process any deadline
                # crossing *before* observing the hw bit, so the bit is
                # exactly the per-op scheme's at this cycle.
                _, tag, bb = xops[pc]
                if bb is not None:
                    bb[0](stack, locals_)
                    cycles += bb[1]
                    ypstat[0] += 1
                    ypstat[1] += bb[1]
                x = fstat[0] - ln2 + 2 * (fstat[1] - ln3)
                if x:
                    ln2 = fstat[0]
                    ln3 = fstat[1]
                    cycles += x
                if cycles >= limit:
                    limit = self._check_limit(cycles)
                thread.yieldpoints += 1
                dejavu = vm.dejavu
                if dejavu is None:
                    if self.hw_bit:
                        self.hw_bit = False
                        scheduler.preempt()
                # -- inline non-firing fast paths (see DejaVu.__init__):
                # with liveclock + eager stacks on and nothing pending,
                # the full Figure-2 body reduces to one counter bump.
                elif (
                    dejavu._fast_record
                    and dejavu.liveclock
                    and not self.hw_bit
                    and not dejavu.threadswitch_bit
                    and thread.stack_capacity - thread.stack_used
                    >= EAGER_STACK_HEADROOM
                ):
                    dejavu.nyp += 1
                elif (
                    dejavu._fast_replay
                    and dejavu.liveclock
                    and not dejavu.threadswitch_bit
                    and dejavu._replay_nyp is not None
                    and dejavu._replay_nyp > 1
                    and thread.stack_capacity - thread.stack_used
                    >= EAGER_STACK_HEADROOM
                ):
                    dejavu._replay_nyp -= 1
                else:
                    frame.pc = pc  # instrumentation may grow the stack (alloc)
                    self.cycles = cycles
                    dejavu.at_yieldpoint(thread, tag)
                pc += 1
                if self.switch_pending:
                    frame.pc = pc
                    self.cycles = cycles
                    scheduler.shadow_sync_bci(thread)
                    return
                continue

            r = fn(stack, locals_)
            if r >= 0:
                pc = r
                continue

            # -- sentinel: fold fused carries, commit the clock, act.
            x = fstat[0] - ln2 + 2 * (fstat[1] - ln3)
            if x:
                ln2 = fstat[0]
                ln3 = fstat[1]
                cycles += x

            if r == _CALL:
                rm, args = self._call
                self._call = None
                frame.pc = pc + 1  # resume after the call (also: safe point)
                self.cycles = cycles
                if rm.native:
                    result = vm.call_native(thread, rm, args)
                    if result is BLOCK:
                        scheduler.shadow_sync_bci(thread)
                        return  # switch_pending is set
                    if isinstance(result, NativeResult):
                        if rm.mdef.signature.ret != "V":
                            if result.string_value is not None:
                                # materialise the guest String here, so the
                                # allocation happens identically in record
                                # and replay mode (§2.5 + symmetry)
                                stack.append(loader.make_string(result.string_value))
                            else:
                                stack.append(
                                    words.to_i32(result.value if result.value is not None else 0)
                                )
                        for ref, up_args in reversed(result.upcalls):
                            up_rm = loader.resolve_static_method(ref)
                            scheduler.shadow_sync_bci(thread)
                            scheduler.push_frame(thread, Frame(up_rm, list(up_args)))
                        if result.upcalls:
                            frame = thread.frames[-1]
                            self._frame = frame
                            code = frame.code
                            entries = code.entries
                            if entries is None:
                                entries = self._bind(code)
                            xops = code.xops
                            pc = frame.pc
                            stack = frame.stack
                            locals_ = frame.locals
                            if self.switch_pending:
                                scheduler.shadow_sync_bci(thread)
                                return
                            continue
                    elif rm.mdef.signature.ret != "V":
                        stack.append(words.to_i32(result if result is not None else 0))
                    pc += 1
                    if self.switch_pending:
                        frame.pc = pc
                        scheduler.shadow_sync_bci(thread)
                        return
                else:
                    scheduler.shadow_sync_bci(thread)
                    callee = Frame(rm, args)
                    scheduler.push_frame(thread, callee)
                    frame = callee
                    self._frame = frame
                    code = frame.code
                    entries = code.entries
                    if entries is None:
                        entries = self._bind(code)
                    xops = code.xops
                    pc = 0
                    stack = frame.stack
                    locals_ = frame.locals

            elif r == _RELOAD:
                # a return handler popped back into the caller frame
                self.cycles = cycles
                frame = thread.frames[-1]
                self._frame = frame
                code = frame.code
                entries = code.entries
                if entries is None:
                    entries = self._bind(code)
                xops = code.xops
                pc = frame.pc
                stack = frame.stack
                locals_ = frame.locals

            else:  # _PARK: the handler stored frame.pc (or emptied frames)
                self.cycles = cycles
                scheduler.shadow_sync_bci(thread)
                return
