"""The execution engine: a micro-op dispatch loop with safe-point discipline.

One engine drives all green threads of a VM.  The inner loop executes the
current thread's compiled code until something requests a switch (yield
point preemption, blocking, termination), then returns to the scheduler.

Safe-point discipline (what makes the type-accurate GC sound):

* a collection can only start inside an allocating micro-op or native;
* every allocating handler stores the live ``pc`` into the frame *before*
  allocating, so the reference maps consulted by the GC describe exactly
  the operand stack the frame holds at that moment;
* handlers never keep a popped reference in a Python temporary across an
  allocation (natives get their reference arguments pinned as temp roots).

The timer device is folded into the loop: each micro-op is one cycle, and
when the cycle counter passes the armed deadline the
``preemptive_hardware_bit`` is set — observed at the next yield point,
exactly Jalapeño's quasi-preemption.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.vm import words
from repro.vm.compiler import (
    M_AALOAD,
    M_AASTORE,
    M_ACONST_NULL,
    M_ALOAD,
    M_ANEWARRAY,
    M_ARETURN,
    M_ARRAYLENGTH,
    M_ASTORE,
    M_CHECKCAST,
    M_DUP,
    M_GETFIELD,
    M_GETSTATIC,
    M_GOTO,
    M_IADD,
    M_IALOAD,
    M_IAND,
    M_IASTORE,
    M_ICONST,
    M_IDIV,
    M_IFEQ,
    M_IFGE,
    M_IFGT,
    M_IFLE,
    M_IFLT,
    M_IFNE,
    M_IFNONNULL,
    M_IFNULL,
    M_IF_ACMPEQ,
    M_IF_ACMPNE,
    M_IF_ICMPEQ,
    M_IF_ICMPGE,
    M_IF_ICMPGT,
    M_IF_ICMPLE,
    M_IF_ICMPLT,
    M_IF_ICMPNE,
    M_IINC,
    M_ILOAD,
    M_IMUL,
    M_INEG,
    M_INSTANCEOF,
    M_INVOKESTATIC,
    M_INVOKEVIRTUAL,
    M_IOR,
    M_IREM,
    M_IRETURN,
    M_ISHL,
    M_ISHR,
    M_ISTORE,
    M_ISUB,
    M_IUSHR,
    M_IXOR,
    M_LDC,
    M_MONITORENTER,
    M_MONITOREXIT,
    M_NEW,
    M_NEWARRAY,
    M_NOP,
    M_POP,
    M_PUTFIELD,
    M_PUTSTATIC,
    M_RETURN,
    M_SWAP,
    M_YIELDPOINT,
)
from repro.vm import corelib
from repro.vm.errors import VMError, VMTrap
from repro.vm.native import BLOCK, NativeResult
from repro.vm.threads import Frame, GreenThread

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.machine import VirtualMachine

_NEVER = 1 << 62
_NO_VALUE = object()


class Engine:
    def __init__(self, vm: "VirtualMachine"):
        self.vm = vm
        self.cycles = 0
        self.hw_bit = False  # preemptive_hardware_bit (Figure 2)
        self.timer_enabled = True
        self.switch_pending = False
        self._deadline = _NEVER
        self._timer_armed = False
        #: optional debug controller (breakpoints / stepping); host-side
        #: only — attaching one perturbs nothing the guest can observe.
        self.debug = None

    # ------------------------------------------------------------------

    def arm_timer(self) -> None:
        timer = self.vm.timer
        if self.timer_enabled and timer is not None:
            self._deadline = self.cycles + timer.next_interval()
        else:
            self._deadline = _NEVER

    def run(self) -> None:
        """Run until completion, deadlock, or a debug pause.

        With a debug controller attached, the loop returns whenever the
        controller pauses; calling run() again resumes the paused thread
        exactly where it stopped (``scheduler.current`` survives pauses).
        """
        vm = self.vm
        scheduler = vm.scheduler
        if not self._timer_armed:
            self.arm_timer()
            self._timer_armed = True
        while True:
            if self.debug is not None and self.debug.paused:
                return
            thread = scheduler.current
            if thread is None:
                thread = scheduler.schedule()
            if thread is None:
                return
            self.switch_pending = False
            try:
                self._execute(thread)
            except VMTrap as trap:
                self._kill(thread, trap)

    def _kill(self, thread: GreenThread, trap: VMTrap) -> None:
        """A trap terminates the offending thread, deterministically.

        Monitors the thread held are force-released (Java unwinds
        ``synchronized`` sections when a thread dies), so one thread's
        death cannot deadlock the rest of the program."""
        vm = self.vm
        vm.observer.emit("trap", thread.tid, trap.kind)
        vm.trap_reports.append((thread.tid, trap.kind, str(trap)))
        while thread.frames:
            vm.scheduler.pop_frame(thread)
        for heir in vm.monitors.release_all_owned_by(thread):
            vm.scheduler.make_ready(heir)
        vm.scheduler.on_terminate(thread)

    # ------------------------------------------------------------------

    def _execute(self, thread: GreenThread) -> None:  # noqa: C901 - the dispatch loop
        vm = self.vm
        om = vm.om
        loader = vm.loader
        scheduler = vm.scheduler
        monitors = vm.monitors
        max_cycles = vm.config.max_cycles

        frame = thread.frames[-1]
        ops = frame.code.ops
        pc = frame.pc
        stack = frame.stack
        locals_ = frame.locals
        cycles = self.cycles

        def park() -> None:
            """Spill loop-local state back before returning to the scheduler."""
            frame.pc = pc
            self.cycles = cycles
            scheduler.shadow_sync_bci(thread)

        debug = self.debug
        while True:
            if self.switch_pending:
                park()
                return
            if debug is not None and debug.check(thread, frame, pc):
                park()
                return

            mop, a, b = ops[pc]
            cycles += 1
            if cycles >= self._deadline:
                self.hw_bit = True
                self.cycles = cycles
                self.arm_timer()
            if cycles > max_cycles:
                self.cycles = cycles
                raise VMError(f"cycle budget exceeded ({max_cycles})")

            if mop == M_YIELDPOINT:
                thread.yieldpoints += 1
                dejavu = vm.dejavu
                if dejavu is not None:
                    frame.pc = pc  # instrumentation may grow the stack (alloc)
                    self.cycles = cycles
                    dejavu.at_yieldpoint(thread, a)
                elif self.hw_bit:
                    self.hw_bit = False
                    scheduler.preempt()
                pc += 1
                continue

            if mop == M_ILOAD or mop == M_ALOAD:
                stack.append(locals_[a])
                pc += 1
            elif mop == M_ICONST:
                stack.append(a)
                pc += 1
            elif mop == M_ISTORE or mop == M_ASTORE:
                locals_[a] = stack.pop()
                pc += 1
            elif mop == M_IINC:
                locals_[a] = words.to_i32(locals_[a] + b)
                pc += 1
            elif mop == M_GOTO:
                pc = a
            elif mop == M_IFEQ:
                pc = a if stack.pop() == 0 else pc + 1
            elif mop == M_IFNE:
                pc = a if stack.pop() != 0 else pc + 1
            elif mop == M_IFLT:
                pc = a if stack.pop() < 0 else pc + 1
            elif mop == M_IFLE:
                pc = a if stack.pop() <= 0 else pc + 1
            elif mop == M_IFGT:
                pc = a if stack.pop() > 0 else pc + 1
            elif mop == M_IFGE:
                pc = a if stack.pop() >= 0 else pc + 1
            elif mop == M_IF_ICMPEQ or mop == M_IF_ACMPEQ:
                y = stack.pop()
                pc = a if stack.pop() == y else pc + 1
            elif mop == M_IF_ICMPNE or mop == M_IF_ACMPNE:
                y = stack.pop()
                pc = a if stack.pop() != y else pc + 1
            elif mop == M_IF_ICMPLT:
                y = stack.pop()
                pc = a if stack.pop() < y else pc + 1
            elif mop == M_IF_ICMPLE:
                y = stack.pop()
                pc = a if stack.pop() <= y else pc + 1
            elif mop == M_IF_ICMPGT:
                y = stack.pop()
                pc = a if stack.pop() > y else pc + 1
            elif mop == M_IF_ICMPGE:
                y = stack.pop()
                pc = a if stack.pop() >= y else pc + 1
            elif mop == M_IFNULL:
                pc = a if stack.pop() == 0 else pc + 1
            elif mop == M_IFNONNULL:
                pc = a if stack.pop() != 0 else pc + 1

            elif mop == M_IADD:
                y = stack.pop()
                stack[-1] = words.iadd(stack[-1], y)
                pc += 1
            elif mop == M_ISUB:
                y = stack.pop()
                stack[-1] = words.isub(stack[-1], y)
                pc += 1
            elif mop == M_IMUL:
                y = stack.pop()
                stack[-1] = words.imul(stack[-1], y)
                pc += 1
            elif mop == M_IDIV:
                y = stack.pop()
                try:
                    stack[-1] = words.idiv(stack[-1], y)
                except ZeroDivisionError:
                    raise VMTrap("ArithmeticDivByZero") from None
                pc += 1
            elif mop == M_IREM:
                y = stack.pop()
                try:
                    stack[-1] = words.irem(stack[-1], y)
                except ZeroDivisionError:
                    raise VMTrap("ArithmeticDivByZero") from None
                pc += 1
            elif mop == M_INEG:
                stack[-1] = words.ineg(stack[-1])
                pc += 1
            elif mop == M_ISHL:
                y = stack.pop()
                stack[-1] = words.ishl(stack[-1], y)
                pc += 1
            elif mop == M_ISHR:
                y = stack.pop()
                stack[-1] = words.ishr(stack[-1], y)
                pc += 1
            elif mop == M_IUSHR:
                y = stack.pop()
                stack[-1] = words.iushr(stack[-1], y)
                pc += 1
            elif mop == M_IAND:
                y = stack.pop()
                stack[-1] = words.iand(stack[-1], y)
                pc += 1
            elif mop == M_IOR:
                y = stack.pop()
                stack[-1] = words.ior(stack[-1], y)
                pc += 1
            elif mop == M_IXOR:
                y = stack.pop()
                stack[-1] = words.ixor(stack[-1], y)
                pc += 1

            elif mop == M_GETFIELD:
                stack[-1] = om.get_field(stack[-1], a)
                pc += 1
            elif mop == M_PUTFIELD:
                value = stack.pop()
                om.put_field(stack.pop(), a, value)
                pc += 1
            elif mop == M_GETSTATIC:
                stack.append(om.get_field(a.statics_addr, b))
                pc += 1
            elif mop == M_PUTSTATIC:
                om.put_field(a.statics_addr, b, stack.pop())
                pc += 1

            elif mop == M_IALOAD or mop == M_AALOAD:
                idx = stack.pop()
                stack[-1] = om.array_get(stack[-1], idx)
                pc += 1
            elif mop == M_IASTORE or mop == M_AASTORE:
                value = stack.pop()
                idx = stack.pop()
                om.array_put(stack.pop(), idx, value)
                pc += 1
            elif mop == M_ARRAYLENGTH:
                stack[-1] = om.array_length(stack[-1])
                pc += 1

            elif mop == M_NEW:
                frame.pc = pc  # safe point: allocation may collect
                stack.append(om.new_object(a.layout))
                pc += 1
            elif mop == M_NEWARRAY:
                length = stack.pop()
                frame.pc = pc
                stack.append(om.new_array("[I", length))
                pc += 1
            elif mop == M_ANEWARRAY:
                length = stack.pop()
                frame.pc = pc
                stack.append(om.new_array(a, length))
                pc += 1

            elif mop == M_LDC:
                stack.append(om.array_get(a.constants_addr, b))
                pc += 1
            elif mop == M_ACONST_NULL:
                stack.append(0)
                pc += 1
            elif mop == M_DUP:
                stack.append(stack[-1])
                pc += 1
            elif mop == M_POP:
                stack.pop()
                pc += 1
            elif mop == M_SWAP:
                stack[-1], stack[-2] = stack[-2], stack[-1]
                pc += 1
            elif mop == M_NOP:
                pc += 1

            elif mop == M_INSTANCEOF:
                ref = stack.pop()
                stack.append(1 if ref and vm.is_instance(ref, a) else 0)
                pc += 1
            elif mop == M_CHECKCAST:
                ref = stack[-1]
                if ref and not vm.is_instance(ref, a):
                    raise VMTrap(
                        "ClassCast",
                        f"{om.layout_of(ref).name} is not a {a.name}",
                    )
                pc += 1

            elif mop == M_INVOKESTATIC or mop == M_INVOKEVIRTUAL:
                if mop == M_INVOKESTATIC:
                    rm = a
                    nargs = rm.mdef.signature.nargs
                else:
                    proto = b
                    nargs = proto.mdef.signature.nargs + 1
                    receiver = stack[-nargs]
                    if receiver == 0:
                        raise VMTrap("NullPointer", f"invokevirtual {a} on null")
                    rm = loader.vtable_lookup(
                        om.memory.read(receiver),  # header word 0 = class id
                        a,
                    )
                if nargs:
                    args = stack[-nargs:]
                    del stack[-nargs:]
                else:
                    args = []
                frame.pc = pc + 1  # resume after the call (also: safe point)
                self.cycles = cycles
                if rm.native:
                    result = vm.call_native(thread, rm, args)
                    if result is BLOCK:
                        pc += 1
                        continue  # switch_pending is set; loop top parks
                    if isinstance(result, NativeResult):
                        if rm.mdef.signature.ret != "V":
                            if result.string_value is not None:
                                # materialise the guest String here, so the
                                # allocation happens identically in record
                                # and replay mode (§2.5 + symmetry)
                                stack.append(loader.make_string(result.string_value))
                            else:
                                stack.append(
                                    words.to_i32(result.value if result.value is not None else 0)
                                )
                        for ref, up_args in reversed(result.upcalls):
                            up_rm = loader.resolve_static_method(ref)
                            scheduler.shadow_sync_bci(thread)
                            scheduler.push_frame(thread, Frame(up_rm, list(up_args)))
                        if result.upcalls:
                            frame = thread.frames[-1]
                            ops = frame.code.ops
                            pc = frame.pc
                            stack = frame.stack
                            locals_ = frame.locals
                            continue
                    elif rm.mdef.signature.ret != "V":
                        stack.append(words.to_i32(result if result is not None else 0))
                    pc += 1
                else:
                    scheduler.shadow_sync_bci(thread)
                    callee = Frame(rm, args)
                    scheduler.push_frame(thread, callee)
                    frame = callee
                    ops = frame.code.ops
                    pc = 0
                    stack = frame.stack
                    locals_ = frame.locals

            elif mop == M_RETURN or mop == M_IRETURN or mop == M_ARETURN:
                value = stack.pop() if mop != M_RETURN else _NO_VALUE
                scheduler.pop_frame(thread)
                if not thread.frames:
                    self.cycles = cycles
                    scheduler.on_terminate(thread)
                    return
                frame = thread.frames[-1]
                ops = frame.code.ops
                pc = frame.pc
                stack = frame.stack
                locals_ = frame.locals
                if value is not _NO_VALUE:
                    stack.append(value)

            elif mop == M_MONITORENTER:
                ref = stack.pop()
                if ref == 0:
                    raise VMTrap("NullPointer", "monitorenter on null")
                if not monitors.try_enter(ref, thread):
                    # contended: park on the entry queue; the lock is handed
                    # to us by a future monitorexit, and we resume *after*
                    # this instruction already owning the lock.
                    frame.pc = pc + 1
                    self.cycles = cycles
                    monitors.enqueue_contender(ref, thread)
                    scheduler.block_current(corelib.THREAD_BLOCKED)
                    scheduler.shadow_sync_bci(thread)
                    return
                pc += 1
            elif mop == M_MONITOREXIT:
                ref = stack.pop()
                if ref == 0:
                    raise VMTrap("NullPointer", "monitorexit on null")
                heir = monitors.exit(ref, thread)
                if heir is not None:
                    scheduler.make_ready(heir)
                pc += 1

            else:  # pragma: no cover - exhaustive over micro-ops
                raise VMError(f"unknown micro-op {mop}")
