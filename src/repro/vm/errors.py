"""Error taxonomy for the VM, the assembler and the replay platform."""

from __future__ import annotations


class VMError(Exception):
    """Base class for all VM-level errors (host-visible, not guest traps)."""


class AssemblyError(VMError):
    """Raised by the assembler for malformed assembly input."""

    def __init__(self, message: str, line: int | None = None, source: str | None = None):
        self.line = line
        self.source = source
        where = ""
        if source is not None:
            where += f"{source}:"
        if line is not None:
            where += f"{line}: "
        super().__init__(f"{where}{message}")


class VerifyError(VMError):
    """Raised by the bytecode verifier / reference-map builder."""

    def __init__(self, message: str, method: str | None = None, offset: int | None = None):
        self.method = method
        self.offset = offset
        where = ""
        if method is not None:
            where = f"{method}"
            if offset is not None:
                where += f"@{offset}"
            where += ": "
        super().__init__(f"{where}{message}")


class LinkError(VMError):
    """Raised at class-load/link time: missing classes, fields, methods."""


class HeapExhaustedError(VMError):
    """Raised when a semispace cannot satisfy an allocation even after GC."""


class VMTrap(VMError):
    """A guest-level trap (null dereference, bounds, div-by-zero, ...).

    Traps terminate the offending guest thread deterministically.  ``kind``
    is a short symbolic name used in trap reports so record and replay runs
    can be compared event-by-event.
    """

    def __init__(self, kind: str, message: str = ""):
        self.kind = kind
        super().__init__(f"{kind}: {message}" if message else kind)


class UsageError(VMError):
    """The user asked for something malformed (CLI arguments, missing
    files, unknown workloads).  Distinct from runtime failures so the CLI
    can map it to exit status 2."""


class TraceFormatError(VMError):
    """A persisted trace is unreadable: bad magic, unsupported version,
    failed CRC, torn segment, or a truncated varint.

    ``stream`` names which part of the file broke (``"switch"``,
    ``"value"``, ``"meta"``, ``"footer"``, ``"header"``, or a segment
    label) and ``offset`` is the byte offset into that stream/file where
    decoding stopped — the two facts a salvage or a doctor report needs.
    """

    def __init__(
        self,
        message: str,
        *,
        stream: str | None = None,
        offset: int | None = None,
    ):
        self.stream = stream
        self.offset = offset
        where = ""
        if stream is not None:
            where = f"[{stream}"
            if offset is not None:
                where += f" @byte {offset}"
            where += "] "
        elif offset is not None:
            where = f"[@byte {offset}] "
        super().__init__(f"{where}{message}")


class CheckpointError(VMError):
    """Base class for checkpoint/restore failures.  Consumers treat any
    ``CheckpointError`` as "this checkpoint is unusable" and walk the
    fallback ladder: nearest earlier checkpoint, then replay-from-zero.
    """


class CheckpointFormatError(CheckpointError):
    """A checkpoint sidecar (or one snapshot inside it) is unreadable:
    bad magic, unsupported version, failed CRC, torn segment, or a
    machine-digest mismatch after decode (tampering the CRC missed)."""


class CheckpointConfigMismatch(CheckpointError):
    """A checkpoint was captured under a different VM or engine
    configuration than the restore target.  Frame pcs index the compiled
    (possibly fused) instruction stream, so restoring across engine
    configs would silently execute the wrong code — refuse instead.
    Unlike other checkpoint errors this is not repaired by an earlier
    checkpoint (they all share the config), so it propagates as a typed
    diagnostic rather than falling back."""


class ReplayDivergenceError(VMError):
    """Replay observed state inconsistent with the recorded execution.

    This is the accuracy check failing: either the trace ran dry / had a
    record of the wrong type at the consumption point, or the replay
    verifier found differing event streams.
    """

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"at trace position {position}: {message}"
        super().__init__(message)


class SlimReconstructError(ReplayDivergenceError):
    """A slim (v3.2) trace could not drive schedule reconstruction.

    Slim traces omit sync-inferable switch deltas and re-derive them at
    replay from the modelled timer device plus the logged synchronization
    order.  When the sidecar is missing/truncated, the model timer fires
    outside the recorded schedule, or the sync-order witness disagrees,
    the reconstruction is *underdetermined* — raising this typed error is
    the contract, never a silently divergent replay.  Subclasses
    :class:`ReplayDivergenceError` so existing catch sites keep working;
    the doctor maps it to its own ``slim-underdetermined`` class.
    """


class TracePrefixEnd(VMError):
    """A replay of a *salvaged* (truncated) trace consumed the whole
    surviving prefix.  Not a divergence: the recording simply stops here,
    because the recorder died mid-run.  Raised only when the controller
    runs with ``tolerate_truncation`` (set automatically for traces whose
    meta carries ``truncated: True``); harness code catches it to report
    how far the prefix carried the re-execution.
    """

    def __init__(self, message: str, *, words_consumed: int = 0):
        self.words_consumed = words_consumed
        super().__init__(message)
