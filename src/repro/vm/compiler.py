"""The baseline compiler: bytecode → machine code (micro-ops).

Like Jalapeño's baseline compiler, this pass translates each bytecode into
a short, fully resolved machine sequence and — the paper's central
"cross-optimization" property — *inlines yield points into the compiled
code*: one in every method prologue and one before every backward branch
(loop backedge).  When DejaVu is attached, the yield-point micro-op IS the
record/replay instrumentation site of Figure 2; there is no separate
instrumentation layer that could be compiled differently between modes.

Machine code is a list of ``(mop, a, b)`` tuples dispatched by the engine
in :mod:`repro.vm.interp`.  Symbolic operands are resolved at compile time
to offsets, :class:`RuntimeClass`/:class:`RuntimeMethod` objects, or
vtable keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vm.bytecode import BRANCHES, Instr, Op
from repro.vm.errors import VMError
from repro.vm.refmaps import field_ref

# -- micro-op codes ----------------------------------------------------------

M_NOP = 0
M_ICONST = 1
M_LDC = 2
M_ACONST_NULL = 3
M_DUP = 4
M_POP = 5
M_SWAP = 6
M_ILOAD = 7
M_ISTORE = 8
M_ALOAD = 9
M_ASTORE = 10
M_IINC = 11

M_IADD = 12
M_ISUB = 13
M_IMUL = 14
M_IDIV = 15
M_IREM = 16
M_INEG = 17
M_ISHL = 18
M_ISHR = 19
M_IUSHR = 20
M_IAND = 21
M_IOR = 22
M_IXOR = 23

M_GOTO = 24
M_IFEQ = 25
M_IFNE = 26
M_IFLT = 27
M_IFLE = 28
M_IFGT = 29
M_IFGE = 30
M_IF_ICMPEQ = 31
M_IF_ICMPNE = 32
M_IF_ICMPLT = 33
M_IF_ICMPLE = 34
M_IF_ICMPGT = 35
M_IF_ICMPGE = 36
M_IF_ACMPEQ = 37
M_IF_ACMPNE = 38
M_IFNULL = 39
M_IFNONNULL = 40

M_NEW = 41
M_GETFIELD = 42
M_PUTFIELD = 43
M_GETSTATIC = 44
M_PUTSTATIC = 45
M_NEWARRAY = 46
M_ANEWARRAY = 47
M_IALOAD = 48
M_IASTORE = 49
M_AALOAD = 50
M_AASTORE = 51
M_ARRAYLENGTH = 52
M_INSTANCEOF = 53
M_CHECKCAST = 54

M_INVOKESTATIC = 55
M_INVOKEVIRTUAL = 56
M_RETURN = 57
M_IRETURN = 58
M_ARETURN = 59

M_MONITORENTER = 60
M_MONITOREXIT = 61

M_YIELDPOINT = 62

#: yield-point location tags (carried so tests/traces can tell them apart)
YP_PROLOGUE = 0
YP_BACKEDGE = 1

_SIMPLE = {
    Op.NOP: M_NOP,
    Op.ACONST_NULL: M_ACONST_NULL,
    Op.DUP: M_DUP,
    Op.POP: M_POP,
    Op.SWAP: M_SWAP,
    Op.IADD: M_IADD,
    Op.ISUB: M_ISUB,
    Op.IMUL: M_IMUL,
    Op.IDIV: M_IDIV,
    Op.IREM: M_IREM,
    Op.INEG: M_INEG,
    Op.ISHL: M_ISHL,
    Op.ISHR: M_ISHR,
    Op.IUSHR: M_IUSHR,
    Op.IAND: M_IAND,
    Op.IOR: M_IOR,
    Op.IXOR: M_IXOR,
    Op.NEWARRAY: M_NEWARRAY,
    Op.IALOAD: M_IALOAD,
    Op.IASTORE: M_IASTORE,
    Op.AALOAD: M_AALOAD,
    Op.AASTORE: M_AASTORE,
    Op.ARRAYLENGTH: M_ARRAYLENGTH,
    Op.RETURN: M_RETURN,
    Op.IRETURN: M_IRETURN,
    Op.ARETURN: M_ARETURN,
    Op.MONITORENTER: M_MONITORENTER,
    Op.MONITOREXIT: M_MONITOREXIT,
}

_BRANCH = {
    Op.GOTO: M_GOTO,
    Op.IFEQ: M_IFEQ,
    Op.IFNE: M_IFNE,
    Op.IFLT: M_IFLT,
    Op.IFLE: M_IFLE,
    Op.IFGT: M_IFGT,
    Op.IFGE: M_IFGE,
    Op.IF_ICMPEQ: M_IF_ICMPEQ,
    Op.IF_ICMPNE: M_IF_ICMPNE,
    Op.IF_ICMPLT: M_IF_ICMPLT,
    Op.IF_ICMPLE: M_IF_ICMPLE,
    Op.IF_ICMPGT: M_IF_ICMPGT,
    Op.IF_ICMPGE: M_IF_ICMPGE,
    Op.IF_ACMPEQ: M_IF_ACMPEQ,
    Op.IF_ACMPNE: M_IF_ACMPNE,
    Op.IFNULL: M_IFNULL,
    Op.IFNONNULL: M_IFNONNULL,
}

#: fixed per-frame overhead charged against the thread stack, in words
#: (saved pc, method pointer, monitor bookkeeping, spill margin).
FRAME_OVERHEAD_WORDS = 6


@dataclass
class MachineCode:
    """Compiled body of one method."""

    qualname: str
    ops: list[tuple] = field(default_factory=list)
    #: machine pc -> bytecode index (for GC maps, line numbers, debugger)
    bci_of: list[int] = field(default_factory=list)
    #: bytecode index -> first machine pc
    pc_of_bci: list[int] = field(default_factory=list)
    nlocals: int = 0
    max_stack: int = 0
    frame_words: int = 0
    n_yieldpoints: int = 0

    def bci_at(self, pc: int) -> int:
        return self.bci_of[pc]


def compile_method(loader, rc, rm) -> MachineCode:
    """Baseline-compile *rm* of class *rc* (the loader's ``compile_fn``)."""
    mdef = rm.mdef
    if mdef.native:
        raise VMError(f"cannot compile native method {rm.qualname}")
    assert rm.maps is not None, "verify before compiling"

    mc = MachineCode(qualname=rm.qualname)
    mc.nlocals = mdef.max_locals
    mc.max_stack = rm.maps.max_stack
    mc.frame_words = mc.nlocals + mc.max_stack + FRAME_OVERHEAD_WORDS

    ops = mc.ops
    bci_of = mc.bci_of

    def emit(bci: int, mop: int, a: object = None, b: object = None) -> None:
        ops.append((mop, a, b))
        bci_of.append(bci)

    # method-prologue yield point (Jalapeño puts one in every prologue)
    emit(0, M_YIELDPOINT, YP_PROLOGUE)
    mc.n_yieldpoints += 1

    fixups: list[tuple[int, int]] = []  # (machine pc, target bci)
    mc.pc_of_bci = [0] * len(mdef.code)

    for bci, instr in enumerate(mdef.code):
        # a backward branch gets a yield point in front of it (loop backedge)
        if instr.op in BRANCHES and int(instr.arg) <= bci:  # type: ignore[arg-type]
            emit(bci, M_YIELDPOINT, YP_BACKEDGE)
            mc.n_yieldpoints += 1
        mc.pc_of_bci[bci] = len(ops)
        _translate(loader, rc, instr, bci, ops, emit, fixups)

    for pc, target_bci in fixups:
        mop, _, b = ops[pc]
        ops[pc] = (mop, mc.pc_of_bci[target_bci], b)
    return mc


def _translate(loader, rc, instr: Instr, bci: int, ops: list, emit, fixups) -> None:
    op = instr.op
    mop = _SIMPLE.get(op)
    if mop is not None:
        emit(bci, mop)
        return
    mop = _BRANCH.get(op)
    if mop is not None:
        fixups.append((len(ops), int(instr.arg)))  # type: ignore[arg-type]
        emit(bci, mop, -1)
        return
    if op is Op.ICONST:
        emit(bci, M_ICONST, int(instr.arg))  # type: ignore[arg-type]
    elif op is Op.LDC:
        emit(bci, M_LDC, rc, int(instr.arg))  # type: ignore[arg-type]
    elif op in (Op.ILOAD, Op.ALOAD):
        emit(bci, M_ILOAD if op is Op.ILOAD else M_ALOAD, int(instr.arg))  # type: ignore[arg-type]
    elif op in (Op.ISTORE, Op.ASTORE):
        emit(bci, M_ISTORE if op is Op.ISTORE else M_ASTORE, int(instr.arg))  # type: ignore[arg-type]
    elif op is Op.IINC:
        slot, delta = instr.arg  # type: ignore[misc]
        emit(bci, M_IINC, slot, delta)
    elif op is Op.NEW:
        emit(bci, M_NEW, loader.ensure_layout(str(instr.arg)))
    elif op in (Op.GETFIELD, Op.PUTFIELD):
        ref, _ = field_ref(instr.arg)
        slot = loader.resolve_instance_field(ref)
        emit(bci, M_GETFIELD if op is Op.GETFIELD else M_PUTFIELD, slot.offset)
    elif op in (Op.GETSTATIC, Op.PUTSTATIC):
        ref, _ = field_ref(instr.arg)
        holder_rc, slot = loader.resolve_static_field(ref)
        emit(
            bci,
            M_GETSTATIC if op is Op.GETSTATIC else M_PUTSTATIC,
            holder_rc,
            slot.offset,
        )
    elif op is Op.ANEWARRAY:
        emit(bci, M_ANEWARRAY, "[" + str(instr.arg))
    elif op in (Op.INSTANCEOF, Op.CHECKCAST):
        target = loader.ensure_layout(str(instr.arg))
        emit(bci, M_INSTANCEOF if op is Op.INSTANCEOF else M_CHECKCAST, target)
    elif op is Op.INVOKESTATIC:
        rm = loader.resolve_static_method(str(instr.arg))
        emit(bci, M_INVOKESTATIC, rm)
    elif op is Op.INVOKEVIRTUAL:
        key, proto = loader.resolve_virtual(str(instr.arg))
        emit(bci, M_INVOKEVIRTUAL, key, proto)
    else:  # pragma: no cover - exhaustive over the ISA
        raise VMError(f"cannot compile opcode {op.name}")
