"""The baseline compiler: bytecode → machine code (micro-ops).

Like Jalapeño's baseline compiler, this pass translates each bytecode into
a short, fully resolved machine sequence and — the paper's central
"cross-optimization" property — *inlines yield points into the compiled
code*: one in every method prologue and one before every backward branch
(loop backedge).  When DejaVu is attached, the yield-point micro-op IS the
record/replay instrumentation site of Figure 2; there is no separate
instrumentation layer that could be compiled differently between modes.

Machine code is a list of ``(mop, a, b)`` tuples dispatched by the engine
in :mod:`repro.vm.interp`.  Symbolic operands are resolved at compile time
to offsets, :class:`RuntimeClass`/:class:`RuntimeMethod` objects, or
vtable keys.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field

from repro.vm import words
from repro.vm.bytecode import BRANCHES, Instr, Op
from repro.vm.engineconfig import EngineConfig
from repro.vm.errors import VMError, VMTrap
from repro.vm.refmaps import field_ref

# -- micro-op codes ----------------------------------------------------------

M_NOP = 0
M_ICONST = 1
M_LDC = 2
M_ACONST_NULL = 3
M_DUP = 4
M_POP = 5
M_SWAP = 6
M_ILOAD = 7
M_ISTORE = 8
M_ALOAD = 9
M_ASTORE = 10
M_IINC = 11

M_IADD = 12
M_ISUB = 13
M_IMUL = 14
M_IDIV = 15
M_IREM = 16
M_INEG = 17
M_ISHL = 18
M_ISHR = 19
M_IUSHR = 20
M_IAND = 21
M_IOR = 22
M_IXOR = 23

M_GOTO = 24
M_IFEQ = 25
M_IFNE = 26
M_IFLT = 27
M_IFLE = 28
M_IFGT = 29
M_IFGE = 30
M_IF_ICMPEQ = 31
M_IF_ICMPNE = 32
M_IF_ICMPLT = 33
M_IF_ICMPLE = 34
M_IF_ICMPGT = 35
M_IF_ICMPGE = 36
M_IF_ACMPEQ = 37
M_IF_ACMPNE = 38
M_IFNULL = 39
M_IFNONNULL = 40

M_NEW = 41
M_GETFIELD = 42
M_PUTFIELD = 43
M_GETSTATIC = 44
M_PUTSTATIC = 45
M_NEWARRAY = 46
M_ANEWARRAY = 47
M_IALOAD = 48
M_IASTORE = 49
M_AALOAD = 50
M_AASTORE = 51
M_ARRAYLENGTH = 52
M_INSTANCEOF = 53
M_CHECKCAST = 54

M_INVOKESTATIC = 55
M_INVOKEVIRTUAL = 56
M_RETURN = 57
M_IRETURN = 58
M_ARETURN = 59

M_MONITORENTER = 60
M_MONITOREXIT = 61

M_YIELDPOINT = 62

# -- fused micro-ops (superinstructions) -------------------------------------
#
# Emitted only into the *executable* program (``MachineCode.xops``) by the
# peephole pass below; the canonical listing ``MachineCode.ops`` never
# contains them.  Each fused op charges exactly as many cycles as the
# micro-ops it replaces (its entry in ``xweights``).  Legality rules:
#
#   * a group never contains an *interior* yield point (logical clocks
#     are sacred); the one exception is :data:`F_YP_GROUP`, whose
#     terminal op IS a yield point — the group carries its own cycle and
#     yield accounting so the controller observes the yield point at the
#     exact canonical cycle and pc it would have unfused;
#   * no interior op of a group is a branch target (control can only
#     enter at the group head);
#   * only the *terminal* op of a group may trap or branch — so a trap
#     charges the same cycles fused or unfused, and partial execution of
#     a group is impossible;
#   * no op of a group allocates, invokes, returns, or touches monitors
#     (safe points and scheduling points keep their exact positions).

F_PUSH2 = 70  # a=(s1, s2)           two local loads
F_PUSH_LC = 71  # a=(slot, const)      local load + iconst
F_CONST_STORE = 72  # a=(const, slot)      iconst + store
F_MOVE = 73  # a=(src, dst)         local-to-local copy
F_LL_BIN = 74  # a=(s1, s2), b=fn     load, load, binop
F_LC_BIN = 75  # a=(slot, const), b=fn
F_C_BIN = 76  # a=const, b=fn        iconst + binop against stack top
F_BIN_STORE = 77  # a=slot, b=fn         binop + store
F_LL_CMPBR = 78  # a=(s1, s2), b=(cmp, target)
F_LC_CMPBR = 79  # a=(slot, const), b=(cmp, target)
F_SL_CMPBR = 80  # a=slot, b=(cmp, target)   stack top vs local
F_SC_CMPBR = 81  # a=const, b=(cmp, target)  stack top vs const
F_L_BR = 82  # a=slot, b=(test, target)  local load + unary branch
F_AL_GETFIELD = 83  # a=(slot, offset)     aload + getfield
F_DUP_PUTFIELD = 84  # a=offset             dup + putfield
F_ALL_PUTFIELD = 85  # a=(objslot, valslot), b=offset
F_ALC_PUTFIELD = 86  # a=(objslot, const), b=offset
F_ALL_ALOAD = 87  # a=(arrslot, idxslot) load, load, array element load
F_IINC_BR = 88  # a=(slot, delta), b=target   iinc + goto (the loop tail)
F_YP_GROUP = 89  # a=tag, b=(pre_fn, n_pre)   pure ops + terminal yield point

#: yield-point location tags (carried so tests/traces can tell them apart)
YP_PROLOGUE = 0
YP_BACKEDGE = 1

_SIMPLE = {
    Op.NOP: M_NOP,
    Op.ACONST_NULL: M_ACONST_NULL,
    Op.DUP: M_DUP,
    Op.POP: M_POP,
    Op.SWAP: M_SWAP,
    Op.IADD: M_IADD,
    Op.ISUB: M_ISUB,
    Op.IMUL: M_IMUL,
    Op.IDIV: M_IDIV,
    Op.IREM: M_IREM,
    Op.INEG: M_INEG,
    Op.ISHL: M_ISHL,
    Op.ISHR: M_ISHR,
    Op.IUSHR: M_IUSHR,
    Op.IAND: M_IAND,
    Op.IOR: M_IOR,
    Op.IXOR: M_IXOR,
    Op.NEWARRAY: M_NEWARRAY,
    Op.IALOAD: M_IALOAD,
    Op.IASTORE: M_IASTORE,
    Op.AALOAD: M_AALOAD,
    Op.AASTORE: M_AASTORE,
    Op.ARRAYLENGTH: M_ARRAYLENGTH,
    Op.RETURN: M_RETURN,
    Op.IRETURN: M_IRETURN,
    Op.ARETURN: M_ARETURN,
    Op.MONITORENTER: M_MONITORENTER,
    Op.MONITOREXIT: M_MONITOREXIT,
}

_BRANCH = {
    Op.GOTO: M_GOTO,
    Op.IFEQ: M_IFEQ,
    Op.IFNE: M_IFNE,
    Op.IFLT: M_IFLT,
    Op.IFLE: M_IFLE,
    Op.IFGT: M_IFGT,
    Op.IFGE: M_IFGE,
    Op.IF_ICMPEQ: M_IF_ICMPEQ,
    Op.IF_ICMPNE: M_IF_ICMPNE,
    Op.IF_ICMPLT: M_IF_ICMPLT,
    Op.IF_ICMPLE: M_IF_ICMPLE,
    Op.IF_ICMPGT: M_IF_ICMPGT,
    Op.IF_ICMPGE: M_IF_ICMPGE,
    Op.IF_ACMPEQ: M_IF_ACMPEQ,
    Op.IF_ACMPNE: M_IF_ACMPNE,
    Op.IFNULL: M_IFNULL,
    Op.IFNONNULL: M_IFNONNULL,
}

#: fixed per-frame overhead charged against the thread stack, in words
#: (saved pc, method pointer, monitor bookkeeping, spill margin).
FRAME_OVERHEAD_WORDS = 6


# -- superinstruction fusion -------------------------------------------------


def idiv_trapping(x: int, y: int) -> int:
    try:
        return words.idiv(x, y)
    except ZeroDivisionError:
        raise VMTrap("ArithmeticDivByZero") from None


def irem_trapping(x: int, y: int) -> int:
    try:
        return words.irem(x, y)
    except ZeroDivisionError:
        raise VMTrap("ArithmeticDivByZero") from None


#: binops fusable as a group terminal (division traps, which is legal
#: terminally — the whole group is charged before the trap either way).
BIN_FNS = {
    M_IADD: words.iadd,
    M_ISUB: words.isub,
    M_IMUL: words.imul,
    M_IDIV: idiv_trapping,
    M_IREM: irem_trapping,
    M_ISHL: words.ishl,
    M_ISHR: words.ishr,
    M_IUSHR: words.iushr,
    M_IAND: words.iand,
    M_IOR: words.ior,
    M_IXOR: words.ixor,
}

#: two-operand compare-and-branch predicates (acmp compares addresses,
#: which are plain ints here, so the int predicates serve both).
CMP2_FNS = {
    M_IF_ICMPEQ: operator.eq,
    M_IF_ICMPNE: operator.ne,
    M_IF_ICMPLT: operator.lt,
    M_IF_ICMPLE: operator.le,
    M_IF_ICMPGT: operator.gt,
    M_IF_ICMPGE: operator.ge,
    M_IF_ACMPEQ: operator.eq,
    M_IF_ACMPNE: operator.ne,
}


def _eq0(x: int) -> bool:
    return x == 0


def _ne0(x: int) -> bool:
    return x != 0


def _lt0(x: int) -> bool:
    return x < 0


def _le0(x: int) -> bool:
    return x <= 0


def _gt0(x: int) -> bool:
    return x > 0


def _ge0(x: int) -> bool:
    return x >= 0


CMP1_FNS = {
    M_IFEQ: _eq0,
    M_IFNE: _ne0,
    M_IFLT: _lt0,
    M_IFLE: _le0,
    M_IFGT: _gt0,
    M_IFGE: _ge0,
    M_IFNULL: _eq0,
    M_IFNONNULL: _ne0,
}

_BRANCH_MOPS = frozenset(_BRANCH.values())
_FUSED_BRANCH_MOPS = frozenset((F_LL_CMPBR, F_LC_CMPBR, F_SL_CMPBR, F_SC_CMPBR, F_L_BR))
_LOADS = (M_ILOAD, M_ALOAD)
_STORES = (M_ISTORE, M_ASTORE)


def _match_group(ops: list, i: int, n: int, targets: frozenset):
    """Longest fusable group starting at *i*, or None.

    Returns ``((mop, a, b), width)``.  Greedy: triples before pairs.
    Interior positions must not be branch targets; the pattern tables
    guarantee only terminal ops may trap or branch.
    """
    m0, a0, _ = ops[i]
    if m0 in _LOADS:
        if i + 1 >= n or (i + 1) in targets:
            return None
        m1, a1, _ = ops[i + 1]
        if (m1 in _LOADS or m1 == M_ICONST) and i + 2 < n and (i + 2) not in targets:
            m2, a2, _ = ops[i + 2]
            fn = BIN_FNS.get(m2)
            if fn is not None:
                return ((F_LL_BIN if m1 != M_ICONST else F_LC_BIN, (a0, a1), fn), 3)
            fn = CMP2_FNS.get(m2)
            if fn is not None:
                mop = F_LL_CMPBR if m1 != M_ICONST else F_LC_CMPBR
                return ((mop, (a0, a1), (fn, a2)), 3)
            if m2 == M_PUTFIELD and m0 == M_ALOAD:
                mop = F_ALL_PUTFIELD if m1 != M_ICONST else F_ALC_PUTFIELD
                return ((mop, (a0, a1), a2), 3)
            if (m2 == M_IALOAD or m2 == M_AALOAD) and m1 != M_ICONST:
                return ((F_ALL_ALOAD, (a0, a1), None), 3)
        if m1 in _LOADS:
            return ((F_PUSH2, (a0, a1), None), 2)
        if m1 == M_ICONST:
            return ((F_PUSH_LC, (a0, a1), None), 2)
        if m1 in _STORES:
            return ((F_MOVE, (a0, a1), None), 2)
        if m1 == M_GETFIELD and m0 == M_ALOAD:
            return ((F_AL_GETFIELD, (a0, a1), None), 2)
        fn = CMP2_FNS.get(m1)
        if fn is not None:
            return ((F_SL_CMPBR, a0, (fn, a1)), 2)
        fn = CMP1_FNS.get(m1)
        if fn is not None:
            return ((F_L_BR, a0, (fn, a1)), 2)
        return None
    if m0 == M_ICONST:
        if i + 1 >= n or (i + 1) in targets:
            return None
        m1, a1, _ = ops[i + 1]
        if m1 in _STORES:
            return ((F_CONST_STORE, (a0, a1), None), 2)
        fn = BIN_FNS.get(m1)
        if fn is not None:
            return ((F_C_BIN, a0, fn), 2)
        fn = CMP2_FNS.get(m1)
        if fn is not None:
            return ((F_SC_CMPBR, a0, (fn, a1)), 2)
        return None
    fn = BIN_FNS.get(m0)
    if fn is not None:
        if i + 1 < n and (i + 1) not in targets:
            m1, a1, _ = ops[i + 1]
            if m1 in _STORES:
                return ((F_BIN_STORE, a1, fn), 2)
        return None
    if m0 == M_DUP:
        if i + 1 < n and (i + 1) not in targets:
            m1, a1, _ = ops[i + 1]
            if m1 == M_PUTFIELD:
                return ((F_DUP_PUTFIELD, a1, None), 2)
        return None
    if m0 == M_IINC:
        if i + 1 < n and (i + 1) not in targets:
            m1, a1, _ = ops[i + 1]
            if m1 == M_GOTO:
                return ((F_IINC_BR, (a0, ops[i][2]), a1), 2)
    return None


#: ops pure enough to ride in front of a yield point: no traps, no
#: branches, no heap access, no allocation — replaying the prefix is
#: indistinguishable from executing it unfused.
_YP_PURE = (M_ILOAD, M_ALOAD, M_ICONST, M_IINC)
_MAX_YP_PREFIX = 3


def _yp_prefix_fn(pre: list):
    """Executor closure for the pure ops preceding a fused yield point.

    Common shapes get specialised closures; anything else falls back to a
    generic loop.  All of them mutate ``stack``/``locals_`` exactly as the
    unfused micro-ops would.
    """
    if len(pre) == 1:
        m0, a0, b0 = pre[0]
        if m0 == M_ICONST:
            def h(stack, locals_):
                stack.append(a0)
            return h
        if m0 == M_IINC:
            to_i32 = words.to_i32

            def h(stack, locals_):
                locals_[a0] = to_i32(locals_[a0] + b0)
            return h

        def h(stack, locals_):
            stack.append(locals_[a0])
        return h
    if len(pre) == 2:
        (m0, a0, _), (m1, a1, _) = pre
        if m0 in _LOADS and m1 in _LOADS:
            def h(stack, locals_):
                stack.append(locals_[a0])
                stack.append(locals_[a1])
            return h
        if m0 in _LOADS and m1 == M_ICONST:
            def h(stack, locals_):
                stack.append(locals_[a0])
                stack.append(a1)
            return h
    to_i32 = words.to_i32

    def h(stack, locals_):
        for m, a, b in pre:
            if m == M_ICONST:
                stack.append(a)
            elif m == M_IINC:
                locals_[a] = to_i32(locals_[a] + b)
            else:
                stack.append(locals_[a])
    return h


def _match_yp_group(ops: list, i: int, n: int, targets: frozenset):
    """Record-aware group: up to :data:`_MAX_YP_PREFIX` pure ops ending
    at a yield point, or None.

    Matched *before* the ordinary pattern tables so instrumented yield
    points stop breaking fusion around loop heads and backedges.  The
    yield point itself is the group terminal; interior positions (and
    the yield point) must not be branch targets — the compiler never
    makes a yield point a target, but the pure ops in front could be.
    """
    if ops[i][0] not in _YP_PURE:
        return None
    j = i
    while j < n and j - i < _MAX_YP_PREFIX and ops[j][0] in _YP_PURE:
        j += 1
    if j >= n or ops[j][0] != M_YIELDPOINT:
        return None
    for k in range(i + 1, j + 1):
        if k in targets:
            return None
    pre = ops[i:j]
    tag = ops[j][1]
    return ((F_YP_GROUP, tag, (_yp_prefix_fn(pre), j - i)), j - i + 1)


def _fuse(mc: "MachineCode") -> None:
    """Build the fused executable program xops/xbci_of/xweights from ops.

    Branch targets (which, by legality, can only name group heads) are
    remapped from canonical to executable pc space at the end.
    """
    ops = mc.ops
    n = len(ops)
    targets = set()
    for mop, a, _ in ops:
        if mop in _BRANCH_MOPS:
            targets.add(a)
    targets = frozenset(targets)

    xops: list[tuple] = []
    xbci: list[int] = []
    xweights: list[int] = []
    old2new = [-1] * (n + 1)
    i = 0
    while i < n:
        old2new[i] = len(xops)
        match = _match_yp_group(ops, i, n, targets)
        if match is None:
            match = _match_group(ops, i, n, targets)
        if match is None:
            xops.append(ops[i])
            xbci.append(mc.bci_of[i])
            xweights.append(1)
            i += 1
        else:
            (mop, a, b), width = match
            xops.append((mop, a, b))
            xbci.append(mc.bci_of[i])
            xweights.append(width)
            mc.fused_groups += 1
            i += width

    for idx, (mop, a, b) in enumerate(xops):
        if mop in _BRANCH_MOPS:
            assert old2new[a] >= 0, "branch into the interior of a fused group"
            xops[idx] = (mop, old2new[a], b)
        elif mop in _FUSED_BRANCH_MOPS:
            fn, t = b
            assert old2new[t] >= 0, "branch into the interior of a fused group"
            xops[idx] = (mop, a, (fn, old2new[t]))
        elif mop == F_IINC_BR:
            assert old2new[b] >= 0, "branch into the interior of a fused group"
            xops[idx] = (mop, a, old2new[b])

    mc.xops = xops
    mc.xbci_of = xbci
    mc.xweights = xweights


class InvokeSite:
    """One compiled ``invokevirtual`` site.

    Carries the precomputed arity (so the engine stops chasing
    ``signature.nargs`` per call) and the site's monomorphic inline
    cache: the last dispatched ``class_id`` and its resolved target.
    The loader invalidates every site whenever a class is linked, so a
    cache can never go stale across dynamic loading.
    """

    __slots__ = ("key", "proto", "nargs", "recv_index", "cid", "target")

    def __init__(self, key: str, proto):
        self.key = key
        self.proto = proto
        self.nargs = proto.mdef.signature.nargs + 1  # + receiver
        self.recv_index = -self.nargs  # receiver slot, from stack top
        self.cid = -1
        self.target = None

    def invalidate(self) -> None:
        self.cid = -1
        self.target = None

    def __repr__(self) -> str:  # pragma: no cover
        state = "empty" if self.cid < 0 else f"cid={self.cid}"
        return f"<InvokeSite {self.key} {state}>"


@dataclass
class MachineCode:
    """Compiled body of one method.

    ``ops`` is the *canonical* (unfused) micro-op listing — disasm, the
    invariant tests, and every per-bci artifact (reference maps, line
    numbers) are defined against it.  The engine executes the derived
    *executable* program ``xops`` instead, which the peephole pass may
    have rewritten with superinstructions; without fusion the executable
    program simply aliases the canonical one.  Frame pcs are executable
    pcs, so ``xbci_of`` (not ``bci_of``) maps a live frame to its bci.
    """

    qualname: str
    ops: list[tuple] = field(default_factory=list)
    #: machine pc -> bytecode index (for GC maps, line numbers, debugger)
    bci_of: list[int] = field(default_factory=list)
    #: bytecode index -> first machine pc
    pc_of_bci: list[int] = field(default_factory=list)
    nlocals: int = 0
    max_stack: int = 0
    frame_words: int = 0
    n_yieldpoints: int = 0
    #: executable program (fused); aliases ops/bci_of when fusion is off
    xops: list[tuple] = None  # type: ignore[assignment]
    xbci_of: list[int] = None  # type: ignore[assignment]
    #: cycles charged per executable op (None ⇒ every op charges 1)
    xweights: list[int] | None = None
    #: number of superinstructions emitted (static count)
    fused_groups: int = 0
    #: threaded-dispatch handler table, bound lazily by the engine
    entries: list | None = None

    def bci_at(self, pc: int) -> int:
        return self.bci_of[pc]


def compile_method(loader, rc, rm, config: EngineConfig | None = None) -> MachineCode:
    """Baseline-compile *rm* of class *rc* (the loader's ``compile_fn``)."""
    mdef = rm.mdef
    if mdef.native:
        raise VMError(f"cannot compile native method {rm.qualname}")
    assert rm.maps is not None, "verify before compiling"

    mc = MachineCode(qualname=rm.qualname)
    mc.nlocals = mdef.max_locals
    mc.max_stack = rm.maps.max_stack
    mc.frame_words = mc.nlocals + mc.max_stack + FRAME_OVERHEAD_WORDS

    ops = mc.ops
    bci_of = mc.bci_of

    def emit(bci: int, mop: int, a: object = None, b: object = None) -> None:
        ops.append((mop, a, b))
        bci_of.append(bci)

    # method-prologue yield point (Jalapeño puts one in every prologue)
    emit(0, M_YIELDPOINT, YP_PROLOGUE)
    mc.n_yieldpoints += 1

    fixups: list[tuple[int, int]] = []  # (machine pc, target bci)
    mc.pc_of_bci = [0] * len(mdef.code)

    for bci, instr in enumerate(mdef.code):
        # a backward branch gets a yield point in front of it (loop backedge)
        if instr.op in BRANCHES and int(instr.arg) <= bci:  # type: ignore[arg-type]
            emit(bci, M_YIELDPOINT, YP_BACKEDGE)
            mc.n_yieldpoints += 1
        mc.pc_of_bci[bci] = len(ops)
        _translate(loader, rc, instr, bci, ops, emit, fixups)

    for pc, target_bci in fixups:
        mop, _, b = ops[pc]
        ops[pc] = (mop, mc.pc_of_bci[target_bci], b)

    if config is not None and config.fusion:
        _fuse(mc)
    else:
        mc.xops = mc.ops
        mc.xbci_of = mc.bci_of
        mc.xweights = None
    return mc


def _translate(loader, rc, instr: Instr, bci: int, ops: list, emit, fixups) -> None:
    op = instr.op
    mop = _SIMPLE.get(op)
    if mop is not None:
        emit(bci, mop)
        return
    mop = _BRANCH.get(op)
    if mop is not None:
        fixups.append((len(ops), int(instr.arg)))  # type: ignore[arg-type]
        emit(bci, mop, -1)
        return
    if op is Op.ICONST:
        emit(bci, M_ICONST, int(instr.arg))  # type: ignore[arg-type]
    elif op is Op.LDC:
        emit(bci, M_LDC, rc, int(instr.arg))  # type: ignore[arg-type]
    elif op in (Op.ILOAD, Op.ALOAD):
        emit(bci, M_ILOAD if op is Op.ILOAD else M_ALOAD, int(instr.arg))  # type: ignore[arg-type]
    elif op in (Op.ISTORE, Op.ASTORE):
        emit(bci, M_ISTORE if op is Op.ISTORE else M_ASTORE, int(instr.arg))  # type: ignore[arg-type]
    elif op is Op.IINC:
        slot, delta = instr.arg  # type: ignore[misc]
        emit(bci, M_IINC, slot, delta)
    elif op is Op.NEW:
        emit(bci, M_NEW, loader.ensure_layout(str(instr.arg)))
    elif op in (Op.GETFIELD, Op.PUTFIELD):
        ref, _ = field_ref(instr.arg)
        slot = loader.resolve_instance_field(ref)
        emit(bci, M_GETFIELD if op is Op.GETFIELD else M_PUTFIELD, slot.offset)
    elif op in (Op.GETSTATIC, Op.PUTSTATIC):
        ref, _ = field_ref(instr.arg)
        holder_rc, slot = loader.resolve_static_field(ref)
        emit(
            bci,
            M_GETSTATIC if op is Op.GETSTATIC else M_PUTSTATIC,
            holder_rc,
            slot.offset,
        )
    elif op is Op.ANEWARRAY:
        emit(bci, M_ANEWARRAY, "[" + str(instr.arg))
    elif op in (Op.INSTANCEOF, Op.CHECKCAST):
        target = loader.ensure_layout(str(instr.arg))
        emit(bci, M_INSTANCEOF if op is Op.INSTANCEOF else M_CHECKCAST, target)
    elif op is Op.INVOKESTATIC:
        rm = loader.resolve_static_method(str(instr.arg))
        # b = precomputed arity, so the engine never chases signature.nargs
        emit(bci, M_INVOKESTATIC, rm, rm.mdef.signature.nargs)
    elif op is Op.INVOKEVIRTUAL:
        key, proto = loader.resolve_virtual(str(instr.arg))
        site = InvokeSite(key, proto)
        loader.register_ic_site(site)
        emit(bci, M_INVOKEVIRTUAL, key, site)
    else:  # pragma: no cover - exhaustive over the ISA
        raise VMError(f"cannot compile opcode {op.name}")
