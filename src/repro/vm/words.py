"""32-bit word semantics.

Guest integer arithmetic follows JVM ``int`` semantics: 32-bit two's
complement with silent wraparound.  Heap memory cells hold Python ints but
every value a guest program can observe is normalised through
:func:`to_i32`.
"""

from __future__ import annotations

I32_MIN = -(1 << 31)
I32_MAX = (1 << 31) - 1
U32_MASK = 0xFFFFFFFF


def to_i32(value: int) -> int:
    """Normalise *value* to signed 32-bit two's-complement."""
    value &= U32_MASK
    if value > I32_MAX:
        value -= 1 << 32
    return value


def to_u32(value: int) -> int:
    """Normalise *value* to unsigned 32-bit."""
    return value & U32_MASK


def iadd(a: int, b: int) -> int:
    return to_i32(a + b)


def isub(a: int, b: int) -> int:
    return to_i32(a - b)


def imul(a: int, b: int) -> int:
    return to_i32(a * b)


def idiv(a: int, b: int) -> int:
    """JVM-style truncating division (rounds toward zero)."""
    if b == 0:
        raise ZeroDivisionError("integer division by zero")
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return to_i32(q)


def irem(a: int, b: int) -> int:
    """JVM-style remainder: sign follows the dividend."""
    if b == 0:
        raise ZeroDivisionError("integer remainder by zero")
    return to_i32(a - idiv(a, b) * b)


def ineg(a: int) -> int:
    return to_i32(-a)


def ishl(a: int, b: int) -> int:
    return to_i32(a << (b & 31))


def ishr(a: int, b: int) -> int:
    return to_i32(to_i32(a) >> (b & 31))


def iushr(a: int, b: int) -> int:
    return to_i32(to_u32(a) >> (b & 31))


def iand(a: int, b: int) -> int:
    return to_i32(a & b)


def ior(a: int, b: int) -> int:
    return to_i32(a | b)


def ixor(a: int, b: int) -> int:
    return to_i32(a ^ b)
