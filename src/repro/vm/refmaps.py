"""Bytecode verification and reference-map construction.

Jalapeño's garbage collectors are *type-accurate*: at every safe point the
collector knows exactly which stack slots and locals hold references
("reference maps").  We obtain the same guarantee by abstract
interpretation over the bytecode: a dataflow fixpoint computes, for every
reachable instruction, the type of every operand-stack slot and local.

The analysis doubles as a verifier — a method that type-checks here cannot
corrupt the heap at runtime, and the GC may trust its maps at any bci
(every bci is a safe point for our green-threaded uniprocessor VM: a thread
is only ever suspended at a yield point, a call site, or an allocation
site, all of which carry maps).

Type lattice:  ``I`` (int) · ``N`` (null) · class/array descriptors ·
``T`` (top = unusable).  ``N`` merges with any reference; distinct
references merge to their least common superclass; int/reference conflicts
merge to ``T``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.vm.bytecode import BRANCHES, CONDITIONAL, Op, UNCONDITIONAL
from repro.vm.classfile import MethodDef
from repro.vm.descriptors import (
    Signature,
    class_name,
    element_type,
    is_array,
    is_reference,
    object_desc,
)
from repro.vm.errors import VerifyError

TOP = "T"
NULL = "N"
INT = "I"

OBJECT_DESC = "LObject;"


class Resolver(Protocol):
    """What the analysis needs to know about the wider class universe."""

    def field_desc(self, ref: str) -> tuple[str, bool]:
        """Return (descriptor, is_static) for a ``Class.field`` reference."""
        ...

    def method_sig(self, ref: str) -> Signature:
        """Return the signature for a ``Class.name(sig)ret`` reference."""
        ...

    def is_subclass(self, name: str, ancestor: str) -> bool: ...

    def common_super(self, a: str, b: str) -> str:
        """Least common superclass name of classes *a* and *b*."""
        ...

    def class_exists(self, name: str) -> bool: ...


def field_ref(arg) -> tuple[str, str | None]:
    """Decode a FIELD operand: ``"Class.field"`` or ``(ref, declared_desc)``."""
    if isinstance(arg, tuple):
        return arg[0], arg[1]
    return str(arg), None


def split_field_ref(ref: str) -> tuple[str, str]:
    """``"Class.field"`` → ``("Class", "field")``."""
    cls, dot, fld = ref.partition(".")
    if not dot or not cls or not fld:
        raise VerifyError(f"malformed field reference {ref!r}")
    return cls, fld


def split_method_ref(ref: str) -> tuple[str, str]:
    """``"Class.name(sig)ret"`` → ``("Class", "name(sig)ret")``."""
    cls, dot, rest = ref.partition(".")
    if not dot or not cls or not rest:
        raise VerifyError(f"malformed method reference {ref!r}")
    return cls, rest


def is_ref_type(t: str) -> bool:
    return t == NULL or is_reference(t)


def merge_types(a: str, b: str, resolver: Resolver) -> str:
    if a == b:
        return a
    if a == TOP or b == TOP:
        return TOP
    if a == NULL and is_reference(b):
        return b
    if b == NULL and is_reference(a):
        return a
    if is_reference(a) and is_reference(b):
        if is_array(a) and is_array(b):
            ea, eb = element_type(a), element_type(b)
            if ea == INT or eb == INT:
                return OBJECT_DESC
            merged = merge_types(ea, eb, resolver)
            return OBJECT_DESC if merged in (TOP, INT) else "[" + merged
        if is_array(a) or is_array(b):
            return OBJECT_DESC
        return object_desc(resolver.common_super(class_name(a), class_name(b)))
    return TOP


def assignable(src: str, dst: str, resolver: Resolver) -> bool:
    """May a value of static type *src* flow where *dst* is expected?"""
    if src == dst:
        return True
    if dst == INT or src == INT:
        return False
    if src == NULL and is_reference(dst):
        return True
    if not (is_reference(src) and is_reference(dst)):
        return False
    if dst == OBJECT_DESC:
        return True
    if is_array(src) and is_array(dst):
        es, ed = element_type(src), element_type(dst)
        if es == INT or ed == INT:
            return es == ed
        return assignable(es, ed, resolver)
    if is_array(src) or is_array(dst):
        return False
    return resolver.is_subclass(class_name(src), class_name(dst))


@dataclass
class CodeMaps:
    """Per-bci type states and derived GC reference maps for one method."""

    method_key: str
    #: locals types per bci; ``None`` for unreachable instructions.
    local_types: list[tuple[str, ...] | None]
    #: operand-stack types per bci (state *before* executing the bci).
    stack_types: list[tuple[str, ...] | None]
    max_stack: int

    def ref_map(self, bci: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """(local slot indices, stack slot indices) holding references at *bci*."""
        locals_t = self.local_types[bci]
        stack_t = self.stack_types[bci]
        if locals_t is None or stack_t is None:
            return ((), ())
        lref = tuple(i for i, t in enumerate(locals_t) if is_ref_type(t))
        sref = tuple(i for i, t in enumerate(stack_t) if is_ref_type(t))
        return (lref, sref)

    def reachable(self, bci: int) -> bool:
        return self.stack_types[bci] is not None


class _State:
    __slots__ = ("locals", "stack")

    def __init__(self, locals_: tuple[str, ...], stack: tuple[str, ...]):
        self.locals = locals_
        self.stack = stack


def analyze_method(
    owner: str,
    method: MethodDef,
    resolver: Resolver,
) -> CodeMaps:
    """Run the dataflow fixpoint; raises :class:`VerifyError` on ill-typed code."""
    key = f"{owner}.{method.key}"
    if method.native:
        return CodeMaps(key, [], [], 0)
    code = method.code
    n = len(code)
    nlocals = method.max_locals or method.compute_max_locals()

    init_locals: list[str] = []
    if not method.static:
        init_locals.append(object_desc(owner))
    init_locals.extend(method.signature.params)
    init_locals.extend([TOP] * (nlocals - len(init_locals)))

    in_states: list[_State | None] = [None] * n
    in_states[0] = _State(tuple(init_locals), ())
    worklist = [0]
    max_stack = 0

    def err(bci: int, msg: str) -> VerifyError:
        return VerifyError(msg, method=key, offset=bci)

    def flow(target: int, state: _State, bci: int) -> None:
        nonlocal max_stack
        if not (0 <= target < n):
            raise err(bci, f"branch target {target} out of range")
        max_stack = max(max_stack, len(state.stack))
        existing = in_states[target]
        if existing is None:
            in_states[target] = _State(state.locals, state.stack)
            worklist.append(target)
            return
        if len(existing.stack) != len(state.stack):
            raise err(
                bci,
                f"stack depth mismatch flowing to {target}: "
                f"{len(existing.stack)} vs {len(state.stack)}",
            )
        new_locals = tuple(
            merge_types(a, b, resolver) for a, b in zip(existing.locals, state.locals)
        )
        new_stack = tuple(
            merge_types(a, b, resolver) for a, b in zip(existing.stack, state.stack)
        )
        for i, t in enumerate(new_stack):
            if t == TOP:
                raise err(bci, f"stack slot {i} merges to unusable type at {target}")
        if new_locals != existing.locals or new_stack != existing.stack:
            in_states[target] = _State(new_locals, new_stack)
            worklist.append(target)

    while worklist:
        bci = worklist.pop()
        state = in_states[bci]
        assert state is not None
        instr = code[bci]
        locals_ = list(state.locals)
        stack = list(state.stack)

        def pop(expect: str | None = None) -> str:
            if not stack:
                raise err(bci, f"stack underflow at {instr.op.name}")
            t = stack.pop()
            if expect == INT and t != INT:
                raise err(bci, f"{instr.op.name} expects int, found {t}")
            if expect == "ref" and not is_ref_type(t):
                raise err(bci, f"{instr.op.name} expects reference, found {t}")
            return t

        def pop_assignable(dst: str) -> str:
            t = pop()
            if not assignable(t, dst, resolver):
                raise err(bci, f"{instr.op.name}: {t} not assignable to {dst}")
            return t

        def push(t: str) -> None:
            stack.append(t)

        op = instr.op
        next_bcis: list[int] = []

        if op is Op.NOP:
            pass
        elif op is Op.ICONST:
            push(INT)
        elif op is Op.LDC:
            push("LString;")
        elif op is Op.ACONST_NULL:
            push(NULL)
        elif op is Op.DUP:
            t = pop()
            push(t)
            push(t)
        elif op is Op.POP:
            pop()
        elif op is Op.SWAP:
            a = pop()
            b = pop()
            push(a)
            push(b)
        elif op is Op.ILOAD:
            slot = int(instr.arg)  # type: ignore[arg-type]
            if locals_[slot] != INT:
                raise err(bci, f"iload from non-int slot {slot} ({locals_[slot]})")
            push(INT)
        elif op is Op.ISTORE:
            pop(INT)
            locals_[int(instr.arg)] = INT  # type: ignore[arg-type]
        elif op is Op.ALOAD:
            slot = int(instr.arg)  # type: ignore[arg-type]
            if not is_ref_type(locals_[slot]):
                raise err(bci, f"aload from non-ref slot {slot} ({locals_[slot]})")
            push(locals_[slot])
        elif op is Op.ASTORE:
            t = pop("ref")
            locals_[int(instr.arg)] = t  # type: ignore[arg-type]
        elif op is Op.IINC:
            slot, _delta = instr.arg  # type: ignore[misc]
            if locals_[slot] != INT:
                raise err(bci, f"iinc on non-int slot {slot}")
        elif op in (
            Op.IADD,
            Op.ISUB,
            Op.IMUL,
            Op.IDIV,
            Op.IREM,
            Op.ISHL,
            Op.ISHR,
            Op.IUSHR,
            Op.IAND,
            Op.IOR,
            Op.IXOR,
        ):
            pop(INT)
            pop(INT)
            push(INT)
        elif op is Op.INEG:
            pop(INT)
            push(INT)
        elif op in (Op.IFEQ, Op.IFNE, Op.IFLT, Op.IFLE, Op.IFGT, Op.IFGE):
            pop(INT)
        elif op in (
            Op.IF_ICMPEQ,
            Op.IF_ICMPNE,
            Op.IF_ICMPLT,
            Op.IF_ICMPLE,
            Op.IF_ICMPGT,
            Op.IF_ICMPGE,
        ):
            pop(INT)
            pop(INT)
        elif op in (Op.IF_ACMPEQ, Op.IF_ACMPNE):
            pop("ref")
            pop("ref")
        elif op in (Op.IFNULL, Op.IFNONNULL):
            pop("ref")
        elif op is Op.GOTO:
            pass
        elif op is Op.NEW:
            cls = str(instr.arg)
            if not resolver.class_exists(cls):
                raise err(bci, f"new of unknown class {cls}")
            push(object_desc(cls))
        elif op in (Op.GETFIELD, Op.PUTFIELD):
            ref, want = field_ref(instr.arg)
            cls, _ = split_field_ref(ref)
            desc, static = resolver.field_desc(ref)
            if static:
                raise err(bci, f"{op.name} on static field {ref}")
            if want is not None and want != desc:
                raise err(bci, f"field {ref} declared {desc}, referenced as {want}")
            if op is Op.PUTFIELD:
                pop_assignable(desc)
                pop_assignable(object_desc(cls))
            else:
                pop_assignable(object_desc(cls))
                push(desc)
        elif op in (Op.GETSTATIC, Op.PUTSTATIC):
            ref, want = field_ref(instr.arg)
            desc, static = resolver.field_desc(ref)
            if not static:
                raise err(bci, f"{op.name} on instance field {ref}")
            if want is not None and want != desc:
                raise err(bci, f"field {ref} declared {desc}, referenced as {want}")
            if op is Op.PUTSTATIC:
                pop_assignable(desc)
            else:
                push(desc)
        elif op is Op.NEWARRAY:
            pop(INT)
            push("[I")
        elif op is Op.ANEWARRAY:
            elem = str(instr.arg)
            pop(INT)
            push("[" + elem)
        elif op is Op.IALOAD:
            pop(INT)
            pop_assignable("[I")
            push(INT)
        elif op is Op.IASTORE:
            pop(INT)
            pop(INT)
            pop_assignable("[I")
        elif op is Op.AALOAD:
            pop(INT)
            arr = pop("ref")
            if arr == NULL:
                push(NULL)
            elif is_array(arr) and is_reference(element_type(arr)):
                push(element_type(arr))
            elif arr == OBJECT_DESC:
                push(OBJECT_DESC)
            else:
                raise err(bci, f"aaload on non-reference-array {arr}")
        elif op is Op.AASTORE:
            pop("ref")
            pop(INT)
            arr = pop("ref")
            if arr != NULL and not (is_array(arr) and is_reference(element_type(arr))):
                raise err(bci, f"aastore on non-reference-array {arr}")
        elif op is Op.ARRAYLENGTH:
            arr = pop("ref")
            if arr != NULL and not is_array(arr) and arr != OBJECT_DESC:
                raise err(bci, f"arraylength on non-array {arr}")
            push(INT)
        elif op is Op.INSTANCEOF:
            pop("ref")
            push(INT)
        elif op is Op.CHECKCAST:
            cls = str(instr.arg)
            if not resolver.class_exists(cls):
                raise err(bci, f"checkcast to unknown class {cls}")
            pop("ref")
            push(object_desc(cls))
        elif op in (Op.INVOKESTATIC, Op.INVOKEVIRTUAL):
            ref = str(instr.arg)
            cls, _ = split_method_ref(ref)
            sig = resolver.method_sig(ref)
            for pdesc in reversed(sig.params):
                pop_assignable(pdesc)
            if op is Op.INVOKEVIRTUAL:
                pop_assignable(object_desc(cls))
            if sig.ret != "V":
                push(sig.ret)
        elif op is Op.RETURN:
            if method.signature.ret != "V":
                raise err(bci, "return in non-void method")
        elif op is Op.IRETURN:
            if method.signature.ret != INT:
                raise err(bci, f"ireturn in method returning {method.signature.ret}")
            pop(INT)
        elif op is Op.ARETURN:
            if not is_reference(method.signature.ret):
                raise err(bci, f"areturn in method returning {method.signature.ret}")
            pop_assignable(method.signature.ret)
        elif op in (Op.MONITORENTER, Op.MONITOREXIT):
            pop("ref")
        else:  # pragma: no cover - exhaustive
            raise err(bci, f"unhandled opcode {op.name}")

        out = _State(tuple(locals_), tuple(stack))
        max_stack = max(max_stack, len(stack))

        if op in BRANCHES:
            next_bcis.append(int(instr.arg))  # type: ignore[arg-type]
        if op in CONDITIONAL or op not in UNCONDITIONAL:
            if op not in UNCONDITIONAL:
                if bci + 1 >= n:
                    raise err(bci, "falls off end of method")
                next_bcis.append(bci + 1)
        for target in next_bcis:
            flow(target, out, bci)

    local_types = [in_states[i].locals if in_states[i] else None for i in range(n)]
    stack_types = [in_states[i].stack if in_states[i] else None for i in range(n)]
    return CodeMaps(key, local_types, stack_types, max_stack)
