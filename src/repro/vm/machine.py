"""The ``VirtualMachine`` facade: one uniprocessor guest world.

A VM owns memory, loader, object model, monitors, scheduler, engine,
collector, natives, and the (optional) attached DejaVu controller.  Two
VMs share nothing — which is what lets the tool VM of the remote-
reflection debugger observe an application VM without perturbing it.
"""

from __future__ import annotations

import hashlib
import random
from collections import deque
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterable

from repro.vm.classfile import ClassDef
from repro.vm.compiler import compile_method
from repro.vm.engineconfig import EngineConfig
from repro.vm.errors import VMError
from repro.vm.gc import Collector
from repro.vm.interp import Engine
from repro.vm.layout import ObjectModel
from repro.vm.loader import Loader, RuntimeMethod
from repro.vm.memory import (
    BOOT_DEJAVU,
    BOOT_DICTIONARY,
    BOOT_THREADS,
    Memory,
)
from repro.vm.monitors import MonitorTable
from repro.vm.native import NativeRegistry, install_core_natives
from repro.vm.observer import ExecutionObserver
from repro.vm.scheduler_types import RunResult  # re-exported convenience
from repro.vm.threads import Scheduler
from repro.vm.timerdev import FixedClock, FixedTimer, TimerSource, WallClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.controller import DejaVu


@dataclass
class VMConfig:
    """Sizing and limits.  Defaults suit tests; benchmarks scale them up."""

    semispace_words: int = 400_000
    initial_stack_words: int = 512
    #: hard cap on one thread's activation stack; exceeding it is a
    #: deterministic StackOverflow trap (Java's StackOverflowError)
    max_stack_words: int = 65_536
    max_cycles: int = 200_000_000
    observe: bool = True
    #: which dispatch/fusion/inline-cache layers the engine enables; any
    #: combination produces bit-identical guest behavior (traces, clocks,
    #: heap digests) — only host-side speed differs
    engine: EngineConfig = field(default_factory=EngineConfig)


def with_baseline_engine(config: VMConfig | None) -> VMConfig:
    """A copy of *config* running the unfused if/elif engine.

    Debug-hook clients (profiler, coverage, breakpoints, time travel)
    hook every *canonical* micro-op, which only the baseline engine
    dispatches one at a time.  Forcing it here changes nothing the guest
    can observe — that is the EngineConfig determinism contract."""
    base = config or VMConfig()
    return replace(base, engine=EngineConfig.baseline())


class Environment:
    """Host environment behind the non-deterministic natives.

    ``seed=None`` draws from host entropy (true non-determinism);
    a fixed seed gives reproducible pseudo-non-determinism for tests.
    """

    def __init__(
        self,
        seed: int | None = 0,
        inputs: Iterable[int] | None = None,
        lines: Iterable[str] | None = None,
    ):
        self._rng = random.Random(seed)
        self.inputs: deque[int] = deque(inputs or [])
        self.lines: deque[str] = deque(lines or [])

    def random_int(self, bound: int) -> int:
        return self._rng.randrange(bound)

    def read_int(self) -> int:
        return self.inputs.popleft() if self.inputs else -1

    def read_line(self) -> str:
        return self.lines.popleft() if self.lines else ""


_DEFAULT = object()


class VirtualMachine:
    def __init__(
        self,
        config: VMConfig | None = None,
        *,
        timer: TimerSource | None | object = _DEFAULT,
        clock: WallClock | None = None,
        env: Environment | None = None,
    ):
        self.config = config or VMConfig()
        self.timer: TimerSource | None
        if timer is _DEFAULT:
            self.timer = FixedTimer(1000)
        else:
            self.timer = timer  # type: ignore[assignment]
        self.clock: WallClock = clock or FixedClock()
        self.env = env or Environment(seed=0)
        self.observer = ExecutionObserver(self.config.observe)

        self.memory = Memory(self.config.semispace_words)
        engine_config = self.config.engine
        self.loader = Loader(
            compile_fn=lambda loader, rc, rm: compile_method(
                loader, rc, rm, engine_config
            )
        )
        self.om = ObjectModel(self.memory, self.loader)
        self.loader.om = self.om
        self.monitors = MonitorTable(self.om)
        self.scheduler = Scheduler(self)
        self.engine = Engine(self)
        self.collector = Collector(self)
        self.om.gc_hook = self.collector.collect
        self.natives = NativeRegistry()
        install_core_natives(self)

        self.output: list[str] = []
        self.trap_reports: list[tuple[int, str, str]] = []
        self.deadlocked: tuple[int, ...] = ()
        self.dejavu: "DejaVu | None" = None
        #: extra GC root visitors (e.g. a ToolInterpreter's frames)
        self.extra_root_visitors: list[Callable[[Callable[[int], int]], None]] = []
        self._ran = False

        self.loader.bootstrap()

    # ------------------------------------------------------------------
    # program setup

    def declare(self, classdefs: Iterable[ClassDef]) -> None:
        self.loader.declare_all(list(classdefs))

    def load(self, name: str) -> None:
        self.loader.load(name)

    def register_native(self, qualname: str, fn: Callable, *, nondet: bool = False) -> None:
        self.natives.register(qualname, fn, nondet=nondet)

    # ------------------------------------------------------------------
    # execution

    def start(self, main: str = "Main.main()V") -> None:
        """Prepare execution: load the main class, spawn the main thread.

        Debugger sessions call :meth:`start`, drive ``engine.run()`` in
        pieces, then :meth:`finish`; plain runs use :meth:`run`.
        """
        if self._ran:
            raise VMError("a VirtualMachine instance runs at most once")
        self._ran = True
        from repro.vm.refmaps import split_method_ref

        cls, _ = split_method_ref(main)
        self.load(cls)
        entry = self.loader.resolve_static_method(main)
        if entry.mdef.signature.spell() != "()V":
            raise VMError(f"main must be ()V, got {entry.qualname}")
        if self.dejavu is not None:
            self.dejavu.on_run_start()
        guest = self.om.new_object(self.loader.classes["Thread"].layout)
        self.scheduler.spawn(guest, entry, name="main")

    def finish(self) -> RunResult:
        """End-of-run bookkeeping (DejaVu END record / verification)."""
        if self.dejavu is not None:
            self.dejavu.on_run_end()
        return self.result()

    @property
    def completed(self) -> bool:
        """True once every guest thread has terminated (or deadlocked)."""
        threads = self.scheduler.threads
        if not threads:
            return False
        return bool(self.deadlocked) or all(not t.alive for t in threads)

    def run(self, main: str = "Main.main()V") -> RunResult:
        """Load the main class, spawn the main thread, run to completion."""
        self.start(main)
        self.engine.run()
        return self.finish()

    def result(self) -> RunResult:
        return RunResult(
            output=list(self.output),
            cycles=self.engine.cycles,
            switches=self.scheduler.switch_count,
            gc_count=self.collector.collections,
            traps=list(self.trap_reports),
            yieldpoints={t.tid: t.yieldpoints for t in self.scheduler.threads},
            heap_digest=self.heap_digest(),
            events=list(self.observer.events),
            deadlocked=self.deadlocked,
        )

    def engine_stats(self) -> dict:
        """Host-side dispatch statistics (never part of RunResult: they
        describe how fast the host executed, not what the guest did)."""
        stats = self.engine.stats()
        stats["fused_sites"] = sum(
            rm.code.fused_groups
            for rm in self.loader.method_by_id
            if rm.code is not None
        )
        stats["ic_sites"] = len(self.loader.ic_sites)
        stats["ic_invalidations"] = self.loader.ic_invalidations
        return stats

    # ------------------------------------------------------------------
    # non-determinism funnels

    def read_clock(self) -> int:
        """Every wall-clock read in the VM goes through here (the paper's
        'reproducing wall-clock values' funnel)."""
        if self.dejavu is not None:
            return self.dejavu.clock_read()
        value = self.clock.read()
        self.observer.emit("clock", value)
        return value

    def clock_advance_hint(self, millis: int) -> None:
        """The scheduler is idle until *millis*; let the clock skip ahead.
        During replay this is a no-op — replayed clock values already
        embody the skip."""
        if self.dejavu is not None and self.dejavu.replaying:
            return
        self.clock.advance_to(millis)

    def call_native(self, thread, rm: RuntimeMethod, args: list[int]):
        from repro.vm.native import NativeCall

        nd = self.natives.lookup(rm.qualname)
        if self.dejavu is not None and nd.nondet:
            return self.dejavu.native_call(thread, rm, nd, args)
        ctx = NativeCall(self, thread, rm, args)
        try:
            return nd.fn(ctx)
        finally:
            ctx.release()

    # ------------------------------------------------------------------
    # services

    def write_output(self, text: str) -> None:
        self.output.append(text)
        self.observer.emit("output", text)

    def collect(self) -> None:
        self.collector.collect()

    def is_instance(self, addr: int, rc) -> bool:
        layout = self.om.layout_of(addr)
        if layout.is_array:
            return rc.name == "Object"
        walk = self.loader.rc_by_id.get(layout.class_id)
        while walk is not None:
            if walk is rc:
                return True
            walk = walk.super_rc
        return False

    def visit_all_roots(self, fwd: Callable[[int], int]) -> None:
        """Enumerate every root, in a fixed (deterministic) order."""
        mem = self.memory
        for slot in (BOOT_DICTIONARY, BOOT_THREADS, BOOT_DEJAVU):
            v = mem.boot_read(slot)
            if v:
                mem.boot_write(slot, fwd(v))
        self.loader.visit_roots(fwd)
        self.scheduler.visit_roots(fwd)
        self.monitors.visit_roots(fwd)
        if self.dejavu is not None:
            self.dejavu.visit_roots(fwd)
        for visitor in self.extra_root_visitors:
            visitor(fwd)

    def heap_digest(self) -> str:
        """Digest of the active semispace — a strong equality witness for
        'identical program state' between record and replay."""
        mem = self.memory
        lo = mem.base[mem.active]
        h = hashlib.blake2b(digest_size=16)
        h.update(mem.bump.to_bytes(8, "little", signed=False))
        for w in mem.words[lo : mem.bump]:
            h.update(w.to_bytes(9, "little", signed=True))
        return h.hexdigest()

    @property
    def output_text(self) -> str:
        return "".join(self.output)
