"""Type-accurate semispace copying collector (Cheney scan).

The collector is *exact*: every root is enumerated through an explicit
visitor (boot record, loader tables, thread frames via reference maps,
monitor table keys, DejaVu's buffer), and heap tracing follows the ref
fields named by each object's :class:`Layout`.  No conservative scanning,
no pinned objects — precisely the Jalapeño property the paper leans on
("to avoid memory leaks associated with conservative garbage collection
and to allow copying garbage collection, all of Jalapeño's garbage
collectors are type-accurate").

Collections are deterministic: given the same allocation sequence and the
same root-visit order, objects are evacuated in the same order to the same
addresses.  This is why DejaVu need not log anything about GC — and why
*asymmetric* instrumentation allocations would break replay.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.vm.errors import HeapExhaustedError
from repro.vm.layout import FORWARD_BIT, HEADER_AUX, HEADER_CLASS, HEADER_WORDS
from repro.vm.memory import BOOT_GC_COUNT

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.machine import VirtualMachine


class Collector:
    def __init__(self, vm: "VirtualMachine"):
        self.vm = vm
        self.collections = 0
        self.total_evacuated_words = 0
        self._free = 0
        self._to_limit = 0
        self._collecting = False

    def collect(self) -> None:
        vm = self.vm
        mem = vm.om.memory
        if self._collecting:  # pragma: no cover - GC must never allocate
            raise HeapExhaustedError("re-entrant collection")
        self._collecting = True
        try:
            to_base = mem.begin_flip()
            self._free = to_base
            self._to_limit = to_base + mem.semi

            vm.visit_all_roots(self._forward)

            scan = to_base
            while scan < self._free:
                scan += self._scan(scan)

            mem.finish_flip(self._free)
            self.collections += 1
            live = self._free - to_base
            self.total_evacuated_words += live
            mem.boot_write(BOOT_GC_COUNT, self.collections)
            vm.observer.emit("gc", self.collections, live)
        finally:
            self._collecting = False

    # ------------------------------------------------------------------

    def _forward(self, addr: int) -> int:
        """Evacuate the object at *addr* (once); return its new address."""
        if addr == 0:
            return 0
        mem = self.vm.om.memory
        header = mem.read(addr + HEADER_CLASS)
        if header & FORWARD_BIT:
            return header & ~FORWARD_BIT
        size = self._size_of(addr, header)
        new = self._free
        if new + size > self._to_limit:  # pragma: no cover - semispaces are equal
            raise HeapExhaustedError("to-space overflow during collection")
        self._free = new + size
        mem.words[new : new + size] = mem.words[addr : addr + size]
        mem.write(addr + HEADER_CLASS, FORWARD_BIT | new)
        return new

    def _size_of(self, addr: int, header: int) -> int:
        layout = self.vm.loader.layout_by_id(header)
        if layout.is_array:
            return HEADER_WORDS + self.vm.om.memory.read(addr + HEADER_AUX)
        return layout.size_words

    def _scan(self, addr: int) -> int:
        """Forward the references inside the (already-copied) object at *addr*."""
        vm = self.vm
        mem = vm.om.memory
        layout = vm.loader.layout_by_id(mem.read(addr + HEADER_CLASS))
        if layout.is_array:
            n = mem.read(addr + HEADER_AUX)
            if layout.elem_is_ref:
                for i in range(n):
                    slot = addr + HEADER_WORDS + i
                    w = mem.words[slot]
                    if w:
                        mem.words[slot] = self._forward(w)
            return HEADER_WORDS + n
        for off in layout.ref_field_offsets():
            slot = addr + off
            w = mem.words[slot]
            if w:
                mem.words[slot] = self._forward(w)
        return layout.size_words
