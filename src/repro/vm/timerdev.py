"""The virtual timer device and wall-clock sources.

These are the VM's two hardware-level sources of non-determinism:

* the **timer** fires an interrupt after a (varying) number of executed
  micro-ops; the interrupt sets ``preemptive_hardware_bit``, which the next
  yield point observes — exactly Jalapeño's quasi-preemption;
* the **wall clock** answers environmental queries (``currentTimeMillis``)
  and drives ``sleep`` / timed ``wait`` expiration.

Both come in a genuinely non-deterministic host flavour and a seeded
synthetic flavour.  The synthetic flavour is still *non-deterministic from
the guest's point of view* (the guest cannot predict it), but lets tests
inject reproducible schedules.
"""

from __future__ import annotations

import random
import time
from typing import Protocol


class TimerSource(Protocol):
    """Yields the number of micro-ops until the next timer interrupt."""

    def next_interval(self) -> int: ...


class WallClock(Protocol):
    """A millisecond wall clock.  ``read`` may have side effects (advance)."""

    def read(self) -> int: ...

    def advance_to(self, millis: int) -> None:
        """Hint that the VM is idle until *millis* (sleep/timed-wait)."""
        ...


class FixedTimer:
    """Deterministic interrupts every *interval* micro-ops (for tests)."""

    def __init__(self, interval: int = 1000):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval

    def next_interval(self) -> int:
        return self.interval

    def slim_model(self) -> tuple | None:
        return ("fixed", self.interval)


class SeededJitterTimer:
    """Pseudo-random intervals in [lo, hi] from a private PRNG.

    Reproducible given the seed, but unpredictable to the guest — the
    standard way our tests model timer-interrupt non-determinism.
    """

    def __init__(self, seed: int, lo: int = 200, hi: int = 4000):
        if not (0 < lo <= hi):
            raise ValueError(f"bad interval bounds [{lo}, {hi}]")
        self.seed = seed
        self._rng = random.Random(seed)
        self.lo = lo
        self.hi = hi
        self._consumed = False

    def next_interval(self) -> int:
        self._consumed = True
        return self._rng.randint(self.lo, self.hi)

    def slim_model(self) -> tuple | None:
        # The PRNG stream is only reconstructible from the seed while the
        # timer is pristine; a pre-used timer has unrecoverable state.
        if self._consumed:
            return None
        return ("jitter", self.seed, self.lo, self.hi)


class NeverTimer:
    """A timer that never fires: preemption is someone else's job.

    Used by :mod:`repro.explore`, which drives preemption through a
    :class:`~repro.explore.policy.SchedulePolicy` at yield points instead
    of through the interrupt bit — the schedule, not the timer, is the
    only source of preemptive switches.  (Equivalent to ``timer=None``,
    but self-describing at call sites.)
    """

    #: far beyond any reachable cycle budget
    INTERVAL = 1 << 60

    def next_interval(self) -> int:
        return self.INTERVAL

    def slim_model(self) -> tuple | None:
        return ("never",)


def slim_model_of(timer) -> tuple | None:
    """The compact reconstruction spec of a timer device, or None.

    A spec is a small tuple from which :func:`timer_from_model` rebuilds a
    device whose interval stream is *identical* to what the original would
    have produced from this point on.  Host timers (and any pre-used
    jitter timer) have no spec — slim recording then falls back to full
    switch logging.  ``timer=None`` (no preemption source) is modelled as
    ``("none",)``.
    """
    if timer is None:
        return ("none",)
    probe = getattr(timer, "slim_model", None)
    if probe is None:
        return None
    return probe()


def timer_from_model(spec: tuple):
    """Rebuild a pristine timer device from a :func:`slim_model_of` spec."""
    kind = spec[0]
    if kind == "fixed":
        return FixedTimer(int(spec[1]))
    if kind == "jitter":
        return SeededJitterTimer(int(spec[1]), int(spec[2]), int(spec[3]))
    if kind == "never":
        return NeverTimer()
    if kind == "none":
        return None
    raise ValueError(f"unknown slim timer model {spec!r}")


class HostTimer:
    """Interval derived from host-clock jitter: true non-determinism."""

    def __init__(self, lo: int = 200, hi: int = 4000):
        self.lo = lo
        self.hi = hi

    def next_interval(self) -> int:
        jitter = time.perf_counter_ns() % (self.hi - self.lo + 1)
        return self.lo + jitter


class FixedClock:
    """A clock that advances a fixed amount per read (fully deterministic).

    Useful as a *control*: with a fixed clock and a fixed timer the VM is
    deterministic even without DejaVu, which tests exploit.
    """

    def __init__(self, start: int = 0, step: int = 1):
        self._now = start
        self.step = step

    def read(self) -> int:
        self._now += self.step
        return self._now

    def advance_to(self, millis: int) -> None:
        if millis > self._now:
            self._now = millis


class SeededJitterClock:
    """Starts at *start*, advances by a pseudo-random amount per read."""

    def __init__(self, seed: int, start: int = 1_000_000, lo: int = 0, hi: int = 7):
        self._rng = random.Random(seed ^ 0x5EED_C10C)
        self._now = start
        self.lo = lo
        self.hi = hi

    def read(self) -> int:
        self._now += self._rng.randint(self.lo, self.hi)
        return self._now

    def advance_to(self, millis: int) -> None:
        if millis > self._now:
            self._now = millis


class HostClock:
    """The real host clock, scaled so guest workloads see time move."""

    def __init__(self, scale: float = 1.0):
        self.scale = scale
        self._origin = time.monotonic()

    def read(self) -> int:
        return int((time.monotonic() - self._origin) * 1000 * self.scale)

    def advance_to(self, millis: int) -> None:
        # Idle-wait until the host clock catches up (bounded politeness nap).
        while self.read() < millis:
            time.sleep(0.0005)
