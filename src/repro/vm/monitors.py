"""Per-object monitors: the synchronization half of the thread package.

Lock ownership and recursion live in the object header's status word
(``(owner_tid + 1) << 8 | recursion``), so they survive garbage collection
automatically and are visible to a remote debugger reading raw memory.
Entry queues and wait sets are host-side, keyed by object address and
re-keyed when the collector moves objects.

The protocol is deliberately *handoff* style — on release, the lock is
granted directly to the head of the entry queue — because the paper's
replay correctness argument rests on the next-thread choice being a pure
function of thread-package state (§2.2: "the data structure used by the
thread package in selecting the next active thread will also be exactly
reproduced").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.vm.errors import VMTrap
from repro.vm.layout import ObjectModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.threads import GreenThread

_OWNER_SHIFT = 8
_RECURSION_MASK = (1 << _OWNER_SHIFT) - 1
MAX_RECURSION = _RECURSION_MASK


@dataclass
class Monitor:
    """Host-side queues for one contended/waited-on object."""

    addr: int
    entry: "deque[GreenThread]" = field(default_factory=deque)
    waiters: "list[GreenThread]" = field(default_factory=list)

    @property
    def idle(self) -> bool:
        return not self.entry and not self.waiters


def pack_lock(owner_tid: int | None, recursion: int) -> int:
    if owner_tid is None:
        return 0
    return ((owner_tid + 1) << _OWNER_SHIFT) | recursion


def unpack_lock(word: int) -> tuple[int | None, int]:
    if word == 0:
        return None, 0
    return (word >> _OWNER_SHIFT) - 1, word & _RECURSION_MASK


class MonitorTable:
    """All monitors of one VM; owns the lock words via the object model."""

    def __init__(self, om: ObjectModel):
        self.om = om
        self.monitors: dict[int, Monitor] = {}
        # statistics (exported to benchmarks)
        self.acquisitions = 0
        self.contentions = 0
        self.notifies = 0
        #: baseline hooks (repro.baselines.instant_replay): CREW-event
        #: observation on acquisition, and an admission gate consulted
        #: before any grant.  DejaVu uses neither.
        self.on_acquire: "Callable[[int, GreenThread], None] | None" = None
        self.acquire_gate: "Callable[[int, GreenThread], bool] | None" = None
        #: observation hook (repro.explore race detection): fired when a
        #: thread *fully* releases a lock — monitorexit of the outermost
        #: recursion level, entering a wait, or thread-death cleanup —
        #: before any hand-off.  With on_acquire it delimits the
        #: synchronized-with edges of a happens-before analysis.
        self.on_release: "Callable[[int, GreenThread], None] | None" = None

    def monitor(self, addr: int) -> Monitor:
        mon = self.monitors.get(addr)
        if mon is None:
            mon = Monitor(addr)
            self.monitors[addr] = mon
        return mon

    def _gc_sweep(self, addr: int) -> None:
        mon = self.monitors.get(addr)
        if mon is not None and mon.idle:
            del self.monitors[addr]

    # ------------------------------------------------------------------

    def owner(self, addr: int) -> tuple[int | None, int]:
        return unpack_lock(self.om.lock_word(addr))

    def try_enter(self, addr: int, thread: "GreenThread") -> bool:
        """Attempt to acquire; True on success, False when contended."""
        owner, rec = self.owner(addr)
        if owner is None:
            if self.acquire_gate is not None and not self.acquire_gate(addr, thread):
                self.contentions += 1
                return False
            self.om.set_lock_word(addr, pack_lock(thread.tid, 1))
            self.acquisitions += 1
            if self.on_acquire is not None:
                self.on_acquire(addr, thread)
            return True
        if owner == thread.tid:
            if rec >= MAX_RECURSION:
                raise VMTrap("MonitorOverflow", f"recursion > {MAX_RECURSION}")
            self.om.set_lock_word(addr, pack_lock(thread.tid, rec + 1))
            self.acquisitions += 1
            return True
        self.contentions += 1
        return False

    def enqueue_contender(self, addr: int, thread: "GreenThread", recursion: int = 1) -> None:
        """Park *thread* on the entry queue; it resumes owning the lock."""
        thread.pending_recursion = recursion
        self.monitor(addr).entry.append(thread)

    def exit(self, addr: int, thread: "GreenThread") -> "GreenThread | None":
        """Release one level; on full release hand off to the entry head.

        Returns the thread that received the lock (now runnable), if any.
        """
        owner, rec = self.owner(addr)
        if owner != thread.tid:
            raise VMTrap("IllegalMonitorState", "monitorexit by non-owner")
        if rec > 1:
            self.om.set_lock_word(addr, pack_lock(thread.tid, rec - 1))
            return None
        if self.on_release is not None:
            self.on_release(addr, thread)
        return self._release_and_handoff(addr)

    def _release_and_handoff(self, addr: int) -> "GreenThread | None":
        mon = self.monitors.get(addr)
        if mon is not None and mon.entry:
            heir = None
            if self.acquire_gate is not None:
                # gated hand-off: pick the first queued contender the gate
                # admits (baseline enforcement of a recorded CREW order)
                for cand in mon.entry:
                    if self.acquire_gate(addr, cand):
                        heir = cand
                        mon.entry.remove(cand)
                        break
            else:
                heir = mon.entry.popleft()
            if heir is not None:
                self.om.set_lock_word(addr, pack_lock(heir.tid, heir.pending_recursion))
                self.acquisitions += 1
                if self.on_acquire is not None:
                    self.on_acquire(addr, heir)
                self._gc_sweep(addr)
                return heir
        self.om.set_lock_word(addr, 0)
        if mon is not None:
            self._gc_sweep(addr)
        return None

    def grant_if_free(self, addr: int) -> "GreenThread | None":
        """If the lock is free but contenders queue (e.g. a timed wait
        expired while nobody held the lock), hand it to the entry head."""
        owner, _ = self.owner(addr)
        if owner is None:
            return self._release_and_handoff(addr)
        return None

    # ------------------------------------------------------------------
    # wait / notify

    def begin_wait(self, addr: int, thread: "GreenThread") -> "GreenThread | None":
        """Fully release the lock and park *thread* in the wait set.

        Returns the thread that inherited the lock, if any.  The caller
        (the thread package) blocks *thread*; on notify it goes back
        through the entry queue with its saved recursion.
        """
        owner, rec = self.owner(addr)
        if owner != thread.tid:
            raise VMTrap("IllegalMonitorState", "wait by non-owner")
        thread.wait_recursion = rec
        thread.waiting_on = addr
        self.monitor(addr).waiters.append(thread)
        if self.on_release is not None:
            self.on_release(addr, thread)
        return self._release_and_handoff(addr)

    def notify_one(self, addr: int, thread: "GreenThread") -> "GreenThread | None":
        """Move the first waiter (FIFO — deterministic) to the entry queue.

        Returns the notified thread (still blocked until the lock is handed
        to it), or None if no thread was waiting — the paper's footnote 4:
        a notify succeeds iff some thread waits on the object.
        """
        owner, _ = self.owner(addr)
        if owner != thread.tid:
            raise VMTrap("IllegalMonitorState", "notify by non-owner")
        mon = self.monitors.get(addr)
        if mon is None or not mon.waiters:
            return None
        waiter = mon.waiters.pop(0)
        self.notifies += 1
        self._requeue_waiter(addr, waiter)
        return waiter

    def notify_all(self, addr: int, thread: "GreenThread") -> "list[GreenThread]":
        owner, _ = self.owner(addr)
        if owner != thread.tid:
            raise VMTrap("IllegalMonitorState", "notifyAll by non-owner")
        mon = self.monitors.get(addr)
        if mon is None:
            return []
        moved = mon.waiters
        mon.waiters = []
        for waiter in moved:
            self.notifies += 1
            self._requeue_waiter(addr, waiter)
        return moved

    def _requeue_waiter(self, addr: int, waiter: "GreenThread") -> None:
        waiter.waiting_on = 0
        self.enqueue_contender(addr, waiter, recursion=waiter.wait_recursion)
        waiter.wait_recursion = 0

    def cancel_wait(self, addr: int, waiter: "GreenThread") -> bool:
        """Remove *waiter* from the wait set (timed-wait expiry, interrupt).

        Returns True if the waiter was still in the wait set; the caller
        then re-queues it as a lock contender.
        """
        mon = self.monitors.get(addr)
        if mon is None or waiter not in mon.waiters:
            return False
        mon.waiters.remove(waiter)
        self._requeue_waiter(addr, waiter)
        return True

    # ------------------------------------------------------------------
    # thread-death cleanup

    def release_all_owned_by(self, thread: "GreenThread") -> "list[GreenThread]":
        """Force-release every monitor *thread* holds (it is dying).

        Java unwinds ``synchronized`` sections when a thread dies on an
        exception; our traps do the same so one thread's death cannot
        deadlock the others.  Returns the threads that inherited locks.
        The heap walk is deterministic, so this replays exactly.
        """
        heirs: "list[GreenThread]" = []
        for addr, _layout in self.om.walk_heap():
            owner, _rec = unpack_lock(self.om.memory.read(addr + 1))
            if owner == thread.tid:
                if self.on_release is not None:
                    self.on_release(addr, thread)
                heir = self._release_and_handoff(addr)
                if heir is not None:
                    heirs.append(heir)
        return heirs

    # ------------------------------------------------------------------
    # GC support

    def visit_roots(self, fwd: Callable[[int], int]) -> None:
        """Re-key the monitor table after the collector moves objects."""
        rekeyed: dict[int, Monitor] = {}
        for addr, mon in self.monitors.items():
            new_addr = fwd(addr)
            mon.addr = new_addr
            rekeyed[new_addr] = mon
        self.monitors = rekeyed
