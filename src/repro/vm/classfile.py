"""Class-file model: the loader-facing representation of guest classes.

A :class:`ClassDef` is the unit the assembler and builder produce and the
loader consumes.  All references between classes are symbolic; resolution
happens at link time (see :mod:`repro.vm.loader`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vm.bytecode import Instr, Op, OPERAND_KIND, OperandKind
from repro.vm.descriptors import Signature, parse_signature, validate
from repro.vm.errors import VMError


@dataclass
class FieldDef:
    """A field declaration.  ``static`` fields live in the class's static
    area; instance fields are laid out after the object header."""

    name: str
    desc: str
    static: bool = False

    def __post_init__(self) -> None:
        validate(self.desc)


@dataclass
class MethodDef:
    """A method declaration plus (for non-native methods) its bytecode."""

    name: str
    signature: Signature
    code: list[Instr] = field(default_factory=list)
    static: bool = False
    native: bool = False
    #: bci -> source line, for the line tables exposed through reflection.
    line_table: dict[int, int] = field(default_factory=dict)
    max_locals: int = 0

    @property
    def key(self) -> str:
        """Overload-resolving key: ``name(sig)ret``."""
        return f"{self.name}{self.signature.spell()}"

    def compute_max_locals(self) -> int:
        """Locals frame size: parameters (plus ``this``) and every slot used."""
        nargs = self.signature.nargs + (0 if self.static else 1)
        high = nargs
        for instr in self.code:
            kind = OPERAND_KIND[instr.op]
            if kind is OperandKind.LOCAL:
                high = max(high, int(instr.arg) + 1)  # type: ignore[arg-type]
            elif kind is OperandKind.LOCAL_INT:
                slot, _ = instr.arg  # type: ignore[misc]
                high = max(high, int(slot) + 1)
        self.max_locals = high
        return high


@dataclass
class ClassDef:
    """A guest class: fields, methods, string constants, superclass name."""

    name: str
    super_name: str | None = "Object"
    fields: list[FieldDef] = field(default_factory=list)
    methods: list[MethodDef] = field(default_factory=list)
    #: String constant pool; LDC operands index into this list.
    strings: list[str] = field(default_factory=list)
    source: str | None = None

    def __post_init__(self) -> None:
        if self.name == "Object":
            self.super_name = None

    def field_def(self, name: str) -> FieldDef:
        for f in self.fields:
            if f.name == name:
                return f
        raise VMError(f"no field {name!r} in class {self.name}")

    def method_def(self, key: str) -> MethodDef:
        """Look up a method by overload key or (if unambiguous) bare name."""
        matches = [m for m in self.methods if m.key == key or m.name == key]
        if not matches:
            raise VMError(f"no method {key!r} in class {self.name}")
        if len(matches) > 1:
            exact = [m for m in matches if m.key == key]
            if len(exact) == 1:
                return exact[0]
            raise VMError(f"ambiguous method {key!r} in class {self.name}")
        return matches[0]

    def intern_string(self, text: str) -> int:
        """Add *text* to the constant pool (dedup); return its index."""
        try:
            return self.strings.index(text)
        except ValueError:
            self.strings.append(text)
            return len(self.strings) - 1


def make_method(
    name: str,
    sig: str,
    code: list[Instr] | None = None,
    *,
    static: bool = False,
    native: bool = False,
    line_table: dict[int, int] | None = None,
) -> MethodDef:
    """Convenience constructor used by the builder and tests."""
    m = MethodDef(
        name=name,
        signature=parse_signature(sig),
        code=list(code or []),
        static=static,
        native=native,
        line_table=dict(line_table or {}),
    )
    m.compute_max_locals()
    return m


def validate_classdef(cd: ClassDef) -> None:
    """Structural checks that don't need other classes (link checks later)."""
    seen_fields: set[str] = set()
    for f in cd.fields:
        if f.name in seen_fields:
            raise VMError(f"duplicate field {f.name!r} in class {cd.name}")
        seen_fields.add(f.name)
    seen_methods: set[str] = set()
    for m in cd.methods:
        if m.key in seen_methods:
            raise VMError(f"duplicate method {m.key!r} in class {cd.name}")
        seen_methods.add(m.key)
        if m.native:
            if m.code:
                raise VMError(f"native method {cd.name}.{m.key} has code")
            continue
        n = len(m.code)
        if n == 0:
            raise VMError(f"method {cd.name}.{m.key} has empty body")
        for bci, instr in enumerate(m.code):
            kind = OPERAND_KIND[instr.op]
            if kind is OperandKind.TARGET:
                target = int(instr.arg)  # type: ignore[arg-type]
                if not (0 <= target < n):
                    raise VMError(
                        f"branch target {target} out of range in {cd.name}.{m.key}@{bci}"
                    )
            elif kind is OperandKind.STRING:
                idx = int(instr.arg)  # type: ignore[arg-type]
                if not (0 <= idx < len(cd.strings)):
                    raise VMError(
                        f"string index {idx} out of range in {cd.name}.{m.key}@{bci}"
                    )
        last = m.code[-1].op
        if last not in (Op.RETURN, Op.IRETURN, Op.ARETURN, Op.GOTO):
            raise VMError(
                f"method {cd.name}.{m.key} can fall off the end (last op {last.name})"
            )
