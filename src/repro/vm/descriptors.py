"""Type descriptors and method signatures.

Descriptors follow JVM spelling restricted to the types the VM supports:

* ``I``           — 32-bit int (also used for chars and booleans)
* ``V``           — void (return type only)
* ``LName;``      — reference to an instance of class ``Name``
* ``[I`` / ``[LName;`` / ``[[...`` — arrays

A method signature is spelled ``(args)ret``, e.g. ``(I[ILBank;)V``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm.errors import VMError

INT = "I"
VOID = "V"


class DescriptorError(VMError):
    pass


def is_reference(desc: str) -> bool:
    """True if *desc* denotes a reference type (class or array)."""
    return desc.startswith("L") or desc.startswith("[")


def is_array(desc: str) -> bool:
    return desc.startswith("[")


def element_type(desc: str) -> str:
    """Element descriptor of an array descriptor."""
    if not is_array(desc):
        raise DescriptorError(f"not an array descriptor: {desc!r}")
    return desc[1:]


def class_name(desc: str) -> str:
    """Class name of an ``LName;`` descriptor."""
    if not (desc.startswith("L") and desc.endswith(";")):
        raise DescriptorError(f"not a class descriptor: {desc!r}")
    return desc[1:-1]


def object_desc(name: str) -> str:
    return f"L{name};"


def validate(desc: str, *, allow_void: bool = False) -> str:
    """Validate a single field/param descriptor; returns it unchanged."""
    rest = _parse_one(desc, 0, allow_void=allow_void)
    if rest != len(desc):
        raise DescriptorError(f"trailing junk in descriptor: {desc!r}")
    return desc


def _parse_one(text: str, pos: int, *, allow_void: bool = False) -> int:
    """Parse one descriptor starting at *pos*; return the index just past it."""
    if pos >= len(text):
        raise DescriptorError(f"truncated descriptor: {text!r}")
    c = text[pos]
    if c == "I":
        return pos + 1
    if c == "V":
        if not allow_void:
            raise DescriptorError(f"void not allowed here: {text!r}")
        return pos + 1
    if c == "[":
        return _parse_one(text, pos + 1)
    if c == "L":
        end = text.find(";", pos)
        if end < 0:
            raise DescriptorError(f"unterminated class descriptor: {text!r}")
        if end == pos + 1:
            raise DescriptorError(f"empty class name in descriptor: {text!r}")
        return end + 1
    raise DescriptorError(f"bad descriptor character {c!r} in {text!r}")


@dataclass(frozen=True)
class Signature:
    """A parsed method signature: parameter descriptors and return type."""

    params: tuple[str, ...]
    ret: str

    @property
    def nargs(self) -> int:
        return len(self.params)

    def spell(self) -> str:
        return f"({''.join(self.params)}){self.ret}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.spell()


def parse_signature(text: str) -> Signature:
    """Parse ``(params)ret`` into a :class:`Signature`."""
    if not text.startswith("("):
        raise DescriptorError(f"signature must start with '(': {text!r}")
    close = text.find(")")
    if close < 0:
        raise DescriptorError(f"signature missing ')': {text!r}")
    params: list[str] = []
    pos = 1
    while pos < close:
        end = _parse_one(text, pos)
        if end > close:
            raise DescriptorError(f"parameter crosses ')': {text!r}")
        params.append(text[pos:end])
        pos = end
    ret = text[close + 1 :]
    validate(ret, allow_void=True)
    return Signature(tuple(params), ret)
