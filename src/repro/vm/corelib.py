"""The bootstrap guest runtime library.

These classes exist in every VM instance, loaded in a fixed order before
any user class (so class ids and heap metadata layout are identical in the
application VM and the tool VM — a prerequisite for remote reflection).

Notably, ``VM_Method.getLineNumberAt`` is *guest bytecode* implementing the
exact method of the paper's Figure 3 — the tool VM interprets this same
code against remote objects when the debugger asks for line numbers.
"""

from __future__ import annotations

from repro.vm.builder import ClassBuilder
from repro.vm.classfile import ClassDef

#: Thread.state values mirrored into the guest Thread object.
THREAD_NEW = 0
THREAD_READY = 1
THREAD_RUNNING = 2
THREAD_BLOCKED = 3
THREAD_WAITING = 4
THREAD_SLEEPING = 5
THREAD_TERMINATED = 6


def _object() -> ClassDef:
    cb = ClassBuilder("Object", super_name=None)
    # Default constructor: new Object()-style init is a no-op.
    cb.method("init", "()V").ret()
    return cb.build()


def _string() -> ClassDef:
    cb = ClassBuilder("String")
    cb.field("chars", "[I")
    m = cb.method("length", "()I")
    m.aload(0).getfield("String.chars").arraylength().ireturn()
    m = cb.method("charAt", "(I)I")
    m.aload(0).getfield("String.chars").iload(1).iaload().ireturn()
    # equals(String): element-wise comparison — exercised by tests and rtl.
    m = cb.method("equals", "(LString;)I")
    m.aload(1).ifnull("no")
    m.aload(0).getfield("String.chars").arraylength()
    m.aload(1).getfield("String.chars").arraylength()
    m.if_icmpne("no")
    m.iconst(0).istore(2)
    m.label("loop")
    m.iload(2).aload(0).getfield("String.chars").arraylength().if_icmpge("yes")
    m.aload(0).getfield("String.chars").iload(2).iaload()
    m.aload(1).getfield("String.chars").iload(2).iaload()
    m.if_icmpne("no")
    m.iinc(2, 1).goto("loop")
    m.label("yes").iconst(1).ireturn()
    m.label("no").iconst(0).ireturn()
    return cb.build()


def _vm_class() -> ClassDef:
    cb = ClassBuilder("VM_Class")
    cb.field("name", "LString;")
    cb.field("classId", "I")
    cb.field("superId", "I")
    cb.field("methods", "[LVM_Method;")
    cb.field("statics", "LObject;")
    m = cb.method("getName", "()LString;")
    m.aload(0).getfield("VM_Class.name").areturn()
    m = cb.method("getMethods", "()[LVM_Method;")
    m.aload(0).getfield("VM_Class.methods").areturn()
    return cb.build()


def _vm_method() -> ClassDef:
    cb = ClassBuilder("VM_Method")
    cb.field("name", "LString;")
    cb.field("descriptor", "LString;")
    cb.field("declaring", "LVM_Class;")
    cb.field("lineTable", "[I")
    cb.field("methodId", "I")
    cb.field("codeSize", "I")
    m = cb.method("getName", "()LString;")
    m.aload(0).getfield("VM_Method.name").areturn()
    # Figure 3 of the paper, verbatim semantics:
    #   public int getLineNumberAt(int offset) {
    #       if (offset > lineTable.length) return 0;
    #       return lineTable[offset];
    #   }
    m = cb.method("getLineNumberAt", "(I)I")
    m.iload(1).aload(0).getfield("VM_Method.lineTable").arraylength()
    m.if_icmpge("oob")
    m.iload(1).iflt("oob")
    m.aload(0).getfield("VM_Method.lineTable").iload(1).iaload().ireturn()
    m.label("oob").iconst(0).ireturn()
    return cb.build()


def _vm_dictionary() -> ClassDef:
    cb = ClassBuilder("VM_Dictionary")
    cb.field("methods", "[LVM_Method;", static=True)
    cb.field("classes", "[LVM_Class;", static=True)
    cb.field("methodCount", "I", static=True)
    cb.field("classCount", "I", static=True)
    m = cb.method("getMethods", "()[LVM_Method;", static=True)
    m.getstatic("VM_Dictionary.methods").areturn()
    m = cb.method("getClasses", "()[LVM_Class;", static=True)
    m.getstatic("VM_Dictionary.classes").areturn()
    m = cb.method("getMethodCount", "()I", static=True)
    m.getstatic("VM_Dictionary.methodCount").ireturn()
    return cb.build()


def _thread() -> ClassDef:
    cb = ClassBuilder("Thread")
    cb.field("tid", "I")
    cb.field("state", "I")
    cb.field("name", "LString;")
    cb.field("stack", "[I")  # the heap-allocated activation stack (Jalapeño-style)
    cb.field("shadow", "[I")  # shadow call stack: [depth, mid0, bci0, mid1, ...]
    # run() is overridden by user thread subclasses; the base body is empty.
    cb.method("run", "()V").ret()
    m = cb.method("getTid", "()I")
    m.aload(0).getfield("Thread.tid").ireturn()
    # Natives implemented by the thread package (deterministic, not logged).
    cb.native_method("start", "(LThread;)V")
    cb.native_method("yield", "()V")
    cb.native_method("sleep", "(I)V")
    cb.native_method("join", "(LThread;)V")
    cb.native_method("currentTid", "()I")
    return cb.build()


def _system() -> ClassDef:
    cb = ClassBuilder("System")
    # Deterministic output (captured; compared between record and replay).
    cb.native_method("print", "(LString;)V")
    cb.native_method("printInt", "(I)V")
    cb.native_method("printChar", "(I)V")
    # Non-deterministic environmental queries (logged and replayed by DejaVu).
    cb.native_method("currentTimeMillis", "()I")
    cb.native_method("randomInt", "(I)I")
    cb.native_method("readInt", "()I")
    cb.native_method("readLine", "()LString;")
    # Deterministic services.
    cb.native_method("identityHashCode", "(LObject;)I")
    cb.native_method("arraycopy", "([II[III)V")
    cb.native_method("gc", "()V")
    # Monitor-condition natives (deterministic, part of the thread package).
    cb.native_method("wait", "(LObject;)V")
    cb.native_method("timedWait", "(LObject;I)V")
    cb.native_method("notify", "(LObject;)V")
    cb.native_method("notifyAll", "(LObject;)V")
    cb.native_method("interrupt", "(LThread;)I")
    cb.native_method("interrupted", "()I")
    return cb.build()


def _string_builder() -> ClassDef:
    """Minimal growable char buffer used by workloads to format output."""
    cb = ClassBuilder("StringBuilder")
    cb.field("buf", "[I")
    cb.field("len", "I")
    m = cb.method("init", "()V")
    m.aload(0).iconst(16).newarray().putfield("StringBuilder.buf")
    m.aload(0).iconst(0).putfield("StringBuilder.len")
    m.ret()
    # ensure(extra): grow buf so len+extra fits.
    m = cb.method("ensure", "(I)V")
    m.aload(0).getfield("StringBuilder.len").iload(1).iadd()
    m.aload(0).getfield("StringBuilder.buf").arraylength()
    m.if_icmple("done")
    # newbuf = new int[max(2*cap, len+extra)]
    m.aload(0).getfield("StringBuilder.buf").arraylength().iconst(2).imul().istore(2)
    m.aload(0).getfield("StringBuilder.len").iload(1).iadd().istore(3)
    m.iload(2).iload(3).if_icmpge("useCap")
    m.iload(3).istore(2)
    m.label("useCap")
    m.iload(2).newarray().astore(4)
    m.aload(0).getfield("StringBuilder.buf").iconst(0)
    m.aload(4).iconst(0)
    m.aload(0).getfield("StringBuilder.len")
    m.invokestatic("System.arraycopy([II[III)V")
    m.aload(0).aload(4).putfield("StringBuilder.buf")
    m.label("done").ret()
    # appendChar(c)
    m = cb.method("appendChar", "(I)V")
    m.aload(0).iconst(1).invokevirtual("StringBuilder.ensure(I)V")
    m.aload(0).getfield("StringBuilder.buf")
    m.aload(0).getfield("StringBuilder.len")
    m.iload(1).iastore()
    m.aload(0).dup().getfield("StringBuilder.len").iconst(1).iadd()
    m.putfield("StringBuilder.len")
    m.ret()
    # appendInt(v): decimal digits (handles negatives and zero).
    m = cb.method("appendInt", "(I)V")
    m.iload(1).ifne("nonzero")
    m.aload(0).iconst(48).invokevirtual("StringBuilder.appendChar(I)V").ret()
    m.label("nonzero")
    m.iload(1).ifge("pos")
    m.aload(0).iconst(45).invokevirtual("StringBuilder.appendChar(I)V")  # '-'
    m.iload(1).ineg().istore(1)
    m.label("pos")
    # digits into a temp array, then reversed
    m.iconst(12).newarray().astore(2)
    m.iconst(0).istore(3)
    m.label("digits")
    m.iload(1).ifle("emit")
    m.aload(2).iload(3).iload(1).iconst(10).irem().iconst(48).iadd().iastore()
    m.iload(1).iconst(10).idiv().istore(1)
    m.iinc(3, 1).goto("digits")
    m.label("emit")
    m.iload(3).iconst(1).isub().istore(4)
    m.label("rev")
    m.iload(4).iflt("fin")
    m.aload(0).aload(2).iload(4).iaload().invokevirtual("StringBuilder.appendChar(I)V")
    m.iinc(4, -1).goto("rev")
    m.label("fin").ret()
    # appendString(s)
    m = cb.method("appendString", "(LString;)V")
    m.iconst(0).istore(2)
    m.label("loop")
    m.iload(2).aload(1).invokevirtual("String.length()I").if_icmpge("done")
    m.aload(0).aload(1).iload(2).invokevirtual("String.charAt(I)I")
    m.invokevirtual("StringBuilder.appendChar(I)V")
    m.iinc(2, 1).goto("loop")
    m.label("done").ret()
    # toStringObj(): materialise a String
    m = cb.method("toStringObj", "()LString;")
    m.new("String").astore(2)
    m.aload(2)
    m.aload(0).getfield("StringBuilder.len").newarray()
    m.putfield("String.chars")
    m.aload(0).getfield("StringBuilder.buf").iconst(0)
    m.aload(2).getfield("String.chars").iconst(0)
    m.aload(0).getfield("StringBuilder.len")
    m.invokestatic("System.arraycopy([II[III)V")
    m.aload(2).areturn()
    return cb.build()


#: Bootstrap load order — identical in every VM instance.
CORE_CLASS_ORDER = [
    "Object",
    "String",
    "VM_Method",
    "VM_Class",
    "VM_Dictionary",
    "Thread",
    "System",
    "StringBuilder",
]


def core_classdefs() -> dict[str, ClassDef]:
    defs = [
        _object(),
        _string(),
        _vm_method(),
        _vm_class(),
        _vm_dictionary(),
        _thread(),
        _system(),
        _string_builder(),
    ]
    return {cd.name: cd for cd in defs}
