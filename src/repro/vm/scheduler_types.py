"""Shared result types for VM runs (kept separate to avoid import cycles)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RunResult:
    """Everything observable about one completed VM run."""

    output: list[str] = field(default_factory=list)
    cycles: int = 0
    switches: int = 0
    gc_count: int = 0
    traps: list[tuple[int, str, str]] = field(default_factory=list)
    yieldpoints: dict[int, int] = field(default_factory=dict)
    heap_digest: str = ""
    events: list[tuple] = field(default_factory=list)
    deadlocked: tuple[int, ...] = ()

    @property
    def output_text(self) -> str:
        return "".join(self.output)

    def behavior_key(self) -> tuple:
        """The canonical 'execution behaviour' witness (paper §2): event
        sequence + program state.  Two runs with equal keys are identical
        executions at the granularity DejaVu guarantees."""
        return (tuple(self.events), self.heap_digest, self.cycles)
