"""Flat word-addressable memory with two semispaces and a boot record.

Every guest-visible datum lives in this memory, which is what makes remote
reflection real: a debugger attached through :class:`repro.remote.ptrace.
DebugPort` reads these words and nothing else.

Address map::

    [0, BOOT_WORDS)                         boot record (GC roots, magic)
    [BOOT_WORDS, BOOT_WORDS + semi)         semispace 0
    [BOOT_WORDS + semi, BOOT_WORDS + 2semi) semispace 1

Address 0 holds the boot magic and is never a valid object address, so the
guest null reference is the integer 0.
"""

from __future__ import annotations

from repro.vm.errors import VMError

#: Boot-record slot indices.  The debugger reads these to find the roots.
BOOT_MAGIC = 0
BOOT_DICTIONARY = 1  # -> VM_Dictionary object
BOOT_THREADS = 2  # -> Thread[] table
BOOT_STRINGS = 3  # -> String[] intern table
BOOT_DEJAVU = 4  # -> DejaVu trace buffer ([I), 0 when DejaVu inactive
BOOT_GC_COUNT = 5  # number of collections performed
BOOT_CLASS_COUNT = 6  # number of loaded classes
BOOT_SHADOW = 7  # -> [I[] per-thread shadow stacks (parallel to threads)
BOOT_WORDS = 16

MAGIC = 0x7EC0_11AD  # "pequeño, 11AD" — checked by the debug port


class MemoryFault(VMError):
    """Out-of-range or unmapped access (host-level bug, not a guest trap)."""


class Memory:
    """The raw word store plus semispace bookkeeping."""

    def __init__(self, semispace_words: int):
        if semispace_words < 64:
            raise VMError(f"semispace too small: {semispace_words}")
        self.semi = semispace_words
        self.words: list[int] = [0] * (BOOT_WORDS + 2 * semispace_words)
        self.base = (BOOT_WORDS, BOOT_WORDS + semispace_words)
        self.active = 0
        self.bump = self.base[0]
        self.limit = self.base[0] + semispace_words
        self.words[BOOT_MAGIC] = MAGIC

    # -- raw access --------------------------------------------------------

    def read(self, addr: int) -> int:
        try:
            if addr < 0:
                raise IndexError(addr)
            return self.words[addr]
        except IndexError:
            raise MemoryFault(f"read out of range: {addr}") from None

    def write(self, addr: int, value: int) -> None:
        if not (0 <= addr < len(self.words)):
            raise MemoryFault(f"write out of range: {addr}")
        self.words[addr] = value

    def read_range(self, addr: int, count: int) -> list[int]:
        if count < 0 or addr < 0 or addr + count > len(self.words):
            raise MemoryFault(f"range read out of range: {addr}+{count}")
        return self.words[addr : addr + count]

    # -- boot record --------------------------------------------------------

    def boot_read(self, slot: int) -> int:
        if not (0 <= slot < BOOT_WORDS):
            raise MemoryFault(f"boot slot out of range: {slot}")
        return self.words[slot]

    def boot_write(self, slot: int, value: int) -> None:
        if not (0 < slot < BOOT_WORDS):  # slot 0 (magic) is read-only
            raise MemoryFault(f"boot slot out of range: {slot}")
        self.words[slot] = value

    # -- allocation ---------------------------------------------------------

    def alloc(self, nwords: int) -> int | None:
        """Bump-allocate *nwords* in the active semispace; None when full."""
        if nwords <= 0:
            raise MemoryFault(f"bad allocation size: {nwords}")
        addr = self.bump
        if addr + nwords > self.limit:
            return None
        self.bump = addr + nwords
        # Fresh memory is zeroed by construction and by flip(); assert cheapness
        return addr

    @property
    def free_words(self) -> int:
        return self.limit - self.bump

    @property
    def used_words(self) -> int:
        return self.bump - self.base[self.active]

    def space_of(self, addr: int) -> int | None:
        """Which semispace *addr* lies in (0/1), or None for the boot record."""
        for which in (0, 1):
            lo = self.base[which]
            if lo <= addr < lo + self.semi:
                return which
        return None

    def in_active(self, addr: int) -> bool:
        return self.space_of(addr) == self.active

    # -- GC support ----------------------------------------------------------

    def begin_flip(self) -> int:
        """Start a collection: return the to-space base for evacuation."""
        return self.base[1 - self.active]

    def finish_flip(self, new_bump: int) -> None:
        """Complete a collection: to-space becomes active, old space zeroed."""
        old = self.active
        self.active = 1 - self.active
        lo = self.base[self.active]
        self.bump = new_bump
        self.limit = lo + self.semi
        old_lo = self.base[old]
        # Zero the evacuated space so stale data can never leak back in
        # (and so replay divergences show up as faults, not silent reads).
        self.words[old_lo : old_lo + self.semi] = [0] * self.semi
