"""Object and array layout, and the object model (allocation + access).

Every heap entity starts with a three-word header::

    +0  class id           (index into the loader's class table)
    +1  status             (monitor word: (owner_tid + 1) << 8 | recursion)
    +2  aux                (arrays: length; objects: identity hash, 0 = unset)

Instance fields follow the header, superclass fields first, one word each.
During a collection the class-id word of an evacuated object is replaced by
``FORWARD_BIT | new_address`` — guests can never observe this because GC
only runs at safe points and completes atomically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.vm.descriptors import is_reference
from repro.vm.errors import HeapExhaustedError, VMTrap
from repro.vm.memory import Memory

HEADER_CLASS = 0
HEADER_STATUS = 1
HEADER_AUX = 2
HEADER_WORDS = 3

FORWARD_BIT = 1 << 62

NULL = 0


@dataclass
class FieldSlot:
    """One instance field: descriptor plus its word offset from the base."""

    name: str
    desc: str
    offset: int

    @property
    def is_ref(self) -> bool:
        return is_reference(self.desc)


@dataclass
class Layout:
    """Shape information for one class id (scalar class or array class)."""

    class_id: int
    name: str  # class name, or array descriptor for array classes
    super_id: int | None = None
    instance_fields: list[FieldSlot] = field(default_factory=list)
    is_array: bool = False
    elem_desc: str | None = None  # arrays only; "I" or a reference desc
    field_by_name: dict[str, FieldSlot] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.field_by_name = {f.name: f for f in self.instance_fields}

    @property
    def size_words(self) -> int:
        if self.is_array:
            raise VMTrap("internal", "array size depends on length")
        return HEADER_WORDS + len(self.instance_fields)

    @property
    def elem_is_ref(self) -> bool:
        return self.elem_desc is not None and is_reference(self.elem_desc)

    def ref_field_offsets(self) -> tuple[int, ...]:
        return tuple(f.offset for f in self.instance_fields if f.is_ref)


class LayoutSource(Protocol):
    """Where the object model looks up layouts (implemented by the loader)."""

    def layout_by_id(self, class_id: int) -> Layout: ...

    def array_layout(self, desc: str) -> Layout: ...


class ObjectModel:
    """Allocation and typed access to heap objects.

    ``gc_hook`` is invoked when a bump allocation fails; it must either
    free memory (collect) or leave the heap unchanged, after which the
    allocation is retried once.
    """

    def __init__(self, memory: Memory, layouts: LayoutSource):
        self.memory = memory
        self.layouts = layouts
        self.gc_hook: Callable[[], None] | None = None
        self.alloc_count = 0  # deterministic allocation sequence number

    # -- allocation ----------------------------------------------------------

    def _alloc(self, nwords: int) -> int:
        addr = self.memory.alloc(nwords)
        if addr is None:
            if self.gc_hook is not None:
                self.gc_hook()
            addr = self.memory.alloc(nwords)
            if addr is None:
                raise HeapExhaustedError(
                    f"cannot allocate {nwords} words "
                    f"({self.memory.free_words} free after GC)"
                )
        self.alloc_count += 1
        return addr

    def new_object(self, layout: Layout) -> int:
        if layout.is_array:
            raise VMTrap("internal", f"new_object on array layout {layout.name}")
        addr = self._alloc(layout.size_words)
        mem = self.memory
        mem.write(addr + HEADER_CLASS, layout.class_id)
        mem.write(addr + HEADER_STATUS, 0)
        mem.write(addr + HEADER_AUX, 0)
        for off in range(HEADER_WORDS, layout.size_words):
            mem.write(addr + off, 0)
        return addr

    def new_array(self, desc: str, length: int) -> int:
        if length < 0:
            raise VMTrap("NegativeArraySize", str(length))
        layout = self.layouts.array_layout(desc)
        addr = self._alloc(HEADER_WORDS + length)
        mem = self.memory
        mem.write(addr + HEADER_CLASS, layout.class_id)
        mem.write(addr + HEADER_STATUS, 0)
        mem.write(addr + HEADER_AUX, length)
        for i in range(length):
            mem.write(addr + HEADER_WORDS + i, 0)
        return addr

    # -- inspection ------------------------------------------------------------

    def layout_of(self, addr: int) -> Layout:
        if addr == NULL:
            raise VMTrap("NullPointer", "layout of null")
        return self.layouts.layout_by_id(self.memory.read(addr + HEADER_CLASS))

    def array_length(self, addr: int) -> int:
        if addr == NULL:
            raise VMTrap("NullPointer", "arraylength of null")
        return self.memory.read(addr + HEADER_AUX)

    def object_size_words(self, addr: int) -> int:
        """Total footprint in words of the object at *addr* (GC helper)."""
        layout = self.layout_of(addr)
        if layout.is_array:
            return HEADER_WORDS + self.memory.read(addr + HEADER_AUX)
        return layout.size_words

    def identity_hash(self, addr: int) -> int:
        """Lazy identity hash, stored in the header so GC copies preserve it.

        This is how heap-layout divergence becomes *guest-visible*: the
        first call stamps the object's current address into the header, so
        two runs that allocate in different orders observe different
        hashes — exactly the failure the paper's symmetric allocation rule
        prevents.
        """
        if addr == NULL:
            raise VMTrap("NullPointer", "identityHashCode of null")
        layout = self.layout_of(addr)
        if layout.is_array:
            raise VMTrap("Unsupported", "identityHashCode of array")
        h = self.memory.read(addr + HEADER_AUX)
        if h == 0:
            h = addr
            self.memory.write(addr + HEADER_AUX, h)
        return h

    # -- field access ------------------------------------------------------------

    def get_field(self, addr: int, offset: int) -> int:
        if addr == NULL:
            raise VMTrap("NullPointer", "getfield on null")
        return self.memory.read(addr + offset)

    def put_field(self, addr: int, offset: int, value: int) -> None:
        if addr == NULL:
            raise VMTrap("NullPointer", "putfield on null")
        self.memory.write(addr + offset, value)

    # -- array element access ------------------------------------------------------

    def _check_index(self, addr: int, index: int) -> None:
        if addr == NULL:
            raise VMTrap("NullPointer", "array access on null")
        length = self.memory.read(addr + HEADER_AUX)
        if not (0 <= index < length):
            raise VMTrap("ArrayBounds", f"index {index}, length {length}")

    def array_get(self, addr: int, index: int) -> int:
        self._check_index(addr, index)
        return self.memory.read(addr + HEADER_WORDS + index)

    def array_put(self, addr: int, index: int, value: int) -> None:
        self._check_index(addr, index)
        self.memory.write(addr + HEADER_WORDS + index, value)

    # -- heap walking -----------------------------------------------------------

    def walk_heap(self):
        """Iterate (address, layout) over every live object in the active
        semispace, in address order.  Only valid at a safe point (between
        micro-ops / after a run); used by thread-death monitor release and
        the heap-inspection tool."""
        mem = self.memory
        addr = mem.base[mem.active]
        while addr < mem.bump:
            layout = self.layouts.layout_by_id(mem.read(addr + HEADER_CLASS))
            yield addr, layout
            if layout.is_array:
                addr += HEADER_WORDS + mem.read(addr + HEADER_AUX)
            else:
                addr += layout.size_words

    # -- monitor word (used by the thread package) -----------------------------------

    def lock_word(self, addr: int) -> int:
        if addr == NULL:
            raise VMTrap("NullPointer", "monitor on null")
        return self.memory.read(addr + HEADER_STATUS)

    def set_lock_word(self, addr: int, value: int) -> None:
        self.memory.write(addr + HEADER_STATUS, value)
