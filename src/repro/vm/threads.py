"""The green-thread package: frames, threads, and the scheduler.

This is the component the paper leans on hardest: because DejaVu *replays
the entire thread package* (ready queue, entry queues, wait sets, timed
queue, lock words), deterministic thread switches — those caused by
synchronization — need no trace records at all.  Only preemptive switches
(timer-driven) and wall-clock reads are non-deterministic, and both are
observed through well-defined funnels (`Engine` yield points and
:meth:`VirtualMachine.read_clock`).

Threads run on heap-allocated activation stacks (Jalapeño allocates stacks
in heap arrays): each thread owns a guest ``[I`` whose capacity bounds the
frame words in use, grown by reallocation when it overflows — a real,
GC-visible event that DejaVu's stack-overflow symmetry is about.  A second
guest array per thread is the *shadow call stack* (method id + bci per
frame), kept current at every call, return and yield point so a remote
debugger can compute stack traces from raw memory alone.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.vm import corelib
from repro.vm.errors import VMTrap
from repro.vm.memory import BOOT_THREADS

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.loader import RuntimeMethod
    from repro.vm.machine import VirtualMachine

#: words of headroom DejaVu's eager stack growth maintains (heuristic from
#: the paper: grow "just before calling a DejaVu method when available
#: stack space falls below a heuristically determined value").
EAGER_STACK_HEADROOM = 64

_INITIAL_SHADOW_WORDS = 1 + 2 * 16


class Frame:
    """One activation: compiled code, machine pc, locals, operand stack."""

    __slots__ = ("method", "code", "pc", "locals", "stack")

    def __init__(self, method: "RuntimeMethod", args: list[int]):
        self.method = method
        code = method.code
        assert code is not None, f"{method.qualname} not compiled"
        self.code = code
        self.pc = 0
        self.locals: list[int] = args + [0] * (code.nlocals - len(args))
        self.stack: list[int] = []

    @property
    def bci(self) -> int:
        # frame pcs index the *executable* program (which may be fused)
        return self.code.xbci_of[self.pc]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Frame {self.method.qualname} pc={self.pc} bci={self.bci}>"


class GreenThread:
    """Host-side thread state; the guest half is a heap ``Thread`` object."""

    __slots__ = (
        "tid",
        "guest_addr",
        "frames",
        "state",
        "stack_addr",
        "stack_capacity",
        "stack_used",
        "stack_grows",
        "shadow_addr",
        "wakeup_time",
        "waiting_on",
        "wait_recursion",
        "pending_recursion",
        "interrupted",
        "joiners",
        "name",
        "yieldpoints",
    )

    def __init__(self, tid: int, guest_addr: int, name: str):
        self.tid = tid
        self.guest_addr = guest_addr
        self.frames: list[Frame] = []
        self.state = corelib.THREAD_NEW
        self.stack_addr = 0
        self.stack_capacity = 0
        self.stack_used = 0
        self.stack_grows = 0
        self.shadow_addr = 0
        self.wakeup_time: int | None = None
        self.waiting_on = 0
        self.wait_recursion = 0
        self.pending_recursion = 0
        self.interrupted = False
        self.joiners: list[GreenThread] = []
        self.name = name
        self.yieldpoints = 0  # per-thread logical clock (DejaVu reads this)

    @property
    def alive(self) -> bool:
        return self.state != corelib.THREAD_TERMINATED

    def __repr__(self) -> str:  # pragma: no cover
        return f"<GreenThread {self.tid} {self.name!r} state={self.state}>"


class Scheduler:
    """The thread package proper: dispatch queues and switch mechanics."""

    def __init__(self, vm: "VirtualMachine"):
        self.vm = vm
        self.threads: list[GreenThread] = []
        self.ready: deque[GreenThread] = deque()
        self.timed: list[GreenThread] = []  # sleepers + timed waiters
        self.current: GreenThread | None = None
        self._last_running: GreenThread | None = None
        self.switch_count = 0
        self._table_addr = 0  # guest Thread[] mirroring self.threads
        #: baseline hooks (see repro.baselines): replay-side dispatch
        #: steering and record-side dispatch observation.  DejaVu itself
        #: uses neither — it replays the package instead of steering it.
        self.dispatch_override: "Callable[[deque[GreenThread]], GreenThread | None] | None" = None
        self.on_dispatch: "Callable[[GreenThread], None] | None" = None
        #: observation hooks (repro.explore race detection): thread
        #: creation and cross-thread wakeups are the synchronized-with
        #: edges a happens-before analysis needs.  Host-side, read-only.
        self.on_spawn: "Callable[[GreenThread | None, GreenThread], None] | None" = None
        self.on_wakeup: "Callable[[str, GreenThread, GreenThread], None] | None" = None

    # ------------------------------------------------------------------
    # thread creation

    def _thread_layout_field(self, name: str):
        return self.vm.loader.classes["Thread"].layout.field_by_name[name]

    def spawn(self, guest_addr: int, entry: "RuntimeMethod", name: str) -> GreenThread:
        """Create a runnable thread whose first frame invokes *entry*.

        All allocations here (stack array, shadow array, table growth) are
        part of the deterministic allocation stream.
        """
        vm = self.vm
        om = vm.om
        thread = GreenThread(len(self.threads), guest_addr, name)
        self.threads.append(thread)

        depth = len(vm.loader.temp_roots)
        gi = vm.loader._tr_push(guest_addr)
        stack = om.new_array("[I", vm.config.initial_stack_words)
        si = vm.loader._tr_push(stack)
        shadow = om.new_array("[I", _INITIAL_SHADOW_WORDS)
        shi = vm.loader._tr_push(shadow)

        thread.guest_addr = vm.loader._tr_get(gi)
        thread.stack_addr = vm.loader._tr_get(si)
        thread.stack_capacity = vm.config.initial_stack_words
        thread.shadow_addr = vm.loader._tr_get(shi)

        ga = thread.guest_addr
        om.put_field(ga, self._thread_layout_field("tid").offset, thread.tid)
        om.put_field(ga, self._thread_layout_field("stack").offset, thread.stack_addr)
        om.put_field(ga, self._thread_layout_field("shadow").offset, thread.shadow_addr)
        self._table_append(thread)
        vm.loader._tr_reset(depth)

        args = [thread.guest_addr] if not entry.static else []
        frame = Frame(entry, args)
        thread.frames.append(frame)
        self._charge_stack(thread, frame)
        self._shadow_push(thread, entry.method_id)
        self._set_state(thread, corelib.THREAD_READY)
        self.ready.append(thread)
        self.vm.observer.emit("thread_start", thread.tid, name)
        if self.on_spawn is not None:
            self.on_spawn(self.current, thread)
        return thread

    def _table_append(self, thread: GreenThread) -> None:
        """Mirror the thread into the guest Thread[] table (BOOT_THREADS)."""
        vm = self.vm
        om = vm.om
        if self._table_addr == 0:
            self._table_addr = om.new_array("[LThread;", 8)
            om.memory.boot_write(BOOT_THREADS, self._table_addr)
        cap = om.array_length(self._table_addr)
        if thread.tid >= cap:
            depth = len(vm.loader.temp_roots)
            bi = vm.loader._tr_push(om.new_array("[LThread;", cap * 2))
            for i in range(cap):
                om.array_put(vm.loader._tr_get(bi), i, om.array_get(self._table_addr, i))
            self._table_addr = vm.loader._tr_get(bi)
            om.memory.boot_write(BOOT_THREADS, self._table_addr)
            vm.loader._tr_reset(depth)
        om.array_put(self._table_addr, thread.tid, thread.guest_addr)

    def _set_state(self, thread: GreenThread, state: int) -> None:
        thread.state = state
        if thread.guest_addr:
            self.vm.om.put_field(
                thread.guest_addr, self._thread_layout_field("state").offset, state
            )

    # ------------------------------------------------------------------
    # stack accounting (heap-allocated, growable activation stacks)

    def _charge_stack(self, thread: GreenThread, frame: Frame) -> None:
        needed = frame.code.frame_words
        if thread.stack_used + needed > thread.stack_capacity:
            self.grow_stack(thread, needed)
        thread.stack_used += needed

    def _uncharge_stack(self, thread: GreenThread, frame: Frame) -> None:
        thread.stack_used -= frame.code.frame_words

    def grow_stack(self, thread: GreenThread, needed: int) -> None:
        """Reallocate the thread's stack array — the GC-visible overflow event."""
        vm = self.vm
        om = vm.om
        new_cap = max(thread.stack_capacity * 2, thread.stack_used + needed + 32)
        if new_cap > vm.config.max_stack_words:
            raise VMTrap(
                "StackOverflow",
                f"thread {thread.tid} needs {new_cap} stack words "
                f"(cap {vm.config.max_stack_words})",
            )
        new_stack = om.new_array("[I", new_cap)
        thread.stack_addr = new_stack
        thread.stack_capacity = new_cap
        thread.stack_grows += 1
        om.put_field(
            thread.guest_addr, self._thread_layout_field("stack").offset, new_stack
        )
        vm.observer.emit("stack_grow", thread.tid, new_cap)

    def stack_headroom(self, thread: GreenThread) -> int:
        return thread.stack_capacity - thread.stack_used

    # ------------------------------------------------------------------
    # shadow call stacks (remote-debugger-readable stack traces)

    def _shadow_push(self, thread: GreenThread, method_id: int) -> None:
        om = self.vm.om
        addr = thread.shadow_addr
        depth = om.array_get(addr, 0)
        needed = 1 + 2 * (depth + 1)
        cap = om.array_length(addr)
        if needed > cap:
            new = om.new_array("[I", cap * 2)
            for i in range(1 + 2 * depth):
                om.array_put(new, i, om.array_get(thread.shadow_addr, i))
            thread.shadow_addr = new
            om.put_field(
                thread.guest_addr, self._thread_layout_field("shadow").offset, new
            )
            addr = new
        om.array_put(addr, 1 + 2 * depth, method_id)
        om.array_put(addr, 2 + 2 * depth, 0)
        om.array_put(addr, 0, depth + 1)

    def _shadow_pop(self, thread: GreenThread) -> None:
        om = self.vm.om
        depth = om.array_get(thread.shadow_addr, 0)
        if depth > 0:
            om.array_put(thread.shadow_addr, 0, depth - 1)

    def shadow_sync_bci(self, thread: GreenThread) -> None:
        """Record the running frame's bci so remote stack traces are exact."""
        if not thread.frames:
            return
        om = self.vm.om
        depth = om.array_get(thread.shadow_addr, 0)
        if depth > 0:
            om.array_put(thread.shadow_addr, 2 * depth, thread.frames[-1].bci)

    # ------------------------------------------------------------------
    # call/return hooks used by the engine

    def push_frame(self, thread: GreenThread, frame: Frame) -> None:
        thread.frames.append(frame)
        self._charge_stack(thread, frame)
        self._shadow_push(thread, frame.method.method_id)

    def pop_frame(self, thread: GreenThread) -> Frame:
        frame = thread.frames.pop()
        self._uncharge_stack(thread, frame)
        self._shadow_pop(thread)
        return frame

    # ------------------------------------------------------------------
    # dispatch

    def preempt(self) -> None:
        """Timer-driven switch: current to the ready tail (round robin)."""
        thread = self.current
        assert thread is not None
        self._set_state(thread, corelib.THREAD_READY)
        self.ready.append(thread)
        self.current = None
        self.vm.engine.switch_pending = True

    def block_current(self, state: int, wakeup_time: int | None = None) -> None:
        """Park the current thread (monitor entry / wait / sleep / join)."""
        thread = self.current
        assert thread is not None
        self._set_state(thread, state)
        thread.wakeup_time = wakeup_time
        if wakeup_time is not None:
            self.timed.append(thread)
        self.current = None
        self.vm.engine.switch_pending = True

    def make_ready(self, thread: GreenThread) -> None:
        if thread.wakeup_time is not None:
            thread.wakeup_time = None
            if thread in self.timed:
                self.timed.remove(thread)
        self._set_state(thread, corelib.THREAD_READY)
        self.ready.append(thread)

    def on_terminate(self, thread: GreenThread) -> None:
        self._set_state(thread, corelib.THREAD_TERMINATED)
        for joiner in thread.joiners:
            self.make_ready(joiner)
            if self.on_wakeup is not None:
                self.on_wakeup("join", thread, joiner)
        thread.joiners.clear()
        self.current = None
        self.vm.engine.switch_pending = True
        self.vm.observer.emit("thread_end", thread.tid)

    def _wake_timed(self) -> None:
        """Wake expired sleepers/timed-waiters.  Reads the wall clock —
        a non-deterministic event recorded and replayed by DejaVu."""
        if not self.timed:
            return
        now = self.vm.read_clock()
        for thread in list(self.timed):
            if thread.wakeup_time is not None and thread.wakeup_time <= now:
                thread.wakeup_time = None
                self.timed.remove(thread)
                if thread.state == corelib.THREAD_SLEEPING:
                    self._set_state(thread, corelib.THREAD_READY)
                    self.ready.append(thread)
                elif thread.state == corelib.THREAD_WAITING:
                    # timed wait expired: rejoin the lock contenders
                    addr = thread.waiting_on
                    if self.vm.monitors.cancel_wait(addr, thread):
                        self._set_state(thread, corelib.THREAD_BLOCKED)
                        heir = self.vm.monitors.grant_if_free(addr)
                        if heir is not None:
                            self.make_ready(heir)

    def schedule(self) -> GreenThread | None:
        """Pick the next thread to run; None when every thread terminated.

        The choice is a pure function of thread-package state (plus the
        wall clock for timed wakeups), which is what makes synchronization
        switches replay for free.
        """
        while True:
            self._wake_timed()
            if self.ready:
                if self.dispatch_override is not None:
                    thread = self.dispatch_override(self.ready)
                    if thread is None:
                        thread = self.ready.popleft()
                    else:
                        self.ready.remove(thread)
                else:
                    thread = self.ready.popleft()
                self._set_state(thread, corelib.THREAD_RUNNING)
                self.current = thread
                if self._last_running is not thread:
                    self.switch_count += 1
                    self.vm.observer.emit(
                        "switch",
                        self._last_running.tid if self._last_running else -1,
                        thread.tid,
                        self.vm.engine.cycles,
                    )
                self._last_running = thread
                if self.on_dispatch is not None:
                    self.on_dispatch(thread)
                return thread
            if self.timed:
                pending = [t.wakeup_time for t in self.timed if t.wakeup_time is not None]
                if pending:
                    self.vm.clock_advance_hint(min(pending))
                continue
            blocked = [t.tid for t in self.threads if t.alive]
            if blocked:
                # Every live thread is parked on a monitor: the guest is
                # deadlocked.  This is a *deterministic* outcome — replay
                # reaches the identical configuration — so it ends the run
                # gracefully rather than raising, and is recorded as an
                # observable event for the accuracy check.
                self.vm.deadlocked = tuple(sorted(blocked))
                self.vm.observer.emit("deadlock", self.vm.deadlocked)
                return None
            return None

    # ------------------------------------------------------------------
    # GC support

    def visit_roots(self, fwd: Callable[[int], int]) -> None:
        if self._table_addr:
            self._table_addr = fwd(self._table_addr)
        for thread in self.threads:
            if thread.guest_addr:
                thread.guest_addr = fwd(thread.guest_addr)
            if thread.stack_addr:
                thread.stack_addr = fwd(thread.stack_addr)
            if thread.shadow_addr:
                thread.shadow_addr = fwd(thread.shadow_addr)
            if thread.waiting_on:
                thread.waiting_on = fwd(thread.waiting_on)
            for frame in thread.frames:
                maps = frame.method.maps
                assert maps is not None
                lrefs, srefs = maps.ref_map(frame.bci)
                locs = frame.locals
                stk = frame.stack
                for i in lrefs:
                    if i < len(locs) and locs[i]:
                        locs[i] = fwd(locs[i])
                depth = len(stk)
                for i in srefs:
                    # the engine may have popped operands mid-instruction;
                    # map entries beyond the live depth are dead by
                    # construction (see interp.py safe-point discipline).
                    if i < depth and stk[i]:
                        stk[i] = fwd(stk[i])


def thread_state_name(state: int) -> str:
    return {
        corelib.THREAD_NEW: "NEW",
        corelib.THREAD_READY: "READY",
        corelib.THREAD_RUNNING: "RUNNING",
        corelib.THREAD_BLOCKED: "BLOCKED",
        corelib.THREAD_WAITING: "WAITING",
        corelib.THREAD_SLEEPING: "SLEEPING",
        corelib.THREAD_TERMINATED: "TERMINATED",
    }.get(state, f"?{state}")
