"""Deterministic execution observer.

The observer records a canonical event stream (switches, outputs, clock
values, traps, GCs, ...) for an execution.  Replay *accuracy* — the paper's
absolute requirement — is checked by comparing the observer streams of a
record run and its replay event-by-event: identical streams mean identical
execution behaviour at the granularity the paper defines (same event
sequence, same program states at corresponding events, witnessed through
every guest-visible side effect).
"""

from __future__ import annotations


class ExecutionObserver:
    """Collects ``(kind, *details)`` tuples in execution order."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list[tuple] = []

    def emit(self, kind: str, *details) -> None:
        if self.enabled:
            self.events.append((kind, *details))

    def of_kind(self, kind: str) -> list[tuple]:
        return [e for e in self.events if e[0] == kind]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


def first_divergence(a: list[tuple], b: list[tuple]) -> int | None:
    """Index of the first differing event, or None if streams are identical."""
    for i, (ea, eb) in enumerate(zip(a, b)):
        if ea != eb:
            return i
    if len(a) != len(b):
        return min(len(a), len(b))
    return None
