"""The native interface (the VM's JNI analogue).

Native methods are host Python callables registered by qualified name.
Following the paper's §2.5, natives affect the guest only through

* **return values**, and
* **callbacks** (here: *upcalls* — guest static methods the native asks
  the engine to invoke with argument values it supplies),

never through direct heap pointers.  Natives are classified:

* **deterministic** natives (printing, ``arraycopy``, the thread package)
  are part of the replayed state machine and execute in both record and
  replay mode;
* **non-deterministic** natives (clock, random, input, simulated network
  I/O) have their return values and callback parameters *recorded* during
  record mode and *regenerated* — without running the native — during
  replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.vm import corelib
from repro.vm.descriptors import is_reference
from repro.vm.errors import VMTrap

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.loader import RuntimeMethod
    from repro.vm.machine import VirtualMachine
    from repro.vm.threads import GreenThread


class _Block:
    """Sentinel: the native parked the current thread; no value is pushed."""

    def __repr__(self) -> str:  # pragma: no cover
        return "<BLOCK>"


BLOCK = _Block()


@dataclass
class NativeResult:
    """A return value plus callbacks to run (in order) after the native.

    ``string_value`` supports natives declared to return ``LString;``: the
    text crosses the JNI boundary as data, and the *engine* materialises
    the guest String object — identically in record and replay mode, which
    keeps the allocation streams symmetric.
    """

    value: int | None = None
    string_value: str | None = None
    upcalls: list[tuple[str, tuple[int, ...]]] = field(default_factory=list)


class NativeCall:
    """Call context handed to a native implementation.

    Reference arguments are registered as GC temp roots for the duration
    of the call, so a native that allocates (directly or by triggering an
    upcall) can keep using ``arg(i)`` safely.
    """

    def __init__(self, vm: "VirtualMachine", thread: "GreenThread", rm: "RuntimeMethod", args: list[int]):
        self.vm = vm
        self.thread = thread
        self.rm = rm
        self._tr_depth = len(vm.loader.temp_roots)
        self._slots: list[int | None] = []
        params = list(rm.mdef.signature.params)
        if not rm.static:
            params.insert(0, "ref")
        for desc, value in zip(params, args):
            if (desc == "ref" or is_reference(desc)) and value:
                self._slots.append(vm.loader._tr_push(value))
            else:
                self._slots.append(None)
        self._raw = list(args)

    def arg(self, i: int) -> int:
        slot = self._slots[i]
        if slot is None:
            return self._raw[i]
        return self.vm.loader._tr_get(slot)

    @property
    def nargs(self) -> int:
        return len(self._raw)

    def release(self) -> None:
        self.vm.loader._tr_reset(self._tr_depth)


@dataclass
class NativeDef:
    qualname: str
    fn: Callable[[NativeCall], object]
    nondet: bool = False


class NativeRegistry:
    def __init__(self) -> None:
        self._natives: dict[str, NativeDef] = {}

    def register(self, qualname: str, fn: Callable[[NativeCall], object], *, nondet: bool = False) -> None:
        self._natives[qualname] = NativeDef(qualname, fn, nondet)

    def lookup(self, qualname: str) -> NativeDef:
        nd = self._natives.get(qualname)
        if nd is None:
            raise VMTrap("UnsatisfiedLink", qualname)
        return nd


# ---------------------------------------------------------------------------
# the core native set


def install_core_natives(vm: "VirtualMachine") -> None:
    reg = vm.natives
    sched = vm.scheduler

    # -- output (deterministic; captured and compared by the verifier) -----

    def n_print(ctx: NativeCall):
        text = vm.loader.read_string(ctx.arg(0))
        vm.write_output(text)

    def n_print_int(ctx: NativeCall):
        vm.write_output(str(ctx.arg(0)))

    def n_print_char(ctx: NativeCall):
        vm.write_output(chr(ctx.arg(0) & 0x10FFFF))

    reg.register("System.print(LString;)V", n_print)
    reg.register("System.printInt(I)V", n_print_int)
    reg.register("System.printChar(I)V", n_print_char)

    # -- environmental queries (non-deterministic; logged/replayed) --------

    def n_current_time(ctx: NativeCall):
        return vm.read_clock()

    def n_random_int(ctx: NativeCall):
        bound = ctx.arg(0)
        if bound <= 0:
            raise VMTrap("IllegalArgument", f"randomInt({bound})")
        return vm.env.random_int(bound)

    def n_read_int(ctx: NativeCall):
        return vm.env.read_int()

    def n_read_line(ctx: NativeCall):
        return NativeResult(string_value=vm.env.read_line())

    # currentTimeMillis funnels through read_clock (already a CLOCK event),
    # so it is registered as deterministic *at this layer*.
    reg.register("System.currentTimeMillis()I", n_current_time)
    reg.register("System.randomInt(I)I", n_random_int, nondet=True)
    reg.register("System.readInt()I", n_read_int, nondet=True)
    reg.register("System.readLine()LString;", n_read_line, nondet=True)

    # -- deterministic services --------------------------------------------

    def n_identity_hash(ctx: NativeCall):
        return vm.om.identity_hash(ctx.arg(0))

    def n_arraycopy(ctx: NativeCall):
        src, src_pos, dst, dst_pos, length = (ctx.arg(i) for i in range(5))
        om = vm.om
        if length < 0:
            raise VMTrap("ArrayBounds", f"arraycopy length {length}")
        if src_pos < 0 or dst_pos < 0:
            raise VMTrap("ArrayBounds", "negative arraycopy position")
        if src_pos + length > om.array_length(src) or dst_pos + length > om.array_length(dst):
            raise VMTrap("ArrayBounds", "arraycopy out of range")
        if src == dst and src_pos < dst_pos:
            rng = range(length - 1, -1, -1)  # overlap-safe
        else:
            rng = range(length)
        for i in rng:
            om.array_put(dst, dst_pos + i, om.array_get(src, src_pos + i))

    def n_gc(ctx: NativeCall):
        vm.collect()

    reg.register("System.identityHashCode(LObject;)I", n_identity_hash)
    reg.register("System.arraycopy([II[III)V", n_arraycopy)
    reg.register("System.gc()V", n_gc)

    # -- thread package (deterministic: part of the replayed state) --------

    def n_thread_start(ctx: NativeCall):
        target = ctx.arg(0)
        if target == 0:
            raise VMTrap("NullPointer", "Thread.start(null)")
        layout = vm.om.layout_of(target)
        rc = vm.loader.rc_by_id[layout.class_id]
        run = rc.vtable.get("run()V")
        if run is None or run.native:
            raise VMTrap("IllegalThread", f"{rc.name} has no run()V")
        sched.spawn(target, run, name=f"{rc.name}-{len(sched.threads)}")

    def n_thread_yield(ctx: NativeCall):
        # a voluntary switch: back of the ready queue, not a park
        sched.preempt()

    def n_thread_sleep(ctx: NativeCall):
        millis = ctx.arg(0)
        now = vm.read_clock()
        sched.block_current(corelib.THREAD_SLEEPING, wakeup_time=now + max(0, millis))
        return BLOCK

    def n_thread_join(ctx: NativeCall):
        target_addr = ctx.arg(0)
        target = _thread_for(vm, target_addr)
        if target is None:
            return None
        me = sched.current
        assert me is not None
        if not target.alive:
            # joining a finished thread completes immediately, but it is
            # still a synchronized-with edge for happens-before observers
            if sched.on_wakeup is not None:
                sched.on_wakeup("join", target, me)
            return None
        target.joiners.append(me)
        sched.block_current(corelib.THREAD_BLOCKED)
        return BLOCK

    def n_current_tid(ctx: NativeCall):
        assert sched.current is not None
        return sched.current.tid

    reg.register("Thread.start(LThread;)V", n_thread_start)
    reg.register("Thread.yield()V", n_thread_yield)
    reg.register("Thread.sleep(I)V", n_thread_sleep)
    reg.register("Thread.join(LThread;)V", n_thread_join)
    reg.register("Thread.currentTid()I", n_current_tid)

    # -- monitor conditions ----------------------------------------------------

    def n_wait(ctx: NativeCall):
        obj = ctx.arg(0)
        me = sched.current
        assert me is not None
        heir = vm.monitors.begin_wait(obj, me)
        if heir is not None:
            sched.make_ready(heir)
        sched.block_current(corelib.THREAD_WAITING)
        return BLOCK

    def n_timed_wait(ctx: NativeCall):
        obj = ctx.arg(0)
        millis = ctx.arg(1)
        me = sched.current
        assert me is not None
        now = vm.read_clock()
        heir = vm.monitors.begin_wait(obj, me)
        if heir is not None:
            sched.make_ready(heir)
        sched.block_current(corelib.THREAD_WAITING, wakeup_time=now + max(0, millis))
        return BLOCK

    def n_notify(ctx: NativeCall):
        me = sched.current
        assert me is not None
        vm.monitors.notify_one(ctx.arg(0), me)

    def n_notify_all(ctx: NativeCall):
        me = sched.current
        assert me is not None
        vm.monitors.notify_all(ctx.arg(0), me)

    def n_interrupt(ctx: NativeCall):
        if ctx.arg(0) == 0:
            raise VMTrap("NullPointer", "interrupt(null)")
        target = _thread_for(vm, ctx.arg(0))
        if target is None:
            return 0  # a Thread object that was never started
        target.interrupted = True
        if target.state == corelib.THREAD_WAITING and target.waiting_on:
            addr = target.waiting_on
            if vm.monitors.cancel_wait(addr, target):
                sched._set_state(target, corelib.THREAD_BLOCKED)
                if target.wakeup_time is not None:
                    target.wakeup_time = None
                    if target in sched.timed:
                        sched.timed.remove(target)
                heir = vm.monitors.grant_if_free(addr)
                if heir is not None:
                    sched.make_ready(heir)
                return 1
        if target.state == corelib.THREAD_SLEEPING:
            sched.make_ready(target)
            return 1
        return 0

    def n_interrupted(ctx: NativeCall):
        me = sched.current
        assert me is not None
        was = 1 if me.interrupted else 0
        me.interrupted = False
        return was

    reg.register("System.wait(LObject;)V", n_wait)
    reg.register("System.timedWait(LObject;I)V", n_timed_wait)
    reg.register("System.notify(LObject;)V", n_notify)
    reg.register("System.notifyAll(LObject;)V", n_notify_all)
    reg.register("System.interrupt(LThread;)I", n_interrupt)
    reg.register("System.interrupted()I", n_interrupted)


def _thread_for(vm: "VirtualMachine", guest_addr: int):
    for thread in vm.scheduler.threads:
        if thread.guest_addr == guest_addr:
            return thread
    return None
