"""The text assembler: ``.jasm`` source → :class:`ClassDef` list.

Syntax (one instruction or directive per line; ``;`` starts a comment)::

    .class Account
    .super Object
    .field balance I
    .field static nextId I

    .method static main ()V
        iconst 3
        invokestatic Account.run(I)V
        return
    .end

    .native static now ()I

Labels are identifiers followed by ``:`` on their own line (or before an
instruction).  ``ldc "text"`` interns a string constant.  Source line
numbers are recorded automatically in each method's line table (the table
that ``VM_Method.getLineNumberAt`` exposes through reflection — Figure 3);
``.line N`` overrides the counter.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.vm.builder import ClassBuilder, MethodBuilder
from repro.vm.bytecode import Op, OPERAND_KIND, OperandKind
from repro.vm.classfile import ClassDef
from repro.vm.descriptors import validate
from repro.vm.errors import AssemblyError

_MNEMONICS: dict[str, Op] = {op.name.lower(): op for op in Op}
_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_$]*):")
_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")
_STRING_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')

_ESCAPES = {"n": "\n", "t": "\t", '"': '"', "\\": "\\", "r": "\r", "0": "\0"}


def _unescape(raw: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(raw):
        c = raw[i]
        if c == "\\" and i + 1 < len(raw):
            nxt = raw[i + 1]
            out.append(_ESCAPES.get(nxt, nxt))
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _parse_int(token: str, lineno: int, source: str) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"expected integer, got {token!r}", lineno, source) from None


def _strip_comment(line: str) -> str:
    """Remove a ``;`` comment, respecting string literals and descriptors.

    A comment ``;`` must start the line or follow whitespace — the ``;``
    inside ``(LString;)V`` is part of the descriptor, not a comment.
    """
    in_str = False
    i = 0
    while i < len(line):
        c = line[i]
        if c == '"' and (i == 0 or line[i - 1] != "\\"):
            in_str = not in_str
        elif c == ";" and not in_str and (i == 0 or line[i - 1] in " \t"):
            return line[:i]
        i += 1
    return line


class _Assembler:
    def __init__(self, text: str, source: str):
        self.lines = text.splitlines()
        self.source = source
        self.classes: list[ClassDef] = []
        self.cb: ClassBuilder | None = None
        self.mb: MethodBuilder | None = None
        self.pending_super: str | None = None
        self.line_override: int | None = None

    def run(self) -> list[ClassDef]:
        for lineno, raw in enumerate(self.lines, start=1):
            line = _strip_comment(raw).strip()
            if not line:
                continue
            try:
                self._dispatch(line, lineno)
            except AssemblyError:
                raise
            except Exception as exc:  # pragma: no cover - defensive
                raise AssemblyError(str(exc), lineno, self.source) from exc
        if self.mb is not None:
            raise AssemblyError("unterminated .method (missing .end)", len(self.lines), self.source)
        self._finish_class()
        return self.classes

    # ------------------------------------------------------------------

    def _finish_class(self) -> None:
        if self.cb is not None:
            try:
                self.classes.append(self.cb.build())
            except AssemblyError:
                raise
            except Exception as exc:
                raise AssemblyError(str(exc), source=self.source) from exc
            self.cb = None

    def _require_class(self, lineno: int) -> ClassBuilder:
        if self.cb is None:
            raise AssemblyError("directive outside of .class", lineno, self.source)
        return self.cb

    def _dispatch(self, line: str, lineno: int) -> None:
        if line.startswith("."):
            self._directive(line, lineno)
            return
        if self.mb is None:
            raise AssemblyError(f"instruction outside of .method: {line!r}", lineno, self.source)
        # labels (possibly several, possibly followed by an instruction)
        while True:
            m = _LABEL_RE.match(line)
            if not m:
                break
            self.mb.label(m.group(1))
            line = line[m.end() :].strip()
            if not line:
                return
        self._instruction(line, lineno)

    def _directive(self, line: str, lineno: int) -> None:
        parts = line.split(None, 1)
        head, rest = parts[0], (parts[1].strip() if len(parts) > 1 else "")
        if head == ".class":
            if self.mb is not None:
                raise AssemblyError(".class inside .method", lineno, self.source)
            self._finish_class()
            if not _IDENT_RE.match(rest):
                raise AssemblyError(f"bad class name {rest!r}", lineno, self.source)
            self.cb = ClassBuilder(rest)
        elif head == ".super":
            cb = self._require_class(lineno)
            if not _IDENT_RE.match(rest):
                raise AssemblyError(f"bad super name {rest!r}", lineno, self.source)
            cb._classdef.super_name = rest
        elif head == ".field":
            cb = self._require_class(lineno)
            toks = rest.split()
            static = False
            if toks and toks[0] == "static":
                static = True
                toks = toks[1:]
            if len(toks) != 2:
                raise AssemblyError(f"bad .field {rest!r} (want: [static] name desc)", lineno, self.source)
            cb.field(toks[0], toks[1], static=static)
        elif head == ".method":
            cb = self._require_class(lineno)
            if self.mb is not None:
                raise AssemblyError("nested .method", lineno, self.source)
            toks = rest.split()
            static = False
            if toks and toks[0] == "static":
                static = True
                toks = toks[1:]
            if len(toks) != 2:
                raise AssemblyError(f"bad .method {rest!r} (want: [static] name (sig)ret)", lineno, self.source)
            self.mb = cb.method(toks[0], toks[1], static=static)
            self.line_override = None
        elif head == ".native":
            cb = self._require_class(lineno)
            toks = rest.split()
            static = True
            if toks and toks[0] == "static":
                toks = toks[1:]
            elif toks and toks[0] == "virtual":
                static = False
                toks = toks[1:]
            if len(toks) != 2:
                raise AssemblyError(f"bad .native {rest!r}", lineno, self.source)
            cb.native_method(toks[0], toks[1], static=static)
        elif head == ".end":
            if self.mb is None:
                raise AssemblyError(".end outside of .method", lineno, self.source)
            self.mb = None
        elif head == ".line":
            if self.mb is None:
                raise AssemblyError(".line outside of .method", lineno, self.source)
            self.line_override = _parse_int(rest, lineno, self.source)
        else:
            raise AssemblyError(f"unknown directive {head!r}", lineno, self.source)

    def _instruction(self, line: str, lineno: int) -> None:
        assert self.mb is not None
        toks = line.split(None, 1)
        mnemonic = toks[0].lower()
        rest = toks[1].strip() if len(toks) > 1 else ""
        op = _MNEMONICS.get(mnemonic)
        if op is None:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}", lineno, self.source)
        kind = OPERAND_KIND[op]
        self.mb.line(self.line_override if self.line_override is not None else lineno)
        if kind is OperandKind.NONE:
            if rest:
                raise AssemblyError(f"{mnemonic} takes no operand", lineno, self.source)
            self.mb.emit(op)
        elif kind in (OperandKind.INT, OperandKind.LOCAL):
            self.mb.emit(op, _parse_int(rest, lineno, self.source))
        elif kind is OperandKind.LOCAL_INT:
            sub = rest.split()
            if len(sub) != 2:
                raise AssemblyError(f"{mnemonic} wants two operands", lineno, self.source)
            self.mb.emit(op, (_parse_int(sub[0], lineno, self.source), _parse_int(sub[1], lineno, self.source)))
        elif kind is OperandKind.TARGET:
            if not _IDENT_RE.match(rest):
                raise AssemblyError(f"bad branch target {rest!r}", lineno, self.source)
            self.mb.emit(op, rest)
        elif kind is OperandKind.STRING:
            m = _STRING_RE.match(rest)
            if not m or m.end() != len(rest):
                raise AssemblyError(f'ldc wants a quoted string, got {rest!r}', lineno, self.source)
            self.mb.ldc(_unescape(m.group(1)))
        elif kind is OperandKind.FIELD:
            toks = rest.split()
            if len(toks) == 1:
                self.mb.emit(op, toks[0])
            elif len(toks) == 2:
                # JVM-style "Class.field desc" — the descriptor is checked
                # against the declaration at link time.
                try:
                    validate(toks[1])
                except Exception as exc:
                    raise AssemblyError(str(exc), lineno, self.source) from exc
                self.mb.emit(op, (toks[0], toks[1]))
            else:
                raise AssemblyError(f"bad field reference {rest!r}", lineno, self.source)
        elif kind in (OperandKind.CLASS, OperandKind.METHOD, OperandKind.DESC):
            if not rest:
                raise AssemblyError(f"{mnemonic} wants an operand", lineno, self.source)
            self.mb.emit(op, rest)
        else:  # pragma: no cover - exhaustive
            raise AssemblyError(f"unhandled operand kind {kind}", lineno, self.source)


def assemble(text: str, source: str = "<string>") -> list[ClassDef]:
    """Assemble *text*, returning the classes it defines (in order)."""
    return _Assembler(text, source).run()


def assemble_file(path: str | Path) -> list[ClassDef]:
    path = Path(path)
    return assemble(path.read_text(), str(path))
