"""Class loading, linking, and heap-resident reflection metadata.

The loader owns the class table (class id → :class:`Layout`) and performs,
per class: layout (field offsets, vtable), verification (reference maps via
:mod:`repro.vm.refmaps`), baseline compilation, and *metadata
materialisation* — building genuine guest-heap ``VM_Class`` / ``VM_Method``
objects (with line tables) registered in the ``VM_Dictionary``, exactly the
structures the paper's remote reflection walks (Figure 3).

Class loading allocates heap objects, which is why DejaVu must pre-load its
classes symmetrically: a class loaded lazily at different points in record
and replay shifts every subsequent allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import TYPE_CHECKING, Callable

from repro.vm import memory as mem_mod
from repro.vm.classfile import ClassDef, MethodDef
from repro.vm.descriptors import (
    Signature,
    element_type,
    is_reference,
)
from repro.vm.errors import LinkError, VMError
from repro.vm.layout import FieldSlot, HEADER_WORDS, Layout, ObjectModel
from repro.vm.refmaps import CodeMaps, analyze_method, split_field_ref, split_method_ref

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.compiler import MachineCode

_DICT_INITIAL_CAPACITY = 64


@dataclass
class RuntimeMethod:
    """A linked method: definition + maps + compiled code + global id."""

    owner: "RuntimeClass"
    mdef: MethodDef
    method_id: int
    maps: CodeMaps | None = None
    code: "MachineCode | None" = None

    @property
    def key(self) -> str:
        return self.mdef.key

    @property
    def native(self) -> bool:
        return self.mdef.native

    @property
    def static(self) -> bool:
        return self.mdef.static

    @property
    def qualname(self) -> str:
        return f"{self.owner.name}.{self.mdef.key}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RuntimeMethod {self.qualname} id={self.method_id}>"


@dataclass
class RuntimeClass:
    """A loaded class: layout, vtable, statics holder, constants pool."""

    name: str
    cdef: ClassDef
    layout: Layout
    super_rc: "RuntimeClass | None"
    methods: dict[str, RuntimeMethod] = dc_field(default_factory=dict)
    vtable: dict[str, RuntimeMethod] = dc_field(default_factory=dict)
    statics_layout: Layout | None = None
    statics_addr: int = 0
    constants_addr: int = 0
    linked: bool = False

    @property
    def class_id(self) -> int:
        return self.layout.class_id

    def find_method(self, key: str) -> RuntimeMethod | None:
        rc: RuntimeClass | None = self
        while rc is not None:
            rm = rc.methods.get(key)
            if rm is not None:
                return rm
            rc = rc.super_rc
        return None

    def find_static_slot(self, name: str) -> tuple["RuntimeClass", FieldSlot] | None:
        rc: RuntimeClass | None = self
        while rc is not None:
            if rc.statics_layout is not None:
                slot = rc.statics_layout.field_by_name.get(name)
                if slot is not None:
                    return rc, slot
            rc = rc.super_rc
        return None


class Loader:
    """Implements both the ``LayoutSource`` (for the object model / GC) and
    the ``Resolver`` (for the verifier) protocols."""

    def __init__(self, compile_fn: "Callable[[Loader, RuntimeClass, RuntimeMethod], MachineCode]"):
        self.compile_fn = compile_fn
        self.om: ObjectModel | None = None  # wired by the machine after construction
        self.classdefs: dict[str, ClassDef] = {}
        self.classes: dict[str, RuntimeClass] = {}
        self.class_table: list[Layout] = []
        self.rc_by_id: dict[int, RuntimeClass] = {}
        self.array_layouts: dict[str, Layout] = {}
        self.method_by_id: list[RuntimeMethod] = []
        self.interned: dict[str, int] = {}
        self.temp_roots: list[int] = []
        self.bootstrapped = False
        #: every compiled invokevirtual site (for inline-cache invalidation)
        self.ic_sites: list = []
        self.ic_invalidations = 0
        #: observer hook — DejaVu counts class-load side effects through this.
        self.on_class_linked: Callable[[RuntimeClass], None] | None = None

    # ------------------------------------------------------------------
    # declaration

    def declare(self, cdef: ClassDef) -> None:
        if cdef.name in self.classdefs:
            raise LinkError(f"class {cdef.name} already declared")
        self.classdefs[cdef.name] = cdef

    def declare_all(self, cdefs: list[ClassDef]) -> None:
        for cd in cdefs:
            self.declare(cd)

    # ------------------------------------------------------------------
    # LayoutSource protocol

    def layout_by_id(self, class_id: int) -> Layout:
        try:
            return self.class_table[class_id]
        except IndexError:
            raise VMError(f"bad class id {class_id}") from None

    def array_layout(self, desc: str) -> Layout:
        layout = self.array_layouts.get(desc)
        if layout is None:
            elem = element_type(desc)
            if is_reference(elem) and not elem.startswith("["):
                # force the element class to exist (and be laid out)
                from repro.vm.descriptors import class_name

                self.ensure_layout(class_name(elem))
            layout = Layout(
                class_id=len(self.class_table),
                name=desc,
                super_id=self.classes["Object"].class_id if "Object" in self.classes else None,
                is_array=True,
                elem_desc=elem,
            )
            self.class_table.append(layout)
            self.array_layouts[desc] = layout
            if self.bootstrapped:
                self._materialize_array_metadata(layout)
        return layout

    # ------------------------------------------------------------------
    # Resolver protocol (verification support)

    def class_exists(self, name: str) -> bool:
        return name in self.classes or name in self.classdefs

    def is_subclass(self, name: str, ancestor: str) -> bool:
        if ancestor == "Object":
            return True
        rc: RuntimeClass | None = self.ensure_layout(name)
        while rc is not None:
            if rc.name == ancestor:
                return True
            rc = rc.super_rc
        return False

    def common_super(self, a: str, b: str) -> str:
        if a == b:
            return a
        ancestors = set()
        rc: RuntimeClass | None = self.ensure_layout(a)
        while rc is not None:
            ancestors.add(rc.name)
            rc = rc.super_rc
        rc = self.ensure_layout(b)
        while rc is not None:
            if rc.name in ancestors:
                return rc.name
            rc = rc.super_rc
        return "Object"

    def field_desc(self, ref: str) -> tuple[str, bool]:
        cls, fld = split_field_ref(ref)
        rc = self.ensure_layout(cls)
        slot = rc.layout.field_by_name.get(fld)
        if slot is not None:
            return slot.desc, False
        found = rc.find_static_slot(fld)
        if found is not None:
            return found[1].desc, True
        raise LinkError(f"unresolved field {ref}")

    def method_sig(self, ref: str) -> Signature:
        return self.resolve_method_any(ref).mdef.signature

    # ------------------------------------------------------------------
    # execution-time resolution (used by the compiler)

    def resolve_instance_field(self, ref: str) -> FieldSlot:
        cls, fld = split_field_ref(ref)
        rc = self.ensure_layout(cls)
        slot = rc.layout.field_by_name.get(fld)
        if slot is None:
            raise LinkError(f"unresolved instance field {ref}")
        return slot

    def resolve_static_field(self, ref: str) -> tuple[RuntimeClass, FieldSlot]:
        cls, fld = split_field_ref(ref)
        rc = self.ensure_layout(cls)
        found = rc.find_static_slot(fld)
        if found is None:
            raise LinkError(f"unresolved static field {ref}")
        return found

    def resolve_method_any(self, ref: str) -> RuntimeMethod:
        cls, key = split_method_ref(ref)
        rc = self.ensure_layout(cls)
        rm = rc.find_method(key)
        if rm is None:
            raise LinkError(f"unresolved method {ref}")
        return rm

    def resolve_static_method(self, ref: str) -> RuntimeMethod:
        rm = self.resolve_method_any(ref)
        if not rm.static:
            raise LinkError(f"{ref} is not static")
        return rm

    def resolve_virtual(self, ref: str) -> tuple[str, RuntimeMethod]:
        """Return (dispatch key, statically-resolved method for its shape)."""
        rm = self.resolve_method_any(ref)
        if rm.static:
            raise LinkError(f"{ref} is static, not virtual")
        return rm.key, rm

    def vtable_lookup(self, class_id: int, key: str) -> RuntimeMethod:
        rc = self.rc_by_id.get(class_id)
        if rc is None:
            raise VMError(f"virtual dispatch on non-class id {class_id}")
        rm = rc.vtable.get(key)
        if rm is None:
            raise VMError(f"no vtable entry {key} in {rc.name}")
        return rm

    # ------------------------------------------------------------------
    # inline-cache bookkeeping

    def register_ic_site(self, site) -> None:
        self.ic_sites.append(site)

    def invalidate_inline_caches(self) -> None:
        """Reset every invokevirtual cache (called on each class link).

        Linking can only *add* vtables, never change an existing class's
        dispatch, so flushing is stronger than strictly needed — but it
        makes cache state a pure function of the (deterministic) class
        load order, which keeps the determinism argument trivial.
        """
        for site in self.ic_sites:
            site.invalidate()
        self.ic_invalidations += 1

    # ------------------------------------------------------------------
    # layout phase

    def ensure_layout(self, name: str) -> RuntimeClass:
        rc = self.classes.get(name)
        if rc is not None:
            return rc
        cdef = self.classdefs.get(name)
        if cdef is None:
            raise LinkError(f"unknown class {name}")
        super_rc: RuntimeClass | None = None
        if cdef.super_name is not None:
            super_rc = self.ensure_layout(cdef.super_name)

        fields: list[FieldSlot] = list(super_rc.layout.instance_fields) if super_rc else []
        offset = HEADER_WORDS + len(fields)
        for fd in cdef.fields:
            if not fd.static:
                fields.append(FieldSlot(fd.name, fd.desc, offset))
                offset += 1
        layout = Layout(
            class_id=len(self.class_table),
            name=name,
            super_id=super_rc.class_id if super_rc else None,
            instance_fields=fields,
        )
        self.class_table.append(layout)
        rc = RuntimeClass(name=name, cdef=cdef, layout=layout, super_rc=super_rc)
        self.classes[name] = rc
        self.rc_by_id[layout.class_id] = rc

        static_fields = [fd for fd in cdef.fields if fd.static]
        if static_fields:
            slots = [
                FieldSlot(fd.name, fd.desc, HEADER_WORDS + i)
                for i, fd in enumerate(static_fields)
            ]
            statics_layout = Layout(
                class_id=len(self.class_table),
                name=f"Statics${name}",
                super_id=None,
                instance_fields=slots,
            )
            self.class_table.append(statics_layout)
            rc.statics_layout = statics_layout
            if self.om is not None:
                rc.statics_addr = self.om.new_object(statics_layout)

        # methods get their global ids in declaration order — this makes
        # VM_Dictionary.methods[methodId] the paper's mtable lookup.
        for mdef in cdef.methods:
            rm = RuntimeMethod(owner=rc, mdef=mdef, method_id=len(self.method_by_id))
            mdef.compute_max_locals()
            self.method_by_id.append(rm)
            rc.methods[rm.key] = rm

        rc.vtable = dict(super_rc.vtable) if super_rc else {}
        for key, rm in rc.methods.items():
            if not rm.static:
                rc.vtable[key] = rm
        return rc

    # ------------------------------------------------------------------
    # link phase

    def link(self, name: str) -> RuntimeClass:
        rc = self.ensure_layout(name)
        if rc.linked:
            return rc
        if rc.super_rc is not None and not rc.super_rc.linked:
            self.link(rc.super_rc.name)
        if rc.linked:  # super link may have recursed back
            return rc
        rc.linked = True  # set early: legal self/mutual references
        assert self.om is not None, "loader not wired to an object model"

        for rm in rc.methods.values():
            if rm.native:
                continue
            rm.maps = analyze_method(rc.name, rm.mdef, self)
            rm.code = self.compile_fn(self, rc, rm)

        self._materialize_constants(rc)
        if self.bootstrapped:
            self._materialize_class_metadata(rc)
        self.invalidate_inline_caches()
        if self.on_class_linked is not None:
            self.on_class_linked(rc)
        return rc

    def load(self, name: str) -> RuntimeClass:
        """Load *name* and everything it pulled in (layout + link closure)."""
        rc = self.link(name)
        # linking may have laid out classes it referenced; link those too,
        # in deterministic (class id) order.
        while True:
            pending = [
                c
                for c in sorted(self.classes.values(), key=lambda c: c.class_id)
                if not c.linked
            ]
            if not pending:
                break
            for c in pending:
                self.link(c.name)
        return rc

    # ------------------------------------------------------------------
    # bootstrap

    def bootstrap(self) -> None:
        """Load the core library and build the VM_Dictionary."""
        from repro.vm.corelib import CORE_CLASS_ORDER, core_classdefs

        assert self.om is not None
        for name, cdef in core_classdefs().items():
            if name not in self.classdefs:
                self.declare(cdef)
        for name in CORE_CLASS_ORDER:
            self.ensure_layout(name)
        for name in CORE_CLASS_ORDER:
            self.link(name)
        self._init_dictionary()
        self.bootstrapped = True
        # Materialise metadata for everything loaded pre-dictionary,
        # in class-id order (deterministic).
        for layout in list(self.class_table):
            if layout.is_array:
                self._materialize_array_metadata(layout)
            elif layout.name.startswith("Statics$"):
                continue
            else:
                rc = self.classes.get(layout.name)
                if rc is not None and rc.linked:
                    self._materialize_class_metadata(rc)

    # ------------------------------------------------------------------
    # guest-heap helpers

    def _tr_push(self, addr: int) -> int:
        self.temp_roots.append(addr)
        return len(self.temp_roots) - 1

    def _tr_get(self, idx: int) -> int:
        return self.temp_roots[idx]

    def _tr_reset(self, depth: int) -> None:
        del self.temp_roots[depth:]

    def make_string(self, text: str) -> int:
        """Allocate a fresh guest String (not interned)."""
        assert self.om is not None
        om = self.om
        depth = len(self.temp_roots)
        chars = om.new_array("[I", len(text))
        ci = self._tr_push(chars)
        for i, ch in enumerate(text):
            om.array_put(self._tr_get(ci), i, ord(ch))
        s = om.new_object(self.classes["String"].layout)
        si = self._tr_push(s)
        slot = self.classes["String"].layout.field_by_name["chars"]
        om.put_field(self._tr_get(si), slot.offset, self._tr_get(ci))
        result = self._tr_get(si)
        self._tr_reset(depth)
        return result

    def intern(self, text: str) -> int:
        addr = self.interned.get(text)
        if addr is None:
            addr = self.make_string(text)
            self.interned[text] = addr
        return self.interned[text]

    def read_string(self, addr: int) -> str:
        """Host-side decode of a guest String (for output natives, tests)."""
        assert self.om is not None
        om = self.om
        slot = self.classes["String"].layout.field_by_name["chars"]
        chars = om.get_field(addr, slot.offset)
        n = om.array_length(chars)
        return "".join(chr(om.array_get(chars, i)) for i in range(n))

    def _materialize_constants(self, rc: RuntimeClass) -> None:
        """Build the per-class [LString; constant pool in the guest heap."""
        assert self.om is not None
        if not rc.cdef.strings:
            return
        om = self.om
        depth = len(self.temp_roots)
        arr = om.new_array("[LString;", len(rc.cdef.strings))
        ai = self._tr_push(arr)
        for i, text in enumerate(rc.cdef.strings):
            s = self.intern(text)
            om.array_put(self._tr_get(ai), i, s)
        rc.constants_addr = self._tr_get(ai)
        self._tr_reset(depth)

    # ------------------------------------------------------------------
    # VM_Dictionary and metadata materialisation

    def _dict_statics(self) -> tuple[RuntimeClass, Layout]:
        rc = self.classes["VM_Dictionary"]
        assert rc.statics_layout is not None
        return rc, rc.statics_layout

    def _init_dictionary(self) -> None:
        assert self.om is not None
        om = self.om
        rc, slayout = self._dict_statics()
        methods = om.new_array("[LVM_Method;", _DICT_INITIAL_CAPACITY)
        om.put_field(rc.statics_addr, slayout.field_by_name["methods"].offset, methods)
        classes = om.new_array("[LVM_Class;", _DICT_INITIAL_CAPACITY)
        om.put_field(rc.statics_addr, slayout.field_by_name["classes"].offset, classes)
        om.memory.boot_write(mem_mod.BOOT_DICTIONARY, rc.statics_addr)

    def _dict_append(self, field_name: str, count_name: str, addr: int) -> int:
        """Append *addr* to a VM_Dictionary array, growing it if needed.

        Returns the index.  Growth is itself a (deterministic) allocation —
        one of the class-loading side effects the paper's symmetry rules
        are about.
        """
        assert self.om is not None
        om = self.om
        depth = len(self.temp_roots)
        ai = self._tr_push(addr)
        rc, slayout = self._dict_statics()
        arr_off = slayout.field_by_name[field_name].offset
        cnt_off = slayout.field_by_name[count_name].offset
        count = om.get_field(rc.statics_addr, cnt_off)
        arr = om.get_field(rc.statics_addr, arr_off)
        cap = om.array_length(arr)
        if count >= cap:
            elem = "LVM_Method;" if field_name == "methods" else "LVM_Class;"
            bigger = om.new_array("[" + elem, cap * 2)
            bi = self._tr_push(bigger)
            arr = om.get_field(rc.statics_addr, arr_off)  # re-read: GC may have run
            for i in range(count):
                om.array_put(self._tr_get(bi), i, om.array_get(arr, i))
            om.put_field(rc.statics_addr, arr_off, self._tr_get(bi))
            arr = self._tr_get(bi)
        om.array_put(arr, count, self._tr_get(ai))
        om.put_field(rc.statics_addr, cnt_off, count + 1)
        self._tr_reset(depth)
        return count

    def _materialize_class_metadata(self, rc: RuntimeClass) -> None:
        assert self.om is not None
        om = self.om
        vmc_rc = self.classes["VM_Class"]
        fb = vmc_rc.layout.field_by_name
        depth = len(self.temp_roots)

        vmc = om.new_object(vmc_rc.layout)
        ci = self._tr_push(vmc)
        name_s = self.intern(rc.name)
        om.put_field(self._tr_get(ci), fb["name"].offset, name_s)
        om.put_field(self._tr_get(ci), fb["classId"].offset, rc.class_id)
        om.put_field(
            self._tr_get(ci),
            fb["superId"].offset,
            rc.super_rc.class_id if rc.super_rc else -1,
        )
        om.put_field(self._tr_get(ci), fb["statics"].offset, rc.statics_addr)

        own = sorted(rc.methods.values(), key=lambda rm: rm.method_id)
        marr = om.new_array("[LVM_Method;", len(own))
        mi = self._tr_push(marr)
        om.put_field(self._tr_get(ci), fb["methods"].offset, self._tr_get(mi))
        for i, rm in enumerate(own):
            vmm = self._materialize_method_metadata(rm, ci)
            vi = self._tr_push(vmm)
            om.array_put(self._tr_get(mi), i, self._tr_get(vi))
            self._dict_append("methods", "methodCount", self._tr_get(vi))

        self._dict_append("classes", "classCount", self._tr_get(ci))
        self._tr_reset(depth)
        if rc.statics_layout is not None:
            self._materialize_synthetic_metadata(
                rc.statics_layout, super_id=-1
            )

    def _materialize_method_metadata(self, rm: RuntimeMethod, class_ti: int) -> int:
        assert self.om is not None
        om = self.om
        vmm_rc = self.classes["VM_Method"]
        fb = vmm_rc.layout.field_by_name
        depth = len(self.temp_roots)

        vmm = om.new_object(vmm_rc.layout)
        vi = self._tr_push(vmm)
        om.put_field(self._tr_get(vi), fb["name"].offset, self.intern(rm.mdef.name))
        om.put_field(
            self._tr_get(vi),
            fb["descriptor"].offset,
            self.intern(rm.mdef.signature.spell()),
        )
        om.put_field(self._tr_get(vi), fb["declaring"].offset, self._tr_get(class_ti))
        om.put_field(self._tr_get(vi), fb["methodId"].offset, rm.method_id)
        n = len(rm.mdef.code)
        om.put_field(self._tr_get(vi), fb["codeSize"].offset, n)
        lt = om.new_array("[I", n)
        li = self._tr_push(lt)
        for bci, line in rm.mdef.line_table.items():
            if 0 <= bci < n:
                om.array_put(self._tr_get(li), bci, line)
        om.put_field(self._tr_get(vi), fb["lineTable"].offset, self._tr_get(li))
        result = self._tr_get(vi)
        self._tr_reset(depth)
        return result

    def _materialize_array_metadata(self, layout: Layout) -> None:
        """Array classes get VM_Class entries too, so a remote debugger can
        map any class id it reads out of a header back to a type."""
        self._materialize_synthetic_metadata(
            layout, super_id=self.classes["Object"].class_id
        )

    def _materialize_synthetic_metadata(self, layout: Layout, super_id: int) -> None:
        """A minimal VM_Class entry for a layout with no ClassDef (arrays,
        statics holders) — every class id in an object header must be
        resolvable through the remote dictionary."""
        assert self.om is not None
        om = self.om
        vmc_rc = self.classes["VM_Class"]
        fb = vmc_rc.layout.field_by_name
        depth = len(self.temp_roots)
        vmc = om.new_object(vmc_rc.layout)
        ci = self._tr_push(vmc)
        om.put_field(self._tr_get(ci), fb["name"].offset, self.intern(layout.name))
        om.put_field(self._tr_get(ci), fb["classId"].offset, layout.class_id)
        om.put_field(self._tr_get(ci), fb["superId"].offset, super_id)
        self._dict_append("classes", "classCount", self._tr_get(ci))
        self._tr_reset(depth)

    # ------------------------------------------------------------------
    # GC support

    def visit_roots(self, fwd: Callable[[int], int]) -> None:
        """Forward every heap address the loader holds host-side."""
        for rc in sorted(self.classes.values(), key=lambda c: c.class_id):
            if rc.statics_addr:
                rc.statics_addr = fwd(rc.statics_addr)
            if rc.constants_addr:
                rc.constants_addr = fwd(rc.constants_addr)
        for text in list(self.interned):
            self.interned[text] = fwd(self.interned[text])
        for i, addr in enumerate(self.temp_roots):
            if addr:
                self.temp_roots[i] = fwd(addr)
