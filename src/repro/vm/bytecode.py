"""The bytecode instruction set.

A method body is a sequence of :class:`Instr` — an opcode plus at most one
operand.  Branch targets are instruction indices ("bci"); symbolic operands
(class / field / method references) are resolved at link time.

The ISA is a JVM subset covering everything the paper's examples exercise:
integer arithmetic, objects, arrays, static and virtual calls, monitors,
and conditional control flow.  ``long``/``float`` and structured exception
handling are deliberately out of scope (see DESIGN.md substitutions).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OperandKind(enum.Enum):
    NONE = "none"
    INT = "int"  # immediate integer
    LOCAL = "local"  # local-variable slot index
    LOCAL_INT = "local_int"  # (slot, delta) pair — IINC
    TARGET = "target"  # branch target (instruction index)
    CLASS = "class"  # class name
    FIELD = "field"  # "Class.field"
    METHOD = "method"  # "Class.method(sig)"
    DESC = "desc"  # element type descriptor
    STRING = "string"  # constant-pool string index


class Op(enum.IntEnum):
    NOP = 0
    ICONST = 1
    LDC = 2
    ACONST_NULL = 3
    DUP = 4
    POP = 5
    SWAP = 6

    ILOAD = 10
    ISTORE = 11
    ALOAD = 12
    ASTORE = 13
    IINC = 14

    IADD = 20
    ISUB = 21
    IMUL = 22
    IDIV = 23
    IREM = 24
    INEG = 25
    ISHL = 26
    ISHR = 27
    IUSHR = 28
    IAND = 29
    IOR = 30
    IXOR = 31

    GOTO = 40
    IFEQ = 41
    IFNE = 42
    IFLT = 43
    IFLE = 44
    IFGT = 45
    IFGE = 46
    IF_ICMPEQ = 47
    IF_ICMPNE = 48
    IF_ICMPLT = 49
    IF_ICMPLE = 50
    IF_ICMPGT = 51
    IF_ICMPGE = 52
    IF_ACMPEQ = 53
    IF_ACMPNE = 54
    IFNULL = 55
    IFNONNULL = 56

    NEW = 60
    GETFIELD = 61
    PUTFIELD = 62
    GETSTATIC = 63
    PUTSTATIC = 64
    NEWARRAY = 65
    ANEWARRAY = 66
    IALOAD = 67
    IASTORE = 68
    AALOAD = 69
    AASTORE = 70
    ARRAYLENGTH = 71
    INSTANCEOF = 72
    CHECKCAST = 73

    INVOKESTATIC = 80
    INVOKEVIRTUAL = 81
    RETURN = 82
    IRETURN = 83
    ARETURN = 84

    MONITORENTER = 90
    MONITOREXIT = 91


OPERAND_KIND: dict[Op, OperandKind] = {
    Op.NOP: OperandKind.NONE,
    Op.ICONST: OperandKind.INT,
    Op.LDC: OperandKind.STRING,
    Op.ACONST_NULL: OperandKind.NONE,
    Op.DUP: OperandKind.NONE,
    Op.POP: OperandKind.NONE,
    Op.SWAP: OperandKind.NONE,
    Op.ILOAD: OperandKind.LOCAL,
    Op.ISTORE: OperandKind.LOCAL,
    Op.ALOAD: OperandKind.LOCAL,
    Op.ASTORE: OperandKind.LOCAL,
    Op.IINC: OperandKind.LOCAL_INT,
    Op.IADD: OperandKind.NONE,
    Op.ISUB: OperandKind.NONE,
    Op.IMUL: OperandKind.NONE,
    Op.IDIV: OperandKind.NONE,
    Op.IREM: OperandKind.NONE,
    Op.INEG: OperandKind.NONE,
    Op.ISHL: OperandKind.NONE,
    Op.ISHR: OperandKind.NONE,
    Op.IUSHR: OperandKind.NONE,
    Op.IAND: OperandKind.NONE,
    Op.IOR: OperandKind.NONE,
    Op.IXOR: OperandKind.NONE,
    Op.GOTO: OperandKind.TARGET,
    Op.IFEQ: OperandKind.TARGET,
    Op.IFNE: OperandKind.TARGET,
    Op.IFLT: OperandKind.TARGET,
    Op.IFLE: OperandKind.TARGET,
    Op.IFGT: OperandKind.TARGET,
    Op.IFGE: OperandKind.TARGET,
    Op.IF_ICMPEQ: OperandKind.TARGET,
    Op.IF_ICMPNE: OperandKind.TARGET,
    Op.IF_ICMPLT: OperandKind.TARGET,
    Op.IF_ICMPLE: OperandKind.TARGET,
    Op.IF_ICMPGT: OperandKind.TARGET,
    Op.IF_ICMPGE: OperandKind.TARGET,
    Op.IF_ACMPEQ: OperandKind.TARGET,
    Op.IF_ACMPNE: OperandKind.TARGET,
    Op.IFNULL: OperandKind.TARGET,
    Op.IFNONNULL: OperandKind.TARGET,
    Op.NEW: OperandKind.CLASS,
    Op.GETFIELD: OperandKind.FIELD,
    Op.PUTFIELD: OperandKind.FIELD,
    Op.GETSTATIC: OperandKind.FIELD,
    Op.PUTSTATIC: OperandKind.FIELD,
    Op.NEWARRAY: OperandKind.NONE,
    Op.ANEWARRAY: OperandKind.DESC,
    Op.IALOAD: OperandKind.NONE,
    Op.IASTORE: OperandKind.NONE,
    Op.AALOAD: OperandKind.NONE,
    Op.AASTORE: OperandKind.NONE,
    Op.ARRAYLENGTH: OperandKind.NONE,
    Op.INSTANCEOF: OperandKind.CLASS,
    Op.CHECKCAST: OperandKind.CLASS,
    Op.INVOKESTATIC: OperandKind.METHOD,
    Op.INVOKEVIRTUAL: OperandKind.METHOD,
    Op.RETURN: OperandKind.NONE,
    Op.IRETURN: OperandKind.NONE,
    Op.ARETURN: OperandKind.NONE,
    Op.MONITORENTER: OperandKind.NONE,
    Op.MONITOREXIT: OperandKind.NONE,
}

#: Opcodes that transfer control unconditionally (fall-through impossible).
UNCONDITIONAL = frozenset({Op.GOTO, Op.RETURN, Op.IRETURN, Op.ARETURN})

#: Conditional branches (fall through or jump).
CONDITIONAL = frozenset(
    {
        Op.IFEQ,
        Op.IFNE,
        Op.IFLT,
        Op.IFLE,
        Op.IFGT,
        Op.IFGE,
        Op.IF_ICMPEQ,
        Op.IF_ICMPNE,
        Op.IF_ICMPLT,
        Op.IF_ICMPLE,
        Op.IF_ICMPGT,
        Op.IF_ICMPGE,
        Op.IF_ACMPEQ,
        Op.IF_ACMPNE,
        Op.IFNULL,
        Op.IFNONNULL,
    }
)

#: All branch opcodes (operand is a TARGET).
BRANCHES = CONDITIONAL | frozenset({Op.GOTO})


@dataclass(frozen=True)
class Instr:
    """One bytecode instruction: opcode + operand (shape per OPERAND_KIND)."""

    op: Op
    arg: object = None

    def __repr__(self) -> str:
        if self.arg is None:
            return f"Instr({self.op.name})"
        return f"Instr({self.op.name}, {self.arg!r})"


def format_instr(instr: Instr) -> str:
    """Render an instruction in assembler syntax."""
    kind = OPERAND_KIND[instr.op]
    name = instr.op.name.lower()
    if kind is OperandKind.NONE:
        return name
    if kind is OperandKind.LOCAL_INT:
        slot, delta = instr.arg  # type: ignore[misc]
        return f"{name} {slot} {delta}"
    return f"{name} {instr.arg}"


def disassemble(code: list[Instr], lines: dict[int, int] | None = None) -> str:
    """Render a method body, one instruction per line, with bci prefixes."""
    out = []
    for bci, instr in enumerate(code):
        line = f"  {bci:4d}: {format_instr(instr)}"
        if lines and bci in lines:
            line += f"    ; line {lines[bci]}"
        out.append(line)
    return "\n".join(out)
