"""Engine optimisation toggles.

The execution pipeline is a three-layer optimisation stack, each layer
independently ablatable (so determinism can be asserted across every
combination, and perf can be attributed per layer):

* ``threaded_dispatch`` — the engine executes pre-bound handler closures
  (one per compiled site) instead of scanning an if/elif chain per
  micro-op, with deadline/budget accounting batched off the per-op path;
* ``fusion`` — the compiler's peephole pass fuses hot adjacent micro-op
  pairs/triples into superinstructions that charge exactly the cycles of
  the ops they replace and never straddle a branch target or safe
  point; a yield point may only appear as the *terminal* op of a
  record-aware ``F_YP_GROUP``, which charges its prefix cycles and
  re-checks the timer deadline before the yield point observes it;
* ``inline_caches`` — each ``invokevirtual`` site carries a monomorphic
  ``class_id → RuntimeMethod`` cache, invalidated by the loader whenever
  a class is linked.

None of the three layers may change anything the guest (or DejaVu) can
observe: logical clocks, ``nyp`` deltas, cycle counts, traces, and event
streams are bit-identical for every toggle combination.  The toggles
exist precisely so tests can assert that.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EngineConfig:
    """Which optimisation layers the engine/compiler pair enables."""

    threaded_dispatch: bool = True
    fusion: bool = True
    inline_caches: bool = True

    @classmethod
    def baseline(cls) -> "EngineConfig":
        """The seed engine: if/elif dispatch, no fusion, no caches.

        Debug-hook clients (profiler, coverage, debugger, time-travel)
        and memory-hook clients (the repro.explore race detector) require
        this — per-micro-op hooks need the unfused pc space, and a fused
        superinstruction would hide the memory accesses inside it.
        """
        return cls(threaded_dispatch=False, fusion=False, inline_caches=False)

    @classmethod
    def all_combinations(cls) -> "list[EngineConfig]":
        """Every toggle combination, baseline first (for ablation tests)."""
        combos = []
        for threaded in (False, True):
            for fusion in (False, True):
                for ic in (False, True):
                    combos.append(
                        cls(
                            threaded_dispatch=threaded,
                            fusion=fusion,
                            inline_caches=ic,
                        )
                    )
        return combos

    def describe(self) -> str:
        parts = []
        parts.append("threaded" if self.threaded_dispatch else "switch")
        if self.fusion:
            parts.append("fusion")
        if self.inline_caches:
            parts.append("ic")
        return "+".join(parts)
