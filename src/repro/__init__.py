"""DejaVu on Pequeño — a perturbation-free deterministic replay platform.

A from-scratch reproduction of Choi, Alpern, Ngo, Sridharan, Vlissides,
*A Perturbation-Free Replay Platform for Cross-Optimized Multithreaded
Applications* (IPDPS 2001).

Package map:

* :mod:`repro.vm`        — the Jalapeño-like virtual machine substrate
* :mod:`repro.core`      — DejaVu: record/replay, symmetry, verification
* :mod:`repro.remote`    — remote reflection (ptrace port, tool interpreter)
* :mod:`repro.debugger`  — the three-tier debugger + time travel
* :mod:`repro.lang`      — MiniJ, a small Java-like front end
* :mod:`repro.tools`     — replay-based profiler / coverage / heap census
* :mod:`repro.baselines` — the §5 related-work schemes
* :mod:`repro.workloads` — guest programs
* :mod:`repro.api`       — `GuestProgram` / `record` / `replay`
* :mod:`repro.cli`       — ``python -m repro``

Quickstart::

    from repro.api import record, replay
    from repro.core import assert_faithful_replay
    from repro.workloads import racy_bank

    session = record(racy_bank())
    result = replay(racy_bank(), session.trace)
    assert_faithful_replay(session.result, result)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
