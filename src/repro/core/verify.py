"""Replay accuracy verification.

The paper's accuracy requirement is absolute: "the replayed code exhibits
exactly the same behavior as the instrumented code".  §2 defines identical
behaviour as (1) identical event sequences and (2) identical program
states after corresponding events.  We check both:

* the **event stream** — every observer event (thread switches with cycle
  counts, outputs, clock values, native results, GCs, stack growths,
  traps) must match position-by-position;
* the **program state** — the final heap digest (a hash of every live
  word, including addresses chosen by the allocator and collector), cycle
  count, and per-thread logical clocks must match.

In addition the replay engine performs *online* checks (record-kind and
method-id mismatches raise :class:`ReplayDivergenceError` mid-run), so a
diverging replay fails fast rather than producing a plausible-looking but
wrong execution.

When event streams diverge, the report carries a ±``NEIGHBORHOOD``-event
window of both streams around the first divergent index, plus the thread
the divergent event belongs to — the raw material the divergence doctor
(:mod:`repro.core.doctor`) builds its diagnosis from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vm.errors import ReplayDivergenceError
from repro.vm.observer import first_divergence
from repro.vm.scheduler_types import RunResult

#: events of context shown on each side of a divergence
NEIGHBORHOOD = 5

#: event kinds whose payload starts with a thread id
_TID_EVENTS = {"thread_start", "thread_end", "stack_grow", "trap"}


def event_thread(event: tuple | None) -> int | None:
    """Best-effort thread id of an observer event (None when it has none)."""
    if not event:
        return None
    kind = event[0]
    if kind in _TID_EVENTS:
        return event[1]
    if kind == "switch":  # ("switch", from_tid, to_tid, cycles)
        return event[2]
    return None


def format_neighborhood(
    recorded: list[tuple],
    replayed: list[tuple],
    idx: int,
    radius: int = NEIGHBORHOOD,
) -> str:
    """Side-by-side ±radius window of both event streams around *idx*."""
    lo = max(0, idx - radius)
    hi = idx + radius + 1
    lines = []
    for i in range(lo, hi):
        rec = recorded[i] if i < len(recorded) else None
        rep = replayed[i] if i < len(replayed) else None
        if rec is None and rep is None:
            break
        marker = ">>" if i == idx else "  "
        same = "==" if rec == rep else "!="
        lines.append(
            f"{marker} [{i:5d}] recorded {rec!r:<48} {same} replayed {rep!r}"
        )
    return "\n".join(lines)


@dataclass
class ReplayReport:
    faithful: bool
    detail: str
    first_event_divergence: int | None = None
    record_event: tuple | None = None
    replay_event: tuple | None = None
    #: thread id of the first divergent event, when the event names one
    divergent_thread: int | None = None
    #: formatted ±NEIGHBORHOOD window of both streams (empty if faithful
    #: or the divergence is not in the event streams)
    neighborhood: str = field(default="", repr=False)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.faithful

    def format(self) -> str:
        lines = [("replay is accurate" if self.faithful else "REPLAY DIVERGED")
                 + f": {self.detail}"]
        if self.divergent_thread is not None:
            lines.append(f"divergent event belongs to thread {self.divergent_thread}")
        if self.neighborhood:
            lines.append("event neighborhood (recorded vs replayed):")
            lines.append(self.neighborhood)
        return "\n".join(lines)


def compare_runs(recorded: RunResult, replayed: RunResult) -> ReplayReport:
    """Full accuracy comparison between a record run and its replay."""
    idx = first_divergence(recorded.events, replayed.events)
    if idx is not None:
        rec_ev = recorded.events[idx] if idx < len(recorded.events) else None
        rep_ev = replayed.events[idx] if idx < len(replayed.events) else None
        return ReplayReport(
            faithful=False,
            detail=(
                f"event streams diverge at index {idx}: "
                f"recorded {rec_ev!r}, replayed {rep_ev!r}"
            ),
            first_event_divergence=idx,
            record_event=rec_ev,
            replay_event=rep_ev,
            divergent_thread=event_thread(rec_ev) or event_thread(rep_ev),
            neighborhood=format_neighborhood(recorded.events, replayed.events, idx),
        )
    if recorded.output != replayed.output:
        return ReplayReport(False, "outputs differ")
    if recorded.cycles != replayed.cycles:
        return ReplayReport(
            False,
            f"cycle counts differ: {recorded.cycles} vs {replayed.cycles}",
        )
    if recorded.yieldpoints != replayed.yieldpoints:
        return ReplayReport(False, "per-thread logical clocks differ")
    if recorded.heap_digest != replayed.heap_digest:
        return ReplayReport(
            False,
            "final heap digests differ (program states diverged even though "
            "all observed events matched)",
        )
    if recorded.traps != replayed.traps:
        return ReplayReport(False, "trap reports differ")
    return ReplayReport(True, "replay is accurate")


def assert_faithful_replay(recorded: RunResult, replayed: RunResult) -> None:
    report = compare_runs(recorded, replayed)
    if not report.faithful:
        raise ReplayDivergenceError(report.detail)
