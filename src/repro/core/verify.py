"""Replay accuracy verification.

The paper's accuracy requirement is absolute: "the replayed code exhibits
exactly the same behavior as the instrumented code".  §2 defines identical
behaviour as (1) identical event sequences and (2) identical program
states after corresponding events.  We check both:

* the **event stream** — every observer event (thread switches with cycle
  counts, outputs, clock values, native results, GCs, stack growths,
  traps) must match position-by-position;
* the **program state** — the final heap digest (a hash of every live
  word, including addresses chosen by the allocator and collector), cycle
  count, and per-thread logical clocks must match.

In addition the replay engine performs *online* checks (record-kind and
method-id mismatches raise :class:`ReplayDivergenceError` mid-run), so a
diverging replay fails fast rather than producing a plausible-looking but
wrong execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm.errors import ReplayDivergenceError
from repro.vm.observer import first_divergence
from repro.vm.scheduler_types import RunResult


@dataclass
class ReplayReport:
    faithful: bool
    detail: str
    first_event_divergence: int | None = None
    record_event: tuple | None = None
    replay_event: tuple | None = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.faithful


def compare_runs(recorded: RunResult, replayed: RunResult) -> ReplayReport:
    """Full accuracy comparison between a record run and its replay."""
    idx = first_divergence(recorded.events, replayed.events)
    if idx is not None:
        rec_ev = recorded.events[idx] if idx < len(recorded.events) else None
        rep_ev = replayed.events[idx] if idx < len(replayed.events) else None
        return ReplayReport(
            faithful=False,
            detail=(
                f"event streams diverge at index {idx}: "
                f"recorded {rec_ev!r}, replayed {rep_ev!r}"
            ),
            first_event_divergence=idx,
            record_event=rec_ev,
            replay_event=rep_ev,
        )
    if recorded.output != replayed.output:
        return ReplayReport(False, "outputs differ")
    if recorded.cycles != replayed.cycles:
        return ReplayReport(
            False,
            f"cycle counts differ: {recorded.cycles} vs {replayed.cycles}",
        )
    if recorded.yieldpoints != replayed.yieldpoints:
        return ReplayReport(False, "per-thread logical clocks differ")
    if recorded.heap_digest != replayed.heap_digest:
        return ReplayReport(
            False,
            "final heap digests differ (program states diverged even though "
            "all observed events matched)",
        )
    if recorded.traps != replayed.traps:
        return ReplayReport(False, "trap reports differ")
    return ReplayReport(True, "replay is accurate")


def assert_faithful_replay(recorded: RunResult, replayed: RunResult) -> None:
    report = compare_runs(recorded, replayed)
    if not report.faithful:
        raise ReplayDivergenceError(report.detail)
