"""Symmetric instrumentation machinery (§2.4 of the paper).

DejaVu cannot replay its own instrumentation — it *writes* in record mode
and *reads* in replay mode.  Where transparency is impossible, every side
effect that could touch the VM is made **identical in both modes**:

* **allocation** — the trace buffers are pre-allocated at initialisation
  (same objects, same addresses) instead of lazily at first use;
* **class loading & compilation** — DejaVu's own support classes (the
  record-side *and* replay-side I/O helpers) are pre-loaded and
  pre-compiled before the application starts, so neither mode triggers a
  class load the other doesn't;
* **I/O warm-up** — DejaVu writes a temporary file and immediately reads
  it back during initialisation in *both* modes, forcing both the input
  and the output paths to be exercised (and, in Jalapeño, compiled)
  symmetrically;
* **stack overflow** — instrumentation transiently consumes guest stack
  words (more in replay than in record, as the paper notes), so the stack
  is grown *eagerly* whenever headroom falls below a mode-independent
  threshold, making growth points identical;
* **logical clock** — yield points executed inside instrumentation code
  (buffer flush/refill I/O) are not counted, via the ``liveclock`` flag of
  Figure 2.

Every mechanism can be individually disabled through
:class:`SymmetryConfig` — the ablation benchmarks show each one's absence
producing a replay divergence.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.vm.builder import ClassBuilder
from repro.vm.threads import EAGER_STACK_HEADROOM, GreenThread

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.controller import DejaVu

#: transient guest-stack words an instrumentation activation consumes.
#: Replay reads, decodes and validates — it needs more frames than the
#: record-side write path ("the result can be unequal runtime activation-
#: stack increments at corresponding invocations of a DejaVu method").
RECORD_STACK_WORDS = 8
REPLAY_STACK_WORDS = 40

#: instrumentation-internal yield points executed per buffer drain
#: (the write path and the read path run different amounts of code).
FLUSH_INTERNAL_YIELDPOINTS = 3
REFILL_INTERNAL_YIELDPOINTS = 5


@dataclass
class SymmetryConfig:
    """The §2.4 mechanisms; disable one to reproduce the failure it prevents."""

    preallocate_buffers: bool = True
    preload_classes: bool = True
    io_warmup: bool = True
    eager_stack_growth: bool = True
    liveclock: bool = True

    @classmethod
    def all_off(cls) -> "SymmetryConfig":
        return cls(
            preallocate_buffers=False,
            preload_classes=False,
            io_warmup=False,
            eager_stack_growth=False,
            liveclock=False,
        )


def _record_io_classdef():
    """DejaVu's record-side I/O support class (guest code).

    The bodies are tiny but real: loading this class allocates metadata,
    line tables and interned strings in the guest heap — exactly the side
    effect the pre-loading rule exists to symmetrise.
    """
    cb = ClassBuilder("DejaVuRecordIO")
    m = cb.method("writeWord", "(I)I", static=True)
    m.iload(0).iconst(1).iadd().ireturn()
    m = cb.method("flushBlock", "(I)I", static=True)
    m.iload(0).istore(1)
    m.iconst(0).istore(2)
    m.label("loop")
    m.iload(2).iload(1).if_icmpge("done")
    m.iinc(2, 1).goto("loop")
    m.label("done").iload(2).ireturn()
    return cb.build()


def _replay_io_classdef():
    cb = ClassBuilder("DejaVuReplayIO")
    m = cb.method("readWord", "(I)I", static=True)
    m.iload(0).iconst(1).isub().ireturn()
    m = cb.method("refillBlock", "(I)I", static=True)
    m.iload(0).istore(1)
    m.iconst(0).istore(2)
    m.label("loop")
    m.iload(2).iload(1).if_icmpge("done")
    m.iinc(2, 2).goto("loop")
    m.label("done").iload(2).ireturn()
    return cb.build()


class SymmetryManager:
    """Executes the symmetry actions for one DejaVu session."""

    def __init__(self, dejavu: "DejaVu", config: SymmetryConfig):
        self.dejavu = dejavu
        self.config = config
        self._io_classes_loaded = False
        self.io_warmups = 0
        self.eager_grows = 0
        self.overflow_grows = 0

    # ------------------------------------------------------------------
    # initialisation-time actions

    def declare_support_classes(self) -> None:
        loader = self.dejavu.vm.loader
        for cdef in (_record_io_classdef(), _replay_io_classdef()):
            if cdef.name not in loader.classdefs:
                loader.declare(cdef)

    def init_actions(self) -> None:
        """Run before the application starts — identical in both modes."""
        self.declare_support_classes()
        if self.config.preload_classes:
            # both the record-side and the replay-side classes, in a fixed
            # order, whichever mode we are in (the paper: "pre-loading all
            # the classes of DejaVu, whether needed only for record or
            # replay").  Linking also compiles every method (symmetry in
            # compilation).
            loader = self.dejavu.vm.loader
            loader.load("DejaVuRecordIO")
            loader.load("DejaVuReplayIO")
            self._io_classes_loaded = True
        if self.config.preallocate_buffers:
            self.dejavu.switch_buf.allocate()
            self.dejavu.value_buf.allocate()
        if self.config.io_warmup:
            self._io_warmup()

    def _io_warmup(self) -> None:
        """Write a temp file then immediately read it back (both modes)."""
        fd, path = tempfile.mkstemp(prefix="dejavu-warmup-", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(b"\x00" * 64)
            with open(path, "rb") as f:
                data = f.read()
            assert len(data) == 64
            self.io_warmups += 1
        finally:
            os.unlink(path)

    # ------------------------------------------------------------------
    # drain-time actions (buffer flush in record / refill in replay)

    def on_drain(self, kind: str) -> None:
        if not self._io_classes_loaded:
            # lazy loading: the asymmetric behaviour the preload rule
            # prevents — record loads the writer class at first flush,
            # replay loads the reader class at first refill, shifting the
            # allocation streams apart.
            loader = self.dejavu.vm.loader
            if kind == "flush":
                loader.load("DejaVuRecordIO")
            else:
                loader.load("DejaVuReplayIO")
            self._io_classes_loaded = True
        n = FLUSH_INTERNAL_YIELDPOINTS if kind == "flush" else REFILL_INTERNAL_YIELDPOINTS
        for _ in range(n):
            self.dejavu.internal_yieldpoint()

    # ------------------------------------------------------------------
    # per-yield-point stack discipline

    def stack_check(self, thread: GreenThread) -> None:
        """Grow the thread stack before 'calling into DejaVu'.

        Symmetric: grow eagerly below a mode-independent threshold.
        Ablated: grow only when this mode's transient cost actually
        overflows — record and replay then grow at different points.
        """
        scheduler = self.dejavu.vm.scheduler
        headroom = scheduler.stack_headroom(thread)
        if self.config.eager_stack_growth:
            if headroom < EAGER_STACK_HEADROOM:
                scheduler.grow_stack(thread, EAGER_STACK_HEADROOM)
                self.eager_grows += 1
        else:
            need = RECORD_STACK_WORDS if self.dejavu.recording else REPLAY_STACK_WORDS
            if headroom < need:
                scheduler.grow_stack(thread, need)
                self.overflow_grows += 1
