"""The DejaVu controller: record and replay of non-deterministic events.

The controller attaches to a :class:`~repro.vm.machine.VirtualMachine` and
interposes on exactly three funnels:

1. **yield points** — every compiled yield point calls
   :meth:`DejaVu.at_yieldpoint`, which executes the Figure-2
   instrumentation (structurally identical in record and replay mode);
2. **wall-clock reads** — :meth:`clock_read` records/replays every value;
3. **non-deterministic natives** — :meth:`native_call` records/replays
   return values and callback (upcall) parameters, per §2.5.

Everything else — synchronization, GC, allocation, monitor hand-offs —
replays because the thread package and heap are themselves deterministic
state machines once these three funnels are pinned.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core import events as ev
from repro.core.symmetry import SymmetryConfig, SymmetryManager
from repro.core.tracelog import TraceBuffer, TraceLog, TraceWriter
from repro.vm.errors import ReplayDivergenceError, TracePrefixEnd, VMError
from repro.vm.memory import BOOT_DEJAVU
from repro.vm.native import BLOCK, NativeCall, NativeResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.explore.policy import SchedulePolicy
    from repro.vm.loader import RuntimeMethod
    from repro.vm.machine import VirtualMachine
    from repro.vm.native import NativeDef
    from repro.vm.threads import GreenThread

MODE_RECORD = "record"
MODE_REPLAY = "replay"

#: default guest-buffer capacities (words)
SWITCH_BUFFER_WORDS = 256
VALUE_BUFFER_WORDS = 512


class DejaVu:
    """One record or replay session bound to one VM."""

    def __init__(
        self,
        vm: "VirtualMachine",
        mode: str,
        trace: TraceLog | None = None,
        symmetry: SymmetryConfig | None = None,
        switch_buffer_words: int = SWITCH_BUFFER_WORDS,
        value_buffer_words: int = VALUE_BUFFER_WORDS,
        schedule: "SchedulePolicy | None" = None,
        writer: TraceWriter | None = None,
    ):
        if mode not in (MODE_RECORD, MODE_REPLAY):
            raise VMError(f"bad DejaVu mode {mode!r}")
        if mode == MODE_REPLAY and trace is None:
            raise VMError("replay mode requires a trace")
        if schedule is not None and mode != MODE_RECORD:
            raise VMError("a schedule policy only applies in record mode")
        if writer is not None and mode != MODE_RECORD:
            raise VMError("a trace writer only applies in record mode")
        if vm.dejavu is not None:
            raise VMError("VM already has a DejaVu attached")
        self.vm = vm
        self.mode = mode
        #: optional record-side schedule source (repro.explore): when set,
        #: it — not the timer's hardware bit — decides preemption at each
        #: yield point, so a chosen schedule becomes an ordinary switch
        #: log that replays through the unchanged replay path.
        self.schedule = schedule
        self.symmetry_config = symmetry or SymmetryConfig()
        self.sym = SymmetryManager(self, self.symmetry_config)

        self.switch_buf = TraceBuffer(vm, switch_buffer_words)
        self.value_buf = TraceBuffer(vm, value_buffer_words, boot_slot=BOOT_DEJAVU)
        self.switch_buf.on_drain = self.sym.on_drain
        self.value_buf.on_drain = self.sym.on_drain

        # record-side sinks; a TraceWriter's sinks ARE lists, so attaching
        # one streams full segments to disk without the controller (or the
        # guest-heap buffers feeding it) behaving any differently
        self.writer = writer
        self._switch_sink: list[int] = (
            writer.switch_sink if writer is not None else []
        )
        self._value_sink: list[int] = (
            writer.value_sink if writer is not None else []
        )
        # replay-side sources and cursors
        self._trace = trace
        self._switch_cursor = 0
        self._value_cursor = 0
        #: a salvaged trace is a prefix, not a divergence: run to the end
        #: of the prefix and stop cleanly instead of raising divergence
        self.tolerate_truncation = bool(trace is not None and trace.truncated)

        # Figure 2 state
        self.nyp = 0
        self.liveclock = True
        self.threadswitch_bit = False
        self._replay_nyp: int | None = None

        self.stats = {
            "switch_records": 0,
            "clock_records": 0,
            "native_records": 0,
            "upcall_records": 0,
            "internal_yieldpoints": 0,
        }
        self._finished = False
        # -- engine fast-path gates.  With the liveclock mechanism and
        # symmetric eager stack growth both on, a *non-firing* yield
        # point reduces to a single counter bump (record: nyp += 1;
        # replay: _replay_nyp -= 1) — the dispatch loops inline exactly
        # that case and call at_yieldpoint() whenever any gate is off
        # (see interp.py).  Gated per-session here so ablations and
        # schedule-driven recording always take the full path.
        # A subclass overriding at_yieldpoint (e.g. the Russinovich &
        # Cogswell baseline) has different per-yield-point semantics, so
        # the inlined body would be wrong for it: gate on the method
        # actually being the one the loops inline.
        _sym_fast = (
            type(self).at_yieldpoint is DejaVu.at_yieldpoint
            and self.symmetry_config.liveclock
            and self.symmetry_config.eager_stack_growth
        )
        self._fast_record = self.recording and schedule is None and _sym_fast
        self._fast_replay = self.replaying and _sym_fast
        vm.dejavu = self

    # ------------------------------------------------------------------

    @property
    def recording(self) -> bool:
        return self.mode == MODE_RECORD

    @property
    def replaying(self) -> bool:
        return self.mode == MODE_REPLAY

    # ------------------------------------------------------------------
    # raw word I/O (always with the logical clock paused)

    def _put_switch(self, word: int) -> None:
        self.switch_buf.put(word, self._switch_sink)

    def _put_value(self, word: int) -> None:
        self.value_buf.put(word, self._value_sink)

    def _take_switch(self) -> int | None:
        assert self._trace is not None
        word, self._switch_cursor = self.switch_buf.take(
            self._trace.switches, self._switch_cursor
        )
        return word

    def _take_value(self) -> int:
        assert self._trace is not None
        word, self._value_cursor = self.value_buf.take(
            self._trace.values, self._value_cursor
        )
        if word is None:
            if self.tolerate_truncation:
                raise TracePrefixEnd(
                    "salvaged value stream exhausted (end of the surviving "
                    "prefix)",
                    words_consumed=self._value_cursor,
                )
            raise ReplayDivergenceError(
                "value trace exhausted", position=self._value_cursor
            )
        return word

    # ------------------------------------------------------------------
    # lifecycle

    def on_run_start(self) -> None:
        """DejaVu initialisation, before the application's first event."""
        self.sym.init_actions()
        if self.replaying:
            self.vm.engine.timer_enabled = False  # hw bit is ignored anyway
            prev = self.liveclock
            self.liveclock = False
            try:
                self._replay_nyp = self._take_switch()
            finally:
                self.liveclock = prev

    def on_run_end(self) -> None:
        if self._finished:
            return
        self._finished = True
        prev = self.liveclock
        self.liveclock = False
        try:
            if self.recording:
                self.switch_buf.flush(self._switch_sink)
                self.value_buf.flush(self._value_sink)
        finally:
            self.liveclock = prev
        # leave byte-identical heaps behind in both modes
        self.switch_buf.zero()
        self.value_buf.zero()
        if self.recording:
            self._end_meta = self._make_end_meta()
        else:
            self._verify_end()

    def _make_end_meta(self) -> dict:
        vm = self.vm
        return {
            "cycles": vm.engine.cycles,
            "switches": vm.scheduler.switch_count,
            "yieldpoints": tuple(
                (t.tid, t.yieldpoints) for t in vm.scheduler.threads
            ),
            "heap_digest": vm.heap_digest(),
            "output_len": len(vm.output),
            "gc_count": vm.collector.collections,
        }

    def _verify_end(self) -> None:
        """Replay-side accuracy check against the recorded END witnesses."""
        assert self._trace is not None
        if self.tolerate_truncation:
            return  # a prefix has no END witnesses to check against
        want = self._trace.meta.get("end")
        if want is None:
            return
        want = dict(want)
        got = self._make_end_meta()
        for key, expected in want.items():
            actual = got.get(key)
            if actual != expected:
                raise ReplayDivergenceError(
                    f"end-of-run mismatch on {key}: recorded {expected!r}, "
                    f"replayed {actual!r}"
                )
        leftover_switches = len(self._trace.switches) - self._switch_cursor
        in_buffer = self.switch_buf._fill - self.switch_buf._pos
        # one pre-fetched delta that never fired is fine (the run ended
        # before the next preemption); more than that means lost events —
        # but _replay_nyp holds the prefetched one, so any unconsumed
        # buffered/stream words are a divergence.
        if leftover_switches > 0 or in_buffer > 0:
            raise ReplayDivergenceError(
                f"{leftover_switches + in_buffer} switch records never consumed"
            )

    def trace(self) -> TraceLog:
        """The recorded trace (record mode, after the run completes)."""
        if not self.recording:
            raise VMError("trace() is only available in record mode")
        if not self._finished:
            raise VMError("trace() is only available after the run completes")
        log = TraceLog(
            switches=list(self._switch_sink),
            values=list(self._value_sink),
        )
        log.meta["end"] = tuple(sorted(self._end_meta.items()))
        log.meta["stats"] = tuple(sorted(self.stats.items()))
        return log

    # ------------------------------------------------------------------
    # Figure 2: the yield-point instrumentation

    def at_yieldpoint(self, thread: "GreenThread", tag: int) -> None:
        """Executed at every compiled yield point, in either mode.

        The two halves below are transliterations of Figure 2-(A) and
        2-(B); note they are *structurally identical* — same guard, same
        clock pause, same switch-bit epilogue — which is the symmetric-
        instrumentation property."""
        self.sym.stack_check(thread)
        engine = self.vm.engine
        live = self.liveclock if self.symmetry_config.liveclock else True
        if self.recording:
            if live:
                self.liveclock = False  # pause the clock
                self.nyp += 1
                if self.schedule is not None:
                    # a schedule policy replaces the interrupt bit: the
                    # recorded delta is the policy's decision, verbatim
                    fire = self.schedule.should_preempt(thread, self.nyp)
                else:
                    fire = engine.hw_bit  # preemption required by system clock
                if fire:
                    self._record_thread_switch(self.nyp)
                    self.nyp = 0  # initialize the counter for the next switch
                    self.threadswitch_bit = True  # set the software switch bit
                self.liveclock = True  # resume the clock
        else:
            if live:
                self.liveclock = False  # pause the clock
                if self._replay_nyp is not None:
                    self._replay_nyp -= 1
                    if self._replay_nyp == 0:  # preemption performed during record
                        self._replay_nyp = self._replay_thread_switch()
                        self.threadswitch_bit = True  # set the software switch bit
                self.liveclock = True  # resume the clock
        if self.threadswitch_bit:
            self.threadswitch_bit = False
            self._perform_thread_switch()

    def _record_thread_switch(self, nyp: int) -> None:
        self._put_switch(nyp)
        self.stats["switch_records"] += 1

    def _replay_thread_switch(self) -> int | None:
        delta = self._take_switch()
        return delta

    def _perform_thread_switch(self) -> None:
        engine = self.vm.engine
        engine.hw_bit = False  # cleared by performThreadSwitch() (Figure 2)
        self.vm.scheduler.preempt()

    def internal_yieldpoint(self) -> None:
        """A yield point inside DejaVu's own instrumentation (buffer I/O).

        With the ``liveclock`` mechanism on, these never touch the logical
        clock (the flag is False whenever we are inside instrumentation).
        Ablated, they corrupt the nyp counts — record inflates deltas by
        the write path's yield points, replay burns the countdown on the
        read path's — and replay diverges."""
        self.stats["internal_yieldpoints"] += 1
        live = self.liveclock if self.symmetry_config.liveclock else True
        if not live:
            return
        if self.recording:
            self.nyp += 1
        else:
            if self._replay_nyp is not None:
                self._replay_nyp -= 1
                if self._replay_nyp == 0:
                    self._replay_nyp = self._replay_thread_switch()
                    self.threadswitch_bit = True

    # ------------------------------------------------------------------
    # wall-clock funnel

    def clock_read(self) -> int:
        prev = self.liveclock
        self.liveclock = False
        try:
            if self.recording:
                value = self.vm.clock.read()
                self._put_value(ev.K_CLOCK)
                self._put_value(value)
                self.stats["clock_records"] += 1
            else:
                kind = self._take_value()
                ev.expect_kind(kind, ev.K_CLOCK, self._value_cursor)
                value = self._take_value()
        finally:
            self.liveclock = prev
        self.vm.observer.emit("clock", value)
        return value

    # ------------------------------------------------------------------
    # non-deterministic native funnel (§2.5)

    def native_call(self, thread: "GreenThread", rm: "RuntimeMethod", nd: "NativeDef", args: list[int]):
        if self.recording:
            ctx = NativeCall(self.vm, thread, rm, args)
            try:
                raw = nd.fn(ctx)
            finally:
                ctx.release()
            if raw is BLOCK:
                raise VMError(
                    f"non-deterministic native {rm.qualname} may not block"
                )
            result = raw if isinstance(raw, NativeResult) else NativeResult(
                value=raw if isinstance(raw, int) else None
            )
            self._record_native(rm, result)
        else:
            result = self._replay_native(rm)
        value = result.value if result.value is not None else 0
        self.vm.observer.emit("native", rm.method_id, value, len(result.upcalls))
        return result

    def _record_native(self, rm: "RuntimeMethod", result: NativeResult) -> None:
        prev = self.liveclock
        self.liveclock = False
        try:
            if result.string_value is not None:
                has_value = 2
            elif result.value is not None:
                has_value = 1
            else:
                has_value = 0
            self._put_value(ev.K_NATIVE)
            self._put_value(rm.method_id)
            self._put_value(has_value)
            if has_value == 2:
                text = result.string_value
                self._put_value(len(text))
                for ch in text:
                    self._put_value(ord(ch))
            else:
                self._put_value(result.value if result.value is not None else 0)
            self._put_value(len(result.upcalls))
            self.stats["native_records"] += 1
            for ref, up_args in result.upcalls:
                up_rm = self.vm.loader.resolve_static_method(ref)
                self._put_value(ev.K_UPCALL)
                self._put_value(up_rm.method_id)
                self._put_value(len(up_args))
                for a in up_args:
                    self._put_value(a)
                self.stats["upcall_records"] += 1
        finally:
            self.liveclock = prev

    def _replay_native(self, rm: "RuntimeMethod") -> NativeResult:
        prev = self.liveclock
        self.liveclock = False
        try:
            kind = self._take_value()
            ev.expect_kind(kind, ev.K_NATIVE, self._value_cursor)
            mid = self._take_value()
            if mid != rm.method_id:
                raise ReplayDivergenceError(
                    f"native call mismatch: recorded method id {mid}, "
                    f"replay reached {rm.qualname} (id {rm.method_id})",
                    position=self._value_cursor,
                )
            has_value = self._take_value()
            string_value = None
            value = 0
            if has_value == 2:
                n_chars = self._take_value()
                string_value = "".join(
                    chr(self._take_value()) for _ in range(n_chars)
                )
            else:
                value = self._take_value()
            n_upcalls = self._take_value()
            upcalls = []
            for _ in range(n_upcalls):
                kind = self._take_value()
                ev.expect_kind(kind, ev.K_UPCALL, self._value_cursor)
                up_mid = self._take_value()
                n_args = self._take_value()
                up_args = tuple(self._take_value() for _ in range(n_args))
                up_rm = self.vm.loader.method_by_id[up_mid]
                upcalls.append((f"{up_rm.owner.name}.{up_rm.key}", up_args))
            return NativeResult(
                value=value if has_value == 1 else None,
                string_value=string_value,
                upcalls=upcalls,
            )
        finally:
            self.liveclock = prev

    # ------------------------------------------------------------------
    # GC support

    def visit_roots(self, fwd: Callable[[int], int]) -> None:
        self.switch_buf.visit_roots(fwd)
        self.value_buf.visit_roots(fwd)
