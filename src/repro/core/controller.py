"""The DejaVu controller: record and replay of non-deterministic events.

The controller attaches to a :class:`~repro.vm.machine.VirtualMachine` and
interposes on exactly three funnels:

1. **yield points** — every compiled yield point calls
   :meth:`DejaVu.at_yieldpoint`, which executes the Figure-2
   instrumentation (structurally identical in record and replay mode);
2. **wall-clock reads** — :meth:`clock_read` records/replays every value;
3. **non-deterministic natives** — :meth:`native_call` records/replays
   return values and callback (upcall) parameters, per §2.5.

Everything else — synchronization, GC, allocation, monitor hand-offs —
replays because the thread package and heap are themselves deterministic
state machines once these three funnels are pinned.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core import events as ev
from repro.core.symmetry import SymmetryConfig, SymmetryManager
from repro.core.tracelog import TraceBuffer, TraceLog, TraceWriter, encode_words
from repro.vm.errors import (
    ReplayDivergenceError,
    SlimReconstructError,
    TracePrefixEnd,
    VMError,
)
from repro.vm.memory import BOOT_DEJAVU
from repro.vm.native import BLOCK, NativeCall, NativeResult
from repro.vm.timerdev import timer_from_model

if TYPE_CHECKING:  # pragma: no cover
    from repro.explore.policy import SchedulePolicy
    from repro.vm.loader import RuntimeMethod
    from repro.vm.machine import VirtualMachine
    from repro.vm.native import NativeDef
    from repro.vm.threads import GreenThread

MODE_RECORD = "record"
MODE_REPLAY = "replay"

#: default guest-buffer capacities (words)
SWITCH_BUFFER_WORDS = 256
VALUE_BUFFER_WORDS = 512


# ---------------------------------------------------------------------------
# trace-v3.2 slim mode
#
# A switch delta's information content is the timer device's interval
# stream: when the timer is reconstructible from a compact spec
# (FixedTimer, a pristine SeededJitterTimer, NeverTimer), replay can
# install a fresh model device and the engine's own deadline arithmetic
# re-raises the preemptive hardware bit at exactly the recorded cycles —
# identical op stream, identical per-op cycle accounting, identical
# deadline crossings.  Those switches need zero log bytes.  The FastTrack
# detector classifies each inter-switch window; deltas adjacent to a racy
# window stay *explicit* in the switch stream as pinned defense-in-depth
# (reconstruction is never trusted near a data race), the rest are
# dropped and described by drop-run triples in the SEG_SLIM sidecar:
#
#     (kept_before, run_len, sync_delta)
#
# kept_before explicit switches separate this run from the previous one,
# run_len consecutive switches are model-driven, and sync_delta is the
# sync-order witness (monitor acquire/release + spawn + wakeup count)
# across the run — checked during reconstruction so a wrong schedule
# surfaces as a typed SlimReconstructError, never a silent divergence.


class SyncWitness:
    """Counts synchronization-order events (host-side, guest-invisible).

    Attached at run start in *both* modes by chaining onto whatever
    monitor/scheduler hooks are already installed (e.g. a race detector's),
    so the count is the same total order either way.
    """

    def __init__(self):
        self.count = 0
        self._attached = False

    def attach(self, vm) -> None:
        if self._attached:
            return
        self._attached = True
        self._chain(vm.monitors, "on_acquire")
        self._chain(vm.monitors, "on_release")
        self._chain(vm.scheduler, "on_spawn")
        self._chain(vm.scheduler, "on_wakeup")

    def _chain(self, owner, name: str) -> None:
        prev = getattr(owner, name, None)

        def hook(*args, _prev=prev):
            if _prev is not None:
                _prev(*args)
            self.count += 1

        setattr(owner, name, hook)


class SlimRecorder:
    """Record-side companion: marks every firing, classifies at seal.

    During the run it only closes detector regions and samples the sync
    witness — the guest-visible record path is *bit-identical* to a
    non-slim record.  The keep/drop partition happens after the run, in
    :func:`slim_partition`, where races can pin their earlier window
    retroactively.
    """

    def __init__(self, model: tuple, detector=None):
        self.model = model
        self.detector = detector
        self.witness = SyncWitness()
        #: witness count sampled at each firing (host list)
        self.marks: list[int] = []
        self.total_sync = 0

    def on_switch(self) -> None:
        if self.detector is not None:
            self.detector.end_region()
        self.marks.append(self.witness.count)

    def finish(self) -> None:
        if self.detector is not None:
            self.detector.end_region()  # close the tail window
        self.total_sync = self.witness.count

    def racy_regions(self) -> "set[int]":
        if self.detector is None:
            # no analysis, no inference: every window counts as racy, so
            # every delta stays explicit (the caller then degrades)
            return set(range(len(self.marks) + 1))
        return set(self.detector.racy_regions)


def slim_partition(
    deltas: list[int], marks: list[int], racy_regions: "set[int]"
) -> "tuple[list[int], list[int], int]":
    """Partition a full switch stream into (kept, sidecar, dropped).

    Window ``i`` is the execution between firing ``i-1`` and firing ``i``
    (window ``len(deltas)`` is the tail after the last firing).  Delta
    ``i`` is *kept* iff either window it bounds is race-adjacent;
    everything else becomes drop-run triples in the sidecar.
    """
    n = len(deltas)
    kept: list[int] = []
    sidecar: list[int] = []
    dropped = 0
    kept_since = 0
    i = 0
    while i < n:
        if i in racy_regions or (i + 1) in racy_regions:
            kept.append(deltas[i])
            kept_since += 1
            i += 1
            continue
        a = i
        while i < n and i not in racy_regions and (i + 1) not in racy_regions:
            i += 1
        anchor = marks[a - 1] if a > 0 else 0
        run_len = i - a
        sidecar.extend((kept_since, run_len, marks[i - 1] - anchor))
        dropped += run_len
        kept_since = 0
    return kept, sidecar, dropped


class _CountingTimer:
    """Wraps the replay-side model timer so checkpoints can record how
    many intervals were consumed (restore rebuilds a pristine device from
    the spec and burns that many)."""

    def __init__(self, inner):
        self.inner = inner
        self.count = 0

    def next_interval(self) -> int:
        self.count += 1
        return self.inner.next_interval()


class ScheduleReconstructor:
    """Replay-side authority for slim traces: the phase machine.

    *Explicit phase* — the next recorded delta counts down exactly like a
    classic replay; at zero the firing is cross-checked against the model
    timer's hardware bit.  *Model phase* — inside a drop run there is no
    countdown at all (``_replay_nyp`` is None, the record-mode fast path
    is enabled); the model timer raises the hardware bit and the slow
    path lands in :meth:`model_fire`.  Any firing the schedule cannot
    account for, and any sync-witness mismatch, raises
    :class:`SlimReconstructError`.
    """

    def __init__(self, dv: "DejaVu", trace: TraceLog):
        info = trace.slim_info
        assert info is not None
        if trace.truncated:
            raise SlimReconstructError(
                "slim trace is a salvaged prefix: without its sidecar tail "
                "the dropped schedule is underdetermined"
            )
        words = trace.slim
        if len(words) % 3:
            raise SlimReconstructError(
                f"slim sidecar holds {len(words)} words (not drop-run triples)"
            )
        self.runs = [tuple(words[i:i + 3]) for i in range(0, len(words), 3)]
        self.kept_total = info.get("kept")
        self.dropped_total = info.get("dropped")
        self.sync_total = info.get("sync_total")
        self.model = info.get("model")
        if self.model is None or self.kept_total is None:
            raise SlimReconstructError(
                "slim meta lacks the timer model / kept count — "
                "reconstruction is underdetermined"
            )
        if len(trace.switches) != self.kept_total:
            raise SlimReconstructError(
                f"slim trace holds {len(trace.switches)} explicit deltas "
                f"but meta promises {self.kept_total}"
            )
        if sum(r[1] for r in self.runs) != self.dropped_total:
            raise SlimReconstructError(
                "slim sidecar run lengths do not sum to the dropped count"
            )
        for j, (kept_before, run_len, sync_delta) in enumerate(self.runs):
            if run_len < 1 or kept_before < 0 or sync_delta < 0 or (
                j > 0 and kept_before < 1
            ):
                raise SlimReconstructError(
                    f"malformed slim drop-run triple #{j}: "
                    f"({kept_before}, {run_len}, {sync_delta})"
                )
        if sum(r[0] for r in self.runs) > self.kept_total:
            raise SlimReconstructError(
                "slim sidecar places drop runs beyond the explicit stream"
            )
        # cursors
        self._next_run = 0
        self._remaining = 0  # model firings left in the current run
        self._sync_want = 0
        self._anchor = 0
        self._kept_since_run = 0
        self.kept_done = 0
        self.dropped_done = 0

    # -- phase transitions ------------------------------------------------

    def begin(self, dv: "DejaVu") -> None:
        dv._replay_nyp = self._arm(dv)

    def _arm(self, dv: "DejaVu") -> int | None:
        """Arm the next firing: enter a drop run, or prefetch a delta."""
        if (
            self._next_run < len(self.runs)
            and self.runs[self._next_run][0] == self._kept_since_run
        ):
            _, run_len, sync_delta = self.runs[self._next_run]
            self._next_run += 1
            self._remaining = run_len
            self._sync_want = sync_delta
            self._anchor = dv._slim_witness.count
            dv._fast_record = dv._slim_fast  # model phase: count, don't count down
            return None
        delta = dv._take_switch()
        if delta is None:
            dv._fast_record = dv._slim_fast  # tail: nothing left to count down
        else:
            dv._fast_record = False
        return delta

    def explicit_fire(self, dv: "DejaVu") -> int | None:
        """An explicit countdown hit zero (a kept delta fired)."""
        if not dv.vm.engine.hw_bit:
            raise SlimReconstructError(
                "explicit switch not confirmed by the model timer "
                f"(after {self.kept_done} kept / {self.dropped_done} dropped)"
            )
        self.kept_done += 1
        self._kept_since_run += 1
        return self._arm(dv)

    def model_fire(self, dv: "DejaVu") -> int | None:
        """The model timer raised the hardware bit with no countdown armed."""
        if self._remaining == 0:
            raise SlimReconstructError(
                "model timer fired beyond the recorded schedule "
                f"(after {self.kept_done} kept / {self.dropped_done} dropped)"
            )
        self._remaining -= 1
        self.dropped_done += 1
        if self._remaining == 0:
            got = dv._slim_witness.count - self._anchor
            if got != self._sync_want:
                raise SlimReconstructError(
                    f"sync-order witness mismatch across drop run "
                    f"#{self._next_run - 1}: recorded {self._sync_want} "
                    f"events, replay saw {got}"
                )
            self._kept_since_run = 0
            return self._arm(dv)
        return None

    def finish(self, dv: "DejaVu") -> None:
        """End-of-run exhaustion checks (before the END witness compare)."""
        if self._remaining:
            raise SlimReconstructError(
                f"run ended inside a drop run ({self._remaining} model "
                "firings never happened)"
            )
        if self._next_run < len(self.runs):
            raise SlimReconstructError(
                f"{len(self.runs) - self._next_run} drop runs never reached"
            )
        if self.kept_done < self.kept_total:
            raise SlimReconstructError(
                f"{self.kept_total - self.kept_done} explicit switches "
                "never fired"
            )
        if self.sync_total is not None and dv._slim_witness.count != self.sync_total:
            raise SlimReconstructError(
                f"end-of-run sync-order witness mismatch: recorded "
                f"{self.sync_total} events, replay saw {dv._slim_witness.count}"
            )


class DejaVu:
    """One record or replay session bound to one VM."""

    def __init__(
        self,
        vm: "VirtualMachine",
        mode: str,
        trace: TraceLog | None = None,
        symmetry: SymmetryConfig | None = None,
        switch_buffer_words: int = SWITCH_BUFFER_WORDS,
        value_buffer_words: int = VALUE_BUFFER_WORDS,
        schedule: "SchedulePolicy | None" = None,
        writer: TraceWriter | None = None,
        slim_spec: tuple | None = None,
        slim_detector=None,
    ):
        if mode not in (MODE_RECORD, MODE_REPLAY):
            raise VMError(f"bad DejaVu mode {mode!r}")
        if mode == MODE_REPLAY and trace is None:
            raise VMError("replay mode requires a trace")
        if schedule is not None and mode != MODE_RECORD:
            raise VMError("a schedule policy only applies in record mode")
        if writer is not None and mode != MODE_RECORD:
            raise VMError("a trace writer only applies in record mode")
        if slim_spec is not None and mode != MODE_RECORD:
            raise VMError("slim_spec only applies in record mode")
        if slim_spec is not None and schedule is not None:
            raise VMError("slim recording and a schedule policy are exclusive")
        if vm.dejavu is not None:
            raise VMError("VM already has a DejaVu attached")
        self.vm = vm
        self.mode = mode
        #: optional record-side schedule source (repro.explore): when set,
        #: it — not the timer's hardware bit — decides preemption at each
        #: yield point, so a chosen schedule becomes an ordinary switch
        #: log that replays through the unchanged replay path.
        self.schedule = schedule
        self.symmetry_config = symmetry or SymmetryConfig()
        self.sym = SymmetryManager(self, self.symmetry_config)

        self.switch_buf = TraceBuffer(vm, switch_buffer_words)
        self.value_buf = TraceBuffer(vm, value_buffer_words, boot_slot=BOOT_DEJAVU)
        self.switch_buf.on_drain = self.sym.on_drain
        self.value_buf.on_drain = self.sym.on_drain

        # record-side sinks; a TraceWriter's sinks ARE lists, so attaching
        # one streams full segments to disk without the controller (or the
        # guest-heap buffers feeding it) behaving any differently.  A slim
        # record keeps its switch words in a plain host list instead: the
        # keep/drop partition happens at seal time, after which the caller
        # pushes the slimmed stream into the writer.
        self.writer = writer
        self._switch_sink: list[int] = (
            writer.switch_sink if writer is not None and slim_spec is None else []
        )
        self._value_sink: list[int] = (
            writer.value_sink if writer is not None else []
        )
        # replay-side sources and cursors
        self._trace = trace
        self._switch_cursor = 0
        self._value_cursor = 0
        #: a salvaged trace is a prefix, not a divergence: run to the end
        #: of the prefix and stop cleanly instead of raising divergence
        self.tolerate_truncation = bool(trace is not None and trace.truncated)

        # Figure 2 state
        self.nyp = 0
        self.liveclock = True
        self.threadswitch_bit = False
        self._replay_nyp: int | None = None

        self.stats = {
            "switch_records": 0,
            "clock_records": 0,
            "native_records": 0,
            "upcall_records": 0,
            "internal_yieldpoints": 0,
        }
        self._finished = False
        # -- engine fast-path gates.  With the liveclock mechanism and
        # symmetric eager stack growth both on, a *non-firing* yield
        # point reduces to a single counter bump (record: nyp += 1;
        # replay: _replay_nyp -= 1) — the dispatch loops inline exactly
        # that case and call at_yieldpoint() whenever any gate is off
        # (see interp.py).  Gated per-session here so ablations and
        # schedule-driven recording always take the full path.
        # A subclass overriding at_yieldpoint (e.g. the Russinovich &
        # Cogswell baseline) has different per-yield-point semantics, so
        # the inlined body would be wrong for it: gate on the method
        # actually being the one the loops inline.
        _sym_fast = (
            type(self).at_yieldpoint is DejaVu.at_yieldpoint
            and self.symmetry_config.liveclock
            and self.symmetry_config.eager_stack_growth
        )
        self._fast_record = self.recording and schedule is None and _sym_fast
        self._fast_replay = self.replaying and _sym_fast

        # -- trace-v3.2 slim mode state
        self._slim_fast = _sym_fast
        self._slim_rec: SlimRecorder | None = None
        self._slim_replay: ScheduleReconstructor | None = None
        self._slim_witness: SyncWitness | None = None
        self._slim_timer: _CountingTimer | None = None
        if slim_spec is not None:
            self._slim_rec = SlimRecorder(slim_spec, slim_detector)
            self._slim_witness = self._slim_rec.witness
        elif self.replaying and trace is not None and trace.slim_info is not None:
            self._slim_witness = SyncWitness()
            self._slim_replay = ScheduleReconstructor(self, trace)
            inner = timer_from_model(self._slim_replay.model)
            self._slim_timer = _CountingTimer(inner) if inner is not None else None
        vm.dejavu = self

    # ------------------------------------------------------------------

    @property
    def recording(self) -> bool:
        return self.mode == MODE_RECORD

    @property
    def replaying(self) -> bool:
        return self.mode == MODE_REPLAY

    # ------------------------------------------------------------------
    # raw word I/O (always with the logical clock paused)

    def _put_switch(self, word: int) -> None:
        self.switch_buf.put(word, self._switch_sink)

    def _put_value(self, word: int) -> None:
        self.value_buf.put(word, self._value_sink)

    def _take_switch(self) -> int | None:
        assert self._trace is not None
        word, self._switch_cursor = self.switch_buf.take(
            self._trace.switches, self._switch_cursor
        )
        return word

    def _take_value(self) -> int:
        assert self._trace is not None
        word, self._value_cursor = self.value_buf.take(
            self._trace.values, self._value_cursor
        )
        if word is None:
            if self.tolerate_truncation:
                raise TracePrefixEnd(
                    "salvaged value stream exhausted (end of the surviving "
                    "prefix)",
                    words_consumed=self._value_cursor,
                )
            raise ReplayDivergenceError(
                "value trace exhausted", position=self._value_cursor
            )
        return word

    # ------------------------------------------------------------------
    # lifecycle

    def on_run_start(self) -> None:
        """DejaVu initialisation, before the application's first event."""
        self.sym.init_actions()
        if self._slim_witness is not None:
            # chain onto whatever sync hooks are installed by now (a race
            # detector's, usually) — identical attach point in both modes
            self._slim_witness.attach(self.vm)
        if self.replaying:
            if self._slim_replay is not None:
                # slim replay: the modelled timer device re-raises the
                # hardware bit at exactly the recorded cycles, so the
                # timer stays LIVE (classic replay disables it)
                self.vm.timer = self._slim_timer
                prev = self.liveclock
                self.liveclock = False
                try:
                    self._slim_replay.begin(self)
                finally:
                    self.liveclock = prev
                return
            self.vm.engine.timer_enabled = False  # hw bit is ignored anyway
            prev = self.liveclock
            self.liveclock = False
            try:
                self._replay_nyp = self._take_switch()
            finally:
                self.liveclock = prev

    def on_run_end(self) -> None:
        if self._finished:
            return
        self._finished = True
        prev = self.liveclock
        self.liveclock = False
        try:
            if self.recording:
                self.switch_buf.flush(self._switch_sink)
                self.value_buf.flush(self._value_sink)
                if self._slim_rec is not None:
                    self._slim_rec.finish()
        finally:
            self.liveclock = prev
        # leave byte-identical heaps behind in both modes
        self.switch_buf.zero()
        self.value_buf.zero()
        if self.recording:
            self._end_meta = self._make_end_meta()
        else:
            self._verify_end()

    def _make_end_meta(self) -> dict:
        vm = self.vm
        return {
            "cycles": vm.engine.cycles,
            "switches": vm.scheduler.switch_count,
            "yieldpoints": tuple(
                (t.tid, t.yieldpoints) for t in vm.scheduler.threads
            ),
            "heap_digest": vm.heap_digest(),
            "output_len": len(vm.output),
            "gc_count": vm.collector.collections,
        }

    def _verify_end(self) -> None:
        """Replay-side accuracy check against the recorded END witnesses."""
        assert self._trace is not None
        if self.tolerate_truncation:
            return  # a prefix has no END witnesses to check against
        if self._slim_replay is not None:
            # slim exhaustion first: an underdetermined sidecar should
            # surface as the typed error, not a generic END mismatch
            self._slim_replay.finish(self)
        want = self._trace.meta.get("end")
        if want is None:
            return
        want = dict(want)
        got = self._make_end_meta()
        for key, expected in want.items():
            actual = got.get(key)
            if actual != expected:
                raise ReplayDivergenceError(
                    f"end-of-run mismatch on {key}: recorded {expected!r}, "
                    f"replayed {actual!r}"
                )
        leftover_switches = len(self._trace.switches) - self._switch_cursor
        in_buffer = self.switch_buf._fill - self.switch_buf._pos
        # one pre-fetched delta that never fired is fine (the run ended
        # before the next preemption); more than that means lost events —
        # but _replay_nyp holds the prefetched one, so any unconsumed
        # buffered/stream words are a divergence.
        if leftover_switches > 0 or in_buffer > 0:
            raise ReplayDivergenceError(
                f"{leftover_switches + in_buffer} switch records never consumed"
            )

    def trace(self) -> TraceLog:
        """The recorded trace (record mode, after the run completes).

        For a slim record this is where the keep/drop partition runs: the
        full delta list, the detector's (retroactively pinned) racy
        windows and the per-firing sync-witness marks turn into a kept
        stream plus a drop-run sidecar.  If slimming would not actually
        shrink the encoding (e.g. everything is race-adjacent), the trace
        degrades to a full switch stream with ``meta["slim_fallback"]``
        saying why — slim never costs bytes.
        """
        if not self.recording:
            raise VMError("trace() is only available in record mode")
        if not self._finished:
            raise VMError("trace() is only available after the run completes")
        log = TraceLog(
            switches=list(self._switch_sink),
            values=list(self._value_sink),
        )
        if self._slim_rec is not None:
            rec = self._slim_rec
            kept, sidecar, dropped = slim_partition(
                log.switches, rec.marks, rec.racy_regions()
            )
            slim_bytes = len(encode_words(kept)) + len(encode_words(sidecar))
            full_bytes = len(encode_words(log.switches))
            if dropped == 0 or slim_bytes >= full_bytes:
                log.meta["slim_fallback"] = (
                    "no droppable deltas" if dropped == 0 else "no savings"
                )
            else:
                log.switches = kept
                log.slim = sidecar
                log.meta["slim"] = tuple(sorted({
                    "model": rec.model,
                    "kept": len(kept),
                    "dropped": dropped,
                    "sync_total": rec.total_sync,
                }.items()))
        log.meta["end"] = tuple(sorted(self._end_meta.items()))
        log.meta["stats"] = tuple(sorted(self.stats.items()))
        return log

    # ------------------------------------------------------------------
    # Figure 2: the yield-point instrumentation

    def at_yieldpoint(self, thread: "GreenThread", tag: int) -> None:
        """Executed at every compiled yield point, in either mode.

        The two halves below are transliterations of Figure 2-(A) and
        2-(B); note they are *structurally identical* — same guard, same
        clock pause, same switch-bit epilogue — which is the symmetric-
        instrumentation property."""
        self.sym.stack_check(thread)
        engine = self.vm.engine
        live = self.liveclock if self.symmetry_config.liveclock else True
        if self.recording:
            if live:
                self.liveclock = False  # pause the clock
                self.nyp += 1
                if self.schedule is not None:
                    # a schedule policy replaces the interrupt bit: the
                    # recorded delta is the policy's decision, verbatim
                    fire = self.schedule.should_preempt(thread, self.nyp)
                else:
                    fire = engine.hw_bit  # preemption required by system clock
                if fire:
                    self._record_thread_switch(self.nyp)
                    self.nyp = 0  # initialize the counter for the next switch
                    self.threadswitch_bit = True  # set the software switch bit
                self.liveclock = True  # resume the clock
        else:
            if live:
                self.liveclock = False  # pause the clock
                if self._replay_nyp is not None:
                    self._replay_nyp -= 1
                    if self._replay_nyp == 0:  # preemption performed during record
                        self._replay_nyp = self._replay_thread_switch()
                        self.threadswitch_bit = True  # set the software switch bit
                elif self._slim_replay is not None and engine.hw_bit:
                    # model phase of a slim replay: no countdown is armed,
                    # the modelled timer device re-created this preemption
                    self._replay_nyp = self._slim_replay.model_fire(self)
                    self.nyp = 0
                    self.threadswitch_bit = True
                self.liveclock = True  # resume the clock
        if self.threadswitch_bit:
            self.threadswitch_bit = False
            self._perform_thread_switch()

    def _record_thread_switch(self, nyp: int) -> None:
        self._put_switch(nyp)
        self.stats["switch_records"] += 1
        if self._slim_rec is not None:
            self._slim_rec.on_switch()

    def _replay_thread_switch(self) -> int | None:
        if self._slim_replay is not None:
            return self._slim_replay.explicit_fire(self)
        delta = self._take_switch()
        return delta

    def _perform_thread_switch(self) -> None:
        engine = self.vm.engine
        engine.hw_bit = False  # cleared by performThreadSwitch() (Figure 2)
        self.vm.scheduler.preempt()

    def internal_yieldpoint(self) -> None:
        """A yield point inside DejaVu's own instrumentation (buffer I/O).

        With the ``liveclock`` mechanism on, these never touch the logical
        clock (the flag is False whenever we are inside instrumentation).
        Ablated, they corrupt the nyp counts — record inflates deltas by
        the write path's yield points, replay burns the countdown on the
        read path's — and replay diverges."""
        self.stats["internal_yieldpoints"] += 1
        live = self.liveclock if self.symmetry_config.liveclock else True
        if not live:
            return
        if self.recording:
            self.nyp += 1
        else:
            if self._replay_nyp is not None:
                self._replay_nyp -= 1
                if self._replay_nyp == 0:
                    self._replay_nyp = self._replay_thread_switch()
                    self.threadswitch_bit = True

    # ------------------------------------------------------------------
    # wall-clock funnel

    def clock_read(self) -> int:
        prev = self.liveclock
        self.liveclock = False
        try:
            if self.recording:
                value = self.vm.clock.read()
                self._put_value(ev.K_CLOCK)
                self._put_value(value)
                self.stats["clock_records"] += 1
            else:
                kind = self._take_value()
                ev.expect_kind(kind, ev.K_CLOCK, self._value_cursor)
                value = self._take_value()
        finally:
            self.liveclock = prev
        self.vm.observer.emit("clock", value)
        return value

    # ------------------------------------------------------------------
    # non-deterministic native funnel (§2.5)

    def native_call(self, thread: "GreenThread", rm: "RuntimeMethod", nd: "NativeDef", args: list[int]):
        if self.recording:
            ctx = NativeCall(self.vm, thread, rm, args)
            try:
                raw = nd.fn(ctx)
            finally:
                ctx.release()
            if raw is BLOCK:
                raise VMError(
                    f"non-deterministic native {rm.qualname} may not block"
                )
            result = raw if isinstance(raw, NativeResult) else NativeResult(
                value=raw if isinstance(raw, int) else None
            )
            self._record_native(rm, result)
        else:
            result = self._replay_native(rm)
        value = result.value if result.value is not None else 0
        self.vm.observer.emit("native", rm.method_id, value, len(result.upcalls))
        return result

    def _record_native(self, rm: "RuntimeMethod", result: NativeResult) -> None:
        prev = self.liveclock
        self.liveclock = False
        try:
            if result.string_value is not None:
                has_value = 2
            elif result.value is not None:
                has_value = 1
            else:
                has_value = 0
            self._put_value(ev.K_NATIVE)
            self._put_value(rm.method_id)
            self._put_value(has_value)
            if has_value == 2:
                text = result.string_value
                self._put_value(len(text))
                for ch in text:
                    self._put_value(ord(ch))
            else:
                self._put_value(result.value if result.value is not None else 0)
            self._put_value(len(result.upcalls))
            self.stats["native_records"] += 1
            for ref, up_args in result.upcalls:
                up_rm = self.vm.loader.resolve_static_method(ref)
                self._put_value(ev.K_UPCALL)
                self._put_value(up_rm.method_id)
                self._put_value(len(up_args))
                for a in up_args:
                    self._put_value(a)
                self.stats["upcall_records"] += 1
        finally:
            self.liveclock = prev

    def _replay_native(self, rm: "RuntimeMethod") -> NativeResult:
        prev = self.liveclock
        self.liveclock = False
        try:
            kind = self._take_value()
            ev.expect_kind(kind, ev.K_NATIVE, self._value_cursor)
            mid = self._take_value()
            if mid != rm.method_id:
                raise ReplayDivergenceError(
                    f"native call mismatch: recorded method id {mid}, "
                    f"replay reached {rm.qualname} (id {rm.method_id})",
                    position=self._value_cursor,
                )
            has_value = self._take_value()
            string_value = None
            value = 0
            if has_value == 2:
                n_chars = self._take_value()
                string_value = "".join(
                    chr(self._take_value()) for _ in range(n_chars)
                )
            else:
                value = self._take_value()
            n_upcalls = self._take_value()
            upcalls = []
            for _ in range(n_upcalls):
                kind = self._take_value()
                ev.expect_kind(kind, ev.K_UPCALL, self._value_cursor)
                up_mid = self._take_value()
                n_args = self._take_value()
                up_args = tuple(self._take_value() for _ in range(n_args))
                up_rm = self.vm.loader.method_by_id[up_mid]
                upcalls.append((f"{up_rm.owner.name}.{up_rm.key}", up_args))
            return NativeResult(
                value=value if has_value == 1 else None,
                string_value=string_value,
                upcalls=upcalls,
            )
        finally:
            self.liveclock = prev

    # ------------------------------------------------------------------
    # checkpoint support (slim replay has live timer/reconstructor state)

    def _slim_snapshot_state(self) -> tuple | None:
        """Slim-replay state a snapshot must carry, or None (classic)."""
        if self._slim_replay is None:
            return None
        r = self._slim_replay
        engine = self.vm.engine
        return tuple(sorted({
            "next_run": r._next_run,
            "remaining": r._remaining,
            "sync_want": r._sync_want,
            "anchor": r._anchor,
            "kept_since_run": r._kept_since_run,
            "kept_done": r.kept_done,
            "dropped_done": r.dropped_done,
            "witness": self._slim_witness.count,
            "intervals": self._slim_timer.count if self._slim_timer else 0,
            "deadline": engine._deadline,
            "timer_armed": engine._timer_armed,
            "timer_enabled": engine.timer_enabled,
            "fast_record": self._fast_record,
        }.items()))

    def _slim_restore_state(self, state: tuple) -> None:
        """Rebuild the model timer (burning consumed intervals) and the
        reconstructor cursors from a snapshot's slim block."""
        if self._slim_replay is None:
            raise VMError(
                "snapshot carries slim replay state but the trace is not slim"
            )
        d = dict(state)
        r = self._slim_replay
        inner = timer_from_model(r.model)
        wrapper = _CountingTimer(inner) if inner is not None else None
        if inner is not None:
            for _ in range(d["intervals"]):
                inner.next_interval()
            wrapper.count = d["intervals"]
        self._slim_timer = wrapper
        self.vm.timer = wrapper
        engine = self.vm.engine
        engine.timer_enabled = d["timer_enabled"]
        engine._deadline = d["deadline"]
        engine._timer_armed = d["timer_armed"]
        r._next_run = d["next_run"]
        r._remaining = d["remaining"]
        r._sync_want = d["sync_want"]
        r._anchor = d["anchor"]
        r._kept_since_run = d["kept_since_run"]
        r.kept_done = d["kept_done"]
        r.dropped_done = d["dropped_done"]
        self._slim_witness.count = d["witness"]
        self._fast_record = d["fast_record"]

    # ------------------------------------------------------------------
    # GC support

    def visit_roots(self, fwd: Callable[[int], int]) -> None:
        self.switch_buf.visit_roots(fwd)
        self.value_buf.visit_roots(fwd)
