"""Trace record kinds and their word-level shapes.

DejaVu logs *only* non-deterministic events (§2.1–2.3):

=========  =====================================================  =========
kind       meaning                                                payload
=========  =====================================================  =========
SWITCH     preemptive thread switch after ``nyp`` yield points    [nyp]
CLOCK      one wall-clock read (scheduler or guest)               [millis]
NATIVE     non-deterministic native call result                   [method_id,
           (return value + callbacks regenerated on replay)        has_value,
                                                                   value,
                                                                   n_upcalls]
UPCALL     one callback of the preceding NATIVE                   [method_id,
                                                                   n_args,
                                                                   args...]
END        end-of-run accuracy witnesses                          [cycles,
                                                                   switches,
                                                                   n_threads,
                                                                   yp_0..n-1]
=========  =====================================================  =========

Deterministic events — synchronization switches, GC, allocation, monitor
hand-offs — are deliberately absent: replaying the thread package makes
them reproduce for free, which is DejaVu's trace-size advantage over the
critical-event loggers compared in §5.
"""

from __future__ import annotations

from repro.vm.errors import ReplayDivergenceError

K_SWITCH = 1
K_CLOCK = 2
K_NATIVE = 3
K_UPCALL = 4
K_END = 5

KIND_NAMES = {
    K_SWITCH: "SWITCH",
    K_CLOCK: "CLOCK",
    K_NATIVE: "NATIVE",
    K_UPCALL: "UPCALL",
    K_END: "END",
}


def kind_name(kind: int) -> str:
    return KIND_NAMES.get(kind, f"?{kind}")


def expect_kind(got: int, want: int, position: int) -> None:
    """The replay-side type check: consuming a record of the wrong kind
    means the replayed execution has already diverged."""
    if got != want:
        raise ReplayDivergenceError(
            f"expected {kind_name(want)} record, found {kind_name(got)}",
            position=position,
        )
