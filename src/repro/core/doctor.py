"""The replay-divergence doctor: *why* did this trace fail?

A raw :class:`~repro.vm.errors.ReplayDivergenceError` tells you *that*
replay diverged; a :class:`~repro.vm.errors.TraceFormatError` tells you a
byte was wrong somewhere.  Neither tells you what to do next.  The doctor
runs the whole differential diagnosis offline — validation, salvage,
configuration comparison, then an instrumented replay — and classifies
the failure into one actionable bucket:

==========================  ================================================
classification              meaning / the fix
==========================  ================================================
``clean``                   trace loads sealed and (given a program) replays
                            faithfully — nothing is wrong
``not-a-trace``             empty file or bad magic: wrong file entirely
``version-skew``            a DejaVu trace, but a version this build cannot
                            read — use the build that wrote it
``codec-mismatch``          a segment carries a codec byte (or group-codec
                            mode) this build does not implement — use a
                            newer build; the bytes themselves are intact
``truncated-tail``          the recorder died mid-run; the intact prefix was
                            salvaged and replays to the point of death
``corrupt-segment``         storage damage (CRC/footer mismatch) at a known
                            segment — restore from a good copy
``slim-underdetermined``    a slim (v3.2) trace whose dropped schedule cannot
                            be reconstructed: the sidecar is missing,
                            truncated, or inconsistent with its meta, or the
                            replayed sync order disagrees with the recorded
                            witness — restore an intact copy, or re-record
                            without ``--slim``
``engine-config-mismatch``  the replay VM is sized differently from the
                            recording VM (heap/stack/cycle budget) — replay
                            under the recorded fingerprint
``workload-kwargs-mismatch``the program being replayed was built with
                            different parameters than the recorded one
``nondeterminism``          file and configuration are fine, yet replay
                            diverges: an unlogged source of nondeterminism
                            (or the wrong program) — a genuine bug
``corrupt-checkpoint``      the trace is fine but its ``.ckpt`` sidecar is
                            damaged/unsealed — resume degrades gracefully;
                            regenerate the sidecar for full acceleration
``checkpoint-config-mismatch``  the sidecar's snapshots were captured under
                            a different VM config than the replay — they
                            cannot restore; re-capture under this config
==========================  ================================================

``repro doctor trace.djv`` drives :func:`diagnose` from the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core.tracelog import SalvageReport, TraceLog, config_fingerprint
from repro.vm.errors import (
    CheckpointError,
    ReplayDivergenceError,
    SlimReconstructError,
    TraceFormatError,
    VMError,
)

CLASS_CLEAN = "clean"
CLASS_NOT_A_TRACE = "not-a-trace"
CLASS_VERSION_SKEW = "version-skew"
CLASS_TRUNCATED = "truncated-tail"
CLASS_CORRUPT = "corrupt-segment"
CLASS_CONFIG_MISMATCH = "engine-config-mismatch"
CLASS_KWARGS_MISMATCH = "workload-kwargs-mismatch"
CLASS_NONDETERMINISM = "nondeterminism"
CLASS_CKPT_CORRUPT = "corrupt-checkpoint"
CLASS_CKPT_CONFIG = "checkpoint-config-mismatch"
CLASS_CODEC = "codec-mismatch"
CLASS_SLIM = "slim-underdetermined"

#: classifications that mean "the file itself is not usable as input"
#: (a slim trace without a usable sidecar cannot drive any replay: the
#: dropped schedule is unrecoverable, so it sits in this tier too)
FORMAT_CLASSES = (CLASS_NOT_A_TRACE, CLASS_VERSION_SKEW, CLASS_CODEC, CLASS_SLIM)

#: words of context shown on each side of a stream cursor
STREAM_NEIGHBORHOOD = 5

#: substrings of TraceFormatError messages that mean damage, not a torn
#: tail (a torn tail is what a mid-run death leaves; damage means the
#: bytes that ARE there have been altered)
_CORRUPTION_MARKERS = (
    "CRC mismatch",
    "footer mismatch",
    "unknown segment kind",
    "implausible segment length",
    "undecodable",
    "trailing data",
)

#: substrings that mean the segment framing is fine but the payload uses
#: an encoding this build does not implement (newer writer, older reader)
_CODEC_MARKERS = (
    "unknown segment codec",
    "group-codec",
)


def _stream_window(words: list[int], cursor: int, radius: int = STREAM_NEIGHBORHOOD) -> str:
    """±radius words around *cursor*, cursor marked — the word-stream
    analogue of the event neighborhood in :mod:`repro.core.verify`."""
    lo = max(0, cursor - radius)
    hi = min(len(words), cursor + radius + 1)
    if lo >= hi:
        return "  (stream empty)"
    parts = []
    for i in range(lo, hi):
        mark = ">" if i == cursor else " "
        parts.append(f" {mark}[{i}]={words[i]}")
    return " ".join(parts)


@dataclass
class DoctorReport:
    """The structured outcome of one :func:`diagnose` run."""

    classification: str
    detail: str
    path: str
    #: every check the doctor ran, in order, with its verdict
    checks: list[str] = field(default_factory=list)
    salvage: "SalvageReport | None" = None
    #: where replay stopped/diverged (value-stream word cursor)
    divergence_position: int | None = None
    thread: int | None = None
    method: str | None = None
    bci: int | None = None
    #: ±N-word windows of the switch and value streams at the cursors
    switch_neighborhood: str = ""
    value_neighborhood: str = ""

    @property
    def ok(self) -> bool:
        return self.classification == CLASS_CLEAN

    @property
    def exit_code(self) -> int:
        """CLI convention: 0 clean, 1 finding, 2 unusable input."""
        if self.ok:
            return 0
        return 2 if self.classification in FORMAT_CLASSES else 1

    def format(self) -> str:
        lines = [f"doctor: {self.path}",
                 f"classification: {self.classification}",
                 f"detail: {self.detail}"]
        for check in self.checks:
            lines.append(f"  - {check}")
        if self.salvage is not None:
            lines.append(f"salvage: {self.salvage.describe()}")
        if self.divergence_position is not None:
            lines.append(f"first divergent record: value-stream word "
                         f"{self.divergence_position}")
        if self.thread is not None:
            where = f"thread {self.thread}"
            if self.method is not None:
                where += f" in {self.method}"
                if self.bci is not None:
                    where += f" @bci {self.bci}"
            lines.append(f"replay stopped at: {where}")
        if self.value_neighborhood:
            lines.append("value stream at cursor:")
            lines.append(self.value_neighborhood)
        if self.switch_neighborhood:
            lines.append("switch stream at cursor:")
            lines.append(self.switch_neighborhood)
        return "\n".join(lines)


def classify_format_error(exc: TraceFormatError) -> str:
    """Map a load failure to its doctor classification."""
    text = str(exc)
    if "not a DejaVu trace" in text or "empty file" in text:
        return CLASS_NOT_A_TRACE
    if "unsupported trace version" in text:
        return CLASS_VERSION_SKEW
    if any(marker in text for marker in _CODEC_MARKERS):
        return CLASS_CODEC
    if any(marker in text for marker in _CORRUPTION_MARKERS):
        return CLASS_CORRUPT
    return CLASS_TRUNCATED


def diagnose(
    path,
    *,
    program=None,
    config=None,
    workload_kwargs: dict | None = None,
) -> DoctorReport:
    """Validate + salvage + replay-diagnose a trace file, offline.

    *program* (a :class:`~repro.api.GuestProgram`) enables the replay
    stage; without it the doctor stops after the static checks.  *config*
    is the VM configuration the replay would run under — its fingerprint
    is compared against the recorded one.  *workload_kwargs* are the build
    parameters the caller intends to rebuild the program with (the CLI
    passes the resolved ``--workload``/``-W`` set).
    """
    path = str(path)
    report = DoctorReport(classification=CLASS_CLEAN, detail="", path=path)

    # -- stage 1: load, salvaging if the sealed load fails ----------------
    trace: TraceLog
    try:
        trace = TraceLog.load(path)
        report.checks.append("load: sealed trace, all segment CRCs verify")
    except TraceFormatError as exc:
        classification = classify_format_error(exc)
        report.checks.append(f"load: FAILED ({exc})")
        if classification in FORMAT_CLASSES:
            report.classification = classification
            report.detail = str(exc)
            return report
        try:
            trace = TraceLog.salvage(path)
        except TraceFormatError as exc2:  # pragma: no cover - defensive
            report.classification = CLASS_NOT_A_TRACE
            report.detail = str(exc2)
            report.checks.append(f"salvage: FAILED ({exc2})")
            return report
        report.salvage = trace.salvage_report
        report.checks.append(f"salvage: {trace.salvage_report.describe()}")
        report.classification = classification
        report.detail = str(exc)

    # -- stage 1b: slim sidecar consistency (static) ----------------------
    # run only when the framing itself survived (clean or torn-tail): CRC
    # damage keeps its corrupt-segment verdict, which names the real cause
    slim_evidence = (
        trace.slim_info is not None
        or bool(trace.slim)
        or bool(getattr(trace, "salvage_report", None)
                and trace.salvage_report.slim_segments)
    )
    if slim_evidence and report.classification in (CLASS_CLEAN, CLASS_TRUNCATED):
        from repro.core.controller import ScheduleReconstructor

        try:
            if trace.slim_info is None:
                raise SlimReconstructError(
                    "slim sidecar segments survive but the slim meta "
                    "(timer model, kept/dropped counts) was lost"
                )
            ScheduleReconstructor(None, trace)
        except SlimReconstructError as exc:
            report.checks.append(f"slim sidecar: UNUSABLE ({exc})")
            report.classification = CLASS_SLIM
            report.detail = (
                f"slim trace cannot drive reconstruction: {exc} — the "
                "dropped schedule is underdetermined without an intact "
                "sidecar; restore a good copy or re-record without --slim"
            )
            return report
        report.checks.append("slim sidecar: drop runs consistent with meta")

    # -- stage 2: configuration fingerprints ------------------------------
    recorded_fp = trace.meta.get("config")
    if config is not None and recorded_fp is not None:
        replay_fp = config_fingerprint(config)
        if replay_fp != recorded_fp:
            report.checks.append(
                f"config: MISMATCH (recorded {recorded_fp}, replaying {replay_fp})"
            )
            if report.classification == CLASS_CLEAN:
                report.classification = CLASS_CONFIG_MISMATCH
                report.detail = (
                    f"trace was recorded under '{recorded_fp}' but the replay "
                    f"VM is configured '{replay_fp}' — heap/stack sizing "
                    "changes GC timing and stack-growth events, so this "
                    "replay can diverge for configuration reasons alone"
                )
            return report
        report.checks.append(f"config: fingerprints match ({recorded_fp})"
                             if recorded_fp else "config: no recorded fingerprint")
    elif recorded_fp is None:
        report.checks.append("config: trace carries no fingerprint (pre-v3?)")

    # -- stage 3: workload build parameters -------------------------------
    recorded_kwargs = dict(trace.meta.get("workload_kwargs") or {})
    if workload_kwargs is not None and recorded_kwargs:
        intended = dict(workload_kwargs)
        if intended != recorded_kwargs:
            diffs = sorted(
                k for k in set(intended) | set(recorded_kwargs)
                if intended.get(k) != recorded_kwargs.get(k)
            )
            report.checks.append(f"workload kwargs: MISMATCH on {diffs}")
            if report.classification == CLASS_CLEAN:
                report.classification = CLASS_KWARGS_MISMATCH
                report.detail = (
                    f"trace records workload kwargs {recorded_kwargs} but the "
                    f"program would be rebuilt with {intended} (differs on "
                    f"{', '.join(diffs)}) — a differently-built program is a "
                    "different execution"
                )
            return report
        report.checks.append("workload kwargs: match the recording")

    # -- stage 4: instrumented replay -------------------------------------
    if program is None:
        report.checks.append("replay: skipped (no program given; static checks only)")
        if report.classification == CLASS_CLEAN:
            report.detail = (
                "trace is sealed and intact; pass a program or --workload "
                "for the replay stage"
            )
    else:
        _replay_stage(report, trace, program, config)

    # -- stage 5: checkpoint sidecar, if one sits next to the trace -------
    _checkpoint_stage(report, trace, config)
    return report


def _replay_stage(report: DoctorReport, trace: TraceLog, program, config) -> None:
    # local imports: repro.api imports repro.core, so importing it at
    # module top would be circular
    from repro.api import build_vm, replay_prefix
    from repro.core.controller import MODE_REPLAY, DejaVu

    if trace.truncated:
        try:
            prefix = replay_prefix(program, trace, config=config)
        except SlimReconstructError as exc:
            report.checks.append(f"prefix replay: SLIM RECONSTRUCTION FAILED ({exc})")
            report.classification = CLASS_SLIM
            report.detail = (
                f"salvaged slim trace cannot replay: {exc} — the dropped "
                "schedule is underdetermined without an intact sidecar"
            )
            return
        except VMError as exc:
            # the prefix itself misbehaves — keep the truncation verdict
            # but record that even the surviving prefix is suspect
            report.checks.append(
                f"prefix replay: FAILED ({type(exc).__name__}: {exc})"
            )
            report.detail = f"{report.detail} — and the salvaged prefix does " \
                            f"not replay ({exc})"
            return
        report.checks.append(
            f"prefix replay: consumed {prefix.words_consumed} value words, "
            + ("ran to completion" if prefix.complete
               else "stopped cleanly at the end of the prefix")
        )
        report.detail = (
            f"{report.detail} — salvaged prefix replays "
            f"({prefix.words_consumed} value words consumed)"
        )
        return

    vm = build_vm(program, config)
    try:
        DejaVu(vm, MODE_REPLAY, trace=trace)
        vm.run(program.main)
    except SlimReconstructError as exc:
        report.checks.append(f"replay: SLIM RECONSTRUCTION FAILED ({exc})")
        report.classification = CLASS_SLIM
        report.detail = (
            f"slim schedule reconstruction failed: {exc} — the model timer "
            "or sync-order witness disagrees with the recorded schedule; "
            "the replay refused to continue rather than silently diverge"
        )
        _capture_failure_context(report, vm, trace, exc)
        return
    except ReplayDivergenceError as exc:
        report.checks.append(f"replay: DIVERGED ({exc})")
        report.classification = CLASS_NONDETERMINISM
        report.detail = (
            f"the file and configuration are sound, yet replay diverged: "
            f"{exc} — an unlogged nondeterminism source, or the wrong "
            "program for this trace"
        )
        _capture_failure_context(report, vm, trace, exc)
        return
    except VMError as exc:
        report.checks.append(f"replay: FAILED ({type(exc).__name__}: {exc})")
        report.classification = CLASS_NONDETERMINISM
        report.detail = f"replay failed outright: {exc}"
        _capture_failure_context(report, vm, trace, exc)
        return
    report.checks.append("replay: faithful (END witnesses verified)")
    report.detail = "trace is sealed, intact, and replays faithfully"


def _checkpoint_stage(report: DoctorReport, trace: TraceLog, config) -> None:
    """Vet the ``<trace>.ckpt`` sidecar when one exists.

    A damaged or mismatched sidecar never blocks replay — the fallback
    ladder bottoms out at replay-from-zero — so this stage only *adds* a
    finding to an otherwise-clean report; the trace's own verdict wins.
    """
    from repro.core.checkpoint import CheckpointStore, sidecar_path

    sidecar = sidecar_path(report.path)
    tmp = Path(str(sidecar) + ".tmp")
    if not sidecar.exists() and not tmp.exists():
        return
    try:
        store = CheckpointStore.load(sidecar)
    except CheckpointError as exc:
        report.checks.append(f"checkpoints: FAILED to load ({exc})")
        if report.classification == CLASS_CLEAN:
            report.classification = CLASS_CKPT_CORRUPT
            report.detail = (
                f"checkpoint sidecar is unreadable ({exc}) — resume and "
                "time-travel seeks fall back to replay-from-zero; delete "
                "the sidecar or regenerate it with "
                "'repro replay --checkpoint-every'"
            )
        return
    report.checks.append(f"checkpoints: {store.describe()}")

    # every snapshot in a sidecar shares one config fingerprint; compare
    # it against the replay config (or the trace's own, absent a config)
    ckpt_fp = store.meta.get("config")
    if ckpt_fp is None and store.snapshots:
        ckpt_fp = store.snapshots[0].header.get("config")
    expected = (
        config_fingerprint(config)
        if config is not None
        else trace.meta.get("config")
    )
    if ckpt_fp is not None and expected is not None and ckpt_fp != expected:
        report.checks.append(
            f"checkpoint config: MISMATCH (sidecar {ckpt_fp}, replay {expected})"
        )
        if report.classification == CLASS_CLEAN:
            report.classification = CLASS_CKPT_CONFIG
            report.detail = (
                f"checkpoints were captured under '{ckpt_fp}' but replay "
                f"runs under '{expected}' — snapshots index config-compiled "
                "state and cannot restore; re-capture under the replay config"
            )
        return

    if store.damaged:
        what = store.error or (
            f"{store.skipped} snapshot(s) failed digest verification"
            if store.skipped
            else f"sidecar never sealed (reading {store.source})"
        )
        report.checks.append(f"checkpoint integrity: DAMAGED ({what})")
        if report.classification == CLASS_CLEAN:
            report.classification = CLASS_CKPT_CORRUPT
            report.detail = (
                f"trace is fine but its checkpoint sidecar is damaged: "
                f"{what} — {len(store.snapshots)} usable snapshot(s) remain, "
                "resume degrades gracefully; regenerate the sidecar to "
                "restore full seek acceleration"
            )
        return
    report.checks.append("checkpoint integrity: sealed, all digests verify")


def _capture_failure_context(report, vm, trace: TraceLog, exc) -> None:
    dv = vm.dejavu
    if dv is not None:
        report.divergence_position = getattr(exc, "position", None)
        if report.divergence_position is None:
            report.divergence_position = dv._value_cursor
        report.value_neighborhood = _stream_window(trace.values, dv._value_cursor)
        report.switch_neighborhood = _stream_window(trace.switches, dv._switch_cursor)
    thread = vm.scheduler.current
    if thread is not None:
        report.thread = thread.tid
        if thread.frames:
            frame = thread.frames[-1]
            report.method = frame.method.qualname
            report.bci = frame.bci
