"""Shared accept/serve-loop plumbing for the platform's daemons.

Three daemons speak the :mod:`repro.core.framing` transport — the
debugger server (PR 3), the `repro worker` campaign daemon (PR 7), and
the `repro serve` replay service — and before this module each
hand-rolled the same accept loop with the same hardening posture and
its own copy of the error-logging idiom.  :class:`SocketServer` is that
posture, once:

* a hostile or vanished client tears down *its connection*, never the
  accept loop — killing the loop kills the session/state it serves;
* every survived failure is observable through the ``log`` seam and the
  ``connections_served`` / ``handler_errors`` counters (a hostile client
  must be *observable*, not just non-fatal);
* connection lifetime is bounded: with ``max_connection_seconds`` set, a
  connection that overstays is shut down from the accept loop, so one
  slow-loris client cannot pin a handler slot forever;
* shutdown is graceful and signal-safe: :meth:`request_stop` only sets
  a flag and closes the listening socket (both safe inside a signal
  handler), and :meth:`stop` joins every thread the server started, so
  a TERM'd daemon exits with no orphaned threads.

``concurrency=1`` handles connections inline on the accept thread (the
debugger and worker daemons serialise on one session); ``concurrency>1``
gives each connection its own named handler thread, bounded by a
semaphore (the serve daemon multiplexes clients).
"""

from __future__ import annotations

import signal
import socket
import threading
import time


class SocketServer:
    """A hardened TCP accept loop around a per-connection handler.

    Subclasses implement :meth:`handle_connection` (or pass ``handler``);
    the handler owns the connection until it returns — it should loop on
    short ``recv`` timeouts and poll :attr:`stopping` so shutdown is
    prompt.  The server closes the connection afterwards.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        handler=None,
        log=None,
        concurrency: int = 1,
        max_connection_seconds: "float | None" = None,
        name: str = "daemon",
    ):
        self.log = log if log is not None else (lambda message: None)
        self.name = name
        self._handler = handler
        self.concurrency = max(1, concurrency)
        self.max_connection_seconds = max_connection_seconds
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(self.concurrency)
        self.address = self._sock.getsockname()
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None
        #: live (thread, conn, started_at) records, for reaping + joining
        self._live: "list[tuple[threading.Thread | None, socket.socket, float]]" = []
        self._live_lock = threading.Lock()
        self.connections_served = 0
        self.handler_errors = 0

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def start(self):
        """Serve on a named background thread; returns self."""
        self._thread = threading.Thread(
            target=self.serve_forever, daemon=True, name=f"{self.name}-accept"
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        try:
            self._sock.settimeout(0.2)
        except OSError:
            # request_stop() closed the listener before the serving
            # thread got here; fall through to the drain hooks
            self._stop.set()
        while not self._stop.is_set():
            self._reap_overstayers()
            try:
                conn, _ = self._sock.accept()
            except TimeoutError:
                continue
            except OSError:
                break  # listening socket closed: shutdown path
            self.connections_served += 1
            serial = self.connections_served
            if self.concurrency == 1:
                self._handle(conn, serial)
            else:
                thread = threading.Thread(
                    target=self._handle,
                    args=(conn, serial),
                    daemon=True,
                    name=f"{self.name}-conn-{serial}",
                )
                with self._live_lock:
                    self._live.append((thread, conn, time.monotonic()))
                thread.start()
        self.on_draining()
        self._join_connections()
        self.on_stopped()

    def _handle(self, conn: socket.socket, serial: int) -> None:
        if self.concurrency == 1 and self.max_connection_seconds is not None:
            with self._live_lock:
                self._live.append((None, conn, time.monotonic()))
        try:
            with conn:
                self.handle_connection(conn)
        except Exception as exc:  # noqa: BLE001 - the loop must survive
            self.handler_errors += 1
            self.log(
                f"connection #{serial} dropped: {type(exc).__name__}: {exc}"
            )
        finally:
            with self._live_lock:
                self._live = [rec for rec in self._live if rec[1] is not conn]

    def handle_connection(self, conn: socket.socket) -> None:
        if self._handler is None:  # pragma: no cover - subclass contract
            raise NotImplementedError("pass handler= or override handle_connection")
        self._handler(conn)

    def _reap_overstayers(self) -> None:
        """Bound per-connection lifetime: shut down connections past the
        limit so their handler's next recv fails and the slot frees."""
        limit = self.max_connection_seconds
        if limit is None:
            return
        now = time.monotonic()
        with self._live_lock:
            over = [conn for _, conn, started in self._live if now - started > limit]
        for conn in over:
            self.log(f"connection exceeded {limit}s lifetime; shutting it down")
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def _join_connections(self) -> None:
        with self._live_lock:
            live = list(self._live)
        for thread, conn, _ in live:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            if thread is not None:
                thread.join(timeout=2)

    def on_draining(self) -> None:
        """Subclass hook: runs once after the accept loop exits but
        *before* live connections are shut down — the drain window where
        a daemon lets accepted work finish and deliver its results."""

    def on_stopped(self) -> None:
        """Subclass hook: runs once after the accept loop exits (on the
        serving thread), before :meth:`stop` returns to its caller."""

    def request_stop(self) -> None:
        """Signal-safe graceful-stop request: stop accepting and let
        :meth:`serve_forever` unwind.  Safe to call from a SIGTERM
        handler or any thread; never blocks, never joins."""
        self._stop.set()
        # shutdown before close: close alone is *deferred* while the
        # serving thread sits inside its current accept() window, and a
        # still-listening kernel socket would accept one more client;
        # shutdown wakes the in-flight accept and refuses new SYNs now
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - best effort
            pass

    def stop(self) -> None:
        """Full shutdown: request a stop, then join every thread the
        server started so no orphans outlive it."""
        self.request_stop()
        if self._thread is not None:
            self._thread.join(timeout=5)
        else:
            # serve_forever ran on the caller's thread; it already
            # unwound (or was never started) — still reap connections
            self._join_connections()


def install_term_handler(callback) -> bool:
    """Install *callback* as the SIGTERM handler for graceful drain.

    Returns False (and installs nothing) when not on the main thread —
    Python only allows signal handlers there — so daemons embedded in
    tests or other hosts degrade to explicit ``stop()`` calls.  The
    callback runs inside the signal handler: it must only do signal-safe
    work (``request_stop`` / setting events), never joins.
    """
    if threading.current_thread() is not threading.main_thread():
        return False
    signal.signal(signal.SIGTERM, lambda signum, frame: callback())
    return True
