"""Length-framed transport primitives shared across the platform.

The debugger wire protocol (PR 3) introduced u32-big-endian
length-prefixed frames as the platform's one framing discipline: length
prefixes make partial reads a non-event (the decoder simply waits for
the rest) and make garbage *detectable* — random bytes parse as an
implausible length, which is rejected up front with a bounded read, so
the receiver never tries to buffer gigabytes on a bad prefix.  The
remote campaign protocol (:mod:`repro.campaign.remote`) rides the same
carrier, so the framing layer lives here, under ``repro.core``, and
both protocols import it; :mod:`repro.debugger.protocol` re-exports
every name for backward compatibility.

This module also holds :class:`BackoffPolicy` — the capped, seeded
exponential-backoff-with-jitter schedule both network clients (the
debugger frontend and the remote worker pool) retry connects with.  The
policy is a value object: ``delays()`` returns the *exact* schedule as
concrete numbers, and ``call`` takes an injectable ``sleep``, so tests
assert full backoff sequences against a fake clock without ever
sleeping for real, and a fleet of coordinated clients stays
deterministic.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.vm.errors import VMError

#: frames larger than this are rejected without reading the payload —
#: debugger responses are "small packets", so 1 MiB is generous.  The
#: remote campaign and serve protocols raise the cap per-decoder (jobs
#: and results can carry sealed trace blobs).
MAX_FRAME_BYTES = 1 << 20
#: length prefix size (u32 big-endian)
LEN_BYTES = 4
#: CRC32 prefix size inside checksummed pickle frames
CRC_BYTES = 4


class TransportError(VMError):
    """A framed connection itself failed: unframeable bytes, an
    oversized length prefix, a timeout, or a peer that vanished."""


class FrameError(TransportError):
    """The byte stream cannot be parsed as frames; resync is impossible
    and the connection must be torn down."""


def frame_payload(payload: bytes, max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """One wire frame: u32-BE length prefix + *payload*."""
    if len(payload) > max_frame_bytes:  # pragma: no cover - defensive
        raise FrameError(f"outgoing frame of {len(payload)} bytes exceeds cap")
    return len(payload).to_bytes(LEN_BYTES, "big") + payload


def encode_pickle_message(message: dict, max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """One wire frame carrying a **u32-BE CRC32 + pickled message dict**.

    This is the payload discipline both trusted-host protocols (the
    remote campaign workers and the serve daemon) ride on the length
    frames: the checksum makes a corrupted frame *deterministically
    detectable* — a bit flipped in flight fails the CRC and the receiver
    tears the connection down with a typed :class:`FrameError` instead of
    unpickling garbage into a silently-wrong result.
    """
    import pickle
    import zlib

    blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    crc = zlib.crc32(blob) & 0xFFFFFFFF
    return frame_payload(crc.to_bytes(CRC_BYTES, "big") + blob, max_frame_bytes)


def decode_pickle_payload(payload: bytes) -> dict:
    """Check the CRC and unpickle one frame payload.

    Raises :class:`FrameError` on a checksum mismatch, an unpicklable
    blob, or a message that is not a dict with an ``"op"`` — all mean
    the stream is untrustworthy and the connection must close.
    """
    import pickle
    import zlib

    if len(payload) < CRC_BYTES:
        raise FrameError("checksummed frame too short to carry a CRC32")
    crc = int.from_bytes(payload[:CRC_BYTES], "big")
    blob = payload[CRC_BYTES:]
    if zlib.crc32(blob) & 0xFFFFFFFF != crc:
        raise FrameError("frame failed its CRC32 (corrupted in flight)")
    try:
        message = pickle.loads(blob)
    except Exception as exc:  # noqa: BLE001 - anything here is a bad frame
        raise FrameError(f"frame does not unpickle: {exc}") from exc
    if not isinstance(message, dict) or "op" not in message:
        raise FrameError("message must be a dict with an 'op'")
    return message


class FrameDecoder:
    """Incremental frame reassembly over arbitrary byte chunks.

    ``feed`` never blocks and never over-buffers: the declared length is
    validated *before* any payload accumulates, so an adversarial or
    corrupted prefix costs at most ``LEN_BYTES`` of buffered data plus
    one :class:`FrameError`.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buf = b""

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)

    def feed(self, data: bytes) -> list[bytes]:
        """Buffer *data*; return every complete frame payload now available.

        Raises :class:`FrameError` on an oversized or absurd length
        prefix — the caller must close the connection (there is no way to
        find the next frame boundary in a stream with a broken prefix).
        """
        self._buf += data
        payloads: list[bytes] = []
        while len(self._buf) >= LEN_BYTES:
            length = int.from_bytes(self._buf[:LEN_BYTES], "big")
            if length > self.max_frame_bytes:
                raise FrameError(
                    f"frame length {length} exceeds the {self.max_frame_bytes}"
                    f"-byte cap (garbage or hostile prefix); closing"
                )
            if len(self._buf) < LEN_BYTES + length:
                break  # partial frame: wait for more bytes
            payloads.append(self._buf[LEN_BYTES:LEN_BYTES + length])
            self._buf = self._buf[LEN_BYTES + length:]
        return payloads


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff + jitter, as a deterministic schedule.

    The delay before retry *i* is ``min(max_delay, base_delay * 2**i)``
    scaled by a jitter factor in [0.5, 1.0) drawn from a RNG seeded with
    ``jitter_seed`` — the same policy object always produces the same
    schedule, so tests (and coordinated fleets of clients) can assert it
    exactly.  ``attempts`` counts tries, so ``attempts - 1`` delays
    separate them.
    """

    attempts: int = 6
    base_delay: float = 0.05
    max_delay: float = 1.0
    jitter_seed: "int | None" = 0

    def delays(self) -> "list[float]":
        """The concrete inter-attempt sleeps, in order."""
        rng = random.Random(self.jitter_seed)
        return [
            min(self.max_delay, self.base_delay * (2 ** attempt))
            * (0.5 + rng.random() / 2)
            for attempt in range(max(1, self.attempts) - 1)
        ]

    def call(
        self,
        fn,
        *,
        retry_on: tuple = (OSError,),
        sleep=time.sleep,
        describe: str = "operation",
    ):
        """Run *fn* under this retry schedule; *sleep* is injectable so
        backoff tests run against a fake clock.  Raises
        :class:`TransportError` (chaining the last error) once the final
        attempt fails."""
        delays = self.delays()
        last_error: "Exception | None" = None
        for attempt in range(max(1, self.attempts)):
            try:
                return fn()
            except retry_on as exc:  # noqa: PERF203 - retry loop
                last_error = exc
                if attempt >= len(delays):
                    break
                sleep(delays[attempt])
        raise TransportError(
            f"{describe} after {max(1, self.attempts)} attempts: {last_error}"
        ) from last_error
