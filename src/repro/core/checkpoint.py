"""Verified checkpoint/restore: the recovery primitive for replay.

The paper gets time travel "for free" by re-replaying from cycle zero —
the degenerate single-checkpoint scheme.  This module adds the periodic-
checkpoint scheme of rr/iReplayer on top of the deterministic replayer:

* :func:`capture_snapshot` — a complete, digest-verified copy of machine
  state (heap words, thread stacks, scheduler/monitor queues, trace
  cursors, logical clocks) taken at a *safe point*;
* :func:`restore_vm` — rehydrate a snapshot into a fresh VM whose
  continued replay is bit-identical to the original run's continuation;
* :class:`CheckpointWriter` / :class:`CheckpointStore` — the
  ``<trace>.ckpt`` sidecar file, framed exactly like trace format v3
  (CRC-checksummed length-framed segments, atomic-rename seal, salvage
  by prefix scan);
* :class:`CheckpointRecorder` — the safe-point hook that captures every
  N cycles during replay (or record, for digests/listing only).

Safe-point rule
---------------
A snapshot is taken only where ``Engine.run()`` finds no current thread:
every frame pc and shadow bci is committed, no native call or allocation
is in flight, and the next action is ``scheduler.schedule()``.  Capture
happens *before* schedule() runs, so a restored run re-executes the
dispatch — including any replayed clock reads ``_wake_timed`` performs —
exactly as the original did.  The hook is host-side and guest-invisible:
recordings are byte-identical with checkpointing on or off.

Restore strategy
----------------
Heap words are copied wholesale, so restore only needs to rebuild the
*host-side* structures that mirror them.  The class table is replayed
through the real loader in class-id order (ids are assigned append-only
and supers/element-classes always precede their dependents, so this
reproduces layouts, method ids and compiled code exactly), then every
other host structure — threads, frames, monitors, queues, cursors — is
patched from the snapshot.  Only replay-mode snapshots are restorable:
replay funnels clocks, natives and the environment through the trace, so
no host timer/RNG state needs to be rewound.  The one exception is a
*slim* (trace v3.2) replay, whose model timer device is live host state:
its snapshot carries a ``dv``/``slim`` block (reconstructor cursors,
sync-witness count, intervals consumed, engine deadline), and restore
rebuilds a pristine model timer and burns the consumed intervals so the
interval stream continues exactly where the snapshot left it.

Failure ladder
--------------
Every consumer degrades gracefully.  A damaged sidecar tail is dropped
by the prefix scan (CRC); a tampered snapshot body fails its machine
digest and is skipped; a restore or resumed replay that errors falls
back to the next earlier checkpoint; and when nothing survives, replay
starts from cycle zero.  Only :class:`CheckpointConfigMismatch` refuses
to fall back — all checkpoints share the config, and frame pcs index the
config-compiled instruction stream, so restoring across configs would
silently run the wrong code.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.core.tracelog import _decode_meta, _encode_meta, config_fingerprint
from repro.vm.errors import (
    CheckpointConfigMismatch,
    CheckpointError,
    CheckpointFormatError,
)
from repro.vm.threads import Frame, GreenThread

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import GuestProgram
    from repro.core.tracelog import TraceLog
    from repro.vm.machine import VMConfig, VirtualMachine

CKPT_MAGIC = b"DJVC"
CKPT_VERSION = 1

SEG_SNAPSHOT = b"C"
SEG_CKPT_META = b"M"
SEG_CKPT_FOOTER = b"F"

_SEG_HEADER_BYTES = 1 + 4 + 4  # kind + payload length + CRC32
_HEADER_BYTES = len(CKPT_MAGIC) + 2
#: sanity bound used by the prefix scan to reject garbage lengths
MAX_SNAPSHOT_BYTES = 1 << 28

#: default capture interval (cycles) for checkpoint-accelerated jumps
DEFAULT_CHECKPOINT_INTERVAL = 25_000


def sidecar_path(trace_path) -> Path:
    """The checkpoint sidecar belonging to *trace_path* (``<trace>.ckpt``)."""
    return Path(str(trace_path) + ".ckpt")


# ---------------------------------------------------------------------------
# snapshots


class Snapshot:
    """One captured machine state: a header dict plus the heap words.

    The header is everything host-side (scheduler, monitors, cursors,
    counters — see :func:`capture_snapshot`); ``words`` is the entire
    ``Memory.words`` list.  ``header["digest"]`` is a blake2b over the
    canonical header encoding (digest key excluded) and the canonical
    words encoding: equal digests mean equal machine states.
    """

    __slots__ = ("header", "words", "_words_blob")

    def __init__(self, header: dict, words: list, words_blob: bytes | None = None):
        self.header = header
        self.words = words
        self._words_blob = words_blob

    @property
    def cycles(self) -> int:
        return self.header["cycles"]

    @property
    def mode(self) -> str:
        return self.header["mode"]

    @property
    def digest(self) -> str:
        return self.header["digest"]

    def words_blob(self) -> bytes:
        if self._words_blob is None:
            self._words_blob = json.dumps(
                self.words, separators=(",", ":")
            ).encode()
        return self._words_blob

    def computed_digest(self) -> str:
        return _digest_of(self.header, self.words_blob())

    def verify(self) -> None:
        """Recompute the machine digest; raises on any mismatch (tamper
        the segment CRC missed, or a decoder bug)."""
        want = self.header.get("digest")
        got = self.computed_digest()
        if want != got:
            raise CheckpointFormatError(
                f"snapshot @cycle {self.header.get('cycles', '?')}: machine "
                f"digest mismatch (stored {want}, computed {got})"
            )

    def describe(self) -> str:
        h = self.header
        return (
            f"@cycle {h['cycles']:<10} mode={h['mode']} "
            f"threads={len(h['threads'])} digest={h['digest'][:12]}…"
        )


def _digest_of(header: dict, words_blob: bytes) -> str:
    canonical = {k: v for k, v in header.items() if k != "digest"}
    h = hashlib.blake2b(digest_size=16)
    h.update(_encode_meta(canonical))
    h.update(words_blob)
    return h.hexdigest()


def _pack_thread(t: GreenThread) -> tuple:
    return (
        t.tid,
        t.guest_addr,
        t.state,
        t.stack_addr,
        t.stack_capacity,
        t.stack_used,
        t.stack_grows,
        t.shadow_addr,
        t.wakeup_time,
        t.waiting_on,
        t.wait_recursion,
        t.pending_recursion,
        t.interrupted,
        tuple(j.tid for j in t.joiners),
        t.name,
        t.yieldpoints,
        tuple(
            (f.method.method_id, f.pc, tuple(f.locals), tuple(f.stack))
            for f in t.frames
        ),
    )


def _pack_buffer(buf) -> tuple:
    return (buf.addr, buf._fill, buf._pos, buf.flushes, buf.refills)


def capture_snapshot(vm: "VirtualMachine") -> Snapshot:
    """A complete machine snapshot.  Read-only: capturing perturbs
    nothing the guest (or the recorder) can observe.

    Capture is legal at any point — a paused debugger uses the digest to
    compare machine states mid-run — but only snapshots taken at a safe
    point (``scheduler.current is None``, i.e. ``current == -1`` in the
    header) can be restored.
    """
    dv = vm.dejavu
    if dv is None:
        raise CheckpointError(
            "checkpoints require an attached DejaVu controller "
            "(trace cursors are part of the machine state)"
        )
    engine = vm.engine
    sched = vm.scheduler
    mem = vm.memory
    loader = vm.loader
    sym = dv.sym
    header = {
        "format": CKPT_VERSION,
        "mode": dv.mode,
        "config": config_fingerprint(vm.config),
        "engine": vm.config.engine.describe(),
        "cycles": engine.cycles,
        "current": sched.current.tid if sched.current is not None else -1,
        # memory (words travel alongside the header)
        "semi": mem.semi,
        "active": mem.active,
        "bump": mem.bump,
        # engine
        "hw_bit": engine.hw_bit,
        "switch_pending": engine.switch_pending,
        "fstat": tuple(engine._fstat),
        # scheduler / thread package
        "threads": tuple(_pack_thread(t) for t in sched.threads),
        "ready": tuple(t.tid for t in sched.ready),
        "timed": tuple(t.tid for t in sched.timed),
        "last_running": (
            sched._last_running.tid if sched._last_running is not None else -1
        ),
        "switch_count": sched.switch_count,
        "table_addr": sched._table_addr,
        # monitors (insertion order is GC-visitation order: preserve it)
        "monitors": tuple(
            (addr, tuple(t.tid for t in m.entry), tuple(t.tid for t in m.waiters))
            for addr, m in vm.monitors.monitors.items()
        ),
        "mon_stats": (
            vm.monitors.acquisitions,
            vm.monitors.contentions,
            vm.monitors.notifies,
        ),
        # loader (replayed through the real loader on restore)
        "class_table": tuple(
            ("A" if lay.is_array else "S" if lay.name.startswith("Statics$") else "C",
             lay.name)
            for lay in loader.class_table
        ),
        "linked": tuple(
            rc.name
            for rc in sorted(loader.classes.values(), key=lambda c: c.class_id)
            if rc.linked
        ),
        "class_addrs": tuple(
            (rc.name, rc.statics_addr, rc.constants_addr)
            for rc in sorted(loader.classes.values(), key=lambda c: c.class_id)
        ),
        "interned": tuple(loader.interned.items()),
        "n_methods": len(loader.method_by_id),
        "alloc_count": vm.om.alloc_count,
        # collector
        "gc": (vm.collector.collections, vm.collector.total_evacuated_words),
        # run-visible VM state
        "output": tuple(vm.output),
        "traps": tuple(vm.trap_reports),
        "deadlocked": vm.deadlocked,
        "events": tuple(vm.observer.events),
        # DejaVu controller (trace cursors + guest-heap buffer positions)
        "dv": (
            ("liveclock", dv.liveclock),
            ("nyp", dv.nyp),
            ("replay_nyp", dv._replay_nyp),
            ("stats", tuple(sorted(dv.stats.items()))),
            ("switch_buf", _pack_buffer(dv.switch_buf)),
            ("switch_cursor", dv._switch_cursor),
            ("sym", (sym._io_classes_loaded, sym.io_warmups,
                     sym.eager_grows, sym.overflow_grows)),
            ("threadswitch_bit", dv.threadswitch_bit),
            ("value_buf", _pack_buffer(dv.value_buf)),
            ("value_cursor", dv._value_cursor),
        ),
    }
    slim_state = dv._slim_snapshot_state()
    if slim_state is not None:
        header["dv"] = tuple(sorted(header["dv"] + (("slim", slim_state),)))
    snap = Snapshot(header, list(mem.words))
    header["digest"] = _digest_of(header, snap.words_blob())
    return snap


def machine_digest(vm: "VirtualMachine") -> str:
    """Digest of the complete machine state (heap *and* host mirrors) —
    a much stronger equality witness than ``vm.heap_digest()``."""
    return capture_snapshot(vm).digest


# ---------------------------------------------------------------------------
# restore


def restore_vm(
    snapshot: Snapshot,
    program: "GuestProgram",
    trace: "TraceLog",
    *,
    config: "VMConfig | None" = None,
    symmetry=None,
) -> "VirtualMachine":
    """Rehydrate *snapshot* into a fresh VM ready to continue replaying
    *trace* from the snapshot's cycle.  Drive it with ``vm.engine.run()``
    and ``vm.finish()`` — not ``vm.run()`` (the program is already
    mid-flight)."""
    from repro.api import build_vm
    from repro.core.controller import MODE_REPLAY, DejaVu

    h = snapshot.header
    if h.get("format") != CKPT_VERSION:
        raise CheckpointFormatError(
            f"unsupported snapshot format {h.get('format')!r}"
        )
    if h.get("mode") != MODE_REPLAY:
        raise CheckpointError(
            f"only replay-mode snapshots are restorable (snapshot is "
            f"{h.get('mode')!r}: record-side host state — timers, RNG — "
            f"is not captured)"
        )
    if h.get("current", -1) != -1:
        raise CheckpointError(
            "snapshot was not taken at a scheduler safe point "
            f"(thread {h['current']} was running)"
        )
    snapshot.verify()

    vm = build_vm(program, config)
    fp = config_fingerprint(vm.config)
    if fp != h["config"]:
        raise CheckpointConfigMismatch(
            f"checkpoint captured under [{h['config']}] but the restore "
            f"VM is [{fp}]"
        )
    engine_desc = vm.config.engine.describe()
    if engine_desc != h["engine"]:
        raise CheckpointConfigMismatch(
            f"checkpoint frame pcs index {h['engine']!r}-compiled code "
            f"but the restore engine is {engine_desc!r}"
        )

    dv = DejaVu(vm, MODE_REPLAY, trace=trace, symmetry=symmetry)
    vm.start(program.main)

    _replay_class_table(vm.loader, h)

    # -- memory: wholesale
    mem = vm.memory
    mem.words[:] = snapshot.words
    mem.active = h["active"]
    mem.bump = h["bump"]
    mem.limit = mem.base[mem.active] + mem.semi

    # -- loader heap pointers (the words were overwritten above)
    loader = vm.loader
    for name, statics_addr, constants_addr in h["class_addrs"]:
        rc = loader.classes[name]
        rc.statics_addr = statics_addr
        rc.constants_addr = constants_addr
    loader.interned = dict(h["interned"])
    loader.temp_roots.clear()
    vm.om.alloc_count = h["alloc_count"]

    # -- thread package
    sched = vm.scheduler
    threads = [_unpack_thread(packed, loader) for packed in h["threads"]]
    by_tid = {t.tid: t for t in threads}
    for t, packed in zip(threads, h["threads"]):
        t.joiners = [by_tid[tid] for tid in packed[13]]
    sched.threads = threads
    sched.ready = deque(by_tid[tid] for tid in h["ready"])
    sched.timed = [by_tid[tid] for tid in h["timed"]]
    sched.current = None
    last = h["last_running"]
    sched._last_running = by_tid[last] if last >= 0 else None
    sched.switch_count = h["switch_count"]
    sched._table_addr = h["table_addr"]

    # -- monitors
    mt = vm.monitors
    mt.monitors = {}
    for addr, entry_tids, waiter_tids in h["monitors"]:
        from repro.vm.monitors import Monitor

        mon = Monitor(addr)
        mon.entry = deque(by_tid[tid] for tid in entry_tids)
        mon.waiters = [by_tid[tid] for tid in waiter_tids]
        mt.monitors[addr] = mon
    mt.acquisitions, mt.contentions, mt.notifies = h["mon_stats"]

    # -- engine (classic replay keeps the timer off: replay clocks come
    # from the trace; slim replay's live timer is restored further down)
    d = dict(h["dv"])
    slim_state = d.get("slim")
    engine = vm.engine
    engine.cycles = h["cycles"]
    engine.hw_bit = h["hw_bit"]
    engine.switch_pending = h["switch_pending"]
    if slim_state is None:
        engine.timer_enabled = False
        engine._timer_armed = True
        engine._deadline = 1 << 62
    engine._fstat[:] = list(h["fstat"])
    engine._thread = None
    engine._frame = None
    engine._call = None

    # -- collector / run-visible VM state
    vm.collector.collections, vm.collector.total_evacuated_words = h["gc"]
    vm.output[:] = list(h["output"])
    vm.trap_reports[:] = [tuple(t) for t in h["traps"]]
    vm.deadlocked = tuple(h["deadlocked"])
    vm.observer.events[:] = [tuple(e) for e in h["events"]]

    # -- DejaVu controller
    dv._switch_cursor = d["switch_cursor"]
    dv._value_cursor = d["value_cursor"]
    dv.nyp = d["nyp"]
    dv.liveclock = d["liveclock"]
    dv.threadswitch_bit = d["threadswitch_bit"]
    dv._replay_nyp = d["replay_nyp"]
    dv.stats = dict(d["stats"])
    _unpack_buffer(dv.switch_buf, d["switch_buf"])
    _unpack_buffer(dv.value_buf, d["value_buf"])
    (dv.sym._io_classes_loaded, dv.sym.io_warmups,
     dv.sym.eager_grows, dv.sym.overflow_grows) = d["sym"]
    if slim_state is not None:
        dv._slim_restore_state(slim_state)
    elif dv._slim_replay is not None:
        raise CheckpointError(
            "trace is slim (v3.2) but the snapshot carries no slim replay "
            "state — it was captured replaying a different (full) trace"
        )
    return vm


def _replay_class_table(loader, h: dict) -> None:
    """Reproduce the snapshot's class table — layouts, class ids, method
    ids, compiled code — by replaying creation through the real loader
    in class-id order.  Ids are append-only and every dependency (super,
    array element class, statics layout) was created *before* its
    dependent got an id, so this order always works."""
    for idx, (tag, name) in enumerate(h["class_table"]):
        if idx < len(loader.class_table):
            got = loader.class_table[idx]
            if got.is_array != (tag == "A") or got.name != name:
                raise CheckpointError(
                    f"class table diverged at id {idx}: snapshot has "
                    f"{tag}/{name!r}, fresh VM built {got.name!r}"
                )
            continue
        if tag == "A":
            loader.array_layout(name)  # for arrays, name IS the descriptor
        elif tag == "C":
            loader.ensure_layout(name)
        # tag == "S": Statics$X layouts are appended by X's ensure_layout
        if idx >= len(loader.class_table):
            raise CheckpointError(
                f"class table replay stalled at id {idx} ({tag}/{name!r})"
            )
        got = loader.class_table[idx]
        if got.is_array != (tag == "A") or got.name != name:
            raise CheckpointError(
                f"class table diverged at id {idx}: snapshot has "
                f"{tag}/{name!r}, replayed loader built {got.name!r}"
            )
    if len(loader.class_table) != len(h["class_table"]):
        raise CheckpointError(
            f"class table length mismatch after rebuild: snapshot has "
            f"{len(h['class_table'])}, loader built {len(loader.class_table)}"
        )
    for name in h["linked"]:
        loader.link(name)
    if len(loader.method_by_id) != h["n_methods"]:
        raise CheckpointError(
            f"method table mismatch after rebuild: snapshot has "
            f"{h['n_methods']} methods, loader built {len(loader.method_by_id)}"
        )


def _unpack_thread(packed: tuple, loader) -> GreenThread:
    t = GreenThread(packed[0], packed[1], packed[14])
    (t.state, t.stack_addr, t.stack_capacity, t.stack_used, t.stack_grows,
     t.shadow_addr, t.wakeup_time, t.waiting_on, t.wait_recursion,
     t.pending_recursion, t.interrupted) = packed[2:13]
    t.yieldpoints = packed[15]
    frames = []
    for method_id, pc, locals_, stack in packed[16]:
        rm = loader.method_by_id[method_id]
        if rm.code is None:
            raise CheckpointError(
                f"frame references uncompiled method {rm.qualname}"
            )
        frame = Frame.__new__(Frame)
        frame.method = rm
        frame.code = rm.code
        frame.pc = pc
        frame.locals = list(locals_)
        frame.stack = list(stack)
        frames.append(frame)
    t.frames = frames
    return t


def _unpack_buffer(buf, packed: tuple) -> None:
    buf.addr, buf._fill, buf._pos, buf.flushes, buf.refills = packed


# ---------------------------------------------------------------------------
# the sidecar file


class CheckpointWriter:
    """Streams snapshots to ``<path>.tmp``; :meth:`seal` writes META and
    FOOTER segments, fsyncs, and atomically renames into place — the v3
    crash-consistency scheme.  A crash mid-replay leaves a tmp file whose
    complete-segment prefix is every checkpoint that was fully flushed.
    """

    def __init__(self, path):
        self.path = str(path)
        self.tmp_path = self.path + ".tmp"
        self._file = open(self.tmp_path, "wb")
        self._file.write(CKPT_MAGIC)
        self._file.write(CKPT_VERSION.to_bytes(2, "little"))
        self._file.flush()
        self.n_snapshots = 0
        self._sealed = False

    def _write_segment(self, kind: bytes, payload: bytes) -> None:
        f = self._file
        f.write(kind)
        f.write(len(payload).to_bytes(4, "little"))
        f.write(zlib.crc32(payload).to_bytes(4, "little"))
        f.write(payload)
        f.flush()

    def add(self, snapshot: Snapshot) -> None:
        header_blob = _encode_meta(snapshot.header)
        payload = (
            len(header_blob).to_bytes(4, "little")
            + header_blob
            + snapshot.words_blob()
        )
        self._write_segment(SEG_SNAPSHOT, payload)
        self.n_snapshots += 1

    def seal(self, meta: dict | None = None) -> None:
        if self._sealed:
            return
        if meta:
            self._write_segment(SEG_CKPT_META, _encode_meta(dict(meta)))
        self._write_segment(
            SEG_CKPT_FOOTER, _encode_meta({"n_snapshots": self.n_snapshots})
        )
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        os.replace(self.tmp_path, self.path)
        self._sealed = True

    def abandon(self) -> None:
        """Close without sealing (crash simulation / error paths): the
        tmp file keeps every fully-flushed checkpoint."""
        if not self._sealed and not self._file.closed:
            self._file.flush()
            self._file.close()


def _decode_snapshot_payload(payload: bytes) -> Snapshot:
    if len(payload) < 4:
        raise CheckpointFormatError("snapshot payload shorter than its header")
    header_len = int.from_bytes(payload[:4], "little")
    if 4 + header_len > len(payload):
        raise CheckpointFormatError(
            f"snapshot header length {header_len} overruns the payload"
        )
    try:
        header = _decode_meta(payload[4 : 4 + header_len])
    except Exception as exc:
        raise CheckpointFormatError(f"undecodable snapshot header: {exc}")
    words_blob = bytes(payload[4 + header_len :])
    try:
        words = json.loads(words_blob)
    except ValueError as exc:
        raise CheckpointFormatError(f"undecodable snapshot words: {exc}")
    if not isinstance(words, list):
        raise CheckpointFormatError("snapshot words are not a list")
    return Snapshot(header, words, words_blob=words_blob)


class CheckpointStore:
    """A parsed sidecar: the surviving (CRC-intact, digest-verified)
    snapshots plus everything a doctor needs to classify the damage.

    Loading is *salvage by default*: a torn/corrupt tail stops the scan
    (``error``), a tampered snapshot body is skipped (``skipped``), and
    whatever survives is usable — the fallback ladder in action.
    """

    def __init__(self, path: str, source: str = "sidecar"):
        self.path = path
        self.source = source  # "sidecar" (sealed) or "tmp" (crash leftovers)
        self.snapshots: list[Snapshot] = []
        self.meta: dict = {}
        self.sealed = False
        self.skipped = 0
        self.error: str | None = None
        self.notes: list[str] = []

    @classmethod
    def load(cls, path) -> "CheckpointStore":
        """Parse ``path``, falling back to ``path.tmp`` (a crashed
        writer's leftovers).  Raises :class:`CheckpointFormatError` only
        when no readable sidecar exists at all."""
        sealed = Path(str(path))
        tmp = Path(str(path) + ".tmp")
        if sealed.exists():
            return cls._parse(sealed.read_bytes(), str(sealed), "sidecar")
        if tmp.exists():
            return cls._parse(tmp.read_bytes(), str(tmp), "tmp")
        raise CheckpointFormatError(f"no checkpoint sidecar at {path}")

    @classmethod
    def _parse(cls, blob: bytes, path: str, source: str) -> "CheckpointStore":
        if len(blob) < _HEADER_BYTES or blob[: len(CKPT_MAGIC)] != CKPT_MAGIC:
            raise CheckpointFormatError(
                f"{path}: not a checkpoint sidecar (bad magic)"
            )
        version = int.from_bytes(blob[len(CKPT_MAGIC) : _HEADER_BYTES], "little")
        if version != CKPT_VERSION:
            raise CheckpointFormatError(
                f"{path}: unsupported checkpoint version {version}"
            )
        store = cls(path, source)
        pos = _HEADER_BYTES
        n_seen = 0
        footer = None
        while pos < len(blob):
            if footer is not None:
                store.error = f"trailing data after footer at byte {pos}"
                break
            if len(blob) - pos < _SEG_HEADER_BYTES:
                store.error = f"torn segment header at byte {pos}"
                break
            kind = blob[pos : pos + 1]
            length = int.from_bytes(blob[pos + 1 : pos + 5], "little")
            crc = int.from_bytes(blob[pos + 5 : pos + 9], "little")
            if kind not in (SEG_SNAPSHOT, SEG_CKPT_META, SEG_CKPT_FOOTER):
                store.error = f"unknown segment kind {kind!r} at byte {pos}"
                break
            if length > MAX_SNAPSHOT_BYTES:
                store.error = f"implausible segment length {length} at byte {pos}"
                break
            payload = blob[pos + _SEG_HEADER_BYTES : pos + _SEG_HEADER_BYTES + length]
            if len(payload) < length:
                store.error = f"torn segment payload at byte {pos}"
                break
            if zlib.crc32(payload) != crc:
                store.error = f"segment CRC mismatch at byte {pos}"
                break
            pos += _SEG_HEADER_BYTES + length
            if kind == SEG_SNAPSHOT:
                n_seen += 1
                try:
                    snap = _decode_snapshot_payload(payload)
                    snap.verify()
                except CheckpointError as exc:
                    store.skipped += 1
                    store.notes.append(f"snapshot #{n_seen - 1}: {exc}")
                else:
                    store.snapshots.append(snap)
            elif kind == SEG_CKPT_META:
                store.meta.update(_decode_meta(payload))
            else:
                footer = _decode_meta(payload)
        if store.error is None and footer is not None:
            if footer.get("n_snapshots") != n_seen:
                store.error = (
                    f"footer claims {footer.get('n_snapshots')} snapshots, "
                    f"scanned {n_seen}"
                )
            else:
                store.sealed = True
        return store

    @property
    def damaged(self) -> bool:
        return bool(self.error or self.skipped or not self.sealed)

    def nearest(self, target_cycles: int) -> Snapshot | None:
        """The latest snapshot strictly before *target_cycles* (strict,
        so a seek restored here still re-executes the dispatch a
        from-zero stopper would pause inside)."""
        best = None
        for snap in self.snapshots:
            if snap.cycles < target_cycles and (
                best is None or snap.cycles > best.cycles
            ):
                best = snap
        return best

    def newest_first(self) -> list[Snapshot]:
        return sorted(self.snapshots, key=lambda s: s.cycles, reverse=True)

    def describe(self) -> str:
        state = "sealed" if self.sealed else f"unsealed ({self.source})"
        parts = [f"{len(self.snapshots)} snapshot(s), {state}"]
        if self.skipped:
            parts.append(f"{self.skipped} failed digest verification")
        if self.error:
            parts.append(f"scan stopped: {self.error}")
        return "; ".join(parts)


# ---------------------------------------------------------------------------
# the recorder


class CheckpointRecorder:
    """Captures a snapshot at the first safe point at or past every
    multiple of *every* cycles.  The threshold is derived from the
    current cycle count, so a run restored from a checkpoint captures at
    exactly the boundaries the from-zero run would have — the property
    the restore-verification test pins.
    """

    def __init__(
        self,
        vm: "VirtualMachine",
        every: int = DEFAULT_CHECKPOINT_INTERVAL,
        *,
        writer: CheckpointWriter | None = None,
        sink: "Callable[[Snapshot], None] | None" = None,
        keep: bool | None = None,
    ):
        if every <= 0:
            raise ValueError(f"checkpoint interval must be positive, got {every}")
        self.vm = vm
        self.every = every
        self.writer = writer
        self.sink = sink
        #: retain snapshots in memory (default: only when not writing)
        self.keep = keep if keep is not None else writer is None
        self.snapshots: list[Snapshot] = []
        self._next = (vm.engine.cycles // every + 1) * every
        # chain, don't clobber: a hook already installed (e.g. the serve
        # daemon's cooperative-cancellation check) keeps firing first
        self._chained_hook = vm.engine.safepoint_hook
        vm.engine.safepoint_hook = self._at_safepoint

    def _at_safepoint(self, engine) -> None:
        if self._chained_hook is not None:
            self._chained_hook(engine)
        cycles = engine.cycles
        if cycles < self._next:
            return
        snap = capture_snapshot(self.vm)
        self._next = (cycles // self.every + 1) * self.every
        if self.keep:
            self.snapshots.append(snap)
        if self.writer is not None:
            self.writer.add(snap)
        if self.sink is not None:
            self.sink(snap)

    def meta(self, **extra) -> dict:
        vm = self.vm
        meta = {
            "every": self.every,
            "config": config_fingerprint(vm.config),
            "engine": vm.config.engine.describe(),
            "mode": vm.dejavu.mode if vm.dejavu is not None else "?",
        }
        meta.update(extra)
        return meta

    def seal(self, **extra) -> None:
        if self.writer is not None:
            self.writer.seal(self.meta(**extra))

    def abandon(self) -> None:
        if self.writer is not None:
            self.writer.abandon()
