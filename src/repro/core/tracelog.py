"""Trace encoding and the guest-heap trace buffers.

A trace has **two independent word streams**, mirroring the paper's
footnote 7 ("logging data for non-reproducible events such as reading the
wall clock need be done independently of thread switch information"):

* the **switch stream** — bare ``nyp`` yield-point deltas, one per
  preemptive thread switch (Figure 2);
* the **value stream** — tagged records for wall-clock reads, native-call
  results and callback parameters (see :mod:`repro.core.events`).

Streams are encoded to bytes with zig-zag varints.  In-flight words pass
through **guest heap ``[I`` buffers** — the same array objects, allocated
at the same points, in both record mode (instrumentation *writes*, flushes
to the host when full) and replay mode (instrumentation *reads*, refills
from the host when empty).  That is the paper's "symmetry in allocation":
the buffers are DejaVu's biggest heap side effect, and making them
identical in both modes keeps the allocation stream — hence GC timing,
object addresses, and identity hashes — reproducible.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.vm.errors import VMError

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.machine import VirtualMachine

MAGIC = b"DJVU"
FORMAT_VERSION = 2


# ---------------------------------------------------------------------------
# varint primitives


def zigzag(n: int) -> int:
    # Bit-identical to the classic `(n << 1) ^ (n >> 63)` for every value
    # that fits a 64-bit word, but correct for arbitrary-precision ints
    # too: the shift form assumes `n >> 63 == -1` for negatives, which
    # fails below -(2**63) and yields a negative "unsigned" code that
    # write_varint can never terminate on.
    return -2 * n - 1 if n < 0 else 2 * n


def unzigzag(z: int) -> int:
    return (z >> 1) ^ -(z & 1)


def write_varint(out: bytearray, n: int) -> None:
    z = zigzag(n)
    while True:
        b = z & 0x7F
        z >>= 7
        if z:
            out.append(b | 0x80)
        else:
            out.append(b)
            return


def read_varint(data: bytes, pos: int) -> tuple[int, int]:
    z = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise VMError("truncated varint in trace")
        b = data[pos]
        pos += 1
        z |= (b & 0x7F) << shift
        if not (b & 0x80):
            return unzigzag(z), pos
        shift += 7


def encode_words(words: list[int]) -> bytes:
    out = bytearray()
    for w in words:
        write_varint(out, w)
    return bytes(out)


def decode_words(data: bytes) -> list[int]:
    words = []
    pos = 0
    while pos < len(data):
        w, pos = read_varint(data, pos)
        words.append(w)
    return words


# ---------------------------------------------------------------------------
# the persisted trace


@dataclass
class TraceLog:
    """A complete recorded execution, ready to drive a replay."""

    switches: list[int] = field(default_factory=list)
    values: list[int] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def encoded_size_bytes(self) -> int:
        return len(encode_words(self.switches)) + len(encode_words(self.values))

    @property
    def n_switch_records(self) -> int:
        return len(self.switches)

    @property
    def n_value_words(self) -> int:
        return len(self.values)

    def save(self, path: str | Path) -> None:
        path = Path(path)
        with path.open("wb") as f:
            f.write(MAGIC)
            f.write(FORMAT_VERSION.to_bytes(2, "little"))
            meta_blob = repr(sorted(self.meta.items())).encode()
            f.write(len(meta_blob).to_bytes(4, "little"))
            f.write(meta_blob)
            for payload in (encode_words(self.switches), encode_words(self.values)):
                f.write(len(payload).to_bytes(8, "little"))
                f.write(payload)

    @classmethod
    def load(cls, path: str | Path) -> "TraceLog":
        data = Path(path).read_bytes()
        buf = io.BytesIO(data)
        if buf.read(4) != MAGIC:
            raise VMError(f"not a DejaVu trace: {path}")
        version = int.from_bytes(buf.read(2), "little")
        if version != FORMAT_VERSION:
            raise VMError(f"unsupported trace version {version}")
        meta_len = int.from_bytes(buf.read(4), "little")
        meta = dict(eval(buf.read(meta_len).decode()))  # noqa: S307 - own format
        streams = []
        for _ in range(2):
            payload_len = int.from_bytes(buf.read(8), "little")
            payload = buf.read(payload_len)
            if len(payload) != payload_len:
                raise VMError("truncated trace payload")
            streams.append(decode_words(payload))
        return cls(switches=streams[0], values=streams[1], meta=meta)


# ---------------------------------------------------------------------------
# the guest-heap buffers


class TraceBuffer:
    """Word FIFO staged through a guest heap int array.

    Record mode: ``put`` words; when the array fills, its contents drain to
    the host-side word list (a "flush", which fires the lazy-class-load and
    internal-yield-point side effects the symmetry rules govern).

    Replay mode: ``take`` words; when the array empties, the next chunk of
    the trace refills it (a "refill", the mirror-image side effect).
    """

    def __init__(self, vm: "VirtualMachine", capacity_words: int, *, boot_slot: int | None = None):
        self.vm = vm
        self.capacity = capacity_words
        self.boot_slot = boot_slot
        self.addr = 0
        self._fill = 0  # valid words in the guest array
        self._pos = 0  # read cursor (replay)
        self.flushes = 0
        self.refills = 0
        #: side-effect hook invoked on every flush/refill (symmetry module)
        self.on_drain: Callable[[str], None] | None = None

    def allocate(self) -> None:
        """Allocate the guest array (the 'symmetry in allocation' event)."""
        if self.addr:
            return
        self.addr = self.vm.om.new_array("[I", self.capacity)
        if self.boot_slot is not None:
            self.vm.memory.boot_write(self.boot_slot, self.addr)

    @property
    def allocated(self) -> bool:
        return self.addr != 0

    # -- record side -------------------------------------------------------

    def put(self, word: int, sink: list[int]) -> None:
        if not self.addr:
            self.allocate()
        if self._fill >= self.capacity:
            self.flush(sink)
        self.vm.om.array_put(self.addr, self._fill, word)
        self._fill += 1

    def flush(self, sink: list[int]) -> None:
        om = self.vm.om
        for i in range(self._fill):
            sink.append(om.array_get(self.addr, i))
        self._fill = 0
        self.flushes += 1
        if self.on_drain is not None:
            self.on_drain("flush")

    # -- replay side -------------------------------------------------------

    def take(self, source: list[int], cursor: int) -> tuple[int | None, int]:
        """Pop the next word; returns (word | None-when-exhausted, cursor)."""
        if not self.addr:
            self.allocate()
        if self._pos >= self._fill:
            cursor = self._refill(source, cursor)
            if self._fill == 0:
                return None, cursor
        word = self.vm.om.array_get(self.addr, self._pos)
        self._pos += 1
        return word, cursor

    def _refill(self, source: list[int], cursor: int) -> int:
        om = self.vm.om
        n = min(self.capacity, len(source) - cursor)
        for i in range(n):
            om.array_put(self.addr, i, source[cursor + i])
        self._fill = n
        self._pos = 0
        self.refills += 1
        if self.on_drain is not None:
            self.on_drain("refill")
        return cursor + n

    # -- shared -------------------------------------------------------------

    def zero(self) -> None:
        """Erase buffer contents (end of run) so record and replay leave
        byte-identical heaps behind — the END heap-digest check depends
        on this."""
        if not self.addr:
            return
        om = self.vm.om
        for i in range(self.capacity):
            om.array_put(self.addr, i, 0)
        self._fill = 0
        self._pos = 0

    def visit_roots(self, fwd: Callable[[int], int]) -> None:
        if self.addr:
            self.addr = fwd(self.addr)
