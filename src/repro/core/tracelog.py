"""Trace encoding, crash-consistent persistence, and the guest-heap buffers.

A trace has **two independent word streams**, mirroring the paper's
footnote 7 ("logging data for non-reproducible events such as reading the
wall clock need be done independently of thread switch information"):

* the **switch stream** — bare ``nyp`` yield-point deltas, one per
  preemptive thread switch (Figure 2);
* the **value stream** — tagged records for wall-clock reads, native-call
  results and callback parameters (see :mod:`repro.core.events`).

Streams are encoded to bytes with zig-zag varints, optionally wrapped in
the **group codec** (see below).  In-flight words pass through **guest
heap ``[I`` buffers** — the same array objects, allocated at the same
points, in both record mode (instrumentation *writes*, flushes to the
host when full) and replay mode (instrumentation *reads*, refills from
the host when empty).  That is the paper's "symmetry in allocation": the
buffers are DejaVu's biggest heap side effect, and making them identical
in both modes keeps the allocation stream — hence GC timing, object
addresses, and identity hashes — reproducible.

Persistence: **format v3.1** (see DESIGN.md).  The file is a header
followed by length-framed, CRC32-checksummed segments and a sealed
footer::

    "DJVU" u16=769 | segment* | footer-segment
    segment := kind(1B) codec(1B) payload_len(u32le) crc32(u32le) payload

The codec byte is a bit-flag field: bit 0 selects the group codec for
stream segments, bit 1 selects per-segment zlib compression.  The group
codec picks the smallest of four sub-encodings per segment (plain
varints, delta+run-length, frame-of-reference bit packing, canonical
Huffman), so repetitive or narrow delta streams shrink dramatically
while adversarial streams never inflate by more than one mode byte.

Record mode streams segments to ``trace.djv.tmp`` and atomically renames
on a clean end, so an interrupted record leaves either nothing or a
salvageable prefix (:meth:`TraceLog.salvage`).  Segment assembly —
encoding, CRC, framing, file I/O — runs on a **background flusher
thread**: the execution path only hands whole spans of raw words across
a queue, which keeps recording overhead off the dispatch loop.  The
seal happens on the caller's thread *after* the flusher has drained and
joined, so "sealed" still means "every segment hit the OS in order,
fsynced, then renamed" — the crash-consistency story is unchanged.

Segment framing is pure host-side I/O: the guest-heap buffers, their
capacities and their flush points are identical in both modes and
unaware of it, preserving the allocation symmetry.  v3 (the previous
9-byte segment header without a codec byte) and v2 (the pre-segment
format) traces still load, read-only.
"""

from __future__ import annotations

import heapq
import io
import os
import queue
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.vm.errors import TraceFormatError, VMError

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.machine import VirtualMachine

MAGIC = b"DJVU"
#: the version this build writes: v3.1, stored as (major << 8) | minor
FORMAT_VERSION = (3 << 8) | 1
#: v3.2 — written only by slim-capable recorders: same framing as v3.1
#: plus the SEG_SLIM sidecar stream and slim footer fields
FORMAT_VERSION_SLIM = (3 << 8) | 2
#: versions this build can read (v2 = legacy single-blob streams,
#: 3 = segmented without codec byte, 769 = v3.1 with codec byte,
#: 770 = v3.2 slim sidecar)
READABLE_VERSIONS = (2, 3, FORMAT_VERSION, FORMAT_VERSION_SLIM)

#: segment kinds
SEG_META = b"M"
SEG_SWITCH = b"S"
SEG_VALUE = b"V"
SEG_SLIM = b"L"
SEG_FOOTER = b"F"
_SEGMENT_KINDS = (SEG_META, SEG_SWITCH, SEG_VALUE, SEG_SLIM, SEG_FOOTER)
_SEG_HEADER_BYTES = 1 + 4 + 4  # v3: kind + payload_len + crc32
_SEG_HEADER_BYTES_V31 = 1 + 1 + 4 + 4  # v3.1 adds the codec byte
#: sanity bound so a corrupted length field cannot demand a giant read
MAX_SEGMENT_BYTES = 1 << 26
#: record-mode words per on-disk segment (host-side knob; guest-invisible)
SEGMENT_WORDS = 4096

#: segment codec byte — a bit-flag field
CODEC_RAW = 0  # plain zigzag varints (the v3 encoding)
CODEC_GROUP = 1  # bit 0: group codec (pick-best of 4 sub-modes)
CODEC_ZLIB = 2  # bit 1: zlib over the (possibly group-coded) payload
CODEC_GROUP_ZLIB = CODEC_GROUP | CODEC_ZLIB
_CODEC_MASK = CODEC_GROUP | CODEC_ZLIB

_STREAM_OF_KIND = {SEG_SWITCH: "switch", SEG_VALUE: "value",
                   SEG_SLIM: "slim", SEG_META: "meta", SEG_FOOTER: "footer"}


def config_fingerprint(config) -> str:
    """The behaviour-affecting VM sizing as a short comparable string.

    Heap and stack sizing change GC timing and stack-growth events, so a
    replay under a different fingerprint can diverge for reasons that have
    nothing to do with the trace.  Engine toggles are deliberately
    excluded: the EngineConfig contract makes them guest-invisible.
    """
    return (
        f"heap={config.semispace_words}"
        f";stack={config.initial_stack_words}/{config.max_stack_words}"
        f";maxcycles={config.max_cycles}"
    )


# ---------------------------------------------------------------------------
# varint primitives


def zigzag(n: int) -> int:
    # Bit-identical to the classic `(n << 1) ^ (n >> 63)` for every value
    # that fits a 64-bit word, but correct for arbitrary-precision ints
    # too: the shift form assumes `n >> 63 == -1` for negatives, which
    # fails below -(2**63) and yields a negative "unsigned" code that
    # write_varint can never terminate on.
    return -2 * n - 1 if n < 0 else 2 * n


def unzigzag(z: int) -> int:
    return (z >> 1) ^ -(z & 1)


def write_varint(out: bytearray, n: int) -> None:
    z = zigzag(n)
    while True:
        b = z & 0x7F
        z >>= 7
        if z:
            out.append(b | 0x80)
        else:
            out.append(b)
            return


def read_varint(data: bytes, pos: int, stream: str = "trace") -> tuple[int, int]:
    z = 0
    shift = 0
    start = pos
    while True:
        if pos >= len(data):
            raise TraceFormatError(
                "truncated varint (continuation bit set at end of data)",
                stream=stream,
                offset=start,
            )
        b = data[pos]
        pos += 1
        z |= (b & 0x7F) << shift
        if not (b & 0x80):
            return unzigzag(z), pos
        shift += 7


def _write_uvarint(out: bytearray, n: int) -> None:
    """Unsigned varint (no zigzag) — counts, widths, run lengths."""
    while True:
        b = n & 0x7F
        n >>= 7
        if n:
            out.append(b | 0x80)
        else:
            out.append(b)
            return


def _read_uvarint(data: bytes, pos: int, stream: str = "group") -> tuple[int, int]:
    z = 0
    shift = 0
    start = pos
    while True:
        if pos >= len(data):
            raise TraceFormatError(
                "truncated varint (continuation bit set at end of data)",
                stream=stream,
                offset=start,
            )
        b = data[pos]
        pos += 1
        z |= (b & 0x7F) << shift
        if not (b & 0x80):
            return z, pos
        shift += 7


def encode_words(words: list[int]) -> bytes:
    out = bytearray()
    for w in words:
        write_varint(out, w)
    return bytes(out)


def decode_words(data: bytes, stream: str = "trace") -> list[int]:
    words = []
    pos = 0
    while pos < len(data):
        w, pos = read_varint(data, pos, stream)
        words.append(w)
    return words


# ---------------------------------------------------------------------------
# the group codec
#
# One segment's words, encoded as a 1-byte sub-mode tag plus the mode's
# payload.  The encoder tries every applicable mode and keeps the
# smallest (ties break toward the lower mode number), so the choice is
# deterministic and a segment never inflates by more than the tag byte.
# All modes accept arbitrary-precision ints — including the zigzag class
# below -(2**63) that fixed-width shifts mishandle.

GROUP_RAW = 0  # plain zigzag varints
GROUP_RLE = 1  # first word + run-length-encoded successive deltas
GROUP_PACK = 2  # frame-of-reference fixed-width bit packing
GROUP_HUFF = 3  # canonical Huffman over the distinct word values
#: decoder table width cap; the encoder falls back when a code exceeds it
MAX_HUFF_CODE_LEN = 32
#: ceiling on the declared word count of one group (matches the segment cap)
_MAX_GROUP_WORDS = MAX_SEGMENT_BYTES


def _encode_group_rle(words: list[int]) -> bytes:
    """``n, w0, (run_len, delta)*`` — deltas of successive words, RLE'd.

    The switch stream already holds nyp *deltas*, so this is the
    delta-of-delta coding: a phase of evenly spaced preemptions collapses
    to a single (run, 0) pair.
    """
    out = bytearray([GROUP_RLE])
    n = len(words)
    _write_uvarint(out, n)
    if n == 0:
        return bytes(out)
    write_varint(out, words[0])
    i = 1
    while i < n:
        delta = words[i] - words[i - 1]
        run = 1
        while i + run < n and words[i + run] - words[i + run - 1] == delta:
            run += 1
        _write_uvarint(out, run)
        write_varint(out, delta)
        i += run
    return bytes(out)


def _decode_group_rle(data: bytes, pos: int, stream: str) -> list[int]:
    n, pos = _read_uvarint(data, pos, stream)
    if n > _MAX_GROUP_WORDS:
        raise TraceFormatError(
            f"implausible group length {n} (cap is {_MAX_GROUP_WORDS})",
            stream=stream, offset=pos,
        )
    if n == 0:
        return []
    w, pos = read_varint(data, pos, stream)
    words = [w]
    while len(words) < n:
        run, pos = _read_uvarint(data, pos, stream)
        delta, pos = read_varint(data, pos, stream)
        if run == 0 or len(words) + run > n:
            raise TraceFormatError(
                f"undecodable run-length group (run {run} at {len(words)}/{n} words)",
                stream=stream, offset=pos,
            )
        w = words[-1]
        for _ in range(run):
            w += delta
            words.append(w)
    return words


def _encode_group_pack(words: list[int]) -> bytes:
    """``n, base, width, packed-bits`` — frame-of-reference packing.

    Every word is stored as ``w - min(words)`` in ``width`` fixed bits,
    MSB first.  ``base`` and ``width`` are varints, so arbitrary
    magnitudes (and the below ``-(2**63)`` zigzag class) pack fine.
    """
    out = bytearray([GROUP_PACK])
    n = len(words)
    _write_uvarint(out, n)
    if n == 0:
        return bytes(out)
    base = min(words)
    width = max((w - base).bit_length() for w in words)
    write_varint(out, base)
    _write_uvarint(out, width)
    acc = 0
    nacc = 0
    for w in words:
        acc = (acc << width) | (w - base)
        nacc += width
        while nacc >= 8:
            nacc -= 8
            out.append((acc >> nacc) & 0xFF)
            acc &= (1 << nacc) - 1
    if nacc:
        out.append((acc << (8 - nacc)) & 0xFF)
    return bytes(out)


def _decode_group_pack(data: bytes, pos: int, stream: str) -> list[int]:
    n, pos = _read_uvarint(data, pos, stream)
    if n > _MAX_GROUP_WORDS:
        raise TraceFormatError(
            f"implausible group length {n} (cap is {_MAX_GROUP_WORDS})",
            stream=stream, offset=pos,
        )
    if n == 0:
        return []
    base, pos = read_varint(data, pos, stream)
    width, pos = _read_uvarint(data, pos, stream)
    if width > 8 * len(data):
        raise TraceFormatError(
            f"implausible pack width {width} bits", stream=stream, offset=pos
        )
    words = []
    acc = 0
    nacc = 0
    mask = (1 << width) - 1
    for _ in range(n):
        while nacc < width:
            if pos >= len(data):
                raise TraceFormatError(
                    "truncated packed group (bitstream ends early)",
                    stream=stream, offset=pos,
                )
            acc = (acc << 8) | data[pos]
            pos += 1
            nacc += 8
        shift = nacc - width
        words.append(base + ((acc >> shift) & mask))
        acc &= (1 << shift) - 1
        nacc = shift
    return words


def _huffman_code_lengths(freqs: "list[tuple[int, int]]") -> "dict[int, int]":
    """Code length per symbol for ``(symbol, count)`` pairs (len >= 2)."""
    heap = []
    for tiebreak, (sym, count) in enumerate(freqs):
        heap.append((count, tiebreak, [sym]))
    heapq.heapify(heap)
    lengths = {sym: 0 for sym, _ in freqs}
    tiebreak = len(heap)
    while len(heap) > 1:
        ca, _, syms_a = heapq.heappop(heap)
        cb, _, syms_b = heapq.heappop(heap)
        merged = syms_a + syms_b
        for s in merged:
            lengths[s] += 1
        heapq.heappush(heap, (ca + cb, tiebreak, merged))
        tiebreak += 1
    return lengths


def _canonical_codes(lengths: "dict[int, int]") -> "dict[int, tuple[int, int]]":
    """Canonical (length, code) per symbol from code lengths."""
    ordered = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
    codes = {}
    code = 0
    prev_len = ordered[0][1]
    for sym, length in ordered:
        code <<= length - prev_len
        prev_len = length
        codes[sym] = (length, code)
        code += 1
    return codes


def _encode_group_huff(words: list[int]) -> "bytes | None":
    """``n, n_syms, sorted-symbol-deltas, code-lengths, bitstream``.

    Canonical Huffman over the distinct word values: the header carries
    the sorted symbol alphabet (delta-coded) and one length byte per
    symbol, which determines the codes uniquely.  Returns ``None`` when
    a code would exceed :data:`MAX_HUFF_CODE_LEN` (the pick-best caller
    just skips the mode).
    """
    n = len(words)
    if n == 0:
        return None
    counts: dict[int, int] = {}
    for w in words:
        counts[w] = counts.get(w, 0) + 1
    syms = sorted(counts)
    out = bytearray([GROUP_HUFF])
    _write_uvarint(out, n)
    _write_uvarint(out, len(syms))
    prev = 0
    for i, s in enumerate(syms):
        if i == 0:
            write_varint(out, s)
        else:
            _write_uvarint(out, s - prev)  # strictly ascending, so >= 1
        prev = s
    if len(syms) == 1:
        return bytes(out)  # zero-bit codes: the count alone decodes it
    lengths = _huffman_code_lengths([(s, counts[s]) for s in syms])
    if max(lengths.values()) > MAX_HUFF_CODE_LEN:
        return None
    for s in syms:
        out.append(lengths[s])
    codes = _canonical_codes(lengths)
    acc = 0
    nacc = 0
    for w in words:
        length, code = codes[w]
        acc = (acc << length) | code
        nacc += length
        while nacc >= 8:
            nacc -= 8
            out.append((acc >> nacc) & 0xFF)
            acc &= (1 << nacc) - 1
    if nacc:
        out.append((acc << (8 - nacc)) & 0xFF)
    return bytes(out)


def _decode_group_huff(data: bytes, pos: int, stream: str) -> list[int]:
    n, pos = _read_uvarint(data, pos, stream)
    if n > _MAX_GROUP_WORDS:
        raise TraceFormatError(
            f"implausible group length {n} (cap is {_MAX_GROUP_WORDS})",
            stream=stream, offset=pos,
        )
    if n == 0:
        return []
    n_syms, pos = _read_uvarint(data, pos, stream)
    if n_syms == 0 or n_syms > n:
        raise TraceFormatError(
            f"undecodable Huffman group ({n_syms} symbols for {n} words)",
            stream=stream, offset=pos,
        )
    syms = []
    for i in range(n_syms):
        if i == 0:
            s, pos = read_varint(data, pos, stream)
        else:
            d, pos = _read_uvarint(data, pos, stream)
            if d == 0:
                raise TraceFormatError(
                    "undecodable Huffman group (duplicate symbol)",
                    stream=stream, offset=pos,
                )
            s = syms[-1] + d
        syms.append(s)
    if n_syms == 1:
        return [syms[0]] * n
    if pos + n_syms > len(data):
        raise TraceFormatError(
            "truncated Huffman group (code-length table ends early)",
            stream=stream, offset=pos,
        )
    lengths = {}
    for s in syms:
        length = data[pos]
        pos += 1
        if length == 0 or length > MAX_HUFF_CODE_LEN:
            raise TraceFormatError(
                f"undecodable Huffman group (code length {length})",
                stream=stream, offset=pos - 1,
            )
        lengths[s] = length
    by_code = {lc: s for s, lc in _canonical_codes(lengths).items()}
    if len(by_code) != n_syms:
        raise TraceFormatError(
            "undecodable Huffman group (code lengths collide)",
            stream=stream, offset=pos,
        )
    words = []
    acc = 0
    nacc = 0
    length = 0
    code = 0
    while len(words) < n:
        if nacc == 0:
            if pos >= len(data):
                raise TraceFormatError(
                    "truncated Huffman group (bitstream ends early)",
                    stream=stream, offset=pos,
                )
            acc = data[pos]
            pos += 1
            nacc = 8
        nacc -= 1
        code = (code << 1) | ((acc >> nacc) & 1)
        length += 1
        if length > MAX_HUFF_CODE_LEN:
            raise TraceFormatError(
                "undecodable Huffman group (no code matches)",
                stream=stream, offset=pos,
            )
        sym = by_code.get((length, code))
        if sym is not None:
            words.append(sym)
            length = 0
            code = 0
    return words


def encode_group(words: list[int]) -> bytes:
    """Encode one segment's words: pick-best of the four sub-modes."""
    best = bytes([GROUP_RAW]) + encode_words(words)
    for candidate in (
        _encode_group_rle(words),
        _encode_group_pack(words),
        _encode_group_huff(words),
    ):
        if candidate is not None and len(candidate) < len(best):
            best = candidate
    return best


def decode_group(data: bytes, stream: str = "trace") -> list[int]:
    """Decode a group-codec payload (mode byte + mode payload)."""
    if not data:
        raise TraceFormatError("empty group payload", stream=stream, offset=0)
    mode = data[0]
    if mode == GROUP_RAW:
        return decode_words(data[1:], stream)
    if mode == GROUP_RLE:
        return _decode_group_rle(data, 1, stream)
    if mode == GROUP_PACK:
        return _decode_group_pack(data, 1, stream)
    if mode == GROUP_HUFF:
        return _decode_group_huff(data, 1, stream)
    raise TraceFormatError(
        f"unknown group-codec mode {mode}", stream=stream, offset=0
    )


def _encode_segment_payload(words: list[int], codec: int) -> bytes:
    """Words -> stored segment bytes under the given codec flags."""
    if codec & CODEC_GROUP:
        payload = encode_group(words)
    else:
        payload = encode_words(words)
    if codec & CODEC_ZLIB:
        payload = zlib.compress(payload, 6)
    return payload


def _decode_segment_payload(payload: bytes, codec: int, stream: str) -> list[int]:
    """Stored segment bytes -> words under the given codec flags."""
    if codec & CODEC_ZLIB:
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise TraceFormatError(
                f"undecodable compressed segment ({stream} stream): {exc}",
                stream=stream, offset=0,
            ) from exc
    if codec & CODEC_GROUP:
        return decode_group(payload, stream)
    return decode_words(payload, stream)


# ---------------------------------------------------------------------------
# meta encoding (shared by v2 and v3: repr of sorted items, eval'd back)


def _encode_meta(meta: dict) -> bytes:
    return repr(sorted(meta.items())).encode()


def _decode_meta(blob: bytes, stream: str = "meta") -> dict:
    try:
        return dict(eval(blob.decode()))  # noqa: S307 - own format
    except Exception as exc:
        raise TraceFormatError(
            f"undecodable {stream} blob: {exc}", stream=stream, offset=0
        ) from exc


# ---------------------------------------------------------------------------
# the persisted trace


@dataclass
class SalvageReport:
    """What :meth:`TraceLog.salvage` found in a torn file."""

    intact_segments: int = 0
    switch_segments: int = 0
    value_segments: int = 0
    slim_segments: int = 0
    sealed: bool = False
    stopped_at: int | None = None  # byte offset of the first damage
    error: str | None = None  # why scanning stopped (None = clean EOF)

    def describe(self) -> str:
        if self.sealed:
            return "file is sealed and intact (no salvage needed)"
        where = f" at byte {self.stopped_at}" if self.stopped_at is not None else ""
        why = f": {self.error}" if self.error else " (file ends mid-record)"
        slim = f", {self.slim_segments} slim" if self.slim_segments else ""
        return (
            f"salvaged {self.intact_segments} intact segments "
            f"({self.switch_segments} switch, {self.value_segments} value{slim}), "
            f"stopped{where}{why}"
        )


@dataclass
class TraceLog:
    """A complete recorded execution, ready to drive a replay."""

    switches: list[int] = field(default_factory=list)
    values: list[int] = field(default_factory=list)
    meta: dict = field(default_factory=dict)
    #: v3.2 slim sidecar: drop-run triples, empty for full traces
    slim: list[int] = field(default_factory=list)
    #: set by :meth:`salvage` — None for cleanly loaded traces
    salvage_report: "SalvageReport | None" = None

    @property
    def encoded_size_bytes(self) -> int:
        return (len(encode_words(self.switches))
                + len(encode_words(self.values))
                + len(encode_words(self.slim)))

    @property
    def n_switch_records(self) -> int:
        return len(self.switches)

    @property
    def n_value_words(self) -> int:
        return len(self.values)

    @property
    def truncated(self) -> bool:
        return bool(self.meta.get("truncated"))

    @property
    def slim_info(self) -> dict | None:
        """The ``meta["slim"]`` block as a dict, or None for full traces.

        Present iff the switch stream is slimmed: keys ``model`` (the
        timer reconstruction spec), ``kept``/``dropped`` (delta counts)
        and ``sync_total`` (the end-of-run sync-order witness).
        """
        block = self.meta.get("slim")
        return dict(block) if block is not None else None

    # -- writing -----------------------------------------------------------

    def save(self, path: str | Path, *, codec: int = CODEC_GROUP) -> None:
        """Persist as format v3.1 (v3.2 when slim), atomically."""
        writer = TraceWriter(path, codec=codec, background=False,
                             slim=bool(self.slim) or "slim" in self.meta)
        try:
            for w in self.switches:
                writer.switch_sink.append(w)
            for w in self.values:
                writer.value_sink.append(w)
            for w in self.slim:
                writer.slim_sink.append(w)
            writer.seal(self.meta)
        except BaseException:
            writer.abandon()
            raise

    def save_v2(self, path: str | Path) -> None:
        """Write the legacy v2 format (tests / downgrade escape hatch)."""
        path = Path(path)
        with path.open("wb") as f:
            f.write(MAGIC)
            f.write((2).to_bytes(2, "little"))
            meta_blob = _encode_meta(self.meta)
            f.write(len(meta_blob).to_bytes(4, "little"))
            f.write(meta_blob)
            for payload in (encode_words(self.switches), encode_words(self.values)):
                f.write(len(payload).to_bytes(8, "little"))
                f.write(payload)

    # -- reading -----------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> "TraceLog":
        """Load a sealed trace; any damage raises :class:`TraceFormatError`."""
        log, report = cls._read(path, salvage=False)
        return log

    @classmethod
    def salvage(cls, path: str | Path) -> "TraceLog":
        """Recover every intact segment from a (possibly torn) trace file.

        Returns a :class:`TraceLog` whose streams hold the surviving
        prefix.  If the file turns out to be sealed and intact, the result
        equals :meth:`load`; otherwise ``meta["truncated"]`` is set and
        ``salvage_report`` says where scanning stopped.  Files that are
        not DejaVu traces at all (bad magic, unreadable version) are not
        salvageable and still raise :class:`TraceFormatError`.
        """
        log, report = cls._read(path, salvage=True)
        log.salvage_report = report
        if not report.sealed:
            log.meta["truncated"] = True
        return log

    @classmethod
    def _read(cls, path: str | Path, *, salvage: bool) -> "tuple[TraceLog, SalvageReport]":
        path = Path(path)
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise TraceFormatError(f"cannot read trace: {exc}", stream="header") from exc
        if len(data) == 0:
            raise TraceFormatError("empty file (not a DejaVu trace)",
                                   stream="header", offset=0)
        if data[:4] != MAGIC:
            raise TraceFormatError(
                f"not a DejaVu trace: {path.name} (bad magic {data[:4]!r})",
                stream="header", offset=0,
            )
        if len(data) < 6:
            raise TraceFormatError("header torn before version field",
                                   stream="header", offset=4)
        version = int.from_bytes(data[4:6], "little")
        if version not in READABLE_VERSIONS:
            raise TraceFormatError(
                f"unsupported trace version {version} "
                f"(this build reads {', '.join(map(str, READABLE_VERSIONS))})",
                stream="header", offset=4,
            )
        if version == 2:
            return cls._read_v2(data), SalvageReport(sealed=True)
        return cls._read_v3(data, version=version, salvage=salvage)

    @classmethod
    def _read_v2(cls, data: bytes) -> "TraceLog":
        buf = io.BytesIO(data)
        buf.read(6)
        meta_len = int.from_bytes(buf.read(4), "little")
        meta_blob = buf.read(meta_len)
        if len(meta_blob) != meta_len:
            raise TraceFormatError("truncated meta blob", stream="meta",
                                   offset=10)
        meta = _decode_meta(meta_blob)
        streams = []
        for name in ("switch", "value"):
            payload_len = int.from_bytes(buf.read(8), "little")
            payload = buf.read(payload_len)
            if len(payload) != payload_len:
                raise TraceFormatError(
                    f"truncated {name} payload ({len(payload)} of {payload_len} bytes)",
                    stream=name, offset=buf.tell() - len(payload),
                )
            streams.append(decode_words(payload, name))
        meta.setdefault("format_version", 2)
        return cls(switches=streams[0], values=streams[1], meta=meta)

    @classmethod
    def _read_v3(cls, data: bytes, *, version: int,
                 salvage: bool) -> "tuple[TraceLog, SalvageReport]":
        hdr = _SEG_HEADER_BYTES if version == 3 else _SEG_HEADER_BYTES_V31
        switches: list[int] = []
        values: list[int] = []
        slim: list[int] = []
        meta: dict = {}
        footer: dict | None = None
        report = SalvageReport()
        stream_crcs = {SEG_SWITCH: 0, SEG_VALUE: 0, SEG_SLIM: 0}
        error: TraceFormatError | None = None
        pos = 6
        seg_index = 0
        while pos < len(data):
            if footer is not None:
                error = TraceFormatError(
                    f"{len(data) - pos} bytes of trailing data after the footer",
                    stream="footer", offset=pos,
                )
                break
            if pos + hdr > len(data):
                error = TraceFormatError(
                    f"torn segment header (segment {seg_index}: "
                    f"{len(data) - pos} of {hdr} header bytes)",
                    stream="segment", offset=pos,
                )
                break
            kind = data[pos:pos + 1]
            if version == 3:
                codec = CODEC_RAW
                payload_len = int.from_bytes(data[pos + 1:pos + 5], "little")
                want_crc = int.from_bytes(data[pos + 5:pos + 9], "little")
            else:
                codec = data[pos + 1]
                payload_len = int.from_bytes(data[pos + 2:pos + 6], "little")
                want_crc = int.from_bytes(data[pos + 6:pos + 10], "little")
            if kind not in _SEGMENT_KINDS:
                error = TraceFormatError(
                    f"unknown segment kind {kind!r} (segment {seg_index})",
                    stream="segment", offset=pos,
                )
                break
            if codec & ~_CODEC_MASK or (
                kind in (SEG_META, SEG_FOOTER) and codec & CODEC_GROUP
            ):
                error = TraceFormatError(
                    f"unknown segment codec 0x{codec:02x} (segment {seg_index}, "
                    f"{_STREAM_OF_KIND[kind]} stream)",
                    stream=_STREAM_OF_KIND[kind], offset=pos + 1,
                )
                break
            if payload_len > MAX_SEGMENT_BYTES:
                error = TraceFormatError(
                    f"implausible segment length {payload_len} "
                    f"(segment {seg_index}; cap is {MAX_SEGMENT_BYTES})",
                    stream=_STREAM_OF_KIND[kind], offset=pos,
                )
                break
            payload = data[pos + hdr:pos + hdr + payload_len]
            if len(payload) != payload_len:
                error = TraceFormatError(
                    f"torn segment payload (segment {seg_index}, "
                    f"{_STREAM_OF_KIND[kind]}: {len(payload)} of {payload_len} bytes)",
                    stream=_STREAM_OF_KIND[kind], offset=pos + hdr,
                )
                break
            if zlib.crc32(payload) != want_crc:
                error = TraceFormatError(
                    f"segment CRC mismatch (segment {seg_index}, "
                    f"{_STREAM_OF_KIND[kind]} stream)",
                    stream=_STREAM_OF_KIND[kind], offset=pos,
                )
                break
            try:
                if kind == SEG_SWITCH:
                    switches.extend(_decode_segment_payload(payload, codec, "switch"))
                    stream_crcs[SEG_SWITCH] = zlib.crc32(payload, stream_crcs[SEG_SWITCH])
                    report.switch_segments += 1
                elif kind == SEG_VALUE:
                    values.extend(_decode_segment_payload(payload, codec, "value"))
                    stream_crcs[SEG_VALUE] = zlib.crc32(payload, stream_crcs[SEG_VALUE])
                    report.value_segments += 1
                elif kind == SEG_SLIM:
                    slim.extend(_decode_segment_payload(payload, codec, "slim"))
                    stream_crcs[SEG_SLIM] = zlib.crc32(payload, stream_crcs[SEG_SLIM])
                    report.slim_segments += 1
                elif kind == SEG_META:
                    meta.update(_decode_meta(_maybe_decompress(payload, codec, "meta")))
                else:  # footer
                    footer = _decode_meta(
                        _maybe_decompress(payload, codec, "footer"), "footer"
                    )
            except TraceFormatError as exc:
                error = exc
                break
            report.intact_segments += 1
            seg_index += 1
            pos += hdr + payload_len

        if error is not None:
            report.stopped_at = error.offset
            report.error = str(error)
            if not salvage:
                raise error
        if footer is None:
            if not salvage:
                raise TraceFormatError(
                    "trace has no footer: the file is unsealed "
                    "(recorder died mid-run?) — try salvage",
                    stream="footer", offset=len(data),
                )
        else:
            cls._check_footer(footer, switches, values, slim, report, stream_crcs)
            report.sealed = error is None
        return cls(switches=switches, values=values, slim=slim, meta=meta), report

    @staticmethod
    def _check_footer(footer, switches, values, slim, report, stream_crcs) -> None:
        checks = [
            ("n_switch_words", len(switches)),
            ("n_value_words", len(values)),
            ("n_switch_segments", report.switch_segments),
            ("n_value_segments", report.value_segments),
            ("switch_crc", stream_crcs[SEG_SWITCH]),
            ("value_crc", stream_crcs[SEG_VALUE]),
        ]
        if "n_slim_words" in footer or report.slim_segments:
            checks += [
                ("n_slim_words", len(slim)),
                ("n_slim_segments", report.slim_segments),
                ("slim_crc", stream_crcs[SEG_SLIM]),
            ]
        for key, got in checks:
            want = footer.get(key)
            if want != got:
                raise TraceFormatError(
                    f"footer mismatch on {key}: footer says {want!r}, "
                    f"file holds {got!r}",
                    stream="footer",
                )


def _maybe_decompress(payload: bytes, codec: int, stream: str) -> bytes:
    if codec & CODEC_ZLIB:
        try:
            return zlib.decompress(payload)
        except zlib.error as exc:
            raise TraceFormatError(
                f"undecodable compressed segment ({stream} stream): {exc}",
                stream=stream, offset=0,
            ) from exc
    return payload


# ---------------------------------------------------------------------------
# trace-stats scanner


def trace_stats(path: str | Path) -> dict:
    """Per-stream encoding statistics for a sealed or legacy trace file.

    Returns a dict with ``format_version``, ``file_bytes`` and a
    ``streams`` mapping; each stream reports its entry count, segment
    count, stored (encoded) bytes, the plain-varint baseline bytes, and
    the resulting compression ratio.  Damage raises
    :class:`TraceFormatError`, matching :meth:`TraceLog.load`.
    """
    path = Path(path)
    data = path.read_bytes()
    # validate wholesale first: stats on a damaged file would be fiction
    log = TraceLog.load(path)
    version = int.from_bytes(data[4:6], "little")
    streams = {
        name: {"entries": 0, "segments": 0, "encoded_bytes": 0,
               "raw_bytes": 0, "codecs": set()}
        for name in ("switch", "value", "slim")
    }
    if version == 2:
        buf = io.BytesIO(data)
        buf.read(6)
        meta_len = int.from_bytes(buf.read(4), "little")
        buf.read(meta_len)
        for name in ("switch", "value"):
            payload_len = int.from_bytes(buf.read(8), "little")
            payload = buf.read(payload_len)
            st = streams[name]
            st["entries"] = len(decode_words(payload, name))
            st["segments"] = 1
            st["encoded_bytes"] = len(payload)
            st["raw_bytes"] = len(payload)
            st["codecs"].add(CODEC_RAW)
    else:
        hdr = _SEG_HEADER_BYTES if version == 3 else _SEG_HEADER_BYTES_V31
        pos = 6
        while pos < len(data):
            kind = data[pos:pos + 1]
            if version == 3:
                codec = CODEC_RAW
                payload_len = int.from_bytes(data[pos + 1:pos + 5], "little")
            else:
                codec = data[pos + 1]
                payload_len = int.from_bytes(data[pos + 2:pos + 6], "little")
            payload = data[pos + hdr:pos + hdr + payload_len]
            if kind in (SEG_SWITCH, SEG_VALUE, SEG_SLIM):
                name = _STREAM_OF_KIND[kind]
                words = _decode_segment_payload(payload, codec, name)
                st = streams[name]
                st["entries"] += len(words)
                st["segments"] += 1
                st["encoded_bytes"] += len(payload)
                st["raw_bytes"] += len(encode_words(words))
                st["codecs"].add(codec)
            pos += hdr + payload_len
    if not streams["slim"]["segments"]:
        del streams["slim"]  # full traces report the two classic streams
    for st in streams.values():
        st["ratio"] = (
            st["raw_bytes"] / st["encoded_bytes"] if st["encoded_bytes"] else 1.0
        )
        st["codecs"] = sorted(st["codecs"])
    stats = {
        "format_version": version,
        "file_bytes": len(data),
        "streams": streams,
    }
    slim_block = log.slim_info
    if slim_block is not None:
        stats["slim"] = {
            "kept": slim_block.get("kept"),
            "dropped": slim_block.get("dropped"),
            "model": slim_block.get("model"),
        }
    return stats


# ---------------------------------------------------------------------------
# crash-consistent streaming writer


class _SpillList(list):
    """A word sink that spills full segments to the writer as it grows.

    It *is* the host-side word list (``DejaVu`` appends flushed guest
    buffers into it and ``trace()`` reads it back whole); the spill is a
    side channel to disk and never mutates the list, so attaching a writer
    changes nothing the controller — let alone the guest — can observe.
    """

    def __init__(self, writer: "TraceWriter", kind: bytes):
        super().__init__()
        self._writer = writer
        self._kind = kind
        self._spilled = 0  # words already written to disk

    def append(self, word: int) -> None:
        super().append(word)
        if len(self) - self._spilled >= self._writer.segment_words:
            self.spill()

    def spill(self) -> None:
        pending = self[self._spilled:]
        if not pending:
            return
        self._writer._write_stream_segment(self._kind, pending)
        self._spilled = len(self)


class TraceWriter:
    """Streams a recording to ``<path>.tmp`` and seals it atomically.

    The execution path only appends words to the in-memory sinks; when a
    segment's worth accumulates, the raw words are handed across a queue
    to a background flusher thread that does the varint/group encoding,
    CRC32, framing, and file I/O (``background=False`` keeps everything
    on the caller's thread, for bulk saves).  Segments reach the OS in
    spill order, so a crash mid-record leaves a prefix of intact segments
    that :meth:`TraceLog.salvage` can recover — exactly as before the
    flusher existed.  :meth:`seal` drains and joins the flusher, then
    writes the meta segment and footer, fsyncs, and ``os.replace``\\ s
    the tmp file onto the final path — the final name never holds a torn
    file, and any flusher-side error surfaces on the sealing thread.
    """

    def __init__(self, path: str | Path, *, segment_words: int = SEGMENT_WORDS,
                 codec: int = CODEC_GROUP, compress: bool = False,
                 background: bool = True, slim: bool = False):
        if segment_words <= 0:
            raise VMError(f"segment_words must be positive, got {segment_words}")
        if codec & ~_CODEC_MASK:
            raise VMError(f"unknown segment codec 0x{codec:02x}")
        self.path = Path(path)
        self.tmp_path = self.path.with_name(self.path.name + ".tmp")
        self.segment_words = segment_words
        self.codec = codec | CODEC_ZLIB if compress else codec
        # the version streams out first, so "slim-capable" is decided here;
        # whether the switch stream actually got slimmed is in the meta
        self.slim = slim
        self.version = FORMAT_VERSION_SLIM if slim else FORMAT_VERSION
        self._f = self.tmp_path.open("wb")
        self._f.write(MAGIC)
        self._f.write(self.version.to_bytes(2, "little"))
        self._f.flush()
        self.switch_sink = _SpillList(self, SEG_SWITCH)
        self.value_sink = _SpillList(self, SEG_VALUE)
        self.slim_sink = _SpillList(self, SEG_SLIM)
        self._stream_crcs = {SEG_SWITCH: 0, SEG_VALUE: 0, SEG_SLIM: 0}
        self._seg_counts = {SEG_SWITCH: 0, SEG_VALUE: 0, SEG_SLIM: 0}
        self._sealed = False
        self._error: BaseException | None = None
        self._queue: "queue.Queue | None" = None
        self._flusher: "threading.Thread | None" = None
        if background:
            self._queue = queue.Queue()
            self._flusher = threading.Thread(
                target=self._drain, name="trace-flusher", daemon=True
            )
            self._flusher.start()

    # -- flusher side ------------------------------------------------------

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            if self._error is None:
                try:
                    self._emit_stream_segment(*item)
                except BaseException as exc:  # surfaces at next spill/seal
                    self._error = exc

    def _emit_stream_segment(self, kind: bytes, words: list[int]) -> None:
        payload = _encode_segment_payload(words, self.codec)
        self._stream_crcs[kind] = zlib.crc32(payload, self._stream_crcs[kind])
        self._seg_counts[kind] += 1
        self._write_segment(kind, payload, self.codec)

    def _write_segment(self, kind: bytes, payload: bytes, codec: int) -> None:
        self._f.write(kind)
        self._f.write(bytes([codec]))
        self._f.write(len(payload).to_bytes(4, "little"))
        self._f.write(zlib.crc32(payload).to_bytes(4, "little"))
        self._f.write(payload)
        self._f.flush()

    # -- execution-path side ----------------------------------------------

    def _write_stream_segment(self, kind: bytes, words: list[int]) -> None:
        if self._error is not None:
            raise self._error
        if self._queue is not None:
            self._queue.put((kind, words))
        else:
            self._emit_stream_segment(kind, words)

    def _join_flusher(self) -> None:
        """Stop the flusher after it has written every queued segment."""
        if self._flusher is not None and self._flusher.is_alive():
            self._queue.put(None)
            self._flusher.join()

    def seal(self, meta: dict) -> None:
        """Flush remaining words, write meta + footer, rename into place."""
        if self._sealed:
            raise VMError("TraceWriter already sealed")
        self.switch_sink.spill()
        self.value_sink.spill()
        if self.slim:
            self.slim_sink.spill()
        self._join_flusher()
        if self._error is not None:
            raise self._error
        if meta:
            self._write_segment(SEG_META, _encode_meta(meta), CODEC_RAW)
        footer = {
            "n_switch_words": len(self.switch_sink),
            "n_value_words": len(self.value_sink),
            "n_switch_segments": self._seg_counts[SEG_SWITCH],
            "n_value_segments": self._seg_counts[SEG_VALUE],
            "switch_crc": self._stream_crcs[SEG_SWITCH],
            "value_crc": self._stream_crcs[SEG_VALUE],
            "config": meta.get("config"),
        }
        if self.slim:
            footer["n_slim_words"] = len(self.slim_sink)
            footer["n_slim_segments"] = self._seg_counts[SEG_SLIM]
            footer["slim_crc"] = self._stream_crcs[SEG_SLIM]
        self._write_segment(SEG_FOOTER, _encode_meta(footer), CODEC_RAW)
        self._f.flush()
        os.fsync(self._f.fileno())
        self._f.close()
        os.replace(self.tmp_path, self.path)
        self._sealed = True

    def abandon(self) -> None:
        """Stop writing, leaving the tmp file as-is (the crash outcome).

        Queued-but-unwritten segments are drained to disk first — they
        were spilled before the "crash", so the salvageable prefix must
        contain them, same as the synchronous writer's would have.
        """
        self._join_flusher()
        if not self._f.closed:
            self._f.close()

    @property
    def sealed(self) -> bool:
        return self._sealed


# ---------------------------------------------------------------------------
# the guest-heap buffers


class TraceBuffer:
    """Word FIFO staged through a guest heap int array.

    Record mode: ``put`` words; when the array fills, its contents drain to
    the host-side word list (a "flush", which fires the lazy-class-load and
    internal-yield-point side effects the symmetry rules govern).

    Replay mode: ``take`` words; when the array empties, the next chunk of
    the trace refills it (a "refill", the mirror-image side effect).
    """

    def __init__(self, vm: "VirtualMachine", capacity_words: int, *, boot_slot: int | None = None):
        self.vm = vm
        self.capacity = capacity_words
        self.boot_slot = boot_slot
        self.addr = 0
        self._fill = 0  # valid words in the guest array
        self._pos = 0  # read cursor (replay)
        self.flushes = 0
        self.refills = 0
        #: side-effect hook invoked on every flush/refill (symmetry module)
        self.on_drain: Callable[[str], None] | None = None

    def allocate(self) -> None:
        """Allocate the guest array (the 'symmetry in allocation' event)."""
        if self.addr:
            return
        self.addr = self.vm.om.new_array("[I", self.capacity)
        if self.boot_slot is not None:
            self.vm.memory.boot_write(self.boot_slot, self.addr)

    @property
    def allocated(self) -> bool:
        return self.addr != 0

    # -- record side -------------------------------------------------------

    def put(self, word: int, sink: list[int]) -> None:
        if not self.addr:
            self.allocate()
        if self._fill >= self.capacity:
            self.flush(sink)
        self.vm.om.array_put(self.addr, self._fill, word)
        self._fill += 1

    def flush(self, sink: list[int]) -> None:
        om = self.vm.om
        for i in range(self._fill):
            sink.append(om.array_get(self.addr, i))
        self._fill = 0
        self.flushes += 1
        if self.on_drain is not None:
            self.on_drain("flush")

    # -- replay side -------------------------------------------------------

    def take(self, source: list[int], cursor: int) -> tuple[int | None, int]:
        """Pop the next word; returns (word | None-when-exhausted, cursor)."""
        if not self.addr:
            self.allocate()
        if self._pos >= self._fill:
            cursor = self._refill(source, cursor)
            if self._fill == 0:
                return None, cursor
        word = self.vm.om.array_get(self.addr, self._pos)
        self._pos += 1
        return word, cursor

    def _refill(self, source: list[int], cursor: int) -> int:
        om = self.vm.om
        n = min(self.capacity, len(source) - cursor)
        for i in range(n):
            om.array_put(self.addr, i, source[cursor + i])
        self._fill = n
        self._pos = 0
        self.refills += 1
        if self.on_drain is not None:
            self.on_drain("refill")
        return cursor + n

    # -- shared -------------------------------------------------------------

    def zero(self) -> None:
        """Erase buffer contents (end of run) so record and replay leave
        byte-identical heaps behind — the END heap-digest check depends
        on this."""
        if not self.addr:
            return
        om = self.vm.om
        for i in range(self.capacity):
            om.array_put(self.addr, i, 0)
        self._fill = 0
        self._pos = 0

    def visit_roots(self, fwd: Callable[[int], int]) -> None:
        if self.addr:
            self.addr = fwd(self.addr)
